#include "simd/kernels.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "simd/dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PIGGY_SIMD_X86 1
#endif

namespace piggy::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference paths. Every vector tier must reproduce these outputs
// bit-for-bit; the tails of the vector loops fall through into them.
// ---------------------------------------------------------------------------

void TwoPointerValues(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                      size_t i, size_t j, std::vector<NodeId>* out) {
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

void TwoPointerPairs(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                     size_t i, size_t j, std::vector<IndexPair>* out) {
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
      ++i;
      ++j;
    }
  }
}

// Exponential probe + binary search through the larger span, mirroring
// ForEachSortedIntersection's skewed-pair path (graph/graph.h) exactly.
// Emit receives (value, ia, ib).
template <typename Emit>
void GallopIntersect(std::span<const NodeId> a, std::span<const NodeId> b,
                     Emit&& emit) {
  const bool a_is_small = a.size() <= b.size();
  const std::span<const NodeId> small = a_is_small ? a : b;
  const std::span<const NodeId> large = a_is_small ? b : a;
  size_t lo = 0;
  for (size_t i = 0; i < small.size() && lo < large.size(); ++i) {
    const NodeId x = small[i];
    size_t bound = 1;
    while (lo + bound < large.size() && large[lo + bound] < x) bound <<= 1;
    const size_t hi = std::min(lo + bound + 1, large.size());
    lo = static_cast<size_t>(
        std::lower_bound(large.data() + lo, large.data() + hi, x) - large.data());
    if (lo < large.size() && large[lo] == x) {
      emit(x, a_is_small ? i : lo, a_is_small ? lo : i);
      ++lo;
    }
  }
}

bool UseGallop(std::span<const NodeId> a, std::span<const NodeId> b) {
  return a.size() >= kGallopIntersectRatio * b.size() ||
         b.size() >= kGallopIntersectRatio * a.size();
}

void NotCoveredFlagsScalar(const uint8_t* covered, const uint64_t* idx, size_t i,
                           size_t n, uint8_t* out_flags) {
  for (; i < n; ++i) out_flags[i] = covered[idx[i]] ? 0 : 1;
}

void NotCoveredContiguousScalar(const uint8_t* covered_base, size_t i, size_t n,
                                uint8_t* out_flags) {
  for (; i < n; ++i) out_flags[i] = covered_base[i] ? 0 : 1;
}

void FilterUncoveredScalar(const uint8_t* covered, const uint32_t* p,
                           const uint32_t* c, const uint32_t* edge, size_t i,
                           size_t n,
                           std::vector<std::pair<uint32_t, uint32_t>>* out) {
  for (; i < n; ++i) {
    if (!covered[edge[i]]) out->emplace_back(p[i], c[i]);
  }
}

// Newest-first scan over [0, end) in descending record order, appending
// matching record indices until `taken` reaches k.
void SelectKeyedScalar(const uint32_t* keys, size_t stride_u32, size_t end,
                       std::span<const NodeId> interest, size_t k, size_t* taken,
                       std::vector<uint32_t>* out) {
  for (size_t r = end; r > 0 && *taken < k; --r) {
    const uint32_t key = keys[(r - 1) * stride_u32];
    if (std::binary_search(interest.begin(), interest.end(), key)) {
      out->push_back(static_cast<uint32_t>(r - 1));
      ++*taken;
    }
  }
}

#ifdef PIGGY_SIMD_X86

// ---------------------------------------------------------------------------
// SSE4.2 tier: 128-bit block compares for the intersections. The gather
// kernels have no 128-bit gather instruction and stay scalar at this tier
// (still bit-identical by construction).
// ---------------------------------------------------------------------------

// Left-pack permutation LUT for 4-bit masks: kPack4[m] lists the set lanes
// of m in ascending order (as byte shuffle indices for _mm_shuffle_epi8).
struct Pack4Table {
  alignas(16) uint8_t shuffle[16][16];
};
constexpr Pack4Table BuildPack4() {
  Pack4Table t{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (m & (1 << lane)) {
        for (int byte = 0; byte < 4; ++byte) {
          t.shuffle[m][k * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
        }
        ++k;
      }
    }
    for (; k < 4; ++k) {
      for (int byte = 0; byte < 4; ++byte) {
        t.shuffle[m][k * 4 + byte] = 0;
      }
    }
  }
  return t;
}
constexpr Pack4Table kPack4 = BuildPack4();

__attribute__((target("sse4.2"))) void IntersectValuesSse42(
    const NodeId* a, size_t na, const NodeId* b, size_t nb,
    std::vector<NodeId>* out) {
  size_t i = 0, j = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    __m128i rot = vb;
    __m128i match = _mm_cmpeq_epi32(va, rot);
    rot = _mm_shuffle_epi32(rot, _MM_SHUFFLE(0, 3, 2, 1));
    match = _mm_or_si128(match, _mm_cmpeq_epi32(va, rot));
    rot = _mm_shuffle_epi32(rot, _MM_SHUFFLE(0, 3, 2, 1));
    match = _mm_or_si128(match, _mm_cmpeq_epi32(va, rot));
    rot = _mm_shuffle_epi32(rot, _MM_SHUFFLE(0, 3, 2, 1));
    match = _mm_or_si128(match, _mm_cmpeq_epi32(va, rot));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(match));
    if (mask != 0) {
      const __m128i shuf = _mm_load_si128(
          reinterpret_cast<const __m128i*>(kPack4.shuffle[mask]));
      const __m128i packed = _mm_shuffle_epi8(va, shuf);
      const size_t cnt = static_cast<size_t>(__builtin_popcount(mask));
      const size_t old = out->size();
      out->resize(old + 4);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out->data() + old), packed);
      out->resize(old + cnt);
    }
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  TwoPointerValues(a, na, b, nb, i, j, out);
}

__attribute__((target("sse4.2"))) void IntersectPairsSse42(
    const NodeId* a, size_t na, const NodeId* b, size_t nb,
    std::vector<IndexPair>* out) {
  const __m128i idx0 = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i three = _mm_set1_epi32(3);
  size_t i = 0, j = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    __m128i match = _mm_setzero_si128();
    __m128i bidx = _mm_setzero_si128();
    for (int r = 0; r < 4; ++r) {
      const __m128i eq = _mm_cmpeq_epi32(va, vb);
      match = _mm_or_si128(match, eq);
      // Lane l of this rotation compares against b[j + ((l + r) & 3)].
      const __m128i lane_b =
          _mm_and_si128(_mm_add_epi32(idx0, _mm_set1_epi32(r)), three);
      bidx = _mm_blendv_epi8(bidx, lane_b, eq);
      vb = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
    }
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(match));
    if (mask != 0) {
      alignas(16) uint32_t blane[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(blane), bidx);
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) {
          out->push_back({static_cast<uint32_t>(i + lane),
                          static_cast<uint32_t>(j + blane[lane])});
        }
      }
    }
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  TwoPointerPairs(a, na, b, nb, i, j, out);
}

__attribute__((target("sse4.2"))) void NotCoveredContiguousSse42(
    const uint8_t* covered_base, size_t n, uint8_t* out_flags) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(covered_base + i));
    const __m128i flags = _mm_and_si128(_mm_cmpeq_epi8(v, zero), one);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_flags + i), flags);
  }
  NotCoveredContiguousScalar(covered_base, i, n, out_flags);
}

// ---------------------------------------------------------------------------
// AVX2 tier: 256-bit block compares plus hardware gathers.
// ---------------------------------------------------------------------------

struct Pack8Table {
  alignas(32) uint32_t perm[256][8];
};
constexpr Pack8Table BuildPack8() {
  Pack8Table t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if (m & (1 << lane)) t.perm[m][k++] = static_cast<uint32_t>(lane);
    }
    for (; k < 8; ++k) t.perm[m][k] = 0;
  }
  return t;
}
constexpr Pack8Table kPack8 = BuildPack8();

__attribute__((target("avx2"))) void IntersectValuesAvx2(
    const NodeId* a, size_t na, const NodeId* b, size_t nb,
    std::vector<NodeId>* out) {
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  size_t i = 0, j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const uint32_t amax = a[i + 7], bmax = b[j + 7];
    __m256i match = _mm256_setzero_si256();
    for (int r = 0; r < 8; ++r) {
      match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vb));
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(match));
    if (mask != 0) {
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kPack8.perm[mask]));
      const __m256i packed = _mm256_permutevar8x32_epi32(va, perm);
      const size_t cnt = static_cast<size_t>(__builtin_popcount(mask));
      const size_t old = out->size();
      out->resize(old + 8);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out->data() + old), packed);
      out->resize(old + cnt);
    }
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  TwoPointerValues(a, na, b, nb, i, j, out);
}

__attribute__((target("avx2"))) void IntersectPairsAvx2(
    const NodeId* a, size_t na, const NodeId* b, size_t nb,
    std::vector<IndexPair>* out) {
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i idx0 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i seven = _mm256_set1_epi32(7);
  size_t i = 0, j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const uint32_t amax = a[i + 7], bmax = b[j + 7];
    __m256i match = _mm256_setzero_si256();
    __m256i bidx = _mm256_setzero_si256();
    for (int r = 0; r < 8; ++r) {
      const __m256i eq = _mm256_cmpeq_epi32(va, vb);
      match = _mm256_or_si256(match, eq);
      const __m256i lane_b =
          _mm256_and_si256(_mm256_add_epi32(idx0, _mm256_set1_epi32(r)), seven);
      bidx = _mm256_blendv_epi8(bidx, lane_b, eq);
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(match));
    if (mask != 0) {
      alignas(32) uint32_t blane[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(blane), bidx);
      for (int lane = 0; lane < 8; ++lane) {
        if (mask & (1 << lane)) {
          out->push_back({static_cast<uint32_t>(i + lane),
                          static_cast<uint32_t>(j + blane[lane])});
        }
      }
    }
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  TwoPointerPairs(a, na, b, nb, i, j, out);
}

__attribute__((target("avx2"))) void NotCoveredFlagsAvx2(
    const uint8_t* covered, const uint64_t* idx, size_t n, uint8_t* out_flags) {
  const __m256i byte_mask = _mm256_set1_epi64x(0xff);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    // 8-byte gathers at byte granularity: reads up to 7 bytes past each
    // index, covered by the kCoveredPadding contract.
    const __m256i raw = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(covered), vidx, 1);
    const __m256i is_zero =
        _mm256_cmpeq_epi64(_mm256_and_si256(raw, byte_mask), zero);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(is_zero));
    out_flags[i + 0] = static_cast<uint8_t>(mask & 1);
    out_flags[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
    out_flags[i + 2] = static_cast<uint8_t>((mask >> 2) & 1);
    out_flags[i + 3] = static_cast<uint8_t>((mask >> 3) & 1);
  }
  NotCoveredFlagsScalar(covered, idx, i, n, out_flags);
}

__attribute__((target("avx2"))) void NotCoveredContiguousAvx2(
    const uint8_t* covered_base, size_t n, uint8_t* out_flags) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(covered_base + i));
    const __m256i flags = _mm256_and_si256(_mm256_cmpeq_epi8(v, zero), one);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_flags + i), flags);
  }
  NotCoveredContiguousScalar(covered_base, i, n, out_flags);
}

__attribute__((target("avx2"))) void FilterUncoveredAvx2(
    const uint8_t* covered, const uint32_t* p, const uint32_t* c,
    const uint32_t* edge, size_t n,
    std::vector<std::pair<uint32_t, uint32_t>>* out) {
  const __m256i byte_mask = _mm256_set1_epi32(0xff);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vedge =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(edge + i));
    // 4-byte gathers at byte granularity: up to 3 bytes past each index,
    // covered by the kCoveredPadding contract.
    const __m256i raw = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(covered), vedge, 1);
    const __m256i is_zero =
        _mm256_cmpeq_epi32(_mm256_and_si256(raw, byte_mask), zero);
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(is_zero));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out->emplace_back(p[i + lane], c[i + lane]);
      mask &= mask - 1;
    }
  }
  FilterUncoveredScalar(covered, p, c, edge, i, n, out);
}

// Membership of 8 gathered keys in the sorted `interest` span via a
// lane-parallel lower_bound (every lane descends its own bisection using
// gathers; compares are sign-biased so arbitrary uint32 keys order
// correctly). Returns a lane mask of found keys.
__attribute__((target("avx2"))) int InterestMask8(
    const uint32_t* keys, size_t stride_u32, size_t first_record,
    std::span<const NodeId> interest) {
  const int m = static_cast<int>(interest.size());
  const __m256i stride = _mm256_set1_epi32(static_cast<int>(stride_u32));
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i base =
      _mm256_set1_epi32(static_cast<int>(first_record * stride_u32));
  const __m256i offsets =
      _mm256_add_epi32(base, _mm256_mullo_epi32(lane_ids, stride));
  const __m256i vkeys = _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(keys), offsets, 4);

  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i keys_b = _mm256_xor_si256(vkeys, bias);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i vm = _mm256_set1_epi32(m);
  const __m256i vm1 = _mm256_set1_epi32(m - 1);
  const int* idata = reinterpret_cast<const int*>(interest.data());

  __m256i lo = _mm256_setzero_si256();
  __m256i hi = vm;
  while (true) {
    const __m256i active = _mm256_cmpgt_epi32(hi, lo);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(active)) == 0) break;
    __m256i mid = _mm256_srli_epi32(_mm256_add_epi32(lo, hi), 1);
    mid = _mm256_min_epi32(mid, vm1);  // converged lanes: keep gathers in range
    const __m256i vals_b =
        _mm256_xor_si256(_mm256_i32gather_epi32(idata, mid, 4), bias);
    const __m256i lt = _mm256_cmpgt_epi32(keys_b, vals_b);  // interest[mid] < key
    lo = _mm256_blendv_epi8(lo, _mm256_add_epi32(mid, one),
                            _mm256_and_si256(active, lt));
    hi = _mm256_blendv_epi8(hi, mid, _mm256_andnot_si256(lt, active));
  }
  const __m256i in_bounds = _mm256_cmpgt_epi32(vm, lo);
  const __m256i clamped = _mm256_min_epi32(lo, vm1);
  const __m256i found_vals = _mm256_i32gather_epi32(idata, clamped, 4);
  const __m256i eq = _mm256_cmpeq_epi32(found_vals, vkeys);
  return _mm256_movemask_ps(
      _mm256_castsi256_ps(_mm256_and_si256(in_bounds, eq)));
}

__attribute__((target("avx2"))) void SelectKeyedAvx2(
    const uint32_t* keys, size_t stride_u32, size_t n,
    std::span<const NodeId> interest, size_t k, std::vector<uint32_t>* out) {
  size_t taken = 0;
  size_t end = n;
  while (end >= 8 && taken < k) {
    const size_t first = end - 8;
    const int mask = InterestMask8(keys, stride_u32, first, interest);
    if (mask != 0) {
      for (int lane = 7; lane >= 0 && taken < k; --lane) {
        if (mask & (1 << lane)) {
          out->push_back(static_cast<uint32_t>(first + lane));
          ++taken;
        }
      }
    }
    end = first;
  }
  SelectKeyedScalar(keys, stride_u32, end, interest, k, &taken, out);
}

#endif  // PIGGY_SIMD_X86

}  // namespace

void IntersectSortedInto(std::span<const NodeId> a, std::span<const NodeId> b,
                         std::vector<NodeId>* out) {
  if (a.empty() || b.empty()) return;
  if (UseGallop(a, b)) {
    GallopIntersect(a, b, [out](NodeId v, size_t, size_t) { out->push_back(v); });
    return;
  }
#ifdef PIGGY_SIMD_X86
  switch (ActiveTier()) {
    case Tier::kAvx2:
      IntersectValuesAvx2(a.data(), a.size(), b.data(), b.size(), out);
      return;
    case Tier::kSse42:
      IntersectValuesSse42(a.data(), a.size(), b.data(), b.size(), out);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  TwoPointerValues(a.data(), a.size(), b.data(), b.size(), 0, 0, out);
}

void IntersectSortedPairsInto(std::span<const NodeId> a, std::span<const NodeId> b,
                              std::vector<IndexPair>* out) {
  if (a.empty() || b.empty()) return;
  if (UseGallop(a, b)) {
    GallopIntersect(a, b, [out](NodeId, size_t ia, size_t ib) {
      out->push_back({static_cast<uint32_t>(ia), static_cast<uint32_t>(ib)});
    });
    return;
  }
#ifdef PIGGY_SIMD_X86
  switch (ActiveTier()) {
    case Tier::kAvx2:
      IntersectPairsAvx2(a.data(), a.size(), b.data(), b.size(), out);
      return;
    case Tier::kSse42:
      IntersectPairsSse42(a.data(), a.size(), b.data(), b.size(), out);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  TwoPointerPairs(a.data(), a.size(), b.data(), b.size(), 0, 0, out);
}

void NotCoveredFlags(const uint8_t* covered, const uint64_t* idx, size_t n,
                     uint8_t* out_flags) {
#ifdef PIGGY_SIMD_X86
  // Only AVX2 has gathers; the SSE4.2 tier takes the scalar path.
  if (ActiveTier() == Tier::kAvx2) {
    NotCoveredFlagsAvx2(covered, idx, n, out_flags);
    return;
  }
#endif
  NotCoveredFlagsScalar(covered, idx, 0, n, out_flags);
}

void NotCoveredFlagsContiguous(const uint8_t* covered_base, size_t n,
                               uint8_t* out_flags) {
#ifdef PIGGY_SIMD_X86
  switch (ActiveTier()) {
    case Tier::kAvx2:
      NotCoveredContiguousAvx2(covered_base, n, out_flags);
      return;
    case Tier::kSse42:
      NotCoveredContiguousSse42(covered_base, n, out_flags);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  NotCoveredContiguousScalar(covered_base, 0, n, out_flags);
}

void FilterUncoveredPairsInto(const uint8_t* covered, const uint32_t* p,
                              const uint32_t* c, const uint32_t* edge, size_t n,
                              std::vector<std::pair<uint32_t, uint32_t>>* out) {
#ifdef PIGGY_SIMD_X86
  if (ActiveTier() == Tier::kAvx2) {
    FilterUncoveredAvx2(covered, p, c, edge, n, out);
    return;
  }
#endif
  FilterUncoveredScalar(covered, p, c, edge, 0, n, out);
}

void SelectKeyedNewestInto(const uint32_t* keys, size_t stride_u32, size_t n,
                           std::span<const NodeId> interest, size_t k,
                           std::vector<uint32_t>* out) {
  if (n == 0 || k == 0 || interest.empty()) return;
#ifdef PIGGY_SIMD_X86
  if (ActiveTier() == Tier::kAvx2) {
    SelectKeyedAvx2(keys, stride_u32, n, interest, k, out);
    return;
  }
#endif
  size_t taken = 0;
  SelectKeyedScalar(keys, stride_u32, n, interest, k, &taken, out);
}

}  // namespace piggy::simd
