// Vectorized kernels for the three hot loops of the system, dispatched at
// runtime over the tiers in simd/dispatch.h:
//
//   - sorted-set intersection (values and positions): the CHITCHAT oracle's
//     cross-pair topology build and parallel_nosy's active-edge propagation;
//   - bitmap-filtered counting over the per-edge coverage map: the oracle's
//     instance refreshes;
//   - gather-based newest-first view merging: the serving plane's QueryBatch
//     interest filter.
//
// Contract: every kernel produces output BIT-IDENTICAL to its scalar
// reference at every tier (same elements, same order) — simd_test sweeps all
// tiers against the scalar path. Inputs marked "sorted" must be strictly
// ascending (set semantics, no duplicates), which the graph adjacency and
// interest lists guarantee.
//
// Thread safety: kernels are pure functions of their arguments (plus the
// process-wide dispatch tier) and may run concurrently from any threads on
// distinct outputs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace piggy::simd {

/// Readable bytes every coverage bitmap must keep past its logical end:
/// the AVX2 paths read coverage bytes with 4/8-byte gathers at arbitrary
/// byte indices and mask the tail, so up to 7 bytes past the last valid
/// index are touched (never interpreted). Size bitmaps num_edges + this.
inline constexpr size_t kCoveredPadding = 8;

/// Appends every value common to the sorted spans `a` and `b` to *out, in
/// ascending order. Equivalent to ForEachSortedIntersection collecting v.
/// Skewed pairs (size ratio >= kGallopIntersectRatio) gallop exactly like
/// the scalar template; similar sizes take the vectorized block merge.
void IntersectSortedInto(std::span<const NodeId> a, std::span<const NodeId> b,
                         std::vector<NodeId>* out);

/// \brief A match position pair: a[ia] == b[ib].
struct IndexPair {
  uint32_t ia;
  uint32_t ib;
};

/// Appends the (ia, ib) position pair of every common value of the sorted
/// spans `a` and `b` to *out, in ascending order of ia (equivalently of the
/// common values). Equivalent to ForEachSortedIntersection collecting
/// (ia, ib). Sizes must fit uint32_t (graph adjacency always does).
void IntersectSortedPairsInto(std::span<const NodeId> a, std::span<const NodeId> b,
                              std::vector<IndexPair>* out);

/// out_flags[i] = covered[idx[i]] ? 0 : 1 for i in [0, n) — the link-in-Z
/// refresh over scattered canonical edge indices. `covered` must have
/// kCoveredPadding readable bytes past its largest addressed index.
void NotCoveredFlags(const uint8_t* covered, const uint64_t* idx, size_t n,
                     uint8_t* out_flags);

/// out_flags[i] = covered_base[i] ? 0 : 1 for i in [0, n) — the contiguous
/// variant for consecutive canonical indices (a node's out-edge block).
void NotCoveredFlagsContiguous(const uint8_t* covered_base, size_t n,
                               uint8_t* out_flags);

/// Appends (p[i], c[i]) for every i in [0, n) with covered[edge[i]] == 0, in
/// ascending i — the coverage filter over a cached cross-pair topology
/// (struct-of-arrays). `covered` needs kCoveredPadding readable bytes past
/// its largest addressed index.
void FilterUncoveredPairsInto(const uint8_t* covered, const uint32_t* p,
                              const uint32_t* c, const uint32_t* edge, size_t n,
                              std::vector<std::pair<uint32_t, uint32_t>>* out);

/// Newest-first interest filter over one stored view (the QueryBatch inner
/// loop). `keys` points at the first 32-bit key of `n` records laid out
/// `stride_u32` 32-bit words apart (keys[i * stride_u32] is record i's key);
/// records are stored oldest-first. Appends to *out the indices of up to `k`
/// records whose key appears in the sorted span `interest`, scanning from
/// record n-1 down to 0 (so indices append in descending order). Gathers
/// read only the 4-byte key lane of in-range records; no padding required.
void SelectKeyedNewestInto(const uint32_t* keys, size_t stride_u32, size_t n,
                           std::span<const NodeId> interest, size_t k,
                           std::vector<uint32_t>* out);

}  // namespace piggy::simd
