#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace piggy::simd {

namespace {

Tier Detect() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Tier::kSse42;
#endif
  return Tier::kScalar;
}

Tier InitialTier() {
  Tier tier = Detect();
  const char* env = std::getenv("PIGGY_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Tier requested;
    if (!ParseTier(env, &requested)) {
      PIGGY_LOG(Warning) << "PIGGY_SIMD=" << env
                         << " not recognized (scalar|sse42|avx2); using "
                         << TierName(tier);
    } else if (static_cast<int>(requested) <= static_cast<int>(tier)) {
      tier = requested;
    } else {
      PIGGY_LOG(Warning) << "PIGGY_SIMD=" << env
                         << " unsupported on this CPU; clamping to "
                         << TierName(tier);
    }
  }
  return tier;
}

// Initialized on first use (thread-safe local static), then overridable.
std::atomic<int>& ActiveTierStorage() {
  static std::atomic<int> storage{static_cast<int>(InitialTier())};
  return storage;
}

}  // namespace

Tier MaxSupportedTier() {
  static const Tier tier = Detect();
  return tier;
}

Tier ActiveTier() {
  return static_cast<Tier>(ActiveTierStorage().load(std::memory_order_relaxed));
}

Tier SetTierForTest(Tier tier) {
  Tier clamped = tier;
  if (static_cast<int>(clamped) > static_cast<int>(MaxSupportedTier())) {
    clamped = MaxSupportedTier();
  }
  ActiveTierStorage().store(static_cast<int>(clamped), std::memory_order_relaxed);
  return clamped;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse42:
      return "sse42";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseTier(const std::string& name, Tier* out) {
  if (name == "scalar") {
    *out = Tier::kScalar;
  } else if (name == "sse42" || name == "sse4.2" || name == "sse") {
    *out = Tier::kSse42;
  } else if (name == "avx2" || name == "avx") {
    *out = Tier::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace piggy::simd
