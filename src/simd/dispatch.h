// Runtime CPU dispatch for the vectorized kernels in simd/kernels.h.
//
// The instruction tier is detected once at startup (cpuid via
// __builtin_cpu_supports) and cached; every kernel switches on the active
// tier per call, so the same binary runs on any x86-64 host and tests can
// pin a tier to prove bit-parity. The environment variable PIGGY_SIMD
// (scalar | sse42 | avx2) overrides detection — requesting a tier the CPU
// lacks clamps down to the best supported one.
//
// Thread safety: ActiveTier() is a relaxed atomic read after one-time
// detection; SetTierForTest may race serving threads only in the trivial
// sense that a concurrent kernel call uses either the old or the new tier —
// both produce bit-identical results by the parity contract.

#pragma once

#include <string>

namespace piggy::simd {

/// \brief Instruction tiers, ordered: higher enum value = wider vectors.
enum class Tier : int {
  kScalar = 0,  ///< portable C++ reference path
  kSse42 = 1,   ///< 128-bit integer compares (SSE4.2)
  kAvx2 = 2,    ///< 256-bit integer compares + gathers (AVX2)
};

/// Best tier this CPU supports (cpuid; independent of any override).
Tier MaxSupportedTier();

/// The tier kernels currently dispatch to: detection clamped by the
/// PIGGY_SIMD override (read once) or by SetTierForTest. Thread-safe.
Tier ActiveTier();

/// Pins the dispatch tier, clamped to MaxSupportedTier(); parity tests sweep
/// this. Returns the tier actually installed. Thread-safe.
Tier SetTierForTest(Tier tier);

/// "scalar" | "sse42" | "avx2".
const char* TierName(Tier tier);

/// Parses a tier name (the PIGGY_SIMD spellings). Returns false on unknown
/// names, leaving *out untouched.
bool ParseTier(const std::string& name, Tier* out);

}  // namespace piggy::simd
