// Mutable accumulator that produces an immutable CSR Graph.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace piggy {

/// \brief Collects edges and materializes a Graph.
///
/// Self-loops are rejected (a user implicitly sees their own events; the
/// model's views already account for that). Duplicate edges are deduplicated
/// at Build() time.
class GraphBuilder {
 public:
  /// `num_nodes` may be 0; it grows automatically to max node id + 1.
  explicit GraphBuilder(size_t num_nodes = 0) : num_nodes_(num_nodes) {}

  /// Adds edge src -> dst (dst subscribes to src). Self-loops are ignored.
  void AddEdge(NodeId src, NodeId dst);

  /// Ensures the graph has at least `n` nodes (for isolated trailing nodes).
  void EnsureNodes(size_t n);

  /// Number of staged edges (before dedup).
  size_t staged_edges() const { return edges_.size(); }

  /// Sorts, deduplicates and freezes into a Graph. The builder is consumed.
  Result<Graph> Build() &&;

 private:
  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
};

/// Convenience: builds a graph from an explicit edge list.
Result<Graph> BuildGraph(size_t num_nodes, const std::vector<Edge>& edges);

}  // namespace piggy
