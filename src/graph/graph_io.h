// Graph persistence: plain edge-list text and a compact binary format.
//
// Text format: one "src dst" pair per line; '#' starts a comment line; a
// header line "# nodes N" may pin the node count (for trailing isolated
// nodes). Binary format: magic, node count, edge count, then src/dst pairs of
// uint32 little-endian — the natural interchange format for large graphs.

#pragma once

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace piggy {

/// Writes the graph as an edge-list text file.
Status WriteEdgeListText(const Graph& g, const std::string& path);

/// Reads an edge-list text file.
Result<Graph> ReadEdgeListText(const std::string& path);

/// Writes the graph in the compact binary format.
Status WriteGraphBinary(const Graph& g, const std::string& path);

/// Reads a graph in the compact binary format.
Result<Graph> ReadGraphBinary(const std::string& path);

}  // namespace piggy
