#include "graph/graph_stats.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace piggy {

namespace {

// Local clustering of node u over the undirected projection: fraction of
// pairs of distinct undirected neighbors that are themselves connected (in
// either direction).
double LocalClustering(const Graph& g, NodeId u) {
  std::vector<NodeId> nbrs;
  auto out = g.OutNeighbors(u);
  auto in = g.InNeighbors(u);
  nbrs.reserve(out.size() + in.size());
  std::set_union(out.begin(), out.end(), in.begin(), in.end(),
                 std::back_inserter(nbrs));
  const size_t d = nbrs.size();
  if (d < 2) return 0.0;
  size_t links = 0;
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) {
      if (g.HasEdge(nbrs[i], nbrs[j]) || g.HasEdge(nbrs[j], nbrs[i])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) / (static_cast<double>(d) * (d - 1));
}

}  // namespace

std::string GraphStats::ToString() const {
  return StrFormat(
      "nodes=%s edges=%s avg_deg=%.2f max_out=%zu max_in=%zu reciprocity=%.3f "
      "clustering=%.4f hub_triangles~%s",
      WithCommas(num_nodes).c_str(), WithCommas(num_edges).c_str(), avg_degree,
      max_out_degree, max_in_degree, reciprocity, clustering,
      WithCommas(hub_triangles).c_str());
}

GraphStats ComputeGraphStats(const Graph& g, size_t clustering_samples,
                             uint64_t seed) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  if (s.num_nodes == 0) return s;
  s.avg_degree = static_cast<double>(s.num_edges) / static_cast<double>(s.num_nodes);

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(u));
    s.max_in_degree = std::max(s.max_in_degree, g.InDegree(u));
  }

  size_t reciprocal = 0;
  g.ForEachEdge([&](const Edge& e) {
    if (g.HasEdge(e.dst, e.src)) ++reciprocal;
  });
  s.reciprocity =
      s.num_edges ? static_cast<double>(reciprocal) / static_cast<double>(s.num_edges)
                  : 0.0;

  Rng rng(seed);
  const bool exact = clustering_samples == 0 || clustering_samples >= s.num_nodes;
  const size_t samples = exact ? s.num_nodes : clustering_samples;
  double sum_cc = 0;
  for (size_t i = 0; i < samples; ++i) {
    NodeId u = exact ? static_cast<NodeId>(i)
                     : static_cast<NodeId>(rng.Uniform(s.num_nodes));
    sum_cc += LocalClustering(g, u);
  }
  s.clustering = samples ? sum_cc / static_cast<double>(samples) : 0.0;

  // Estimate hub triangles by sampling hubs proportionally to node count.
  if (exact) {
    s.hub_triangles = CountHubTrianglesExact(g);
  } else {
    size_t found = 0;
    for (size_t i = 0; i < samples; ++i) {
      NodeId w = static_cast<NodeId>(rng.Uniform(s.num_nodes));
      for (NodeId x : g.InNeighbors(w)) {
        for (NodeId y : g.OutNeighbors(w)) {
          if (x != y && g.HasEdge(x, y)) ++found;
        }
      }
    }
    s.hub_triangles = static_cast<size_t>(
        static_cast<double>(found) * static_cast<double>(s.num_nodes) /
        static_cast<double>(samples));
  }
  return s;
}

std::vector<size_t> DegreeHistogramLog2(const Graph& g, bool out_direction) {
  std::vector<size_t> hist;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    size_t d = out_direction ? g.OutDegree(u) : g.InDegree(u);
    size_t bucket = 0;
    while ((2ULL << bucket) <= d) ++bucket;
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

size_t CountHubTrianglesExact(const Graph& g) {
  size_t count = 0;
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    for (NodeId x : g.InNeighbors(w)) {
      for (NodeId y : g.OutNeighbors(w)) {
        if (x != y && g.HasEdge(x, y)) ++count;
      }
    }
  }
  return count;
}

}  // namespace piggy
