#include "graph/graph.h"

#include <algorithm>
#include <vector>

namespace piggy {

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

size_t Graph::EdgeIndex(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return num_edges();
  auto nbrs = OutNeighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return num_edges();
  return out_offsets_[u] + static_cast<size_t>(it - nbrs.begin());
}

Edge Graph::EdgeAt(size_t idx) const {
  PIGGY_CHECK_LT(idx, num_edges());
  // Binary search the offsets array for the owning source node.
  auto it = std::upper_bound(out_offsets_.begin(), out_offsets_.end(), idx);
  NodeId src = static_cast<NodeId>(it - out_offsets_.begin() - 1);
  return Edge{src, out_adj_[idx]};
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  ForEachEdge([&edges](const Edge& e) { edges.push_back(e); });
  return edges;
}

}  // namespace piggy
