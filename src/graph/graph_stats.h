// Structural statistics used to validate that synthetic graphs reproduce the
// properties social piggybacking exploits (heavy-tailed degrees, triangles,
// reciprocity) and to report dataset summaries in the bench harness.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace piggy {

/// \brief Summary statistics of a digraph.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double avg_degree = 0;        ///< edges / nodes
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  double reciprocity = 0;       ///< fraction of edges with a reverse edge
  double clustering = 0;        ///< mean local clustering coefficient (undirected)
  size_t hub_triangles = 0;     ///< directed triangles x->w, w->y, x->y (sampled estimate)

  std::string ToString() const;
};

/// Computes statistics. `clustering_samples` nodes are sampled for the local
/// clustering estimate (0 = all nodes, exact); likewise for hub triangles.
GraphStats ComputeGraphStats(const Graph& g, size_t clustering_samples = 2000,
                             uint64_t seed = 42);

/// Out-degree histogram in log2 buckets (bucket i counts nodes with
/// out-degree in [2^i, 2^(i+1))); bucket 0 also counts degree 0..1.
std::vector<size_t> DegreeHistogramLog2(const Graph& g, bool out_direction);

/// Exact count of "hub wedges" x->w->y where the cross edge x->y also exists
/// (the structure piggybacking exploits). O(sum_w InDeg(w)*OutDeg(w)*log d);
/// intended for small/medium graphs and tests.
size_t CountHubTrianglesExact(const Graph& g);

}  // namespace piggy
