#include "graph/compressed_adjacency.h"

#include <algorithm>

#include "util/logging.h"

namespace piggy {

namespace {

// LEB128: 7 value bits per byte, high bit = continuation.
void AppendVarint(uint32_t v, std::vector<uint8_t>* bytes) {
  while (v >= 0x80) {
    bytes->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes->push_back(static_cast<uint8_t>(v));
}

uint32_t ReadVarint(const uint8_t* bytes, size_t* pos) {
  uint32_t v = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = bytes[*pos];
    ++*pos;
    v |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

const char* GraphLayoutName(GraphLayout layout) {
  switch (layout) {
    case GraphLayout::kFlatCsr:
      return "flat";
    case GraphLayout::kCompressed:
      return "compressed";
  }
  return "unknown";
}

bool ParseGraphLayout(const std::string& name, GraphLayout* out) {
  if (name == "flat" || name == "flat-csr" || name == "csr") {
    *out = GraphLayout::kFlatCsr;
  } else if (name == "compressed" || name == "varint") {
    *out = GraphLayout::kCompressed;
  } else {
    return false;
  }
  return true;
}

CompressedLists CompressedLists::FromLists(
    const std::vector<std::vector<NodeId>>& lists) {
  CompressedLists out;
  out.meta_.reserve(lists.size() + 1);
  for (const std::vector<NodeId>& list : lists) {
    const uint64_t list_base = out.bytes_.size();
    out.meta_.push_back({list_base, static_cast<uint32_t>(out.skips_.size()),
                         static_cast<uint32_t>(list.size())});
    for (size_t k = 0; k < list.size(); ++k) {
      if (k > 0) {
        PIGGY_CHECK_LT(list[k - 1], list[k]) << "lists must be strictly ascending";
      }
      if (k % kBlockEntries == 0) {
        const uint64_t block_offset = out.bytes_.size() - list_base;
        PIGGY_CHECK_LE(block_offset, UINT32_MAX);
        out.skips_.push_back({list[k], static_cast<uint32_t>(block_offset)});
        AppendVarint(list[k], &out.bytes_);
      } else {
        AppendVarint(list[k] - list[k - 1] - 1, &out.bytes_);
      }
    }
    out.total_entries_ += list.size();
  }
  out.meta_.push_back(
      {out.bytes_.size(), static_cast<uint32_t>(out.skips_.size()), 0});
  return out;
}

void CompressedLists::DecodeInto(size_t i, std::vector<NodeId>* out) const {
  out->clear();
  const ListMeta& m = meta_[i];
  const size_t n = m.size;
  out->reserve(n);
  const uint8_t* base = bytes_.data() + m.byte_offset;
  size_t pos = 0;
  NodeId prev = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t raw = ReadVarint(base, &pos);
    // Block leaders are absolute; later entries are (delta - 1).
    prev = (k % kBlockEntries == 0) ? raw : prev + raw + 1;
    out->push_back(prev);
  }
}

bool CompressedLists::Contains(size_t i, NodeId v) const {
  const ListMeta& m = meta_[i];
  const size_t n = m.size;
  if (n == 0) return false;
  const SkipEntry* skip_begin = skips_.data() + m.skip_offset;
  const SkipEntry* skip_end = skips_.data() + meta_[i + 1].skip_offset;
  // Last block whose first value <= v.
  const SkipEntry* block = std::upper_bound(
      skip_begin, skip_end, v,
      [](NodeId value, const SkipEntry& s) { return value < s.first_value; });
  if (block == skip_begin) return false;  // v precedes the first value
  --block;
  const size_t block_idx = static_cast<size_t>(block - skip_begin);
  const size_t entries =
      std::min(kBlockEntries, n - block_idx * kBlockEntries);
  const uint8_t* base = bytes_.data() + m.byte_offset;
  size_t pos = block->byte_offset;
  NodeId value = ReadVarint(base, &pos);
  if (value == v) return true;
  for (size_t k = 1; k < entries; ++k) {
    value += ReadVarint(base, &pos) + 1;
    if (value >= v) return value == v;
  }
  return false;
}

size_t CompressedLists::TotalBytes() const {
  return bytes_.size() + skips_.size() * sizeof(SkipEntry) +
         meta_.size() * sizeof(ListMeta);
}

double CompressedLists::BytesPerEntry() const {
  return total_entries_ == 0
             ? 0.0
             : static_cast<double>(TotalBytes()) / static_cast<double>(total_entries_);
}

}  // namespace piggy
