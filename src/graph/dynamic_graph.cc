#include "graph/dynamic_graph.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace piggy {

DynamicGraph::DynamicGraph(const Graph& g) : DynamicGraph(g.num_nodes()) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    out_[u].assign(nbrs.begin(), nbrs.end());
    auto preds = g.InNeighbors(u);
    in_[u].assign(preds.begin(), preds.end());
  }
  num_edges_ = g.num_edges();
}

NodeId DynamicGraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void DynamicGraph::EnsureNodes(size_t n) {
  if (n > out_.size()) {
    out_.resize(n);
    in_.resize(n);
  }
}

bool DynamicGraph::SortedInsert(std::vector<NodeId>& v, NodeId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

bool DynamicGraph::SortedErase(std::vector<NodeId>& v, NodeId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

bool DynamicGraph::AddEdge(NodeId u, NodeId v) {
  if (u == v) return false;
  PIGGY_CHECK_LT(u, out_.size());
  PIGGY_CHECK_LT(v, out_.size());
  if (!SortedInsert(out_[u], v)) return false;
  SortedInsert(in_[v], u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::RemoveEdge(NodeId u, NodeId v) {
  if (u >= out_.size() || v >= out_.size()) return false;
  if (!SortedErase(out_[u], v)) return false;
  SortedErase(in_[v], u);
  --num_edges_;
  return true;
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= out_.size() || v >= out_.size()) return false;
  return std::binary_search(out_[u].begin(), out_[u].end(), v);
}

Result<Graph> DynamicGraph::Snapshot() const {
  GraphBuilder builder(num_nodes());
  ForEachEdge([&builder](const Edge& e) { builder.AddEdge(e.src, e.dst); });
  builder.EnsureNodes(num_nodes());
  return std::move(builder).Build();
}

}  // namespace piggy
