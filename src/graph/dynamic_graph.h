// Mutable adjacency-set digraph supporting edge insertion and removal.
//
// Used by the incremental schedule maintainer (Sec. 3.3 of the paper) and by
// the generators while a graph is under construction. Neighbor sets are kept
// sorted so iteration order is deterministic. Snapshot() freezes the current
// state into an immutable CSR Graph.

#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/status.h"

namespace piggy {

/// \brief Mutable digraph with sorted adjacency vectors per node.
class DynamicGraph {
 public:
  explicit DynamicGraph(size_t num_nodes = 0) : out_(num_nodes), in_(num_nodes) {}

  /// Builds a mutable copy of an immutable graph.
  explicit DynamicGraph(const Graph& g);

  size_t num_nodes() const { return out_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Appends a new node; returns its id.
  NodeId AddNode();

  /// Grows to at least `n` nodes.
  void EnsureNodes(size_t n);

  /// Inserts edge u -> v; returns true if newly inserted. Self-loops are
  /// ignored (returns false). Node ids must be < num_nodes().
  bool AddEdge(NodeId u, NodeId v);

  /// Removes edge u -> v; returns true if it was present.
  bool RemoveEdge(NodeId u, NodeId v);

  /// True iff edge u -> v exists. O(log d).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Consumers of u (sorted ascending).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    PIGGY_CHECK_LT(u, out_.size());
    return out_[u];
  }

  /// Producers v follows (sorted ascending).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    PIGGY_CHECK_LT(v, in_.size());
    return in_[v];
  }

  size_t OutDegree(NodeId u) const { return OutNeighbors(u).size(); }
  size_t InDegree(NodeId v) const { return InNeighbors(v).size(); }

  /// Calls fn(Edge) for each edge in canonical (src-major) order.
  template <typename F>
  void ForEachEdge(F fn) const {
    for (NodeId u = 0; u < out_.size(); ++u) {
      for (NodeId v : out_[u]) fn(Edge{u, v});
    }
  }

  /// Freezes into an immutable CSR snapshot.
  Result<Graph> Snapshot() const;

 private:
  static bool SortedInsert(std::vector<NodeId>& v, NodeId x);
  static bool SortedErase(std::vector<NodeId>& v, NodeId x);

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  size_t num_edges_ = 0;
};

}  // namespace piggy
