#include "graph/graph_io.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace piggy {

namespace {
constexpr uint64_t kBinaryMagic = 0x5047474950ULL;  // "PIGGP"
}  // namespace

Status WriteEdgeListText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# nodes " << g.num_nodes() << "\n";
  g.ForEachEdge([&out](const Edge& e) { out << e.src << ' ' << e.dst << '\n'; });
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      if (StartsWith(trimmed, "# nodes ")) {
        uint64_t n = 0;
        if (std::sscanf(std::string(trimmed).c_str(), "# nodes %lu", &n) == 1) {
          builder.EnsureNodes(n);
        }
      }
      continue;
    }
    uint64_t src = 0, dst = 0;
    std::istringstream fields{std::string(trimmed)};
    if (!(fields >> src >> dst)) {
      return Status::IOError(
          StrFormat("%s:%zu: malformed edge line", path.c_str(), line_no));
    }
    if (src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::OutOfRange(
          StrFormat("%s:%zu: node id exceeds 32 bits", path.c_str(), line_no));
    }
    builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst));
  }
  return std::move(builder).Build();
}

Status WriteGraphBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  uint64_t header[3] = {kBinaryMagic, g.num_nodes(), g.num_edges()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  g.ForEachEdge([&out](const Edge& e) {
    uint32_t pair[2] = {e.src, e.dst};
    out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
  });
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  uint64_t header[3] = {0, 0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] != kBinaryMagic) {
    return Status::IOError("bad magic in " + path);
  }
  GraphBuilder builder(header[1]);
  builder.EnsureNodes(header[1]);
  for (uint64_t i = 0; i < header[2]; ++i) {
    uint32_t pair[2];
    in.read(reinterpret_cast<char*>(pair), sizeof(pair));
    if (!in) return Status::IOError("truncated edge section in " + path);
    builder.AddEdge(pair[0], pair[1]);
  }
  return std::move(builder).Build();
}

}  // namespace piggy
