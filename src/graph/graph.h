// Immutable directed social graph in CSR (compressed sparse row) form.
//
// Semantics follow the paper: an edge u -> v means "user v subscribes to the
// events produced by u" (v follows u). u is the producer, v the consumer.
// Both out-adjacency (consumers of u) and in-adjacency (producers u follows)
// are materialized with sorted neighbor lists, giving O(log d) HasEdge and
// cache-friendly scans — the access pattern the scheduling algorithms need.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace piggy {

/// Node identifier; nodes are dense [0, num_nodes).
using NodeId = uint32_t;

/// A directed edge (producer -> consumer).
struct Edge {
  NodeId src;
  NodeId dst;

  bool operator==(const Edge&) const = default;
  bool operator<(const Edge& o) const {
    return src != o.src ? src < o.src : dst < o.dst;
  }
};

/// Packs an edge into the 64-bit key used by U64Set / U64Map.
inline uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}
inline uint64_t EdgeKey(const Edge& e) { return EdgeKey(e.src, e.dst); }

/// Unpacks an edge key.
inline Edge EdgeFromKey(uint64_t key) {
  return Edge{static_cast<NodeId>(key >> 32), static_cast<NodeId>(key & 0xffffffffu)};
}

/// Size ratio at which ForEachSortedIntersection switches from the linear
/// two-pointer merge to galloping (exponential probe + binary search) through
/// the larger span. The merge has better constants on similar-size lists; a
/// skewed pair — a celebrity's follower list against a small consumer prefix —
/// wants the O(|small| log |large|) gallop instead.
inline constexpr size_t kGallopIntersectRatio = 16;

namespace internal {

// Invokes an intersection callback that returns either void or bool
// (false = stop the scan); normalizes both to "keep going?".
template <typename F>
inline bool CallIntersect(F& fn, NodeId v, size_t ia, size_t ib) {
  if constexpr (std::is_void_v<std::invoke_result_t<F&, NodeId, size_t, size_t>>) {
    fn(v, ia, ib);
    return true;
  } else {
    return fn(v, ia, ib);
  }
}

}  // namespace internal

/// Intersects two sorted ascending spans, calling fn(v, ia, ib) for every
/// common value v = a[ia] = b[ib] in ascending order. fn may return void, or
/// bool where false stops the scan early. Spans of similar size use a linear
/// two-pointer merge; once the sizes differ by kGallopIntersectRatio or more
/// the scan gallops through the larger side, which is what makes
/// common-predecessor scans against heavy-tailed adjacency cheap.
template <typename F>
void ForEachSortedIntersection(std::span<const NodeId> a, std::span<const NodeId> b,
                               F&& fn) {
  if (a.empty() || b.empty()) return;
  if (a.size() >= kGallopIntersectRatio * b.size() ||
      b.size() >= kGallopIntersectRatio * a.size()) {
    const bool a_is_small = a.size() <= b.size();
    const std::span<const NodeId> small = a_is_small ? a : b;
    const std::span<const NodeId> large = a_is_small ? b : a;
    size_t lo = 0;
    for (size_t i = 0; i < small.size() && lo < large.size(); ++i) {
      const NodeId x = small[i];
      // Exponential probe: after the loop, the first element >= x (if any)
      // lies in large[lo, lo + bound + 1).
      size_t bound = 1;
      while (lo + bound < large.size() && large[lo + bound] < x) bound <<= 1;
      const size_t hi = std::min(lo + bound + 1, large.size());
      lo = static_cast<size_t>(
          std::lower_bound(large.data() + lo, large.data() + hi, x) - large.data());
      if (lo < large.size() && large[lo] == x) {
        if (!internal::CallIntersect(fn, x, a_is_small ? i : lo, a_is_small ? lo : i)) {
          return;
        }
        ++lo;
      }
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      if (!internal::CallIntersect(fn, a[i], i, j)) return;
      ++i;
      ++j;
    }
  }
}

class GraphBuilder;

/// \brief Immutable CSR digraph. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes (ids are dense in [0, num_nodes())).
  size_t num_nodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }

  /// Number of directed edges.
  size_t num_edges() const { return out_adj_.size(); }

  /// Consumers of u: all v with u -> v in E, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    CheckNode(u);
    return {out_adj_.data() + out_offsets_[u],
            out_adj_.data() + out_offsets_[u + 1]};
  }

  /// Producers v follows: all u with u -> v in E, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    CheckNode(v);
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }

  /// Out-degree of u (number of followers / consumers of u).
  size_t OutDegree(NodeId u) const {
    CheckNode(u);
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  /// In-degree of v (number of users v follows / producers of v).
  size_t InDegree(NodeId v) const {
    CheckNode(v);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// True iff the edge u -> v exists. O(log OutDegree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Index of edge u -> v in the canonical (src-major, dst-ascending) edge
  /// order, or num_edges() if absent. Used to key per-edge bitmaps.
  size_t EdgeIndex(NodeId u, NodeId v) const;

  /// Canonical index of the edge behind OutNeighbors(u)[k]; O(1). The caller
  /// already knowing a neighbor's position makes this the allocation- and
  /// search-free way to key per-edge bitmaps on hot paths.
  size_t OutEdgeCanonicalIndex(NodeId u, size_t k) const {
    CheckNode(u);
    return out_offsets_[u] + k;
  }

  /// Canonical index of the edge behind InNeighbors(v)[k]; O(1) via the
  /// materialized in-to-canonical mapping.
  size_t InEdgeCanonicalIndex(NodeId v, size_t k) const {
    CheckNode(v);
    return in_edge_index_[in_offsets_[v] + k];
  }

  /// Canonical indices of all edges behind InNeighbors(v), parallel to that
  /// span — the bulk form of InEdgeCanonicalIndex for vectorized refreshes.
  std::span<const uint64_t> InEdgeCanonicalIndices(NodeId v) const {
    CheckNode(v);
    return {in_edge_index_.data() + in_offsets_[v],
            in_edge_index_.data() + in_offsets_[v + 1]};
  }

  /// The idx-th edge in canonical order; idx < num_edges().
  Edge EdgeAt(size_t idx) const;

  /// Calls fn(Edge) for each edge in canonical order.
  template <typename F>
  void ForEachEdge(F fn) const {
    for (NodeId u = 0; u < num_nodes(); ++u) {
      for (uint64_t i = out_offsets_[u]; i < out_offsets_[u + 1]; ++i) {
        fn(Edge{u, out_adj_[i]});
      }
    }
  }

  /// All edges in canonical order.
  std::vector<Edge> Edges() const;

 private:
  friend class GraphBuilder;

  void CheckNode(NodeId n) const { PIGGY_CHECK_LT(n, num_nodes()); }

  // CSR arrays. out_offsets_ has num_nodes()+1 entries; out_adj_ holds sorted
  // destination ids. Likewise for the in-direction. in_edge_index_ maps each
  // in_adj_ position to the edge's canonical (out-CSR) index.
  std::vector<uint64_t> out_offsets_;
  std::vector<NodeId> out_adj_;
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_adj_;
  std::vector<uint64_t> in_edge_index_;
};

}  // namespace piggy
