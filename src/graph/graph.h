// Immutable directed social graph in CSR (compressed sparse row) form.
//
// Semantics follow the paper: an edge u -> v means "user v subscribes to the
// events produced by u" (v follows u). u is the producer, v the consumer.
// Both out-adjacency (consumers of u) and in-adjacency (producers u follows)
// are materialized with sorted neighbor lists, giving O(log d) HasEdge and
// cache-friendly scans — the access pattern the scheduling algorithms need.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace piggy {

/// Node identifier; nodes are dense [0, num_nodes).
using NodeId = uint32_t;

/// A directed edge (producer -> consumer).
struct Edge {
  NodeId src;
  NodeId dst;

  bool operator==(const Edge&) const = default;
  bool operator<(const Edge& o) const {
    return src != o.src ? src < o.src : dst < o.dst;
  }
};

/// Packs an edge into the 64-bit key used by U64Set / U64Map.
inline uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}
inline uint64_t EdgeKey(const Edge& e) { return EdgeKey(e.src, e.dst); }

/// Unpacks an edge key.
inline Edge EdgeFromKey(uint64_t key) {
  return Edge{static_cast<NodeId>(key >> 32), static_cast<NodeId>(key & 0xffffffffu)};
}

class GraphBuilder;

/// \brief Immutable CSR digraph. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes (ids are dense in [0, num_nodes())).
  size_t num_nodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }

  /// Number of directed edges.
  size_t num_edges() const { return out_adj_.size(); }

  /// Consumers of u: all v with u -> v in E, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    CheckNode(u);
    return {out_adj_.data() + out_offsets_[u],
            out_adj_.data() + out_offsets_[u + 1]};
  }

  /// Producers v follows: all u with u -> v in E, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    CheckNode(v);
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }

  /// Out-degree of u (number of followers / consumers of u).
  size_t OutDegree(NodeId u) const {
    CheckNode(u);
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  /// In-degree of v (number of users v follows / producers of v).
  size_t InDegree(NodeId v) const {
    CheckNode(v);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// True iff the edge u -> v exists. O(log OutDegree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Index of edge u -> v in the canonical (src-major, dst-ascending) edge
  /// order, or num_edges() if absent. Used to key per-edge bitmaps.
  size_t EdgeIndex(NodeId u, NodeId v) const;

  /// The idx-th edge in canonical order; idx < num_edges().
  Edge EdgeAt(size_t idx) const;

  /// Calls fn(Edge) for each edge in canonical order.
  template <typename F>
  void ForEachEdge(F fn) const {
    for (NodeId u = 0; u < num_nodes(); ++u) {
      for (uint64_t i = out_offsets_[u]; i < out_offsets_[u + 1]; ++i) {
        fn(Edge{u, out_adj_[i]});
      }
    }
  }

  /// All edges in canonical order.
  std::vector<Edge> Edges() const;

 private:
  friend class GraphBuilder;

  void CheckNode(NodeId n) const { PIGGY_CHECK_LT(n, num_nodes()); }

  // CSR arrays. out_offsets_ has num_nodes()+1 entries; out_adj_ holds sorted
  // destination ids. Likewise for the in-direction.
  std::vector<uint64_t> out_offsets_;
  std::vector<NodeId> out_adj_;
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_adj_;
};

}  // namespace piggy
