#include "graph/graph_builder.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace piggy {

void GraphBuilder::AddEdge(NodeId src, NodeId dst) {
  if (src == dst) return;
  edges_.push_back(Edge{src, dst});
  size_t needed = static_cast<size_t>(std::max(src, dst)) + 1;
  if (needed > num_nodes_) num_nodes_ = needed;
}

void GraphBuilder::EnsureNodes(size_t n) {
  if (n > num_nodes_) num_nodes_ = n;
}

Result<Graph> GraphBuilder::Build() && {
  constexpr size_t kMaxNodes = 1ULL << 32;
  if (num_nodes_ > kMaxNodes) {
    return Status::InvalidArgument(
        StrFormat("too many nodes: %zu (NodeId is 32-bit)", num_nodes_));
  }

  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  const size_t n = num_nodes_;
  const size_t m = edges_.size();

  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  g.out_adj_.resize(m);
  g.in_adj_.resize(m);

  for (const Edge& e : edges_) {
    ++g.out_offsets_[e.src + 1];
    ++g.in_offsets_[e.dst + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }

  // Edges are sorted src-major dst-ascending, so the out-CSR fills in order.
  {
    std::vector<uint64_t> cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
    for (const Edge& e : edges_) g.out_adj_[cursor[e.src]++] = e.dst;
  }
  // For the in-direction the same pass yields per-destination lists whose
  // sources arrive in ascending order (edges_ is sorted by src first). The
  // loop index is the edge's canonical (out-CSR) position, recorded so
  // in-side scans can key per-edge bitmaps without a binary search.
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    g.in_edge_index_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      const Edge& e = edges_[i];
      g.in_adj_[cursor[e.dst]] = e.src;
      g.in_edge_index_[cursor[e.dst]] = i;
      ++cursor[e.dst];
    }
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

Result<Graph> BuildGraph(size_t num_nodes, const std::vector<Edge>& edges) {
  GraphBuilder builder(num_nodes);
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst);
  builder.EnsureNodes(num_nodes);
  return std::move(builder).Build();
}

}  // namespace piggy
