// Delta-varint-compressed sorted adjacency lists with per-block skip
// pointers — the memory-compact layout for million-user serving planes.
//
// Each list of strictly ascending 32-bit ids is encoded as LEB128 varints:
// the first value raw, every later one as (delta - 1), since deltas of a
// strict set are >= 1. Every kBlockEntries-th value starts a block whose
// (first value, byte offset) lands in a skip table, so point lookups gallop:
// binary-search the skip table, then decode at most one block. Power-law
// adjacency (mostly small deltas) lands well under 2 bytes/entry vs the flat
// layout's fixed 4.
//
// Selected by GraphLayout on the serving plane (see PrototypeOptions);
// planners keep the flat CSR Graph — compression pays where lists are cold
// (per-user interest sets), not where kernels stream them.
//
// Thread safety: immutable after construction; all accessors are const and
// safe to call concurrently.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace piggy {

/// \brief Adjacency storage layout of a serving plane.
enum class GraphLayout {
  kFlatCsr = 0,     ///< one flat sorted uint32 array per list (4 bytes/entry)
  kCompressed = 1,  ///< delta-varint blocks + skip pointers (this header)
};

/// "flat" | "compressed".
const char* GraphLayoutName(GraphLayout layout);

/// Parses a layout name ("flat" | "compressed"). Returns false on unknown
/// names, leaving *out untouched.
bool ParseGraphLayout(const std::string& name, GraphLayout* out);

/// \brief An immutable set of compressed sorted id lists.
class CompressedLists {
 public:
  /// Values per skip block. 64 balances skip-table overhead (8 bytes per
  /// block) against worst-case point-lookup decode work.
  static constexpr size_t kBlockEntries = 64;

  CompressedLists() = default;

  /// Encodes `lists`; every list must be strictly ascending (checked).
  static CompressedLists FromLists(const std::vector<std::vector<NodeId>>& lists);

  size_t num_lists() const { return meta_.empty() ? 0 : meta_.size() - 1; }

  /// Entry count of list i.
  size_t ListSize(size_t i) const { return meta_[i].size; }

  /// Decodes list i into *out (cleared first), ascending.
  void DecodeInto(size_t i, std::vector<NodeId>* out) const;

  /// Point lookup in list i: skip-table gallop + one block decode,
  /// O(log(blocks) + kBlockEntries).
  bool Contains(size_t i, NodeId v) const;

  /// Total compressed footprint: payload bytes + skip tables + offsets.
  size_t TotalBytes() const;

  /// Total entries across lists.
  size_t TotalEntries() const { return total_entries_; }

  /// TotalBytes() / TotalEntries() (0 when empty).
  double BytesPerEntry() const;

 private:
  struct SkipEntry {
    NodeId first_value;    ///< first value of the block
    uint32_t byte_offset;  ///< offset of the block within the list's bytes
  };

  // Per-list metadata lives in ONE struct so a point access touches one
  // cache line, not three parallel arrays — at millions of cold lists the
  // metadata misses would otherwise rival the decode itself. One sentinel
  // entry past the end carries the terminating offsets.
  struct ListMeta {
    uint64_t byte_offset;  ///< into bytes_
    uint32_t skip_offset;  ///< into skips_
    uint32_t size;         ///< entries in the list (sentinel: 0)
  };

  std::vector<ListMeta> meta_;    ///< per list, +1 sentinel
  std::vector<uint8_t> bytes_;    ///< varint payload
  std::vector<SkipEntry> skips_;  ///< per-block skip pointers
  size_t total_entries_ = 0;
};

}  // namespace piggy
