#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "graph/dynamic_graph.h"
#include "util/alias_table.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace piggy {

const char* ToString(ScenarioOpKind kind) {
  switch (kind) {
    case ScenarioOpKind::kShare: return "share";
    case ScenarioOpKind::kQuery: return "query";
    case ScenarioOpKind::kFollow: return "follow";
    case ScenarioOpKind::kUnfollow: return "unfollow";
    case ScenarioOpKind::kRateShift: return "rate-shift";
    case ScenarioOpKind::kShardFail: return "shard-fail";
    case ScenarioOpKind::kShardRestart: return "shard-restart";
  }
  return "?";
}

std::string ScenarioOp::ToString() const {
  if (kind == ScenarioOpKind::kFollow || kind == ScenarioOpKind::kUnfollow) {
    return StrFormat("t=%.3f e=%u %s %u->%u", time, epoch,
                     piggy::ToString(kind), producer, user);
  }
  if (kind == ScenarioOpKind::kShardFail ||
      kind == ScenarioOpKind::kShardRestart) {
    return StrFormat("t=%.3f e=%u %s shard=%u", time, epoch,
                     piggy::ToString(kind), user);
  }
  return StrFormat("t=%.3f e=%u %s u=%u", time, epoch, piggy::ToString(kind),
                   user);
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Factories parameterize the shared emitter with per-epoch CustomEpoch specs
// (ground-truth rates + churn ops, sorted by time at construction).
using EpochSpec = CustomEpoch;

/// The one concrete emitter behind every registered scenario: factories only
/// differ in how they derive the per-epoch specs, so stream semantics —
/// request sampling, epoch proportionality, churn/request merging, rate-shift
/// markers, determinism — are uniform by construction.
class EpochScenario final : public Scenario {
 public:
  EpochScenario(ScenarioInfo info, const Graph& graph, Workload base,
                ScenarioOptions options, std::vector<EpochSpec> epochs)
      : info_(std::move(info)),
        graph_(graph),
        base_(std::move(base)),
        options_(options),
        epochs_(std::move(epochs)),
        rng_(options.seed) {
    PIGGY_CHECK(!epochs_.empty());
    epoch_len_ = options_.duration / static_cast<double>(epochs_.size());
    // Requests per epoch, proportional to the epoch's total rate (epochs are
    // equal-length, so lengths cancel). Cumulative rounding keeps the total
    // exactly num_requests.
    std::vector<double> weight(epochs_.size());
    double total_weight = 0;
    for (size_t e = 0; e < epochs_.size(); ++e) {
      weight[e] = epochs_[e].workload->TotalProduction() +
                  epochs_[e].workload->TotalConsumption();
      total_weight += weight[e];
    }
    req_counts_.assign(epochs_.size(), 0);
    if (total_weight > 0) {
      double cum = 0;
      size_t assigned = 0;
      for (size_t e = 0; e < epochs_.size(); ++e) {
        cum += weight[e];
        const size_t upto = static_cast<size_t>(std::llround(
            static_cast<double>(options_.num_requests) * cum / total_weight));
        req_counts_[e] = upto - assigned;
        assigned = upto;
      }
    }
    Reset();
  }

  const ScenarioInfo& info() const override { return info_; }
  const Graph& graph() const override { return graph_; }
  const Workload& base_workload() const override { return base_; }
  size_t num_epochs() const override { return epochs_.size(); }
  double duration() const override { return options_.duration; }

  const Workload& EpochWorkload(size_t epoch) const override {
    PIGGY_CHECK_LT(epoch, epochs_.size());
    return *epochs_[epoch].workload;
  }

  bool Next(ScenarioOp* op) override {
    while (epoch_ < epochs_.size()) {
      const EpochSpec& spec = epochs_[epoch_];
      if (!opened_) {
        opened_ = true;
        const bool shifted =
            epoch_ > 0 && spec.workload != epochs_[epoch_ - 1].workload;
        if (epoch_ == 0 || shifted) LoadSamplers(*spec.workload);
        if (shifted) {
          *op = ScenarioOp{EpochStart(epoch_), ScenarioOpKind::kRateShift, 0, 0,
                           static_cast<uint32_t>(epoch_)};
          clock_.AdvanceTo(op->time);
          return true;
        }
      }
      const double next_request =
          req_i_ < req_counts_[epoch_]
              ? EpochStart(epoch_) + epoch_len_ *
                                         (static_cast<double>(req_i_) + 0.5) /
                                         static_cast<double>(req_counts_[epoch_])
              : kInf;
      const double next_churn =
          churn_i_ < spec.churn.size() ? spec.churn[churn_i_].time : kInf;
      if (next_churn <= next_request && next_churn != kInf) {
        *op = spec.churn[churn_i_++];
        clock_.AdvanceTo(op->time);
        return true;
      }
      if (next_request != kInf) {
        ++req_i_;
        op->time = next_request;
        op->epoch = static_cast<uint32_t>(epoch_);
        op->producer = 0;
        SampleRequest(op);
        clock_.AdvanceTo(op->time);
        return true;
      }
      ++epoch_;
      opened_ = false;
      churn_i_ = 0;
      req_i_ = 0;
    }
    return false;
  }

  void Reset() override {
    epoch_ = 0;
    opened_ = false;
    churn_i_ = 0;
    req_i_ = 0;
    clock_.Reset();
    rng_ = Rng(options_.seed);
    share_sampler_.reset();
    query_sampler_.reset();
  }

 private:
  // Rebuilds the alias tables for the rates now in effect. Deterministic and
  // RNG-free, so splitting a stationary run across epochs cannot perturb the
  // request stream (the parity with RunWorkloadDriver depends on this).
  void LoadSamplers(const Workload& w) {
    const double total_p = w.TotalProduction();
    const double total_c = w.TotalConsumption();
    share_sampler_.reset();
    query_sampler_.reset();
    if (total_p > 0) share_sampler_.emplace(w.production);
    if (total_c > 0) query_sampler_.emplace(w.consumption);
    p_share_ = total_p + total_c > 0 ? total_p / (total_p + total_c) : 0;
  }

  // Exactly RunWorkloadDriver's draw order: one Bernoulli, then one alias
  // sample. Zero-rate sides skip their (unbuildable) table without consuming
  // extra randomness from the other side's stream.
  void SampleRequest(ScenarioOp* op) {
    if (share_sampler_.has_value() &&
        (!query_sampler_.has_value() || rng_.Bernoulli(p_share_))) {
      op->kind = ScenarioOpKind::kShare;
      op->user = share_sampler_->Sample(rng_);
    } else {
      PIGGY_CHECK(query_sampler_.has_value());
      op->kind = ScenarioOpKind::kQuery;
      op->user = query_sampler_->Sample(rng_);
    }
  }

  ScenarioInfo info_;
  Graph graph_;
  Workload base_;
  ScenarioOptions options_;
  std::vector<EpochSpec> epochs_;
  std::vector<size_t> req_counts_;
  double epoch_len_ = 0;

  // Emission state (rewound by Reset).
  SimClock clock_;
  size_t epoch_ = 0;
  bool opened_ = false;
  size_t churn_i_ = 0;
  size_t req_i_ = 0;
  Rng rng_;
  std::optional<AliasTable> share_sampler_;
  std::optional<AliasTable> query_sampler_;
  double p_share_ = 0;
};

// ---------------------------------------------------------------------------
// Scenario factories. Each derives per-epoch workloads (shared when
// unchanged, so rate-shift markers fire only on real shifts) and churn ops
// from (graph, base workload, options), using an RNG stream independent from
// the request sampler's.
// ---------------------------------------------------------------------------

using WorkloadPtr = std::shared_ptr<const Workload>;

Rng ChurnRng(const ScenarioOptions& options) {
  // Independent from the request sampler's Rng(seed) stream: churn placement
  // must not perturb request sampling (or stationary parity would break).
  return Rng(Mix64(options.seed ^ 0xc4a81e5ce7a11ULL));
}

/// Spreads `ops` churn ops evenly across epochs [first, last), stamping times
/// and epoch indexes. `make` fills user/producer for the i-th op (returns
/// false to skip it). Epoch quotas come from one cumulative split, so times
/// always lie inside the op's own epoch.
void ScheduleChurn(std::vector<EpochSpec>& epochs, size_t first, size_t last,
                   double duration, size_t ops,
                   const std::function<bool(size_t, ScenarioOp*)>& make) {
  if (ops == 0 || first >= last) return;
  const size_t window = last - first;
  const double epoch_len = duration / static_cast<double>(epochs.size());
  size_t emitted = 0;
  for (size_t w = 0; w < window; ++w) {
    const size_t upto = (w + 1) * ops / window;
    const size_t count = upto - emitted;
    const size_t e = first + w;
    for (size_t j = 0; j < count; ++j) {
      ScenarioOp op;
      op.epoch = static_cast<uint32_t>(e);
      if (!make(emitted + j, &op)) continue;
      op.time = epoch_len * (static_cast<double>(e) +
                             (static_cast<double>(j) + 0.5) /
                                 static_cast<double>(count));
      epochs[e].churn.push_back(op);
    }
    emitted = upto;
  }
}

std::vector<EpochSpec> StationaryEpochs(const Workload& base,
                                        const ScenarioOptions& options) {
  auto shared = std::make_shared<const Workload>(base);
  std::vector<EpochSpec> epochs(std::max<size_t>(options.epochs, 1));
  for (EpochSpec& e : epochs) e.workload = shared;
  return epochs;
}

Result<std::unique_ptr<Scenario>> MakeStationary(const Graph& g, Workload base,
                                                 const ScenarioOptions& options) {
  std::vector<EpochSpec> epochs = StationaryEpochs(base, options);
  return std::unique_ptr<Scenario>(new EpochScenario(
      {"stationary", "fixed rates, no churn (the paper's evaluation regime)"},
      g, std::move(base), options, std::move(epochs)));
}

Result<std::unique_ptr<Scenario>> MakeDiurnal(const Graph& g, Workload base,
                                              const ScenarioOptions& options) {
  const size_t num_epochs = std::max<size_t>(options.epochs, 1);
  const double amplitude =
      std::clamp(1.0 - 1.0 / std::max(options.intensity, 1.0), 0.0, 0.95);
  const double cycles = 2.0;
  std::vector<EpochSpec> epochs(num_epochs);
  for (size_t e = 0; e < num_epochs; ++e) {
    auto w = std::make_shared<Workload>(base);
    for (size_t u = 0; u < base.num_users(); ++u) {
      const double phase = 2.0 * M_PI *
                           (cycles * static_cast<double>(e) /
                                static_cast<double>(num_epochs) +
                            static_cast<double>(u % 3) / 3.0);
      const double m = 1.0 + amplitude * std::sin(phase);
      w->production[u] *= m;
      w->consumption[u] *= m;
    }
    epochs[e].workload = std::move(w);
  }
  return std::unique_ptr<Scenario>(new EpochScenario(
      {"diurnal",
       "three phase-shifted regional cohorts on a two-cycle sinusoid"},
      g, std::move(base), options, std::move(epochs)));
}

Result<std::unique_ptr<Scenario>> MakeFlashCrowd(const Graph& g, Workload base,
                                                 const ScenarioOptions& options) {
  const size_t n = g.num_nodes();
  const size_t num_epochs = std::max<size_t>(options.epochs, 4);
  // Hot set: the highest-fanout producers (1 per 200 users, at least one).
  std::vector<NodeId> by_fanout(n);
  for (NodeId u = 0; u < n; ++u) by_fanout[u] = u;
  std::sort(by_fanout.begin(), by_fanout.end(), [&](NodeId a, NodeId b) {
    return g.OutDegree(a) != g.OutDegree(b) ? g.OutDegree(a) > g.OutDegree(b)
                                            : a < b;
  });
  const size_t hot_count = std::max<size_t>(1, n / 200);
  std::vector<bool> hot(n, false), audience(n, false);
  for (size_t i = 0; i < hot_count && i < n; ++i) {
    const NodeId h = by_fanout[i];
    hot[h] = true;
    for (NodeId v : g.OutNeighbors(h)) audience[v] = true;
  }

  const size_t start = num_epochs * 5 / 16;
  const size_t end = std::max(start + 2, num_epochs * 9 / 16);
  auto quiet = std::make_shared<const Workload>(base);
  std::vector<EpochSpec> epochs(num_epochs);
  for (size_t e = 0; e < num_epochs; ++e) {
    if (e < start || e >= end) {
      epochs[e].workload = quiet;
      continue;
    }
    // Spike hits at `start` and decays linearly back to baseline.
    const double progress = static_cast<double>(e - start) /
                            static_cast<double>(end - start);
    const double f = 1.0 + (options.intensity - 1.0) * (1.0 - progress);
    auto w = std::make_shared<Workload>(base);
    for (NodeId u = 0; u < n; ++u) {
      if (hot[u]) w->production[u] *= f;
      if (audience[u]) w->consumption[u] *= f;
    }
    epochs[e].workload = std::move(w);
  }
  return std::unique_ptr<Scenario>(new EpochScenario(
      {"flash-crowd",
       "hub producers and their followers spike together, then decay"},
      g, std::move(base), options, std::move(epochs)));
}

Result<std::unique_ptr<Scenario>> MakeCelebrityJoin(const Graph& g, Workload base,
                                                    const ScenarioOptions& options) {
  const size_t n = g.num_nodes();
  if (n < 2) return Status::InvalidArgument("celebrity-join needs >= 2 users");
  const size_t num_epochs = std::max<size_t>(options.epochs, 5);
  // The "joining" celebrity: the least-followed account (fresh profile).
  NodeId celeb = 0;
  for (NodeId u = 1; u < n; ++u) {
    if (g.OutDegree(u) < g.OutDegree(celeb)) celeb = u;
  }

  Rng rng = ChurnRng(options);
  DynamicGraph evolving(g);
  const size_t target = static_cast<size_t>(
      options.churn_level * 0.3 * static_cast<double>(n));
  std::vector<EpochSpec> epochs(num_epochs);
  // The audience piles in fast: a quiet lead-in establishes the baseline,
  // arrivals land in a burst around the first third, and the back half of
  // the run measures the new steady state (and gives an elastic cluster
  // something it can still act on).
  const size_t start = num_epochs / 3;
  const size_t end = std::max(start + 1, start + num_epochs / 4);
  std::vector<size_t> arrivals_by_epoch(num_epochs, 0);
  std::vector<bool> arrived(n, false);
  ScheduleChurn(epochs, start, end, options.duration, target,
                [&](size_t, ScenarioOp* op) {
                  const NodeId fan = static_cast<NodeId>(rng.Uniform(n));
                  if (fan == celeb || evolving.HasEdge(celeb, fan)) return false;
                  evolving.AddEdge(celeb, fan);
                  op->kind = ScenarioOpKind::kFollow;
                  op->user = fan;
                  op->producer = celeb;
                  arrivals_by_epoch[op->epoch] += 1;
                  arrived[fan] = true;
                  return true;
                });

  // Rates track the audience: the celebrity's production ramps with the
  // fraction of the target audience that has arrived; new fans read more.
  // The spike is scaled against the cluster, not the celebrity's own quiet
  // baseline (a fresh account's base rate is near the floor — multiplying it
  // would leave the "celebrity" invisible in sampled traffic): at full
  // audience the account carries about `intensity` percent of the cluster's
  // total share rate.
  double production_mass = 0;
  for (NodeId u = 0; u < n; ++u) production_mass += base.production[u];
  size_t arrived_so_far = 0;
  std::vector<bool> fan_now(n, false);
  for (size_t e = 0; e < num_epochs; ++e) {
    for (const ScenarioOp& op : epochs[e].churn) fan_now[op.user] = true;
    arrived_so_far += arrivals_by_epoch[e];
    if (arrived_so_far == 0) {
      // No arrivals yet: still the base rates (shared with the previous
      // epoch, so no rate-shift marker fires).
      epochs[e].workload = e == 0 ? std::make_shared<const Workload>(base)
                                  : epochs[e - 1].workload;
      continue;
    }
    auto w = std::make_shared<Workload>(base);
    const double growth = target > 0 ? static_cast<double>(arrived_so_far) /
                                           static_cast<double>(target)
                                     : 1.0;
    w->production[celeb] +=
        (options.intensity / 100.0) * growth * production_mass;
    for (NodeId u = 0; u < n; ++u) {
      if (fan_now[u]) w->consumption[u] *= 2.0;
    }
    epochs[e].workload = std::move(w);
  }
  return std::unique_ptr<Scenario>(new EpochScenario(
      {"celebrity-join",
       "one account gains followers fast while its share rate ramps up"},
      g, std::move(base), options, std::move(epochs)));
}

Result<std::unique_ptr<Scenario>> MakeFollowStorm(const Graph& g, Workload base,
                                                  const ScenarioOptions& options) {
  const size_t num_epochs = std::max<size_t>(options.epochs, 4);
  Rng rng = ChurnRng(options);
  DynamicGraph evolving(g);
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  g.ForEachEdge([&](const Edge& e) { edges.push_back(e); });
  rng.Shuffle(edges);

  const size_t target = static_cast<size_t>(
      options.churn_level * 0.25 * static_cast<double>(edges.size()));
  std::vector<EpochSpec> epochs(num_epochs);

  // Follow-back wave: for an existing edge p -> c (c follows p), p follows
  // back, creating c -> p. A quarter of the new edges are regretted later.
  std::vector<Edge> added;
  size_t cursor = 0;
  ScheduleChurn(epochs, num_epochs / 4, num_epochs / 2, options.duration, target,
                [&](size_t, ScenarioOp* op) {
                  while (cursor < edges.size()) {
                    const Edge e = edges[cursor++];
                    if (e.src == e.dst || evolving.HasEdge(e.dst, e.src)) continue;
                    evolving.AddEdge(e.dst, e.src);
                    added.push_back(Edge{e.dst, e.src});
                    op->kind = ScenarioOpKind::kFollow;
                    op->user = e.src;      // follower (was the producer)
                    op->producer = e.dst;  // followed back
                    return true;
                  }
                  return false;
                });
  const size_t regrets = added.size() / 4;
  ScheduleChurn(epochs, num_epochs * 13 / 20, num_epochs * 3 / 4,
                options.duration, regrets, [&](size_t i, ScenarioOp* op) {
                  const Edge e = added[i];
                  evolving.RemoveEdge(e.src, e.dst);
                  op->kind = ScenarioOpKind::kUnfollow;
                  op->user = e.dst;
                  op->producer = e.src;
                  return true;
                });

  // Storm participants stay engaged: once a user follows back, their feed
  // consumption steps up for the rest of the run (follow storms come with
  // activity bursts — exactly the shift a stale-rate replan misprices).
  const double engagement = 1.0 + options.intensity / 8.0;
  std::vector<bool> engaged(g.num_nodes(), false);
  std::shared_ptr<const Workload> current = std::make_shared<Workload>(base);
  for (size_t e = 0; e < num_epochs; ++e) {
    bool changed = false;
    for (const ScenarioOp& op : epochs[e].churn) {
      if (op.kind == ScenarioOpKind::kFollow && !engaged[op.user]) {
        engaged[op.user] = true;
        changed = true;
      }
    }
    if (changed) {
      auto w = std::make_shared<Workload>(base);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (engaged[u]) w->consumption[u] *= engagement;
      }
      current = std::move(w);
    }
    epochs[e].workload = current;
  }
  return std::unique_ptr<Scenario>(new EpochScenario(
      {"follow-storm",
       "follow-back wave over a quarter of existing edges with an engagement "
       "shift, partial regret"},
      g, std::move(base), options, std::move(epochs)));
}

Result<std::unique_ptr<Scenario>> MakeRegionalEvent(const Graph& g, Workload base,
                                                    const ScenarioOptions& options) {
  const size_t n = g.num_nodes();
  const size_t num_epochs = std::max<size_t>(options.epochs, 4);
  const size_t regions = 4;
  // The region is a connected neighborhood (BFS from the highest-out-degree
  // seed over the undirected skeleton), about a quarter of the graph: a
  // topological community, so the event concentrates on a real locality the
  // way a geographic spike does — and the way a graph-aware placement would
  // have co-located it.
  std::vector<uint8_t> region_member(n, 0);
  {
    const size_t target = std::max<size_t>(1, n / regions);
    NodeId seed = 0;
    for (NodeId u = 1; u < n; ++u) {
      if (g.OutDegree(u) > g.OutDegree(seed)) seed = u;
    }
    std::vector<NodeId> frontier = {seed};
    region_member[seed] = 1;
    size_t grown = 1;
    for (size_t head = 0; head < frontier.size() && grown < target; ++head) {
      const NodeId u = frontier[head];
      auto visit = [&](NodeId v) {
        if (grown >= target || region_member[v]) return;
        region_member[v] = 1;
        frontier.push_back(v);
        ++grown;
      };
      for (NodeId v : g.OutNeighbors(u)) visit(v);
      for (NodeId v : g.InNeighbors(u)) visit(v);
    }
    // Disconnected leftovers top up by id so the region size is stable.
    for (NodeId u = 0; grown < target && u < n; ++u) {
      if (!region_member[u]) {
        region_member[u] = 1;
        ++grown;
      }
    }
  }
  const auto in_region = [&](NodeId u) { return region_member[u] != 0; };

  const size_t start = num_epochs * 2 / 5;
  const size_t end = std::max(start + 2, num_epochs * 7 / 10);
  auto quiet = std::make_shared<const Workload>(base);
  std::vector<EpochSpec> epochs(num_epochs);
  for (size_t e = 0; e < num_epochs; ++e) {
    if (e < start || e >= end) {
      epochs[e].workload = quiet;
      continue;
    }
    // Triangular excursion peaking mid-window; outsiders' attention shifts
    // toward the event (their own rates dip slightly).
    const double progress = (static_cast<double>(e - start) + 0.5) /
                            static_cast<double>(end - start);
    const double tri = 1.0 - std::abs(2.0 * progress - 1.0);
    const double f = 1.0 + (options.intensity - 1.0) * tri;
    const double dim = std::max(0.5, 1.0 - 0.2 * tri);
    auto w = std::make_shared<Workload>(base);
    for (NodeId u = 0; u < n; ++u) {
      const double m = in_region(u) ? f : dim;
      w->production[u] *= m;
      w->consumption[u] *= m;
    }
    epochs[e].workload = std::move(w);
  }

  // Outsiders follow into the region while the event runs.
  Rng rng = ChurnRng(options);
  DynamicGraph evolving(g);
  const size_t follows =
      n < regions ? 0
                  : static_cast<size_t>(options.churn_level * 0.05 *
                                        static_cast<double>(n));
  ScheduleChurn(epochs, start, end, options.duration, follows,
                [&](size_t, ScenarioOp* op) {
                  const NodeId outsider = static_cast<NodeId>(rng.Uniform(n));
                  const NodeId source =
                      static_cast<NodeId>(rng.Uniform(n / regions)) *
                      static_cast<NodeId>(regions);
                  if (outsider == source || in_region(outsider) ||
                      evolving.HasEdge(source, outsider)) {
                    return false;
                  }
                  evolving.AddEdge(source, outsider);
                  op->kind = ScenarioOpKind::kFollow;
                  op->user = outsider;
                  op->producer = source;
                  return true;
                });
  return std::unique_ptr<Scenario>(new EpochScenario(
      {"regional-event",
       "one region's rates spike on a triangular window; outsiders follow in"},
      g, std::move(base), options, std::move(epochs)));
}

Result<std::unique_ptr<Scenario>> MakeShardFailure(const Graph& g, Workload base,
                                                   const ScenarioOptions& options) {
  // Stationary traffic with scripted outage windows in the middle half of
  // the run: shard slot i fails a quarter into its epoch and restarts three
  // quarters into the next one, so every outage sees live traffic on both
  // sides. churn_level scales the number of fail/restart pairs; slots are
  // mapped onto real shards (modulo the shard count) by the replay driver.
  const size_t num_epochs = std::max<size_t>(options.epochs, 4);
  ScenarioOptions opts = options;
  opts.epochs = num_epochs;
  auto shared = std::make_shared<const Workload>(base);
  std::vector<EpochSpec> epochs(num_epochs);
  for (EpochSpec& e : epochs) e.workload = shared;

  const double epoch_len =
      options.duration / static_cast<double>(num_epochs);
  const size_t pairs = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options.churn_level)));
  const size_t window_first = num_epochs / 4;
  const size_t window_len = std::max<size_t>(1, num_epochs / 2);
  for (size_t i = 0; i < pairs; ++i) {
    const size_t fail_epoch =
        std::min(window_first + (i * window_len) / pairs, num_epochs - 2);
    const size_t restart_epoch = fail_epoch + 1;
    ScenarioOp fail;
    fail.kind = ScenarioOpKind::kShardFail;
    fail.user = static_cast<NodeId>(i);  // shard slot
    fail.epoch = static_cast<uint32_t>(fail_epoch);
    fail.time = epoch_len * (static_cast<double>(fail_epoch) + 0.25);
    epochs[fail_epoch].churn.push_back(fail);
    ScenarioOp restart = fail;
    restart.kind = ScenarioOpKind::kShardRestart;
    restart.epoch = static_cast<uint32_t>(restart_epoch);
    restart.time = epoch_len * (static_cast<double>(restart_epoch) + 0.75);
    epochs[restart_epoch].churn.push_back(restart);
  }
  for (EpochSpec& e : epochs) {
    std::stable_sort(
        e.churn.begin(), e.churn.end(),
        [](const ScenarioOp& a, const ScenarioOp& b) { return a.time < b.time; });
  }
  return MakeCustomScenario(
      {"shard-failure",
       "stationary traffic with scripted shard fail/restart windows"},
      g, std::move(base), opts, std::move(epochs));
}

// ---------------------------------------------------------------------------
// Registry (mirrors the planner/partitioner registries).
// ---------------------------------------------------------------------------

using ScenarioFactory = std::function<Result<std::unique_ptr<Scenario>>(
    const Graph&, Workload, const ScenarioOptions&)>;

struct Registry {
  std::mutex mu;
  std::map<std::string, ScenarioInfo, std::less<>> infos;
  std::map<std::string, ScenarioFactory, std::less<>> factories;

  Status RegisterLocked(ScenarioInfo info, ScenarioFactory factory) {
    if (factories.count(info.name)) {
      return Status::AlreadyExists("scenario already registered: " + info.name);
    }
    factories[info.name] = std::move(factory);
    infos[info.name] = std::move(info);
    return Status::OK();
  }

  std::string ValidNamesLocked() const {
    std::string names;
    for (const auto& [name, info] : infos) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    return names;
  }
};

Registry& GlobalRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    auto built_in = [r](const char* name, const char* description,
                        ScenarioFactory factory) {
      Status st = r->RegisterLocked({name, description}, std::move(factory));
      PIGGY_CHECK(st.ok()) << st.ToString();
    };
    built_in("stationary",
             "fixed rates, no churn (the paper's evaluation regime)",
             MakeStationary);
    built_in("diurnal",
             "three phase-shifted regional cohorts on a two-cycle sinusoid",
             MakeDiurnal);
    built_in("flash-crowd",
             "hub producers and their followers spike together, then decay",
             MakeFlashCrowd);
    built_in("celebrity-join",
             "one account gains followers fast while its share rate ramps up",
             MakeCelebrityJoin);
    built_in("follow-storm",
             "follow-back wave over a quarter of existing edges with an "
             "engagement shift, partial regret",
             MakeFollowStorm);
    built_in("regional-event",
             "one region's rates spike on a triangular window; outsiders "
             "follow in",
             MakeRegionalEvent);
    built_in("shard-failure",
             "stationary traffic with scripted shard fail/restart windows",
             MakeShardFailure);
    return r;
  }();
  return *registry;
}

}  // namespace

Result<std::unique_ptr<Scenario>> MakeScenario(std::string_view name,
                                               const Graph& graph,
                                               Workload base_workload,
                                               const ScenarioOptions& options) {
  if (base_workload.num_users() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  base_workload.num_users(), graph.num_nodes()));
  }
  if (options.epochs == 0) {
    return Status::InvalidArgument("scenario needs at least one epoch");
  }
  if (!(options.duration > 0)) {
    return Status::InvalidArgument("scenario duration must be positive");
  }
  ScenarioFactory factory;
  {
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      return Status::InvalidArgument(
          StrFormat("unknown scenario \"%.*s\"; valid: %s",
                    static_cast<int>(name.size()), name.data(),
                    r.ValidNamesLocked().c_str()));
    }
    factory = it->second;
  }
  return factory(graph, std::move(base_workload), options);
}

Result<std::unique_ptr<Scenario>> MakeCustomScenario(
    ScenarioInfo info, const Graph& graph, Workload base_workload,
    const ScenarioOptions& options, std::vector<CustomEpoch> epochs) {
  if (epochs.empty()) {
    return Status::InvalidArgument("custom scenario needs at least one epoch");
  }
  if (!(options.duration > 0)) {
    return Status::InvalidArgument("scenario duration must be positive");
  }
  if (base_workload.num_users() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  base_workload.num_users(), graph.num_nodes()));
  }
  const double epoch_len =
      options.duration / static_cast<double>(epochs.size());
  for (size_t e = 0; e < epochs.size(); ++e) {
    if (epochs[e].workload == nullptr ||
        epochs[e].workload->num_users() != graph.num_nodes()) {
      return Status::InvalidArgument(
          StrFormat("epoch %zu workload missing or not covering the graph", e));
    }
    double last = epoch_len * static_cast<double>(e);
    for (const ScenarioOp& op : epochs[e].churn) {
      const bool is_churn = op.kind == ScenarioOpKind::kFollow ||
                            op.kind == ScenarioOpKind::kUnfollow;
      const bool is_shard_event = op.kind == ScenarioOpKind::kShardFail ||
                                  op.kind == ScenarioOpKind::kShardRestart;
      if (!is_churn && !is_shard_event) {
        return Status::InvalidArgument(
            "scripted churn must be follow/unfollow or a shard event");
      }
      if (op.epoch != e || op.time < last ||
          op.time > epoch_len * static_cast<double>(e + 1)) {
        return Status::InvalidArgument(
            StrFormat("churn op out of order or out of range: %s",
                      op.ToString().c_str()));
      }
      // Shard events carry a shard slot in `user`, not a node id — the
      // replay driver maps slots onto the cluster, so no range check here.
      if (is_churn && (op.user >= graph.num_nodes() ||
                       op.producer >= graph.num_nodes())) {
        return Status::InvalidArgument(
            StrFormat("churn op out of range: %s", op.ToString().c_str()));
      }
      last = op.time;
    }
  }
  return std::unique_ptr<Scenario>(
      new EpochScenario(std::move(info), graph, std::move(base_workload),
                        options, std::move(epochs)));
}

Result<std::unique_ptr<Scenario>> MakeScenario(std::string_view name,
                                               const Graph& graph,
                                               const ScenarioOptions& options) {
  PIGGY_ASSIGN_OR_RETURN(
      Workload base,
      GenerateWorkload(graph, {.read_write_ratio = 5.0, .min_rate = 0.01}));
  return MakeScenario(name, graph, std::move(base), options);
}

std::vector<ScenarioInfo> RegisteredScenarios() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<ScenarioInfo> infos;
  infos.reserve(r.infos.size());
  for (const auto& [name, info] : r.infos) infos.push_back(info);
  return infos;
}

Status RegisterScenario(
    ScenarioInfo info,
    std::function<Result<std::unique_ptr<Scenario>>(
        const Graph&, Workload, const ScenarioOptions&)> factory) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.RegisterLocked(std::move(info), std::move(factory));
}

}  // namespace piggy
