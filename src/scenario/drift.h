// Rate-drift estimation and the adaptive replan policy.
//
// The schedule is planned for one rate profile; real traffic moves. The
// estimator watches the served op stream (shares, queries, churn) and keeps a
// smoothed per-user estimate of the actual rates. Every check_interval
// requests FeedService turns that estimate into a drift score: how much of
// the schedule's cost advantage over the hybrid (FF) baseline has eroded
// under the observed rates and the churned topology,
//
//   score = max(0, 1 - advantage_now / advantage_at_plan_time)
//   advantage = HybridCost(graph, estimated rates)
//             / ScheduleCost(graph, estimated rates, schedule)
//
// Being a ratio of rate-linear cost functionals, the score is scale-invariant
// (a uniform traffic surge does not trigger replans — the schedule is still
// right) and statistically robust (sampling noise averages out across users
// instead of accumulating per user, as a distribution distance would). It
// also captures structural drift with no extra machinery: edges added under
// churn are served directly at hybrid cost until the next plan, which pushes
// the advantage toward 1 exactly when replanning would help.
//
// When the score crosses the threshold, FeedService re-estimates the
// workload from the smoothed observations (shrunk toward the planned rates
// where data is thin) and replans against it — so the new schedule fits the
// traffic actually seen, not the profile from deployment day. ReplanPolicy
// packages the three modes ("never" | "every-N" | "drift") that
// bench_fig10_scenarios compares.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Knobs of the drift-triggered replan policy.
struct DriftOptions {
  /// Requests between drift evaluations (the observation window).
  size_t check_interval = 2048;
  /// Replan when the drift score exceeds this. The score is the max of the
  /// rate component (fraction of the plan's cost advantage lost under the
  /// estimated rates) and the structural component (churn_weight x the
  /// fraction of edges churned since the plan).
  double threshold = 0.08;
  /// EMA weight of a newly completed window against the running estimate.
  double ema_alpha = 0.5;
  /// Windows to fold before the rate component is trusted (a single window's
  /// sampled rates carry enough noise to fake small drift; the structural
  /// component is exact and active immediately).
  size_t warmup_windows = 3;
  /// Weight of the structural component: churned edges since the last plan
  /// over the edge count at plan time.
  double churn_weight = 1.0;
  /// Hysteresis: minimum requests between drift-triggered replans.
  size_t min_requests_between_replans = 4096;
  /// Shrinkage toward the planned rates when estimating the workload, as a
  /// fraction of the observation mass (guards thinly observed users against
  /// zeroed-out rates).
  double prior_strength = 0.25;
};

/// \brief When FeedService re-runs its planner.
enum class ReplanMode : uint8_t {
  kNever,       ///< only explicit Replan() calls
  kEveryNChurn, ///< the legacy blind counter: every N Follow/Unfollow ops
  kDrift,       ///< drift-triggered, with re-estimated rates
};

/// \brief A replanning policy: mode + its knobs.
struct ReplanPolicy {
  ReplanMode mode = ReplanMode::kNever;
  size_t every_n_churn = 0;  ///< kEveryNChurn period
  DriftOptions drift;        ///< kDrift knobs

  static ReplanPolicy Never() { return {}; }
  static ReplanPolicy EveryN(size_t n) {
    ReplanPolicy p;
    p.mode = ReplanMode::kEveryNChurn;
    p.every_n_churn = n;
    return p;
  }
  static ReplanPolicy Drift(DriftOptions options = {}) {
    ReplanPolicy p;
    p.mode = ReplanMode::kDrift;
    p.drift = options;
    return p;
  }

  /// Parses "never" | "every-N" (N a positive integer) | "drift". Unknown
  /// spellings return InvalidArgument listing the valid options.
  static Result<ReplanPolicy> FromString(std::string_view spec);

  /// "never" | "every-128" | "drift" — the FromString spelling.
  std::string ToString() const;
};

/// \brief Smoothed per-user rate observation over a served op stream.
///
/// Per-op cost is one relaxed counter increment, so RecordShare/RecordQuery
/// may be called from any number of serving threads; the O(num_users)
/// smoothing and estimation passes run only when a window completes (every
/// check_interval requests) and are serialized by an internal mutex, so a
/// drift evaluation never blocks serving.
class RateDriftEstimator {
 public:
  RateDriftEstimator(size_t num_users, DriftOptions options);

  void RecordShare(NodeId u);
  void RecordQuery(NodeId u);
  void RecordChurn() {
    churn_since_replan_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True when a full observation window has accumulated (the owner should
  /// fold it and evaluate the drift score).
  bool WindowFull() const {
    return window_requests_.load(std::memory_order_relaxed) >=
           options_.check_interval;
  }

  /// Folds the completed window into the running EMA and clears it. Returns
  /// false without folding when another thread folded the same window first
  /// (the window is no longer full).
  bool FoldWindow();

  /// True when enough requests passed since the last replan (hysteresis).
  bool ReplanAllowed() const {
    return requests_since_replan_.load(std::memory_order_relaxed) >=
           options_.min_requests_between_replans;
  }

  /// Re-estimates per-user rates from the smoothed observations: rates are
  /// proportional to observed counts shrunk toward `planned` (prior_strength
  /// pseudo-mass), rescaled to planned totals so the absolute scale — which
  /// planners ignore — stays comparable in metrics. Requires observations
  /// (FoldWindow called at least once with traffic).
  Workload EstimateWorkload(const Workload& planned) const;

  /// Resets the hysteresis + churn counters after a replan (observations are
  /// kept: traffic does not restart because the plan changed).
  void OnReplanned();

  /// True once warmup_windows observation windows have been folded — the
  /// smoothed rate estimate is trustworthy for scoring and re-estimation.
  bool Warm() const {
    return folded_windows_.load(std::memory_order_acquire) >=
           options_.warmup_windows;
  }

  const DriftOptions& options() const { return options_; }
  size_t churn_since_replan() const {
    return churn_since_replan_.load(std::memory_order_relaxed);
  }
  uint64_t observed_requests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }

 private:
  DriftOptions options_;
  // Per-user window counters: relaxed atomics bumped on the serving path.
  std::vector<std::atomic<uint32_t>> win_shares_, win_queries_;
  // Smoothed estimate, guarded by ema_mu_ (fold + estimate only).
  mutable std::mutex ema_mu_;
  std::vector<double> ema_shares_, ema_queries_;
  double ema_mass_ = 0;  ///< total smoothed observation mass
  std::atomic<size_t> folded_windows_{0};
  std::atomic<size_t> window_requests_{0};
  std::atomic<size_t> requests_since_replan_{0};
  std::atomic<size_t> churn_since_replan_{0};
  std::atomic<uint64_t> total_requests_{0};
};

}  // namespace piggy
