// Scenario replay: drives a serving deployment through a scenario's op
// stream and reports per-epoch cost/latency rows.
//
// This is the measurement loop for time-varying traffic — the successor of
// the stationary RunWorkloadDriver. Shares, queries and churn ops are applied
// through the service's public API (so audits, incremental repair and the
// configured replan policy all engage exactly as in production); rate-shift
// markers carry no service call — the system under test must *notice* drift
// from traffic, never from ground truth. At every epoch boundary the driver
// snapshots a row: op counts, measured serving messages, the schedule's cost
// under the epoch's ground-truth rates (which only the scenario knows), the
// hybrid-baseline cost for reference, replans triggered, the service's
// current drift estimate, and wall time.
//
// A 1-shard stationary replay is bit-identical to FeedService::Drive with
// the same seed and request count (scenario_drive_test proves it).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_service.h"
#include "obs/trace.h"
#include "scenario/scenario.h"
#include "store/feed_service.h"
#include "util/status.h"

namespace piggy {

/// \brief One epoch of a replay: what happened and what it cost.
struct ReplayEpochRow {
  uint32_t epoch = 0;
  double sim_time = 0;  ///< epoch start on the scenario's simulated clock
  uint64_t shares = 0;
  uint64_t queries = 0;
  uint64_t follows = 0;
  uint64_t unfollows = 0;
  double messages = 0;  ///< serving messages issued during the epoch
  double messages_per_request = 0;
  /// Schedule cost under the epoch's ground-truth rates and the graph as of
  /// the epoch's close (the quantity an omniscient operator would minimize).
  double true_cost = 0;
  /// Hybrid (FF) baseline under the same rates/topology, for ratios.
  double true_hybrid = 0;
  size_t replans = 0;  ///< planner runs during the epoch
  size_t repairs = 0;  ///< Sec.-3.3 repairs during the epoch
  double drift_score = 0;  ///< service's drift estimate at epoch close
  double wall_seconds = 0;
  size_t shard_fails = 0;     ///< scripted shard kills applied this epoch
  size_t shard_restarts = 0;  ///< scripted shard recoveries this epoch
  /// Requests the service rejected with Unavailable (routed to a down
  /// shard); counted, not failed — outage windows are part of the story.
  uint64_t unavailable = 0;
  /// Batched cross-shard messages issued during the epoch (clusters only;
  /// zero for a single FeedService).
  double cross_messages = 0;
  /// Max/mean of per-shard requests routed during this epoch (1 = even;
  /// zero for a single FeedService).
  double imbalance = 0;

  std::string ToString() const;
};

/// \brief Whole-run replay measurements.
struct ReplayReport {
  std::string scenario;
  std::string planner;
  std::string policy;  ///< replan policy ("never" | "every-N" | "drift")
  std::vector<ReplayEpochRow> epochs;
  uint64_t shares = 0;
  uint64_t queries = 0;
  uint64_t follows = 0;
  uint64_t unfollows = 0;
  double messages = 0;  ///< total serving messages across the run
  double messages_per_request = 0;
  size_t replans = 0;  ///< total planner runs, including the initial plan
  double wall_seconds = 0;
  size_t aux_threads = 0;     ///< auxiliary load threads (ReplayOptions)
  uint64_t aux_requests = 0;  ///< shares+queries issued by the aux threads
  size_t shard_fails = 0;     ///< scripted shard kills across the run
  size_t shard_restarts = 0;  ///< scripted shard recoveries across the run
  uint64_t unavailable = 0;   ///< Unavailable-rejected requests (all threads)

  std::string ToString() const;
};

/// \brief Concurrency knobs for a replay.
///
/// The scenario stream itself always runs sequentially on the calling thread
/// (epoch boundaries and op order stay deterministic); with client_threads >
/// 1, the remaining client_threads - 1 threads issue a rate-weighted
/// share/query background load through the same thread-safe serving API for
/// the duration of the replay — the production shape where churn and replans
/// race ordinary traffic. Aux traffic is counted in aux_requests and bleeds
/// into the per-epoch message/latency accounting; use the 2-argument
/// overloads (or client_threads = 1) for bit-exact single-threaded rows.
struct ReplayOptions {
  size_t client_threads = 1;
  uint64_t seed = 42;
  /// Invoked on the sequential replay thread right after each epoch's row is
  /// recorded — the natural control-loop hook (the elastic rebalancer's
  /// MigrationCoordinator::Step runs here). A non-OK return aborts the
  /// replay. Null = no hook.
  std::function<Status(const ReplayEpochRow&)> on_epoch_close;
  /// Structured trace sink (not owned; null disables). Each epoch close
  /// emits one kEpoch span carrying the row's headline numbers, so the trace
  /// interleaves the measurement clock with the service's own replan /
  /// durability / shard events. Pass the same log to the deployment
  /// (FeedServiceOptions::trace or ClusterOptions::trace) for one unified
  /// timeline.
  obs::TraceLog* trace = nullptr;
};

/// Replays `scenario` (from its current position; call Reset() to rewind)
/// through a single-process deployment. The service must be built over the
/// scenario's graph (same node count). Returns an error if any op fails —
/// including audit divergence when the service audits.
Result<ReplayReport> ReplayScenario(Scenario& scenario, FeedService& service);

/// Same, through a sharded cluster; true costs sum the per-shard schedule
/// costs under shard-projected ground-truth rates plus the router's predicted
/// cross-shard cost.
Result<ReplayReport> ReplayScenario(Scenario& scenario, ClusterService& cluster);

/// Replay with concurrent auxiliary client load (see ReplayOptions).
Result<ReplayReport> ReplayScenario(Scenario& scenario, FeedService& service,
                                    const ReplayOptions& options);

/// Same, through a sharded cluster.
Result<ReplayReport> ReplayScenario(Scenario& scenario, ClusterService& cluster,
                                    const ReplayOptions& options);

}  // namespace piggy
