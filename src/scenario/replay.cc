#include "scenario/replay.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/alias_table.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace piggy {

std::string ReplayEpochRow::ToString() const {
  std::string out = StrFormat(
      "epoch=%u t=%.0f ops=%lu/%lu/%lu/%lu msgs/req=%.3f true_cost=%.1f "
      "(ff=%.1f) replans=%zu drift=%.3f wall=%.3fs",
      epoch, sim_time, static_cast<unsigned long>(shares),
      static_cast<unsigned long>(queries), static_cast<unsigned long>(follows),
      static_cast<unsigned long>(unfollows), messages_per_request, true_cost,
      true_hybrid, replans, drift_score, wall_seconds);
  if (shard_fails > 0 || shard_restarts > 0 || unavailable > 0) {
    out += StrFormat(" fails=%zu restarts=%zu unavailable=%lu", shard_fails,
                     shard_restarts, static_cast<unsigned long>(unavailable));
  }
  if (cross_messages > 0 || imbalance > 0) {
    out += StrFormat(" cross=%.0f imbalance=%.2f", cross_messages, imbalance);
  }
  return out;
}

std::string ReplayReport::ToString() const {
  std::string out = StrFormat(
      "%s via %s/%s: requests=%lu (shares=%lu queries=%lu) churn=%lu+%lu "
      "msgs/req=%.3f replans=%zu epochs=%zu wall=%.2fs",
      scenario.c_str(), planner.c_str(), policy.c_str(),
      static_cast<unsigned long>(shares + queries),
      static_cast<unsigned long>(shares), static_cast<unsigned long>(queries),
      static_cast<unsigned long>(follows), static_cast<unsigned long>(unfollows),
      messages_per_request, replans, epochs.size(), wall_seconds);
  if (aux_threads > 0) {
    out += StrFormat(" aux=%zu threads/%lu reqs", aux_threads,
                     static_cast<unsigned long>(aux_requests));
  }
  if (shard_fails > 0 || shard_restarts > 0 || unavailable > 0) {
    out += StrFormat(" fails=%zu restarts=%zu unavailable=%lu", shard_fails,
                     shard_restarts, static_cast<unsigned long>(unavailable));
  }
  return out;
}

namespace {

/// Counter probe taken at epoch boundaries; rows report deltas.
struct ServiceProbe {
  double messages = 0;
  uint64_t shares = 0;
  uint64_t queries = 0;
  size_t replans = 0;
  size_t repairs = 0;
  double drift_score = 0;
  double cross_messages = 0;  ///< cumulative cross-shard messages (clusters)
  std::vector<uint64_t> per_shard_requests;  ///< cumulative (clusters)
};

/// The service-agnostic core: FeedService and ClusterService differ only in
/// how counters are probed and how ground-truth cost is computed.
struct ServiceHooks {
  std::function<Status(NodeId)> share;
  std::function<Result<size_t>(NodeId)> query;  // returns stream size (unused)
  std::function<Status(NodeId, NodeId)> follow;    // (follower, producer)
  std::function<Status(NodeId, NodeId)> unfollow;  // (follower, producer)
  /// Shard events; the argument is the scenario's shard *slot* (the hook
  /// maps it onto a live shard). Single-process deployments reject these.
  std::function<Status(uint32_t)> shard_fail;
  std::function<Status(uint32_t)> shard_restart;
  std::function<ServiceProbe()> probe;
  /// (true rates) -> (schedule cost, hybrid cost) on the current topology.
  std::function<std::pair<double, double>(const Workload&)> true_costs;
  /// Optional epoch-close callback (ReplayOptions::on_epoch_close).
  std::function<Status(const ReplayEpochRow&)> on_epoch_close;
  /// Optional trace sink (ReplayOptions::trace).
  obs::TraceLog* trace = nullptr;
};

/// Max/mean of the per-shard request deltas for one epoch (0 if no traffic
/// or no shard breakdown — the FeedService path).
double EpochImbalance(const std::vector<uint64_t>& now,
                      const std::vector<uint64_t>& start) {
  if (now.empty() || now.size() != start.size()) return 0;
  uint64_t total = 0, max = 0;
  for (size_t s = 0; s < now.size(); ++s) {
    const uint64_t d = now[s] - start[s];
    total += d;
    max = std::max(max, d);
  }
  if (total == 0) return 0;
  return static_cast<double>(max) /
         (static_cast<double>(total) / static_cast<double>(now.size()));
}

Result<ReplayReport> Replay(Scenario& scenario, ServiceHooks hooks,
                            ReplayReport report) {
  report.scenario = scenario.name();
  report.epochs.reserve(scenario.num_epochs());

  WallTimer total_timer;
  WallTimer epoch_timer;
  ServiceProbe epoch_start = hooks.probe();
  ReplayEpochRow row;
  size_t current_epoch = 0;
  double epoch_trace_start =
      hooks.trace != nullptr ? hooks.trace->NowUs() : 0;

  auto close_epoch = [&](size_t e) -> Status {
    const ServiceProbe now = hooks.probe();
    row.epoch = static_cast<uint32_t>(e);
    row.sim_time = scenario.EpochStart(e);
    const uint64_t requests = row.shares + row.queries;
    row.messages = now.messages - epoch_start.messages;
    row.messages_per_request =
        requests > 0 ? row.messages / static_cast<double>(requests) : 0;
    row.replans = now.replans - epoch_start.replans;
    row.repairs = now.repairs - epoch_start.repairs;
    row.drift_score = now.drift_score;
    row.cross_messages = now.cross_messages - epoch_start.cross_messages;
    row.imbalance =
        EpochImbalance(now.per_shard_requests, epoch_start.per_shard_requests);
    const auto [cost, hybrid] = hooks.true_costs(scenario.EpochWorkload(e));
    row.true_cost = cost;
    row.true_hybrid = hybrid;
    row.wall_seconds = epoch_timer.Seconds();
    if (hooks.trace != nullptr) {
      hooks.trace->Span(
          obs::TraceEventKind::kEpoch, epoch_trace_start, /*shard=*/-1,
          {{"epoch", std::to_string(row.epoch)},
           {"shares", std::to_string(row.shares)},
           {"queries", std::to_string(row.queries)},
           {"follows", std::to_string(row.follows)},
           {"unfollows", std::to_string(row.unfollows)},
           {"msgs_per_req", StrFormat("%.3f", row.messages_per_request)},
           {"true_cost", StrFormat("%.1f", row.true_cost)},
           {"replans", std::to_string(row.replans)},
           {"drift", StrFormat("%.3f", row.drift_score)},
           {"fails", std::to_string(row.shard_fails)},
           {"restarts", std::to_string(row.shard_restarts)},
           {"unavailable", std::to_string(row.unavailable)}});
    }
    report.epochs.push_back(row);
    report.shares += row.shares;
    report.queries += row.queries;
    report.follows += row.follows;
    report.unfollows += row.unfollows;
    report.shard_fails += row.shard_fails;
    report.shard_restarts += row.shard_restarts;
    report.unavailable += row.unavailable;
    row = ReplayEpochRow{};
    epoch_timer.Reset();
    if (hooks.on_epoch_close) {
      PIGGY_RETURN_NOT_OK(hooks.on_epoch_close(report.epochs.back()));
    }
    // Re-probe after the hook: a migration it triggers shifts the counters,
    // and the next epoch should not inherit that as its own traffic.
    epoch_start = hooks.on_epoch_close ? hooks.probe() : now;
    if (hooks.trace != nullptr) epoch_trace_start = hooks.trace->NowUs();
    return Status::OK();
  };

  // A request rejected because its shard is down is part of the story, not
  // a replay failure: it is counted in `unavailable` and the stream moves on.
  auto tolerate = [&](const Status& st) {
    if (st.IsUnavailable()) {
      ++row.unavailable;
      return Status::OK();
    }
    return st;
  };

  ScenarioOp op;
  while (scenario.Next(&op)) {
    while (op.epoch > current_epoch) {
      PIGGY_RETURN_NOT_OK(close_epoch(current_epoch++));
    }
    switch (op.kind) {
      case ScenarioOpKind::kShare:
        PIGGY_RETURN_NOT_OK(tolerate(hooks.share(op.user)));
        ++row.shares;
        break;
      case ScenarioOpKind::kQuery:
        PIGGY_RETURN_NOT_OK(tolerate(hooks.query(op.user).status()));
        ++row.queries;
        break;
      case ScenarioOpKind::kFollow:
        PIGGY_RETURN_NOT_OK(tolerate(hooks.follow(op.user, op.producer)));
        ++row.follows;
        break;
      case ScenarioOpKind::kUnfollow:
        PIGGY_RETURN_NOT_OK(tolerate(hooks.unfollow(op.user, op.producer)));
        ++row.unfollows;
        break;
      case ScenarioOpKind::kRateShift:
        // Ground truth moved; the service must notice on its own.
        break;
      case ScenarioOpKind::kShardFail:
        PIGGY_RETURN_NOT_OK(hooks.shard_fail(op.user));
        ++row.shard_fails;
        break;
      case ScenarioOpKind::kShardRestart:
        PIGGY_RETURN_NOT_OK(hooks.shard_restart(op.user));
        ++row.shard_restarts;
        break;
    }
  }
  while (current_epoch < scenario.num_epochs()) {
    PIGGY_RETURN_NOT_OK(close_epoch(current_epoch++));
  }

  const ServiceProbe end = hooks.probe();
  report.messages = 0;
  for (const ReplayEpochRow& e : report.epochs) report.messages += e.messages;
  const uint64_t requests = report.shares + report.queries;
  report.messages_per_request =
      requests > 0 ? report.messages / static_cast<double>(requests) : 0;
  report.replans = end.replans;
  report.wall_seconds = total_timer.Seconds();
  return report;
}

/// Runs the sequential Replay on the calling thread while options.
/// client_threads - 1 auxiliary threads issue a rate-weighted share/query
/// load through the (thread-safe) share/query hooks until the replay ends.
Result<ReplayReport> ReplayWithAux(Scenario& scenario, ServiceHooks hooks,
                                   ReplayReport report, const Workload& workload,
                                   const ReplayOptions& options) {
  if (options.client_threads <= 1) {
    return Replay(scenario, std::move(hooks), std::move(report));
  }
  const double total_p = workload.TotalProduction();
  const double total_c = workload.TotalConsumption();
  if (total_p <= 0 || total_c <= 0) {
    return Status::InvalidArgument("workload must have positive total rates");
  }
  const AliasTable share_sampler(workload.production);
  const AliasTable query_sampler(workload.consumption);
  const double p_share = total_p / (total_p + total_c);

  const size_t aux = options.client_threads - 1;
  struct AuxResult {
    Status status;
    uint64_t requests = 0;
    uint64_t unavailable = 0;
  };
  std::vector<AuxResult> results(aux);
  std::atomic<bool> stop{false};
  // Copies: `hooks` is moved into Replay below while the threads run.
  const auto share = hooks.share;
  const auto query = hooks.query;
  std::vector<std::thread> threads;
  threads.reserve(aux);
  for (size_t t = 0; t < aux; ++t) {
    threads.emplace_back([&, t] {
      AuxResult& out = results[t];
      Rng rng(Mix64(options.seed * 0x9e3779b97f4a7c15ULL + t + 1));
      // do-while: at least one aux request per thread even if the replay
      // outruns the scheduler (single-core hosts).
      do {
        const bool is_share = rng.Bernoulli(p_share);
        const NodeId u = is_share ? share_sampler.Sample(rng)
                                  : query_sampler.Sample(rng);
        const Status st = is_share ? share(u) : query(u).status();
        if (st.IsUnavailable()) {
          // Aux traffic runs through scripted outage windows; rejected
          // requests are expected there, not thread failures.
          ++out.unavailable;
          continue;
        }
        if (!st.ok()) {
          out.status = st;
          return;
        }
        ++out.requests;
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  auto result = Replay(scenario, std::move(hooks), std::move(report));
  stop.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  PIGGY_ASSIGN_OR_RETURN(ReplayReport out, std::move(result));
  out.aux_threads = aux;
  for (const AuxResult& r : results) {
    PIGGY_RETURN_NOT_OK(r.status);
    out.aux_requests += r.requests;
    out.unavailable += r.unavailable;
  }
  return out;
}

}  // namespace

Result<ReplayReport> ReplayScenario(Scenario& scenario, FeedService& service) {
  return ReplayScenario(scenario, service, ReplayOptions{});
}

Result<ReplayReport> ReplayScenario(Scenario& scenario, ClusterService& cluster) {
  return ReplayScenario(scenario, cluster, ReplayOptions{});
}

Result<ReplayReport> ReplayScenario(Scenario& scenario, FeedService& service,
                                    const ReplayOptions& options) {
  if (service.graph().num_nodes() != scenario.graph().num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("service has %zu users but the scenario was built for %zu",
                  service.graph().num_nodes(), scenario.graph().num_nodes()));
  }
  ReplayReport report;
  report.planner = service.options().planner;
  report.policy = service.options().replan.ToString();

  ServiceHooks hooks;
  hooks.share = [&](NodeId u) { return service.Share(u); };
  hooks.query = [&](NodeId u) -> Result<size_t> {
    PIGGY_ASSIGN_OR_RETURN(std::vector<EventTuple> stream,
                           service.QueryStream(u));
    return stream.size();
  };
  hooks.follow = [&](NodeId f, NodeId p) { return service.Follow(f, p); };
  hooks.unfollow = [&](NodeId f, NodeId p) { return service.Unfollow(f, p); };
  hooks.shard_fail = [](uint32_t) {
    return Status::InvalidArgument(
        "shard events need a sharded cluster; a single FeedService has no "
        "shards to fail");
  };
  hooks.shard_restart = [](uint32_t) {
    return Status::InvalidArgument(
        "shard events need a sharded cluster; a single FeedService has no "
        "shards to restart");
  };
  hooks.probe = [&] {
    const FeedService::Metrics m = service.GetMetrics();
    ServiceProbe p;
    p.messages =
        m.messages_per_request * static_cast<double>(m.shares + m.queries);
    p.shares = m.shares;
    p.queries = m.queries;
    p.replans = m.replans;
    p.repairs = m.repairs;
    p.drift_score = m.drift_score;
    return p;
  };
  // Under the service lock: a concurrent background replan may swap the
  // schedule between epoch closes.
  hooks.true_costs = [&](const Workload& truth) {
    return service.CostsUnder(truth);
  };
  hooks.on_epoch_close = options.on_epoch_close;
  hooks.trace = options.trace;
  return ReplayWithAux(scenario, std::move(hooks), std::move(report),
                       service.WorkloadSnapshot(), options);
}

Result<ReplayReport> ReplayScenario(Scenario& scenario, ClusterService& cluster,
                                    const ReplayOptions& options) {
  if (cluster.graph().num_nodes() != scenario.graph().num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("cluster has %zu users but the scenario was built for %zu",
                  cluster.graph().num_nodes(), scenario.graph().num_nodes()));
  }
  ReplayReport report;
  report.planner = cluster.options().shard.planner;
  report.policy = cluster.options().shard.replan.ToString();

  ServiceHooks hooks;
  hooks.share = [&](NodeId u) { return cluster.Share(u); };
  hooks.query = [&](NodeId u) -> Result<size_t> {
    PIGGY_ASSIGN_OR_RETURN(std::vector<EventTuple> stream,
                           cluster.QueryStream(u));
    return stream.size();
  };
  hooks.follow = [&](NodeId f, NodeId p) { return cluster.Follow(f, p); };
  hooks.unfollow = [&](NodeId f, NodeId p) { return cluster.Unfollow(f, p); };
  // Scenario shard slots wrap onto the live shards, so one scripted story
  // stresses any cluster size.
  hooks.shard_fail = [&](uint32_t slot) {
    return cluster.KillShard(slot %
                             static_cast<uint32_t>(cluster.num_shards()));
  };
  hooks.shard_restart = [&](uint32_t slot) {
    return cluster.RestartShard(slot %
                                static_cast<uint32_t>(cluster.num_shards()));
  };
  hooks.probe = [&] {
    const ClusterMetrics m = cluster.GetMetrics();
    ServiceProbe p;
    p.messages =
        m.messages_per_request * static_cast<double>(m.shares + m.queries);
    p.shares = m.shares;
    p.queries = m.queries;
    p.replans = m.replans;
    p.repairs = m.repairs;
    p.drift_score = m.max_drift_score;
    p.cross_messages = static_cast<double>(m.cross_update_messages +
                                           m.cross_query_messages);
    // Work, not routed requests: pull batches served land on the producer's
    // shard and replica writes on consumer shards — the imbalance a
    // rebalancer can act on is the one over where work actually lands.
    p.per_shard_requests = m.per_shard_work;
    return p;
  };
  hooks.true_costs = [&](const Workload& truth) {
    return cluster.CostsUnder(truth);
  };
  hooks.on_epoch_close = options.on_epoch_close;
  hooks.trace = options.trace;
  return ReplayWithAux(scenario, std::move(hooks), std::move(report),
                       cluster.workload(), options);
}

}  // namespace piggy
