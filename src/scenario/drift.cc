#include "scenario/drift.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace piggy {

Result<ReplanPolicy> ReplanPolicy::FromString(std::string_view spec) {
  if (spec == "never") return Never();
  if (spec == "drift") return Drift();
  constexpr std::string_view kEvery = "every-";
  if (spec.rfind(kEvery, 0) == 0 && spec.size() > kEvery.size()) {
    const std::string digits(spec.substr(kEvery.size()));
    char* end = nullptr;
    const long long n = std::strtoll(digits.c_str(), &end, 10);
    if (end == digits.c_str() + digits.size() && n > 0) {
      return EveryN(static_cast<size_t>(n));
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown replan policy \"%.*s\"; valid: never, every-N, drift",
                static_cast<int>(spec.size()), spec.data()));
}

std::string ReplanPolicy::ToString() const {
  switch (mode) {
    case ReplanMode::kNever: return "never";
    case ReplanMode::kEveryNChurn: return StrFormat("every-%zu", every_n_churn);
    case ReplanMode::kDrift: return "drift";
  }
  return "?";
}

RateDriftEstimator::RateDriftEstimator(size_t num_users, DriftOptions options)
    : options_(options),
      win_shares_(num_users),
      win_queries_(num_users),
      ema_shares_(num_users, 0),
      ema_queries_(num_users, 0) {}

void RateDriftEstimator::RecordShare(NodeId u) {
  win_shares_[u].fetch_add(1, std::memory_order_relaxed);
  window_requests_.fetch_add(1, std::memory_order_relaxed);
  requests_since_replan_.fetch_add(1, std::memory_order_relaxed);
  total_requests_.fetch_add(1, std::memory_order_relaxed);
}

void RateDriftEstimator::RecordQuery(NodeId u) {
  win_queries_[u].fetch_add(1, std::memory_order_relaxed);
  window_requests_.fetch_add(1, std::memory_order_relaxed);
  requests_since_replan_.fetch_add(1, std::memory_order_relaxed);
  total_requests_.fetch_add(1, std::memory_order_relaxed);
}

bool RateDriftEstimator::FoldWindow() {
  std::lock_guard<std::mutex> lock(ema_mu_);
  // Re-check under the lock: another thread may have folded this window.
  if (window_requests_.load(std::memory_order_relaxed) < options_.check_interval) {
    return false;
  }
  window_requests_.store(0, std::memory_order_relaxed);
  const double alpha = options_.ema_alpha;
  const double keep = 1.0 - alpha;
  double mass = 0;
  for (size_t u = 0; u < win_shares_.size(); ++u) {
    const double shares = win_shares_[u].exchange(0, std::memory_order_relaxed);
    const double queries = win_queries_[u].exchange(0, std::memory_order_relaxed);
    ema_shares_[u] = keep * ema_shares_[u] + alpha * shares;
    ema_queries_[u] = keep * ema_queries_[u] + alpha * queries;
    mass += ema_shares_[u] + ema_queries_[u];
  }
  ema_mass_ = mass;
  folded_windows_.fetch_add(1, std::memory_order_release);
  return true;
}

Workload RateDriftEstimator::EstimateWorkload(const Workload& planned) const {
  std::lock_guard<std::mutex> lock(ema_mu_);
  const size_t n = planned.num_users();
  PIGGY_CHECK_EQ(n, ema_shares_.size());
  Workload est;
  est.production.resize(n);
  est.consumption.resize(n);

  const double planned_p = planned.TotalProduction();
  const double planned_c = planned.TotalConsumption();
  const double planned_total = planned_p + planned_c;
  if (ema_mass_ <= 0 || planned_total <= 0) return planned;

  // Posterior-mean style blend: observed counts plus prior_strength *
  // ema_mass pseudo-observations distributed like the planned rates. Users
  // the window never saw keep a scaled-down planned rate instead of zero.
  const double prior_mass = options_.prior_strength * ema_mass_;
  double est_p = 0, est_c = 0;
  for (size_t u = 0; u < n; ++u) {
    est.production[u] =
        ema_shares_[u] + prior_mass * planned.production[u] / planned_total;
    est.consumption[u] =
        ema_queries_[u] + prior_mass * planned.consumption[u] / planned_total;
    est_p += est.production[u];
    est_c += est.consumption[u];
  }
  // Rescale so total traffic matches the planned profile's scale (planners
  // are scale-invariant; metrics stay comparable).
  const double scale = planned_total / (est_p + est_c);
  for (size_t u = 0; u < n; ++u) {
    est.production[u] *= scale;
    est.consumption[u] *= scale;
  }
  return est;
}

void RateDriftEstimator::OnReplanned() {
  requests_since_replan_.store(0, std::memory_order_relaxed);
  churn_since_replan_.store(0, std::memory_order_relaxed);
}

}  // namespace piggy
