// Scenario engine: time-varying workloads and topology churn over a
// simulated clock.
//
// The paper plans a static schedule from a fixed rate profile, but its own
// Sec. 3.3 motivates maintenance under change: real deployments see diurnal
// cycles, flash crowds around hot producers, celebrity accounts accreting
// followers in hours, and follow-back storms. A Scenario turns one of those
// stories into a deterministic, time-ordered op stream — shares, feed
// queries, follows/unfollows, and rate-shift markers — that the replay driver
// (scenario/replay.h) feeds through FeedService or ClusterService, so
// replanning policies can be measured under traffic that actually moves.
//
//   auto scenario = MakeScenario("flash-crowd", graph, options).MoveValueOrDie();
//   ScenarioOp op;
//   while (scenario->Next(&op)) { ... }           // time-ordered stream
//
// Simulated time runs over [0, options.duration), split into options.epochs
// equal epochs; each epoch has ground-truth per-user rates (EpochWorkload)
// and the request mix inside it is sampled exactly like the stationary
// workload driver — a request is a share with probability R_p / (R_p + R_c)
// under the epoch's rates, actors drawn from per-user alias tables. The
// request count per epoch is proportional to the epoch's total rate, so
// bursts emit denser traffic. Streams are bit-deterministic given
// (graph, base workload, options): Reset() + re-emission reproduces the
// stream, and the "stationary" scenario's request sequence is bit-identical
// to RunWorkloadDriver's with the same seed.
//
// Registered names (see RegisteredScenarios() for one-line descriptions):
//   "stationary"     fixed rates, no churn (the paper's evaluation regime)
//   "diurnal"        three phase-shifted regional cohorts on a sinusoid
//   "flash-crowd"    hub producers + their followers spike, then decay
//   "celebrity-join" one account gains followers fast while its rate ramps
//   "follow-storm"   follow-back wave + engagement shift, partial regret
//   "regional-event" one region's rates spike; outsiders follow into it
//   "shard-failure"  stationary traffic with scripted shard fail/restart
//                    windows (cluster replays only; see replay.h)

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/logging.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Simulated time axis: monotone, in abstract seconds.
class SimClock {
 public:
  double now() const { return now_; }

  /// Advances to `t`; time never runs backwards.
  void AdvanceTo(double t) {
    PIGGY_CHECK_GE(t, now_);
    now_ = t;
  }

  void Reset() { now_ = 0; }

 private:
  double now_ = 0;
};

/// \brief One event of a scenario stream.
enum class ScenarioOpKind : uint8_t {
  kShare,         ///< `user` shares an event
  kQuery,         ///< `user` reads their feed
  kFollow,        ///< `user` starts following `producer`
  kUnfollow,      ///< `user` stops following `producer`
  kRateShift,     ///< ground-truth rates changed (epoch `epoch` opens)
  kShardFail,     ///< serving shard `user` (a slot, not a node) goes down
  kShardRestart,  ///< serving shard `user` recovers from durable state
};

const char* ToString(ScenarioOpKind kind);

struct ScenarioOp {
  double time = 0;     ///< simulated seconds since scenario start
  ScenarioOpKind kind = ScenarioOpKind::kShare;
  /// Acting user (share/query), follower (follow ops), or the shard slot for
  /// shard events (the replay driver maps slots onto live shards modulo the
  /// cluster's shard count, so scenarios stay topology-agnostic).
  NodeId user = 0;
  NodeId producer = 0; ///< followed producer (follow/unfollow only)
  uint32_t epoch = 0;  ///< epoch this op belongs to

  std::string ToString() const;
};

/// \brief Scenario synthesis knobs. Factories interpret `intensity` and
/// `churn_level` per scenario; defaults give each story a pronounced but
/// plausible shape at bench scale.
struct ScenarioOptions {
  /// Share + query ops emitted across the whole run (churn ops are extra).
  size_t num_requests = 100000;
  /// Seeds both the request sampler (identically to DriverOptions::seed) and
  /// the independent churn-placement generator.
  uint64_t seed = 7;
  /// Simulated length of the run, in abstract seconds.
  double duration = 86400.0;
  /// Rate-evolution granularity: the run is split into this many equal
  /// epochs, each with its own ground-truth workload.
  size_t epochs = 16;
  /// Magnitude of the scenario's rate excursion (x the base rate at peak).
  double intensity = 8.0;
  /// Scales the number of follow/unfollow ops (1 = the scenario's default).
  double churn_level = 1.0;
};

/// \brief Registry metadata for one scenario family.
struct ScenarioInfo {
  std::string name;         ///< canonical registry key
  std::string description;  ///< one line, shown by `piggy_tool scenarios`
};

/// \brief A deterministic, time-ordered op stream over an evolving workload.
///
/// Instances are single-threaded stateful emitters; Reset() rewinds to the
/// first op and reproduces the stream bit-for-bit.
class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual const ScenarioInfo& info() const = 0;
  const std::string& name() const { return info().name; }

  /// The topology the scenario starts from (churn evolves a copy; the serving
  /// system under test owns the live graph).
  virtual const Graph& graph() const = 0;

  /// Rates in effect at epoch 0.
  virtual const Workload& base_workload() const = 0;

  virtual size_t num_epochs() const = 0;
  virtual double duration() const = 0;
  double EpochStart(size_t epoch) const {
    PIGGY_CHECK_LT(epoch, num_epochs());
    return duration() * static_cast<double>(epoch) /
           static_cast<double>(num_epochs());
  }

  /// Ground-truth per-user rates during `epoch` (what an omniscient planner
  /// would plan for; the system under test only sees the op stream).
  virtual const Workload& EpochWorkload(size_t epoch) const = 0;

  /// Emits the next op in time order. Returns false when the stream is
  /// exhausted.
  virtual bool Next(ScenarioOp* op) = 0;

  /// Rewinds the stream to the beginning (bit-identical re-emission).
  virtual void Reset() = 0;
};

/// Instantiates a registered scenario by name over `graph` with explicit base
/// rates (must cover every node). Unknown names return InvalidArgument
/// listing the valid options, mirroring MakePlanner / MakePartitioner.
Result<std::unique_ptr<Scenario>> MakeScenario(std::string_view name,
                                               const Graph& graph,
                                               Workload base_workload,
                                               const ScenarioOptions& options = {});

/// Same, synthesizing the base workload from graph structure
/// (GenerateWorkload with the paper's reference knobs + a small rate floor).
Result<std::unique_ptr<Scenario>> MakeScenario(std::string_view name,
                                               const Graph& graph,
                                               const ScenarioOptions& options = {});

/// \brief One epoch of a custom scenario: ground-truth rates plus scripted
/// churn ops. Share the same workload pointer across consecutive epochs to
/// suppress the rate-shift marker between them.
struct CustomEpoch {
  /// Rates in effect (must cover every graph node). An all-zero workload is
  /// legal: the epoch emits no requests.
  std::shared_ptr<const Workload> workload;
  /// Follow/unfollow/shard-fail/shard-restart ops, sorted ascending by time,
  /// with `time` inside the epoch's interval and `epoch` set to the epoch's
  /// index.
  std::vector<ScenarioOp> churn;
};

/// Builds a scenario from explicit per-epoch specs (epochs.size() overrides
/// options.epochs). This is the engine behind every registered family;
/// exposed so tests and external RegisterScenario factories can script exact
/// rate trajectories — e.g. a mid-run rate shift to zero — while keeping the
/// uniform request-sampling and emission semantics.
Result<std::unique_ptr<Scenario>> MakeCustomScenario(
    ScenarioInfo info, const Graph& graph, Workload base_workload,
    const ScenarioOptions& options, std::vector<CustomEpoch> epochs);

/// All registered scenarios (canonical names only), sorted by name.
std::vector<ScenarioInfo> RegisteredScenarios();

/// Registers an external scenario factory under `info.name`. Returns
/// AlreadyExists if the key is taken. Thread-safe.
Status RegisterScenario(
    ScenarioInfo info,
    std::function<Result<std::unique_ptr<Scenario>>(
        const Graph&, Workload, const ScenarioOptions&)> factory);

}  // namespace piggy
