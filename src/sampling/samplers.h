// Graph samplers for the CHITCHAT-scale experiments (paper Sec. 4.4).
//
// CHITCHAT is centralized and does not scale to full graphs, so the paper
// compares it against PARALLELNOSY on 5M-edge samples of twitter/flickr
// obtained with two methods whose bias the paper discusses: random-walk
// sampling (preserves clustering ratios; prunes high-degree edges) and
// breadth-first sampling (preserves the degree of early nodes; larger gains).
// Both samplers return the sub-graph induced on the visited node set, with
// node ids remapped to a dense range.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace piggy {

/// \brief A sample: induced subgraph plus the original id of each new node.
struct GraphSample {
  Graph graph;
  std::vector<NodeId> original_ids;  ///< original_ids[new_id] = id in source graph
};

/// Random-walk sampling: walk the undirected projection with restart
/// probability `restart` from a random start, collecting visited nodes until
/// the induced subgraph reaches `target_edges` (or the whole graph is
/// visited). Deterministic per seed.
Result<GraphSample> RandomWalkSample(const Graph& g, size_t target_edges,
                                     uint64_t seed, double restart = 0.15);

/// Breadth-first sampling: BFS over the undirected projection from a random
/// seed node (restarting on a fresh component if exhausted), adding whole
/// levels until the induced subgraph reaches `target_edges`.
Result<GraphSample> BreadthFirstSample(const Graph& g, size_t target_edges,
                                       uint64_t seed);

/// Induced subgraph on the given nodes (need not be sorted; duplicates are
/// ignored). Exposed for tests and custom samplers.
Result<GraphSample> InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace piggy
