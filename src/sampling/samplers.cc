#include "sampling/samplers.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "util/rng.h"
#include "util/u64_containers.h"

namespace piggy {

namespace {

// Number of induced edges among `nodes` (given a membership map).
size_t InducedEdgeCount(const Graph& g, const std::vector<NodeId>& nodes,
                        const U64Map<NodeId>& remap) {
  size_t count = 0;
  for (NodeId u : nodes) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (remap.Contains(v)) ++count;
    }
  }
  return count;
}

Result<GraphSample> BuildSample(const Graph& g, const std::vector<NodeId>& nodes,
                                const U64Map<NodeId>& remap) {
  GraphBuilder builder(nodes.size());
  builder.EnsureNodes(nodes.size());
  for (NodeId u : nodes) {
    const NodeId* new_u = remap.Find(u);
    for (NodeId v : g.OutNeighbors(u)) {
      const NodeId* new_v = remap.Find(v);
      if (new_v != nullptr) builder.AddEdge(*new_u, *new_v);
    }
  }
  GraphSample sample;
  PIGGY_ASSIGN_OR_RETURN(sample.graph, std::move(builder).Build());
  sample.original_ids = nodes;
  return sample;
}

// Picks a uniform undirected neighbor of u, or u itself if isolated.
NodeId RandomUndirectedNeighbor(const Graph& g, NodeId u, Rng& rng) {
  const size_t out = g.OutDegree(u);
  const size_t in = g.InDegree(u);
  if (out + in == 0) return u;
  size_t pick = rng.Uniform(out + in);
  return pick < out ? g.OutNeighbors(u)[pick] : g.InNeighbors(u)[pick - out];
}

}  // namespace

Result<GraphSample> InducedSubgraph(const Graph& g,
                                    const std::vector<NodeId>& nodes) {
  U64Map<NodeId> remap(nodes.size());
  std::vector<NodeId> unique;
  unique.reserve(nodes.size());
  for (NodeId u : nodes) {
    if (u >= g.num_nodes()) return Status::OutOfRange("node id not in graph");
    if (remap.PutIfAbsent(u, static_cast<NodeId>(unique.size()))) unique.push_back(u);
  }
  return BuildSample(g, unique, remap);
}

Result<GraphSample> RandomWalkSample(const Graph& g, size_t target_edges,
                                     uint64_t seed, double restart) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  Rng rng(seed);
  U64Map<NodeId> remap;
  std::vector<NodeId> visited;

  NodeId start = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
  NodeId current = start;
  size_t steps_since_progress = 0;
  const size_t progress_window = 100 * (g.num_nodes() + 1);

  auto visit = [&](NodeId u) {
    if (remap.PutIfAbsent(u, static_cast<NodeId>(visited.size()))) {
      visited.push_back(u);
      steps_since_progress = 0;
      return true;
    }
    return false;
  };
  visit(start);

  // Check the induced-edge budget only every `check_interval` new nodes: the
  // exact count is a scan over visited adjacency.
  size_t next_check = 256;
  while (visited.size() < g.num_nodes()) {
    ++steps_since_progress;
    if (steps_since_progress > progress_window) {
      // The walk is trapped in a saturated component; jump to a fresh node.
      NodeId fresh = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
      current = fresh;
      start = fresh;
      visit(fresh);
      continue;
    }
    if (rng.Bernoulli(restart)) {
      current = start;
      continue;
    }
    current = RandomUndirectedNeighbor(g, current, rng);
    visit(current);
    if (visited.size() >= next_check) {
      if (InducedEdgeCount(g, visited, remap) >= target_edges) break;
      next_check += std::max<size_t>(256, visited.size() / 8);
    }
  }
  return BuildSample(g, visited, remap);
}

Result<GraphSample> BreadthFirstSample(const Graph& g, size_t target_edges,
                                       uint64_t seed) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  Rng rng(seed);
  U64Map<NodeId> remap;
  std::vector<NodeId> visited;
  std::deque<NodeId> frontier;

  auto visit = [&](NodeId u) {
    if (remap.PutIfAbsent(u, static_cast<NodeId>(visited.size()))) {
      visited.push_back(u);
      frontier.push_back(u);
      return true;
    }
    return false;
  };
  visit(static_cast<NodeId>(rng.Uniform(g.num_nodes())));

  size_t next_check = 256;
  size_t edges = 0;
  while (edges < target_edges && visited.size() < g.num_nodes()) {
    if (frontier.empty()) {
      // Restart on an unvisited node (disconnected source graph).
      NodeId u;
      do {
        u = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
      } while (remap.Contains(u));
      visit(u);
      continue;
    }
    NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : g.OutNeighbors(u)) visit(v);
    for (NodeId v : g.InNeighbors(u)) visit(v);
    if (visited.size() >= next_check) {
      edges = InducedEdgeCount(g, visited, remap);
      next_check = visited.size() + std::max<size_t>(256, visited.size() / 8);
    }
  }
  return BuildSample(g, visited, remap);
}

}  // namespace piggy
