// Reusable scratch arena for the weighted densest-subgraph oracle.
//
// CHITCHAT drives the oracle millions of times per schedule build; the
// original solver allocated a vector<vector> adjacency (one heap allocation
// per instance node) on every call, which dominated the solve cost. The
// arena owns flat CSR buffers that are resized but never shrunk, so
// steady-state solves perform zero heap allocations. Each worker thread of
// the parallel oracle sweep owns one arena; an arena must not be shared by
// concurrent solves.

#pragma once

#include <cstdint>
#include <vector>

namespace piggy {

/// \brief Flat scratch buffers for SolveWeightedDensestSubgraph.
///
/// All vectors grow monotonically across calls (assign/resize reuse
/// capacity), which is what makes repeated solves allocation-free once the
/// largest instance seen so far has warmed the arena up.
struct OracleScratch {
  /// Lazy min-heap entry; stale entries are detected by comparing the degree
  /// recorded at push time against the node's current degree.
  struct HeapEntry {
    double wd;             ///< weighted degree deg/g at push time
    uint32_t node;         ///< instance node id (producers, then consumers)
    uint32_t deg_at_push;  ///< degree when pushed; mismatch = stale
  };

  std::vector<uint32_t> csr_offsets;    ///< n + 1 offsets into csr_adj
  std::vector<uint32_t> csr_adj;        ///< cross adjacency, both directions
  std::vector<uint32_t> cursor;         ///< per-node fill cursor for the CSR build
  std::vector<uint32_t> deg;            ///< uncovered incident edges while alive
  std::vector<double> weight;           ///< g(u), cached from the instance
  std::vector<uint8_t> alive;           ///< 1 until peeled; reused for "in best"
  std::vector<uint32_t> removal_order;  ///< peel order, for reconstruction
  std::vector<HeapEntry> heap;          ///< binary-heap storage
};

}  // namespace piggy
