// Cooperative control hooks threaded through the long-running optimizers.
//
// A PlanHooks carries two optional callbacks: a progress observer and a stop
// predicate. Both default to unset, in which case the optimizers behave
// exactly as before the hooks existed (the bit-parity golden tests rely on
// this). When the stop predicate fires, an optimizer finishes *early but
// valid*: it assigns every still-unserved edge directly at the hybrid cost
// and returns, so deadlines and cancellation always yield a schedule that
// passes ValidateSchedule — an anytime guarantee the serving layer
// (FeedService) depends on.
//
// The hooks are deliberately decoupled from PlanContext (core/planner.h),
// which is the user-facing bundle of thread count + deadline + cancellation
// token; planner adapters compile a PlanContext down to a PlanHooks.

#pragma once

#include <cstddef>
#include <functional>

namespace piggy {

/// \brief One progress observation from a running optimizer.
struct PlanProgress {
  const char* phase = "";  ///< e.g. "greedy" (CHITCHAT), "iteration" (NOSY)
  size_t step = 0;         ///< steps completed in this phase
  size_t total_hint = 0;   ///< upper bound on steps if known, else 0
  double cost = 0;         ///< current schedule cost estimate (0 if untracked)
};

/// \brief Optional cooperative callbacks honored by the optimizers.
struct PlanHooks {
  /// Called between steps (throttled by the optimizer); never concurrently.
  std::function<void(const PlanProgress&)> progress;
  /// Checked between steps; returning true makes the optimizer finish early
  /// with a valid (hybrid-completed) schedule.
  std::function<bool()> should_stop;

  bool ShouldStop() const { return should_stop && should_stop(); }

  void Report(const char* phase, size_t step, size_t total_hint,
              double cost) const {
    if (progress) progress(PlanProgress{phase, step, total_hint, cost});
  }
};

}  // namespace piggy
