#include "core/chitchat.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "core/cost_model.h"
#include "core/densest_subgraph.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace piggy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct HubSlot {
  HubGraphInstance instance;
  DensestSubgraphSolution solution;
  uint64_t version = 0;
  // Set when an edge of the maximal hub-graph changed since the last oracle
  // run. A dirty slot's true density can only have DECREASED (coverage
  // shrank); the only density-increasing events — node weights dropping to
  // zero because an edge entered H or L — happen solely at the hub selected
  // this step (or a singleton's endpoints) and trigger an eager refresh
  // there. This is what makes lazy re-evaluation sound (see Run()).
  bool dirty = false;
};

struct HubEntry {
  double density;  // newly covered elements per unit cost (maximize)
  size_t covered;  // elements covered; tie-break toward broader candidates
  NodeId hub;
  uint64_t version;
};
// Max-heap order: higher density first; among equal densities prefer more
// coverage (degenerate link-only hub-graphs tie with direct service; a hub
// that additionally piggybacks cross edges is weakly better for set cover);
// then smaller hub id for determinism.
struct HubEntryCmp {
  bool operator()(const HubEntry& a, const HubEntry& b) const {
    if (a.density != b.density) return a.density < b.density;
    if (a.covered != b.covered) return a.covered < b.covered;
    return a.hub > b.hub;
  }
};

struct SingletonEntry {
  double cost;
  uint32_t edge_idx;
};
struct SingletonCmp {
  bool operator()(const SingletonEntry& a, const SingletonEntry& b) const {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.edge_idx > b.edge_idx;
  }
};

class ChitChatRunner {
 public:
  ChitChatRunner(const Graph& g, const Workload& w, const ChitChatOptions& options)
      : g_(g), w_(w), options_(options), covered_(g.num_edges(), 0),
        slots_(g.num_nodes()) {}

  Result<Schedule> Run(ChitChatStats* stats) {
    uncovered_ = g_.num_edges();

    // Singleton candidates: every edge at its hybrid cost.
    {
      std::vector<SingletonEntry> entries;
      entries.reserve(g_.num_edges());
      size_t idx = 0;
      g_.ForEachEdge([&](const Edge& e) {
        entries.push_back(
            {HybridEdgeCost(w_, e.src, e.dst), static_cast<uint32_t>(idx++)});
      });
      singletons_ = SingletonQueue(SingletonCmp{}, std::move(entries));
    }

    // Initial oracle pass over every potential hub.
    for (NodeId hub = 0; hub < g_.num_nodes(); ++hub) {
      if (g_.InDegree(hub) + g_.OutDegree(hub) == 0) continue;
      RefreshHub(hub);
    }

    // Lazy greedy: heap entries may overstate a hub's density (its coverage
    // shrank since it was pushed), never understate it — so the first fresh,
    // non-dirty entry at the top is the true maximum. Dirty tops are
    // recomputed and reinserted before any selection.
    while (uncovered_ > 0) {
      // Drop covered singletons permanently.
      while (!singletons_.empty() && covered_[singletons_.top().edge_idx]) {
        singletons_.pop();
      }
      PIGGY_CHECK(!singletons_.empty()) << "uncovered edges but no candidates";
      const double singleton_cost = singletons_.top().cost;
      const double singleton_density = singleton_cost > 0 ? 1.0 / singleton_cost : kInf;

      // Surface the best live hub entry, refreshing dirty slots on demand.
      const HubSlot* best_slot = nullptr;
      double hub_density = -1;
      while (!hub_queue_.empty()) {
        const HubEntry& top = hub_queue_.top();
        HubSlot& slot = slots_[top.hub];
        if (top.version != slot.version) {
          hub_queue_.pop();  // superseded by a newer entry
          continue;
        }
        if (slot.dirty) {
          NodeId hub = top.hub;
          hub_queue_.pop();
          RefreshHub(hub);  // recompute and reinsert at the true density
          continue;
        }
        best_slot = &slot;
        hub_density = top.density;
        break;
      }

      if (best_slot != nullptr && best_slot->solution.covered > 0 &&
          hub_density >= singleton_density) {
        ApplyHub(*best_slot);
        ++stats_.hub_selections;
      } else {
        SingletonEntry e = singletons_.top();
        singletons_.pop();
        ApplySingleton(g_.EdgeAt(e.edge_idx));
        ++stats_.singleton_selections;
      }
      // Eagerly refresh only the hubs whose node weights changed (edges
      // added to H or L); everything else was merely marked dirty.
      for (NodeId hub : eager_refresh_) RefreshHub(hub);
      eager_refresh_.clear();
    }

    stats_.final_cost = ScheduleCost(g_, w_, schedule_, ResidualPolicy::kFree);
    if (stats != nullptr) *stats = stats_;
    return std::move(schedule_);
  }

 private:
  using SingletonQueue =
      std::priority_queue<SingletonEntry, std::vector<SingletonEntry>, SingletonCmp>;

  // Marks edge (u, v) covered; records it for hub recomputation.
  void Cover(NodeId u, NodeId v) {
    size_t idx = g_.EdgeIndex(u, v);
    PIGGY_CHECK_LT(idx, g_.num_edges());
    if (!covered_[idx]) {
      covered_[idx] = 1;
      PIGGY_CHECK_GT(uncovered_, 0u);
      --uncovered_;
    }
    TouchEdge(u, v);
  }

  bool IsCoveredEdge(NodeId u, NodeId v) const {
    size_t idx = g_.EdgeIndex(u, v);
    PIGGY_CHECK_LT(idx, g_.num_edges());
    return covered_[idx] != 0;
  }

  // Collects every hub whose maximal hub-graph contains edge (u, v):
  // u (as a pull link), v (as a push link), and every w on a directed
  // 2-path u -> w -> v (as a cross edge).
  void TouchEdge(NodeId u, NodeId v) {
    TouchHub(u);
    TouchHub(v);
    auto out_u = g_.OutNeighbors(u);
    auto in_v = g_.InNeighbors(v);
    // Two-pointer intersection of sorted spans.
    size_t i = 0, j = 0;
    while (i < out_u.size() && j < in_v.size()) {
      if (out_u[i] < in_v[j]) {
        ++i;
      } else if (out_u[i] > in_v[j]) {
        ++j;
      } else {
        TouchHub(out_u[i]);
        ++i;
        ++j;
      }
    }
  }

  void TouchHub(NodeId hub) { slots_[hub].dirty = true; }

  void ApplyHub(const HubSlot& slot) {
    const HubGraphInstance& inst = slot.instance;
    const DensestSubgraphSolution& sol = slot.solution;

    std::vector<uint8_t> p_sel(inst.producers.size(), 0);
    std::vector<uint8_t> c_sel(inst.consumers.size(), 0);

    for (uint32_t p : sol.producer_idx) {
      p_sel[p] = 1;
      NodeId x = inst.producers[p];
      if (schedule_.AddPush(x, inst.hub)) TouchEdge(x, inst.hub);
      Cover(x, inst.hub);
    }
    for (uint32_t c : sol.consumer_idx) {
      c_sel[c] = 1;
      NodeId y = inst.consumers[c];
      if (schedule_.AddPull(inst.hub, y)) TouchEdge(inst.hub, y);
      Cover(inst.hub, y);
    }
    for (const auto& [p, c] : inst.cross_edges) {
      if (!p_sel[p] || !c_sel[c]) continue;
      NodeId x = inst.producers[p];
      NodeId y = inst.consumers[c];
      // Instance cross edges are uncovered by construction and the selected
      // slot is fresh (only non-dirty slots are selected), so this covers a
      // new element.
      schedule_.SetHubCover(x, y, inst.hub);
      Cover(x, y);
      ++stats_.edges_covered_by_hubs;
    }
    // Weights in G(hub) dropped to zero (new H/L entries): its density may
    // have increased, which lazy dirtiness cannot represent — refresh now.
    eager_refresh_.push_back(inst.hub);
  }

  void ApplySingleton(const Edge& e) {
    if (w_.rp(e.src) <= w_.rc(e.dst)) {
      schedule_.AddPush(e.src, e.dst);
      eager_refresh_.push_back(e.dst);  // g(src) dropped to zero in G(dst)
    } else {
      schedule_.AddPull(e.src, e.dst);
      eager_refresh_.push_back(e.src);  // g(dst) dropped to zero in G(src)
    }
    Cover(e.src, e.dst);
  }

  void RefreshHub(NodeId hub) {
    HubSlot& slot = slots_[hub];
    slot.instance = BuildInstance(hub);
    ++stats_.oracle_calls;
    const bool small = slot.instance.num_nodes() <= 14;
    slot.solution = (options_.exhaustive_oracle_small && small)
                        ? SolveDensestSubgraphExhaustive(slot.instance)
                        : SolveWeightedDensestSubgraph(slot.instance);
    ++slot.version;
    slot.dirty = false;
    if (slot.solution.covered > 0) {
      hub_queue_.push(
          {slot.solution.density, slot.solution.covered, hub, slot.version});
    }
  }

  HubGraphInstance BuildInstance(NodeId hub) const {
    HubGraphInstance inst;
    inst.hub = hub;

    auto in = g_.InNeighbors(hub);
    const size_t np = std::min(in.size(), options_.max_producers);
    inst.producers.assign(in.begin(), in.begin() + np);
    inst.producer_weight.resize(np);
    inst.producer_link_in_z.resize(np);
    for (size_t p = 0; p < np; ++p) {
      NodeId x = inst.producers[p];
      inst.producer_weight[p] = schedule_.IsPush(x, hub) ? 0.0 : w_.rp(x);
      inst.producer_link_in_z[p] = IsCoveredEdge(x, hub) ? 0 : 1;
    }

    auto out = g_.OutNeighbors(hub);
    const size_t ny = std::min(out.size(), options_.max_consumers);
    inst.consumers.assign(out.begin(), out.begin() + ny);
    inst.consumer_weight.resize(ny);
    inst.consumer_link_in_z.resize(ny);
    for (size_t c = 0; c < ny; ++c) {
      NodeId y = inst.consumers[c];
      inst.consumer_weight[c] = schedule_.IsPull(hub, y) ? 0.0 : w_.rc(y);
      inst.consumer_link_in_z[c] = IsCoveredEdge(hub, y) ? 0 : 1;
    }

    // Uncovered cross edges x -> y via sorted intersection of out(x) with the
    // consumer prefix.
    for (uint32_t p = 0; p < np; ++p) {
      if (inst.cross_edges.size() >= options_.max_cross_edges) break;
      NodeId x = inst.producers[p];
      auto out_x = g_.OutNeighbors(x);
      size_t i = 0, j = 0;
      while (i < out_x.size() && j < ny) {
        if (out_x[i] < inst.consumers[j]) {
          ++i;
        } else if (out_x[i] > inst.consumers[j]) {
          ++j;
        } else {
          NodeId y = inst.consumers[j];
          if (y != x && !IsCoveredEdge(x, y)) {
            inst.cross_edges.emplace_back(p, static_cast<uint32_t>(j));
            if (inst.cross_edges.size() >= options_.max_cross_edges) break;
          }
          ++i;
          ++j;
        }
      }
    }
    return inst;
  }

  const Graph& g_;
  const Workload& w_;
  const ChitChatOptions& options_;

  Schedule schedule_;
  std::vector<uint8_t> covered_;
  size_t uncovered_ = 0;

  std::vector<HubSlot> slots_;
  std::priority_queue<HubEntry, std::vector<HubEntry>, HubEntryCmp> hub_queue_;
  SingletonQueue singletons_{SingletonCmp{}};

  // Hubs whose node weights changed this step (eager refresh targets).
  std::vector<NodeId> eager_refresh_;

  ChitChatStats stats_;
};

}  // namespace

std::string ChitChatStats::ToString() const {
  return StrFormat(
      "hubs=%zu singletons=%zu oracle_calls=%zu piggybacked=%zu cost=%.3f",
      hub_selections, singleton_selections, oracle_calls, edges_covered_by_hubs,
      final_cost);
}

Result<Schedule> RunChitChat(const Graph& g, const Workload& w,
                             const ChitChatOptions& options, ChitChatStats* stats) {
  if (w.num_users() != g.num_nodes()) {
    return Status::InvalidArgument("workload size does not match graph");
  }
  if (options.max_producers == 0 || options.max_consumers == 0) {
    return Status::InvalidArgument("hub-graph caps must be positive");
  }
  ChitChatRunner runner(g, w, options);
  return runner.Run(stats);
}

}  // namespace piggy
