#include "core/chitchat.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/cost_model.h"
#include "core/densest_subgraph.h"
#include "core/oracle_scratch.h"
#include "simd/kernels.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace piggy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct HubSlot {
  HubGraphInstance instance;
  DensestSubgraphSolution solution;
  // The cached cross pairs of the hub's (capped) maximal hub-graph as
  // parallel arrays: producer index, consumer index, and the cross edge's
  // canonical index into the coverage bitmap (32-bit: the runner checks the
  // edge count fits). The topology never changes during a run, so it is
  // intersected exactly once; refreshes filter it against the coverage
  // bitmap — struct-of-arrays so the filter kernel can gather the coverage
  // bytes in vector blocks.
  std::vector<uint32_t> topo_p;
  std::vector<uint32_t> topo_c;
  std::vector<uint32_t> topo_edge;
  bool topo_built = false;
  uint64_t version = 0;
  // Set when an edge of the maximal hub-graph changed since the last oracle
  // run. A dirty slot's true density can only have DECREASED (coverage
  // shrank); the only density-increasing events — node weights dropping to
  // zero because an edge entered H or L — happen solely at the hub selected
  // this step (or a singleton's endpoints) and trigger an eager refresh
  // there. This is what makes lazy re-evaluation sound (see Run()).
  bool dirty = false;
};

struct HubEntry {
  double density;  // newly covered elements per unit cost (maximize)
  size_t covered;  // elements covered; tie-break toward broader candidates
  NodeId hub;
  uint64_t version;
};
// Max-heap order: higher density first; among equal densities prefer more
// coverage (degenerate link-only hub-graphs tie with direct service; a hub
// that additionally piggybacks cross edges is weakly better for set cover);
// then smaller hub id for determinism.
struct HubEntryCmp {
  bool operator()(const HubEntry& a, const HubEntry& b) const {
    if (a.density != b.density) return a.density < b.density;
    if (a.covered != b.covered) return a.covered < b.covered;
    return a.hub > b.hub;
  }
};

struct SingletonEntry {
  double cost;
  uint32_t edge_idx;
};
struct SingletonCmp {
  bool operator()(const SingletonEntry& a, const SingletonEntry& b) const {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.edge_idx > b.edge_idx;
  }
};

class ChitChatRunner {
 public:
  ChitChatRunner(const Graph& g, const Workload& w, const ChitChatOptions& options)
      : g_(g), w_(w), options_(options),
        covered_(g.num_edges() + simd::kCoveredPadding, 0), slots_(g.num_nodes()) {
    // Canonical edge indices ride in 32-bit topo arrays and kernel gathers.
    PIGGY_CHECK_LE(g.num_edges(), size_t{UINT32_MAX});
    const size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                                    : options.num_threads;
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    scratch_.resize(pool_ != nullptr ? threads : 1);
  }

  Result<Schedule> Run(ChitChatStats* stats) {
    uncovered_ = g_.num_edges();

    // Singleton candidates: every edge at its hybrid cost.
    {
      std::vector<SingletonEntry> entries;
      entries.reserve(g_.num_edges());
      size_t idx = 0;
      g_.ForEachEdge([&](const Edge& e) {
        entries.push_back(
            {HybridEdgeCost(w_, e.src, e.dst), static_cast<uint32_t>(idx++)});
      });
      singletons_ = SingletonQueue(SingletonCmp{}, std::move(entries));
    }

    // Initial oracle pass over every potential hub, swept in parallel. Every
    // hub with an incident edge builds its topology here; later refreshes
    // (eager targets and dirty heap tops all have incident edges) only
    // re-filter it, so the cross index built below stays complete.
    {
      std::vector<NodeId> hubs;
      hubs.reserve(g_.num_nodes());
      for (NodeId hub = 0; hub < g_.num_nodes(); ++hub) {
        if (g_.InDegree(hub) + g_.OutDegree(hub) > 0) hubs.push_back(hub);
      }
      RefreshHubs(hubs);
    }
    BuildCrossIndex();

    // Lazy greedy: heap entries may overstate a hub's density (its coverage
    // shrank since it was pushed), never understate it — so the first fresh,
    // non-dirty entry at the top is the true maximum. Dirty tops are
    // recomputed and reinserted before any selection.
    const bool has_hooks =
        options_.hooks.progress != nullptr || options_.hooks.should_stop != nullptr;
    size_t selections = 0;
    while (uncovered_ > 0) {
      // Cooperative control, throttled so the std::function indirection stays
      // off the hot path. On stop, fall back to direct service for whatever
      // is left — early but valid (the hooks contract in plan_hooks.h).
      // Progress is covered edges out of the edge total; the running cost is
      // not tracked incrementally, so report it as 0 (= untracked).
      if (has_hooks && (selections++ & 0xffu) == 0) {
        options_.hooks.Report("greedy", g_.num_edges() - uncovered_,
                              g_.num_edges(), /*cost=*/0);
        if (options_.hooks.ShouldStop()) {
          ServeUncoveredDirect();
          break;
        }
      }
      // Drop covered singletons permanently.
      while (!singletons_.empty() && covered_[singletons_.top().edge_idx]) {
        singletons_.pop();
      }
      PIGGY_CHECK(!singletons_.empty()) << "uncovered edges but no candidates";
      const double singleton_cost = singletons_.top().cost;
      const double singleton_density = singleton_cost > 0 ? 1.0 / singleton_cost : kInf;

      // Surface the best live hub entry, refreshing dirty slots on demand.
      HubSlot* best_slot = nullptr;
      double hub_density = -1;
      while (!hub_queue_.empty()) {
        const HubEntry& top = hub_queue_.top();
        HubSlot& slot = slots_[top.hub];
        if (top.version != slot.version) {
          hub_queue_.pop();  // superseded by a newer entry
          continue;
        }
        if (slot.dirty) {
          // Refresh dirty tops strictly one at a time, in every mode: the
          // peeling oracle's value is an approximation that is not monotone
          // under coverage shrinkage at ULP granularity (summation order
          // inside the solver shifts when a cross edge drops out), so
          // batching refreshes — though sound for the mathematical optimum —
          // changes which near-tie surfaces first and breaks bit-parity
          // between thread counts.
          NodeId hub = top.hub;
          hub_queue_.pop();
          RefreshHub(hub);  // recompute and reinsert at the true density
          continue;
        }
        best_slot = &slot;
        hub_density = top.density;
        break;
      }

      if (best_slot != nullptr && best_slot->solution.covered > 0 &&
          hub_density >= singleton_density) {
        ApplyHub(*best_slot);
        ++stats_.hub_selections;
      } else {
        SingletonEntry e = singletons_.top();
        singletons_.pop();
        ApplySingleton(g_.EdgeAt(e.edge_idx));
        ++stats_.singleton_selections;
      }
      // Eagerly refresh only the hubs whose node weights changed (edges
      // added to H or L); everything else was merely marked dirty.
      RefreshHubs(eager_refresh_);
      eager_refresh_.clear();
    }

    stats_.final_cost = ScheduleCost(g_, w_, schedule_, ResidualPolicy::kFree);
    if (stats != nullptr) *stats = stats_;
    return std::move(schedule_);
  }

 private:
  using SingletonQueue =
      std::priority_queue<SingletonEntry, std::vector<SingletonEntry>, SingletonCmp>;

  // Marks edge (u, v) covered; records it for hub recomputation.
  void Cover(NodeId u, NodeId v) {
    size_t idx = g_.EdgeIndex(u, v);
    PIGGY_CHECK_LT(idx, g_.num_edges());
    if (!covered_[idx]) {
      covered_[idx] = 1;
      PIGGY_CHECK_GT(uncovered_, 0u);
      --uncovered_;
    }
    TouchEdge(u, v, idx);
  }

  // Marks every hub whose cached instance can see edge (u, v) dirty: the two
  // endpoints (the edge is a link of G(u) and G(v)) and, via the inverted
  // cross index, exactly the hubs caching it as a cross pair. Hubs on a
  // 2-path u -> w -> v whose cap excluded the pair keep their fresh oracle
  // entries — their instances cannot change.
  void TouchEdge(NodeId u, NodeId v, size_t edge_idx) {
    TouchHub(u);
    TouchHub(v);
    for (uint64_t k = cross_index_offsets_[edge_idx];
         k < cross_index_offsets_[edge_idx + 1]; ++k) {
      TouchHub(cross_index_hubs_[k]);
    }
  }

  // Inverts the cached topologies into edge -> interested hubs (CSR layout).
  // Built once, after the initial pass materialized every hub's topology.
  void BuildCrossIndex() {
    cross_index_offsets_.assign(g_.num_edges() + 1, 0);
    for (const HubSlot& slot : slots_) {
      for (uint32_t e : slot.topo_edge) {
        ++cross_index_offsets_[e + 1];
      }
    }
    for (size_t e = 0; e < g_.num_edges(); ++e) {
      cross_index_offsets_[e + 1] += cross_index_offsets_[e];
    }
    cross_index_hubs_.resize(cross_index_offsets_.back());
    std::vector<uint64_t> cursor(cross_index_offsets_.begin(),
                                 cross_index_offsets_.end() - 1);
    for (NodeId hub = 0; hub < slots_.size(); ++hub) {
      for (uint32_t e : slots_[hub].topo_edge) {
        cross_index_hubs_[cursor[e]++] = hub;
      }
    }
    cross_index_built_ = true;
  }

  void TouchHub(NodeId hub) { slots_[hub].dirty = true; }

  void ApplyHub(HubSlot& slot) {
    HubGraphInstance& inst = slot.instance;
    const DensestSubgraphSolution& sol = slot.solution;

    p_sel_.assign(inst.producers.size(), 0);
    c_sel_.assign(inst.consumers.size(), 0);

    // Cover() also dirties the link's interested hubs, so no extra touch is
    // needed when an edge newly enters H or L.
    for (uint32_t p : sol.producer_idx) {
      p_sel_[p] = 1;
      NodeId x = inst.producers[p];
      schedule_.AddPush(x, inst.hub);
      inst.producer_weight[p] = 0.0;  // x -> hub entered H: g(x) is now free
      Cover(x, inst.hub);
    }
    for (uint32_t c : sol.consumer_idx) {
      c_sel_[c] = 1;
      NodeId y = inst.consumers[c];
      schedule_.AddPull(inst.hub, y);
      inst.consumer_weight[c] = 0.0;  // hub -> y entered L: g(y) is now free
      Cover(inst.hub, y);
    }
    for (const auto& [p, c] : inst.cross_edges) {
      if (!p_sel_[p] || !c_sel_[c]) continue;
      NodeId x = inst.producers[p];
      NodeId y = inst.consumers[c];
      // Instance cross edges are uncovered by construction and the selected
      // slot is fresh (only non-dirty slots are selected), so this covers a
      // new element.
      schedule_.SetHubCover(x, y, inst.hub);
      Cover(x, y);
      ++stats_.edges_covered_by_hubs;
    }
    // Weights in G(hub) dropped to zero (new H/L entries): its density may
    // have increased, which lazy dirtiness cannot represent — refresh now.
    eager_refresh_.push_back(inst.hub);
  }

  // Deadline/cancellation bail-out: serve every still-uncovered edge at the
  // hybrid policy, without the usual dirtiness bookkeeping (the greedy loop
  // is over). Keeps the Theorem-1 validity invariant under early exit.
  void ServeUncoveredDirect() {
    for (size_t idx = 0; idx < g_.num_edges(); ++idx) {
      if (covered_[idx]) continue;
      const Edge e = g_.EdgeAt(idx);
      if (w_.rp(e.src) <= w_.rc(e.dst)) {
        schedule_.AddPush(e.src, e.dst);
      } else {
        schedule_.AddPull(e.src, e.dst);
      }
      covered_[idx] = 1;
      --uncovered_;
      ++stats_.singleton_selections;
    }
    PIGGY_CHECK_EQ(uncovered_, 0u);
  }

  void ApplySingleton(const Edge& e) {
    if (w_.rp(e.src) <= w_.rc(e.dst)) {
      schedule_.AddPush(e.src, e.dst);
      ZeroProducerWeight(e.dst, e.src);  // g(src) dropped to zero in G(dst)
      eager_refresh_.push_back(e.dst);
    } else {
      schedule_.AddPull(e.src, e.dst);
      ZeroConsumerWeight(e.src, e.dst);  // g(dst) dropped to zero in G(src)
      eager_refresh_.push_back(e.src);
    }
    Cover(e.src, e.dst);
  }

  // Weight state is event-maintained: an edge enters H or L only in ApplyHub
  // (indices known) or via a singleton, where the counterpart hub's cached
  // entry is found by binary search — if within the producer/consumer cap.
  void ZeroProducerWeight(NodeId hub, NodeId x) {
    HubGraphInstance& inst = slots_[hub].instance;
    auto it = std::lower_bound(inst.producers.begin(), inst.producers.end(), x);
    if (it != inst.producers.end() && *it == x) {
      inst.producer_weight[it - inst.producers.begin()] = 0.0;
    }
  }
  void ZeroConsumerWeight(NodeId hub, NodeId y) {
    HubGraphInstance& inst = slots_[hub].instance;
    auto it = std::lower_bound(inst.consumers.begin(), inst.consumers.end(), y);
    if (it != inst.consumers.end() && *it == y) {
      inst.consumer_weight[it - inst.consumers.begin()] = 0.0;
    }
  }

  // Recomputes one hub's instance and oracle solution into its slot, using
  // the given arena. Reads only frozen state (graph, covered_, schedule_) and
  // writes only the slot, so distinct hubs may solve concurrently.
  void SolveSlot(NodeId hub, OracleScratch& scratch) {
    HubSlot& slot = slots_[hub];
    // Topologies may only materialize before the cross index is inverted;
    // a later build would leave its pairs untracked and break dirtying.
    PIGGY_CHECK(slot.topo_built || !cross_index_built_);
    if (!slot.topo_built) BuildTopo(hub, &slot);
    RefreshInstance(hub, &slot);
    const bool small = slot.instance.num_nodes() <= 14;
    if (options_.exhaustive_oracle_small && small) {
      slot.solution = SolveDensestSubgraphExhaustive(slot.instance);
    } else {
      SolveWeightedDensestSubgraph(slot.instance, scratch, &slot.solution);
    }
  }

  // Publishes a freshly solved slot: bumps its version and reinserts its heap
  // entry. Must run on the coordinating thread.
  void CommitSlot(NodeId hub) {
    HubSlot& slot = slots_[hub];
    ++stats_.oracle_calls;
    ++slot.version;
    slot.dirty = false;
    if (slot.solution.covered > 0) {
      hub_queue_.push(
          {slot.solution.density, slot.solution.covered, hub, slot.version});
    }
  }

  void RefreshHub(NodeId hub) {
    SolveSlot(hub, scratch_[0]);
    CommitSlot(hub);
  }

  // Refreshes a batch of distinct hubs — in parallel when a pool exists —
  // then commits in vector order. Commits are deterministic and each solve
  // depends only on the frozen coverage state, never on other solves in the
  // batch, so any thread count yields the same heap contents: bit-identical
  // schedules. (The heap pops in comparator order, a strict total order, so
  // even the commit order is immaterial; keeping it fixed makes that easy to
  // reason about.)
  void RefreshHubs(const std::vector<NodeId>& hubs) {
    if (pool_ != nullptr && hubs.size() > 1) {
      ParallelForShards(*pool_, hubs.size(), scratch_.size(),
                        [this, &hubs](size_t shard, size_t begin, size_t end) {
                          for (size_t i = begin; i < end; ++i) {
                            SolveSlot(hubs[i], scratch_[shard]);
                          }
                        });
    } else {
      for (NodeId hub : hubs) SolveSlot(hub, scratch_[0]);
    }
    for (NodeId hub : hubs) CommitSlot(hub);
  }

  // Builds the static part of `hub`'s capped maximal hub-graph exactly once:
  // node lists, weights, and the cross-pair topology with canonical edge
  // indices. Weights are event-maintained afterwards (ApplyHub and
  // ApplySingleton zero an entry the moment its edge enters H or L), so
  // refreshes never re-probe the schedule.
  void BuildTopo(NodeId hub, HubSlot* slot) {
    HubGraphInstance& inst = slot->instance;
    inst.hub = hub;

    auto in = g_.InNeighbors(hub);
    const size_t np = std::min(in.size(), options_.max_producers);
    inst.producers.assign(in.begin(), in.begin() + np);
    inst.producer_weight.resize(np);
    inst.producer_link_in_z.resize(np);
    for (size_t p = 0; p < np; ++p) {
      NodeId x = inst.producers[p];
      inst.producer_weight[p] = schedule_.IsPush(x, hub) ? 0.0 : w_.rp(x);
    }

    auto out = g_.OutNeighbors(hub);
    const size_t ny = std::min(out.size(), options_.max_consumers);
    inst.consumers.assign(out.begin(), out.begin() + ny);
    inst.consumer_weight.resize(ny);
    inst.consumer_link_in_z.resize(ny);
    for (size_t c = 0; c < ny; ++c) {
      NodeId y = inst.consumers[c];
      inst.consumer_weight[c] = schedule_.IsPull(hub, y) ? 0.0 : w_.rc(y);
    }

    // Cross pairs x -> y via sorted intersection of out(x) with the consumer
    // prefix (vectorized, galloping when a follower list dwarfs the prefix).
    // The match position in out(x) doubles as the edge's canonical index, so
    // coverage filtering is a plain bitmap read from here on. The emit loop
    // replicates the streaming cap exactly: stop the instant the cap fills,
    // even mid-intersection.
    const std::span<const NodeId> consumer_prefix(inst.consumers.data(), ny);
    std::vector<simd::IndexPair> pairs;
    for (uint32_t p = 0; p < np; ++p) {
      if (slot->topo_p.size() >= options_.max_cross_edges) break;
      NodeId x = inst.producers[p];
      pairs.clear();
      simd::IntersectSortedPairsInto(g_.OutNeighbors(x), consumer_prefix, &pairs);
      for (const simd::IndexPair& pr : pairs) {
        if (consumer_prefix[pr.ib] == x) continue;
        slot->topo_p.push_back(p);
        slot->topo_c.push_back(pr.ib);
        slot->topo_edge.push_back(
            static_cast<uint32_t>(g_.OutEdgeCanonicalIndex(x, pr.ia)));
        if (slot->topo_p.size() >= options_.max_cross_edges) break;
      }
    }
    slot->topo_built = true;
  }

  // Re-derives the dynamic part of the instance from the coverage bitmap:
  // link-in-Z flags and the uncovered subset of the cached cross topology.
  // Allocation-free at steady state.
  void RefreshInstance(NodeId hub, HubSlot* slot) const {
    HubGraphInstance& inst = slot->instance;
    // Producer links are scattered through the bitmap (canonical indices come
    // from the in-to-canonical map); consumer links are the hub's contiguous
    // out-CSR range. Both caps bound np/ny by the full degree, so the index
    // spans cover them.
    const size_t np = inst.producers.size();
    simd::NotCoveredFlags(covered_.data(), g_.InEdgeCanonicalIndices(hub).data(), np,
                          inst.producer_link_in_z.data());
    const size_t ny = inst.consumers.size();
    if (ny > 0) {
      simd::NotCoveredFlagsContiguous(covered_.data() + g_.OutEdgeCanonicalIndex(hub, 0),
                                      ny, inst.consumer_link_in_z.data());
    }
    inst.cross_edges.clear();
    simd::FilterUncoveredPairsInto(covered_.data(), slot->topo_p.data(),
                                   slot->topo_c.data(), slot->topo_edge.data(),
                                   slot->topo_p.size(), &inst.cross_edges);
  }

  const Graph& g_;
  const Workload& w_;
  const ChitChatOptions& options_;

  Schedule schedule_;
  std::vector<uint8_t> covered_;
  size_t uncovered_ = 0;

  std::vector<HubSlot> slots_;
  std::priority_queue<HubEntry, std::vector<HubEntry>, HubEntryCmp> hub_queue_;
  SingletonQueue singletons_{SingletonCmp{}};

  // Hubs whose node weights changed this step (eager refresh targets).
  std::vector<NodeId> eager_refresh_;

  // Inverted cross index: edge -> hubs caching it as a cross pair.
  std::vector<uint64_t> cross_index_offsets_;
  std::vector<NodeId> cross_index_hubs_;
  bool cross_index_built_ = false;

  // Oracle execution resources: a pool when num_threads allows, plus one
  // scratch arena per worker (scratch_[0] doubles as the sequential arena).
  std::unique_ptr<ThreadPool> pool_;
  std::vector<OracleScratch> scratch_;

  // Reused selection masks for ApplyHub.
  std::vector<uint8_t> p_sel_;
  std::vector<uint8_t> c_sel_;

  ChitChatStats stats_;
};

}  // namespace

std::string ChitChatStats::ToString() const {
  return StrFormat(
      "hubs=%zu singletons=%zu oracle_calls=%zu piggybacked=%zu cost=%.3f",
      hub_selections, singleton_selections, oracle_calls, edges_covered_by_hubs,
      final_cost);
}

Result<Schedule> RunChitChat(const Graph& g, const Workload& w,
                             const ChitChatOptions& options, ChitChatStats* stats) {
  if (w.num_users() != g.num_nodes()) {
    return Status::InvalidArgument("workload size does not match graph");
  }
  if (options.max_producers == 0 || options.max_consumers == 0) {
    return Status::InvalidArgument("hub-graph caps must be positive");
  }
  ChitChatRunner runner(g, w, options);
  return runner.Run(stats);
}

}  // namespace piggy
