// CHITCHAT: the O(log n) approximation algorithm (paper Sec. 3.1, Alg. 1).
//
// DISSEMINATION is mapped to SETCOVER: the ground set is the edge set E; the
// candidate collection contains (a) singleton edges served directly at the
// hybrid cost min(rp, rc) and (b) hub-graphs G(X, w, Y), which pay for the
// pushes X -> w and the pulls w -> Y and cover, in addition, all cross edges
// X -> Y for free. The greedy step needs the candidate with minimum cost per
// newly covered element; for hub-graphs that is exactly the weighted
// densest-subgraph problem, solved per hub by the factor-2 peeling oracle
// (densest_subgraph.h). Selecting a candidate can change the value of other
// hubs' candidates in both directions (coverage shrinks, but weights can drop
// to zero when an edge enters H or L), so the implementation re-runs the
// oracle eagerly for every hub whose maximal hub-graph contains a changed
// edge, exactly as Algorithm 1 prescribes.
//
// The initial all-hubs oracle pass fans out on a thread pool when
// ChitChatOptions::num_threads allows; solves read a frozen snapshot and
// commit in deterministic hub order, so schedules are bit-identical to the
// sequential reference at any thread count. Per-step refreshes (the selected
// candidate's eager target and dirty heap tops) are deliberately sequential —
// today's greedy touches one hub per step, and batching dirty tops would
// break bit-parity (see the note in chitchat.cc).
//
// Combined guarantee: O(2 ln n) = O(ln n) (Theorem 4).

#pragma once

#include <cstdint>
#include <string>

#include "core/plan_hooks.h"
#include "core/schedule.h"
#include "graph/graph.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief CHITCHAT tuning knobs.
struct ChitChatOptions {
  /// Cap on |X| (producers) per hub-graph; prunes the heaviest two-hop
  /// neighborhoods the way the paper prunes predecessor sets on twitter.
  size_t max_producers = 4096;
  /// Cap on |Y| (consumers) per hub-graph.
  size_t max_consumers = 4096;
  /// Cap on cross pairs cached per hub-graph (the paper's bound b). The
  /// cross topology is intersected once per hub and filtered against the
  /// coverage bitmap on refresh, so the cap bounds the cached pairs: when it
  /// binds (a hub with more than this many cross pairs), excluded pairs stay
  /// invisible for the whole run — unlike the pre-cache code, which re-ran
  /// the intersection per refresh and could rotate freed cap budget onto
  /// previously excluded pairs. A deliberate trade: identical until the cap
  /// binds, and bounded memory + O(pairs) refresh cost after.
  size_t max_cross_edges = 200000;
  /// Use the exhaustive oracle instead of peeling when a hub-graph has at
  /// most 14 nodes (ablation D2); larger instances still use peeling.
  bool exhaustive_oracle_small = false;
  /// Worker threads for the initial all-hubs oracle sweep (and any future
  /// multi-hub refresh batch — RefreshHubs fans out whenever a batch has
  /// more than one hub). 0 = ThreadPool::DefaultThreads(); 1 = the fully
  /// sequential reference. Any thread count produces a bit-identical
  /// schedule and identical stats: each solve reads a frozen snapshot of the
  /// coverage state, results are committed in deterministic hub order, and
  /// the greedy loop's per-step refreshes stay one-at-a-time in every mode
  /// (see the parity note in chitchat.cc).
  size_t num_threads = 0;
  /// Optional progress/cancellation callbacks (core/plan_hooks.h), checked
  /// between greedy selections. When the stop predicate fires, the remaining
  /// uncovered edges are served directly at the hybrid cost, so the returned
  /// schedule is always valid. Unset hooks change nothing (bit-parity).
  PlanHooks hooks;
};

/// \brief Execution counters.
struct ChitChatStats {
  size_t hub_selections = 0;        ///< greedy steps that picked a hub-graph
  size_t singleton_selections = 0;  ///< greedy steps that picked a direct edge
  size_t oracle_calls = 0;          ///< densest-subgraph solves (incl. rebuilds)
  size_t edges_covered_by_hubs = 0; ///< cross edges served by piggybacking
  double final_cost = 0;            ///< c(H, L) of the returned schedule

  std::string ToString() const;
};

/// Runs CHITCHAT; the returned schedule explicitly serves every edge
/// (validator passes with default options).
///
/// Deprecated legacy entry point: prefer MakePlanner("chitchat") or
/// MakeChitChatPlanner(options) from core/planner.h (bit-identical schedules,
/// uniform PlanResult/PlanContext).
Result<Schedule> RunChitChat(const Graph& g, const Workload& w,
                             const ChitChatOptions& options = {},
                             ChitChatStats* stats = nullptr);

}  // namespace piggy
