// The unified planner API: one contract for every request-schedule optimizer.
//
// The paper's design keeps the application logic schedule-agnostic while
// schedules compete purely on cost. This header is that seam in code: every
// optimizer — the CHITCHAT approximation, the PARALLELNOSY heuristic, and the
// push-all / pull-all / hybrid baselines — is a Planner, producing the same
// PlanResult from the same (Graph, Workload, PlanContext) inputs, and every
// consumer (piggy_tool, the bench harnesses, FeedService, tests) talks to the
// registry instead of per-algorithm free functions.
//
//   auto planner = MakePlanner("chitchat").MoveValueOrDie();
//   PlanResult plan = planner->Plan(graph, workload, {}).MoveValueOrDie();
//   // plan.schedule passes ValidateSchedule; plan.final_cost, trajectory...
//
// Registered names (see RegisteredPlanners() for descriptions):
//   "chitchat"  O(log n) set-cover approximation       (alias: none)
//   "nosy"      parallel single-consumer heuristic      (alias: "parallelnosy")
//   "hybrid"    Silberstein et al. per-edge min cost    (alias: "ff")
//   "push-all"  every edge pushed
//   "pull-all"  every edge pulled
//
// Algorithm-specific knobs stay in the per-algorithm options structs; the
// typed factories (MakeChitChatPlanner, MakeParallelNosyPlanner) wrap custom
// options in the uniform interface. PlanContext carries only the
// run-environment concerns every planner shares: thread budget, deadline,
// cancellation, progress. Deadline/cancellation are anytime-safe: a planner
// cut short still returns a schedule that serves every edge (unassigned edges
// complete at the hybrid policy).

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/chitchat.h"
#include "core/parallel_nosy.h"
#include "core/plan_hooks.h"
#include "core/schedule.h"
#include "graph/graph.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Run-environment inputs shared by every planner.
///
/// Defaults reproduce the legacy free-function behavior bit-for-bit: planner
/// default threads, no deadline, no cancellation, no progress reporting.
struct PlanContext {
  /// Worker threads for parallel phases; 0 = the planner's own default.
  size_t num_threads = 0;
  /// Wall-clock budget in seconds; 0 = unlimited. On expiry the planner
  /// finishes early with a valid hybrid-completed schedule.
  double deadline_seconds = 0;
  /// Optional cancellation token (borrowed; may be flipped from any thread).
  /// A set token has the same early-finish semantics as an expired deadline.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional progress observer, invoked between optimizer steps.
  std::function<void(const PlanProgress&)> progress;

  /// "threads=auto deadline=none cancel=unset" — the settings string recorded
  /// in bench JSON rows so trajectories are comparable across planners.
  std::string ToString() const;
};

/// \brief Unified per-iteration counters (trajectory row).
struct PlanIterationStats {
  size_t candidates = 0;     ///< candidates passing the gain/density test
  size_t applied = 0;        ///< candidates applied this iteration
  size_t edges_covered = 0;  ///< cross edges newly covered via hubs
  double cost_after = 0;     ///< schedule cost after the iteration

  std::string ToString() const;
};

/// \brief What every planner returns: a valid schedule plus uniform metadata.
struct PlanResult {
  Schedule schedule;
  /// Cost of `schedule` (every edge assigned; residuals are impossible).
  double final_cost = 0;
  /// Cost of the hybrid (FF) baseline on the same input, for ratios.
  double hybrid_cost = 0;
  /// Per-iteration trajectory; empty for single-shot planners.
  std::vector<PlanIterationStats> iterations;
  /// False iff the planner was cut short (deadline / cancellation / cap).
  bool converged = true;
  /// Wall-clock seconds spent inside Plan().
  double wall_seconds = 0;
  /// Registry name of the planner that produced this result.
  std::string planner;
  /// Planner-specific counters, one human-readable line (may be empty).
  std::string stats_text;

  /// final / hybrid improvement summary, one line.
  std::string ToString() const;
};

/// \brief Registry metadata for one planner.
struct PlannerInfo {
  std::string name;         ///< canonical registry key
  std::string description;  ///< one line, shown by `piggy_tool --planner list`
};

/// \brief Abstract schedule optimizer: the only planning contract in the
/// library. Implementations are stateless w.r.t. Plan calls (const, safe to
/// reuse and to call from multiple threads with distinct inputs).
class Planner {
 public:
  virtual ~Planner() = default;

  virtual const PlannerInfo& info() const = 0;
  const std::string& name() const { return info().name; }

  /// Computes a request schedule for (g, w). The returned schedule serves
  /// every graph edge (ValidateSchedule passes with default options), even
  /// when the context's deadline or cancellation cut the search short.
  virtual Result<PlanResult> Plan(const Graph& g, const Workload& w,
                                  const PlanContext& ctx = {}) const = 0;
};

/// Instantiates a registered planner by name (canonical or alias) with
/// default algorithm options. Unknown names return InvalidArgument listing
/// the valid options.
Result<std::unique_ptr<Planner>> MakePlanner(std::string_view name);

/// All registered planners (canonical names only), sorted by name.
std::vector<PlannerInfo> RegisteredPlanners();

/// Registers a planner factory under `info.name` (+ optional aliases).
/// Returns AlreadyExists if any key is taken. Thread-safe.
Status RegisterPlanner(PlannerInfo info,
                       std::function<std::unique_ptr<Planner>()> factory,
                       std::vector<std::string> aliases = {});

/// Typed factories: registry planners with custom algorithm options.
/// ctx.num_threads (when nonzero) overrides the options' own thread count.
std::unique_ptr<Planner> MakeChitChatPlanner(const ChitChatOptions& options = {});
std::unique_ptr<Planner> MakeParallelNosyPlanner(
    const ParallelNosyOptions& options = {});

}  // namespace piggy
