// Incremental schedule maintenance under graph churn (paper Sec. 3.3).
//
// The optimizers treat the graph as static; between re-optimizations the
// schedule is kept valid with two local rules:
//
//  * edge added    — serve it directly, choosing the cheaper of push and pull
//                    (exactly the hybrid policy for that edge);
//  * edge removed  — if the removed edge was a push x -> w supporting hub
//                    covers (x -> y via w), or a pull w -> y supporting
//                    covers (x -> y via w), every dependent covered edge is
//                    re-served directly. The removed edge's own entries are
//                    dropped.
//
// Over time churn degrades schedule quality (never validity); Figure 5 shows
// re-optimization is only needed after very large batches. The maintainer
// keeps reverse indexes from supporting push/pull edges to their dependent
// covers so removals cost O(dependents).

#pragma once

#include <vector>

#include "core/schedule.h"
#include "graph/dynamic_graph.h"
#include "util/status.h"
#include "util/u64_containers.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Keeps a schedule valid while its graph evolves.
///
/// The maintainer borrows the graph, schedule and workload; they must outlive
/// it. The workload must cover every node id ever used (rates are looked up,
/// never recomputed — matching the paper's fixed-workload evaluation).
class IncrementalMaintainer {
 public:
  IncrementalMaintainer(DynamicGraph* graph, Schedule* schedule,
                        const Workload* workload);

  /// Adds edge u -> v to the graph and serves it directly (cheaper side).
  /// No-op (OK) if the edge already exists.
  Status AddEdge(NodeId u, NodeId v);

  /// Removes edge u -> v, repairing any hub covers that depended on it.
  Status RemoveEdge(NodeId u, NodeId v);

  /// Re-applies the Sec-3.3 add rule to an edge u -> v that is already in
  /// the graph but may be unserved by the (freshly swapped-in) schedule.
  /// Used when churn raced a background plan: the plan was computed against
  /// a snapshot without this edge, so it is served directly here.
  void RepairEdgeAdded(NodeId u, NodeId v);

  /// Re-applies the Sec-3.3 remove rule for an edge u -> v already gone
  /// from the graph: drops its cover entry and any push/pull support it gave
  /// other covers, re-serving dependents directly. Used when churn raced a
  /// background plan computed against a snapshot that still had the edge.
  void RepairEdgeRemoved(NodeId u, NodeId v);

  /// Number of covered edges re-served directly due to removals so far.
  size_t repairs() const { return repairs_; }

  /// Rebuilds the reverse support indexes from the schedule (call after the
  /// schedule was re-optimized wholesale).
  void RebuildIndexes();

 private:
  void ServeDirect(NodeId u, NodeId v);
  void DropCoverEntry(NodeId u, NodeId v, NodeId hub);
  static void EraseFrom(std::vector<NodeId>& v, NodeId x);

  DynamicGraph* graph_;
  Schedule* schedule_;
  const Workload* workload_;

  // by_push_[(x,w)] = consumers y with cover (x -> y) via hub w.
  U64Map<std::vector<NodeId>> by_push_;
  // by_pull_[(w,y)] = producers x with cover (x -> y) via hub w.
  U64Map<std::vector<NodeId>> by_pull_;
  size_t repairs_ = 0;
};

}  // namespace piggy
