// Request schedule: the (H, L) sets of the paper plus the bookkeeping set C
// of edges covered through hubs.
//
// Semantics (Definitions 3 and 4):
//   u -> v in H : v is in u's push set — every event u shares is written into
//                 v's materialized view.
//   u -> v in L : u is in v's pull set — every feed query of v also queries
//                 u's view.
//   C maps a covered edge u -> v to its hub w, meaning u -> w in H and
//                 w -> v in L serve the edge by piggybacking.
//
// An edge may be in both H and L (e.g. PARALLELNOSY can push over an edge
// that an earlier iteration scheduled as pull); both costs are then paid.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/u64_containers.h"

namespace piggy {

/// \brief Mutable request schedule (H, L, C).
class Schedule {
 public:
  Schedule() = default;

  /// Adds u -> v to the push set H; returns true if newly added.
  bool AddPush(NodeId u, NodeId v) { return push_.Insert(EdgeKey(u, v)); }

  /// Adds u -> v to the pull set L; returns true if newly added.
  bool AddPull(NodeId u, NodeId v) { return pull_.Insert(EdgeKey(u, v)); }

  /// Removes u -> v from H; returns true if it was present.
  bool RemovePush(NodeId u, NodeId v) { return push_.Erase(EdgeKey(u, v)); }

  /// Removes u -> v from L; returns true if it was present.
  bool RemovePull(NodeId u, NodeId v) { return pull_.Erase(EdgeKey(u, v)); }

  bool IsPush(NodeId u, NodeId v) const { return push_.Contains(EdgeKey(u, v)); }
  bool IsPull(NodeId u, NodeId v) const { return pull_.Contains(EdgeKey(u, v)); }

  /// Records that edge u -> v is covered by piggybacking through hub w.
  /// Returns true if the edge was not covered before.
  bool SetHubCover(NodeId u, NodeId v, NodeId w) {
    return hub_cover_.Put(EdgeKey(u, v), w);
  }

  /// Removes the hub-cover entry of u -> v; returns true if present.
  bool ClearHubCover(NodeId u, NodeId v) { return hub_cover_.Erase(EdgeKey(u, v)); }

  /// The hub covering u -> v, if any.
  std::optional<NodeId> HubFor(NodeId u, NodeId v) const {
    const NodeId* w = hub_cover_.Find(EdgeKey(u, v));
    return w ? std::optional<NodeId>(*w) : std::nullopt;
  }

  /// True iff u -> v has a hub-cover entry.
  bool IsHubCovered(NodeId u, NodeId v) const {
    return hub_cover_.Contains(EdgeKey(u, v));
  }

  /// True iff the edge is assigned any service (push, pull or hub cover).
  bool IsAssigned(NodeId u, NodeId v) const {
    return IsPush(u, v) || IsPull(u, v) || IsHubCovered(u, v);
  }

  size_t push_size() const { return push_.size(); }
  size_t pull_size() const { return pull_.size(); }
  size_t hub_covered_size() const { return hub_cover_.size(); }

  /// Iterates H entries as Edge (unspecified order).
  template <typename F>
  void ForEachPush(F fn) const {
    push_.ForEach([&fn](uint64_t key) { fn(EdgeFromKey(key)); });
  }

  /// Iterates L entries as Edge (unspecified order).
  template <typename F>
  void ForEachPull(F fn) const {
    pull_.ForEach([&fn](uint64_t key) { fn(EdgeFromKey(key)); });
  }

  /// Iterates C entries as (Edge, hub) (unspecified order).
  template <typename F>
  void ForEachHubCover(F fn) const {
    hub_cover_.ForEach([&fn](uint64_t key, NodeId hub) { fn(EdgeFromKey(key), hub); });
  }

  /// Materializes per-user push sets: result[u] = sorted {v : u -> v in H}.
  /// The user's own view is implicit and not included.
  std::vector<std::vector<NodeId>> BuildPushSets(size_t num_users) const;

  /// Materializes per-user pull sets: result[v] = sorted {u : u -> v in L}.
  std::vector<std::vector<NodeId>> BuildPullSets(size_t num_users) const;

 private:
  U64Set push_;
  U64Set pull_;
  U64Map<NodeId> hub_cover_;
};

}  // namespace piggy
