#include "core/schedule_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace piggy {

namespace {

constexpr char kHeader[] = "piggy-schedule v1";

// Splits `data` into lines without copying; returns {line, byte offset of the
// line start} pairs. Tolerates a missing trailing newline.
std::vector<std::pair<std::string_view, size_t>> SplitLines(
    std::string_view data) {
  std::vector<std::pair<std::string_view, size_t>> lines;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t eol = data.find('\n', pos);
    size_t end = (eol == std::string_view::npos) ? data.size() : eol;
    lines.emplace_back(data.substr(pos, end - pos), pos);
    pos = end + 1;
  }
  return lines;
}

}  // namespace

std::string SerializeSchedule(const Schedule& s) {
  std::ostringstream out;
  out << kHeader << "\n";

  std::vector<uint64_t> keys;
  keys.reserve(s.push_size());
  s.ForEachPush([&keys](const Edge& e) { keys.push_back(EdgeKey(e)); });
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    Edge e = EdgeFromKey(key);
    out << "H " << e.src << ' ' << e.dst << '\n';
  }

  keys.clear();
  s.ForEachPull([&keys](const Edge& e) { keys.push_back(EdgeKey(e)); });
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    Edge e = EdgeFromKey(key);
    out << "L " << e.src << ' ' << e.dst << '\n';
  }

  std::vector<std::pair<uint64_t, NodeId>> covers;
  covers.reserve(s.hub_covered_size());
  s.ForEachHubCover([&covers](const Edge& e, NodeId hub) {
    covers.emplace_back(EdgeKey(e), hub);
  });
  std::sort(covers.begin(), covers.end());
  for (const auto& [key, hub] : covers) {
    Edge e = EdgeFromKey(key);
    out << "C " << e.src << ' ' << e.dst << ' ' << hub << '\n';
  }

  out << "E " << s.push_size() << ' ' << s.pull_size() << ' '
      << s.hub_covered_size() << '\n';
  return std::move(out).str();
}

Result<Schedule> ParseSchedule(std::string_view data,
                               const std::string& source_name) {
  const auto lines = SplitLines(data);
  size_t i = 0;
  // Skip leading blank/comment lines before the header.
  while (i < lines.size()) {
    std::string_view trimmed = StrTrim(lines[i].first);
    if (!trimmed.empty() && trimmed[0] != '#') break;
    ++i;
  }
  if (i >= lines.size() || StrTrim(lines[i].first) != kHeader) {
    return Status::IOError(
        StrFormat("%s: missing schedule header at byte %zu",
                  source_name.c_str(), i < lines.size() ? lines[i].second : 0));
  }
  ++i;

  Schedule s;
  bool saw_footer = false;
  uint64_t footer_push = 0, footer_pull = 0, footer_cover = 0;
  for (; i < lines.size(); ++i) {
    const auto& [line, offset] = lines[i];
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (saw_footer) {
      return Status::IOError(
          StrFormat("%s: byte %zu: data after the E footer", source_name.c_str(),
                    offset));
    }
    std::istringstream fields{std::string(trimmed)};
    char kind = 0;
    uint64_t src = 0, dst = 0;
    if (!(fields >> kind)) {
      return Status::IOError(StrFormat("%s: byte %zu: malformed schedule line",
                                       source_name.c_str(), offset));
    }
    if (kind == 'E') {
      if (!(fields >> footer_push >> footer_pull >> footer_cover)) {
        return Status::IOError(StrFormat("%s: byte %zu: malformed E footer",
                                         source_name.c_str(), offset));
      }
      saw_footer = true;
      continue;
    }
    if (!(fields >> src >> dst) || src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::IOError(StrFormat("%s: byte %zu: malformed schedule line",
                                       source_name.c_str(), offset));
    }
    switch (kind) {
      case 'H':
        s.AddPush(static_cast<NodeId>(src), static_cast<NodeId>(dst));
        break;
      case 'L':
        s.AddPull(static_cast<NodeId>(src), static_cast<NodeId>(dst));
        break;
      case 'C': {
        uint64_t hub = 0;
        if (!(fields >> hub) || hub > UINT32_MAX) {
          return Status::IOError(StrFormat("%s: byte %zu: malformed cover line",
                                           source_name.c_str(), offset));
        }
        s.SetHubCover(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                      static_cast<NodeId>(hub));
        break;
      }
      default:
        return Status::IOError(
            StrFormat("%s: byte %zu: unknown record kind '%c'",
                      source_name.c_str(), offset, kind));
    }
  }

  if (!saw_footer) {
    return Status::IOError(
        StrFormat("%s: truncated at byte %zu: missing E footer",
                  source_name.c_str(), data.size()));
  }
  if (footer_push != s.push_size() || footer_pull != s.pull_size() ||
      footer_cover != s.hub_covered_size()) {
    return Status::IOError(StrFormat(
        "%s: footer mismatch: expected %llu push / %llu pull / %llu cover "
        "entries, parsed %zu / %zu / %zu",
        source_name.c_str(), static_cast<unsigned long long>(footer_push),
        static_cast<unsigned long long>(footer_pull),
        static_cast<unsigned long long>(footer_cover), s.push_size(),
        s.pull_size(), s.hub_covered_size()));
  }
  return s;
}

Status WriteScheduleText(const Schedule& s, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  std::string text = SerializeSchedule(s);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Schedule> ReadScheduleText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return ParseSchedule(std::move(buf).str(), path);
}

}  // namespace piggy
