#include "core/schedule_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace piggy {

namespace {
constexpr char kHeader[] = "piggy-schedule v1";
}  // namespace

Status WriteScheduleText(const Schedule& s, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << kHeader << "\n";

  std::vector<uint64_t> keys;
  keys.reserve(s.push_size());
  s.ForEachPush([&keys](const Edge& e) { keys.push_back(EdgeKey(e)); });
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    Edge e = EdgeFromKey(key);
    out << "H " << e.src << ' ' << e.dst << '\n';
  }

  keys.clear();
  s.ForEachPull([&keys](const Edge& e) { keys.push_back(EdgeKey(e)); });
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    Edge e = EdgeFromKey(key);
    out << "L " << e.src << ' ' << e.dst << '\n';
  }

  std::vector<std::pair<uint64_t, NodeId>> covers;
  covers.reserve(s.hub_covered_size());
  s.ForEachHubCover([&covers](const Edge& e, NodeId hub) {
    covers.emplace_back(EdgeKey(e), hub);
  });
  std::sort(covers.begin(), covers.end());
  for (const auto& [key, hub] : covers) {
    Edge e = EdgeFromKey(key);
    out << "C " << e.src << ' ' << e.dst << ' ' << hub << '\n';
  }

  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Schedule> ReadScheduleText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || StrTrim(line) != kHeader) {
    return Status::IOError("missing schedule header in " + path);
  }

  Schedule s;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    char kind = 0;
    uint64_t src = 0, dst = 0;
    if (!(fields >> kind >> src >> dst) || src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::IOError(
          StrFormat("%s:%zu: malformed schedule line", path.c_str(), line_no));
    }
    switch (kind) {
      case 'H':
        s.AddPush(static_cast<NodeId>(src), static_cast<NodeId>(dst));
        break;
      case 'L':
        s.AddPull(static_cast<NodeId>(src), static_cast<NodeId>(dst));
        break;
      case 'C': {
        uint64_t hub = 0;
        if (!(fields >> hub) || hub > UINT32_MAX) {
          return Status::IOError(
              StrFormat("%s:%zu: malformed cover line", path.c_str(), line_no));
        }
        s.SetHubCover(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                      static_cast<NodeId>(hub));
        break;
      }
      default:
        return Status::IOError(StrFormat("%s:%zu: unknown record kind '%c'",
                                         path.c_str(), line_no, kind));
    }
  }
  return s;
}

}  // namespace piggy
