// Active stores: propagation sets and their passive simulation
// (paper Definition 5 and Theorem 3).
//
// Passive data stores only react to client requests; active middleware can
// additionally propagate events server-to-server: each edge w -> u may carry
// a propagation set P_u(w) of users to whose views u's server forwards an
// event produced by w when it first arrives in u's view. Chains of pushes
// u -> w1 -> ... -> wk become possible.
//
// Theorem 3 shows this buys nothing: any active schedule can be simulated by
// a passive one — replace every propagation chain from a producer u by
// direct pushes u -> wi — at equal or lower cost (lower when two chains
// deliver the same event twice) and equal or lower latency. This module
// implements the construction so the claim is executable and tested.

#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/u64_containers.h"
#include "workload/workload.h"

namespace piggy {

/// \brief An active-store request schedule: (H, L) plus propagation sets.
class ActiveSchedule {
 public:
  Schedule& base() { return base_; }
  const Schedule& base() const { return base_; }

  /// Declares that when the view of `via` first stores an event produced by
  /// `producer` (over graph edge producer -> via), the server forwards it to
  /// the view of `target`. Definition 5 requires target to subscribe to the
  /// producer (producer -> target in E) — enforced by Validate().
  void AddPropagation(NodeId producer, NodeId via, NodeId target);

  /// Propagation targets for the (producer, via) pair.
  std::vector<NodeId> PropagationSet(NodeId producer, NodeId via) const;

  /// Total number of propagation entries.
  size_t propagation_size() const { return entries_; }

  /// Calls fn(producer, via, target) for every propagation entry.
  template <typename F>
  void ForEachPropagation(F fn) const {
    sets_.ForEach([&fn](uint64_t key, const std::vector<NodeId>& targets) {
      Edge e = EdgeFromKey(key);
      for (NodeId t : targets) fn(e.src, e.dst, t);
    });
  }

  /// Checks Definition 5's constraints against the graph: propagation rides
  /// on existing edges (producer -> via in E) and only reaches subscribers of
  /// the producer (producer -> target in E).
  Status Validate(const Graph& g) const;

 private:
  Schedule base_;
  // (producer, via) -> propagation targets.
  U64Map<std::vector<NodeId>> sets_;
  size_t entries_ = 0;
};

/// \brief Throughput cost of an active schedule (paper Sec. 2.1 extended):
/// every propagation delivery of an event by u costs rp(u), exactly like a
/// client push. Events reachable through several chains are charged per
/// delivery — the slack Theorem 3's construction removes.
double ActiveScheduleCost(const Graph& g, const Workload& w,
                          const ActiveSchedule& s);

/// \brief Theorem 3's construction: the passive schedule simulating an
/// active one. Every view reachable from producer u through push + propagation
/// chains becomes a direct push u -> view; L is copied unchanged.
///
/// The result serves every (producer, view) delivery of the active schedule
/// with cost no greater than ActiveScheduleCost (strictly lower when chains
/// overlap), and with lower or equal staleness (one hop instead of many).
Result<Schedule> SimulateAsPassive(const Graph& g, const ActiveSchedule& s);

}  // namespace piggy
