// PARALLELNOSY: the scalable parallel heuristic (paper Sec. 3.2, Alg. 2).
//
// Restricts hub-graphs to a single consumer G(X, w, y) — many cheap pushes
// X -> w buy one expensive pull w -> y and cover all cross edges X -> y —
// and proceeds in iterations of three phases:
//
//   1. Candidate selection (parallel per edge w -> y not yet hub-covered):
//      X = common predecessors x of w and y with x -> w not hub-covered and
//      the cross edge x -> y unassigned. The candidate's saved cost is the
//      hybrid cost of the covered cross edges; its positive cost accounts for
//      upgrading x -> w to push and w -> y to pull relative to the current
//      assignment. Candidates need positive gain.
//   2. Edge locking (parallel per edge): each candidate requests locks on all
//      its edges; the highest-gain request wins (deterministic tie-break by
//      hub-edge id, or salted-hash for the ablation).
//   3. Scheduling decision (parallel per candidate): fully granted candidates
//      apply; partially granted ones shrink to X' (both x -> w and x -> y
//      locks granted, plus the w -> y lock) and re-evaluate the gain before
//      applying.
//
// Iterations repeat until a fixed point (no candidate applies) or the
// iteration cap. Unassigned edges fall back to the hybrid policy; call
// FinalizeWithHybrid (default) to make that explicit.
//
// Two executors produce bit-identical schedules: a sequential reference and a
// MapReduce implementation running phases as jobs on src/mapreduce (the paper
// ran the same structure on Hadoop).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan_hooks.h"
#include "core/schedule.h"
#include "graph/graph.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief PARALLELNOSY tuning knobs.
struct ParallelNosyOptions {
  /// Hard cap on optimization iterations (convergence usually much earlier).
  size_t max_iterations = 50;
  /// The paper's bound b: cap on |X| (= detected cross edges) per hub-graph.
  size_t max_hub_producers = 100000;
  /// Minimum gain for a candidate to qualify (paper: strictly positive = 0).
  double min_gain = 0.0;
  /// Run phases as MapReduce jobs (true) or as the sequential reference.
  bool use_mapreduce = true;
  /// Worker threads for the MapReduce executor (0 = default).
  size_t num_threads = 0;
  /// Ablation D3: break lock ties by salted hash instead of hub-edge id.
  bool randomized_tie_break = false;
  /// Assign leftover edges to the cheaper direct side before returning.
  bool finalize_hybrid = true;
  /// Optional progress/cancellation callbacks (core/plan_hooks.h), checked
  /// once per optimization iteration. A firing stop predicate ends the
  /// iteration loop early (converged stays false); finalize_hybrid then
  /// completes the schedule as usual. Unset hooks change nothing.
  PlanHooks hooks;
};

/// \brief Per-iteration counters (Fig. 4's x-axis).
struct NosyIterationStats {
  size_t candidates = 0;      ///< hub-graphs passing the gain test
  size_t lock_requests = 0;   ///< edge locks requested
  size_t applied = 0;         ///< candidates applied (full or shrunk)
  size_t edges_covered = 0;   ///< cross edges newly covered via hubs
  double cost_after = 0;      ///< schedule cost (hybrid residual) after merge

  std::string ToString() const;
};

/// \brief Result: the schedule plus the convergence trace.
struct ParallelNosyResult {
  Schedule schedule;
  std::vector<NosyIterationStats> iterations;
  bool converged = false;
  double final_cost = 0;
  double hybrid_cost = 0;  ///< FF baseline cost on the same input
};

/// Runs PARALLELNOSY. The result's schedule passes the validator with default
/// options when `finalize_hybrid` is on.
///
/// Deprecated legacy entry point: prefer MakePlanner("nosy") or
/// MakeParallelNosyPlanner(options) from core/planner.h (bit-identical
/// schedules, uniform PlanResult/PlanContext).
Result<ParallelNosyResult> RunParallelNosy(const Graph& g, const Workload& w,
                                           const ParallelNosyOptions& options = {});

}  // namespace piggy
