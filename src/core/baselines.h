// Baseline request schedules (paper Sec. 1 and Sec. 4):
//
//  * push-all  — every edge in H; each query reads only the user's own view.
//  * pull-all  — every edge in L; each share writes only the user's own view.
//  * hybrid    — per edge, the cheaper of push and pull given the workload:
//                the MIN-COST schedule of Silberstein et al. (SIGMOD 2010),
//                referred to as FEEDINGFRENZY / FF throughout the paper; it
//                is the state-of-the-art baseline piggybacking is compared
//                against, and provably optimal among schedules that serve
//                every edge directly.

// The schedule-building functions here are deprecated legacy entry points:
// prefer MakePlanner("push-all" | "pull-all" | "hybrid") from core/planner.h,
// which wraps them in the uniform Planner contract (bit-identical schedules).
// FinalizeWithHybrid stays: it is the optimizers' completion rule, not a
// planning surface.

#pragma once

#include "core/schedule.h"
#include "graph/graph.h"
#include "workload/workload.h"

namespace piggy {

/// All edges pushed (materialize-everything). Best for read-heavy workloads.
Schedule PushAllSchedule(const Graph& g);

/// All edges pulled (query-time assembly). Best for write-heavy workloads.
Schedule PullAllSchedule(const Graph& g);

/// Silberstein et al. hybrid: edge u -> v pushed iff rp(u) <= rc(v), else
/// pulled. Ties resolve to push (one fewer query dependency).
Schedule HybridSchedule(const Graph& g, const Workload& w);

/// Assigns every graph edge that has no service yet (not in H, L, or C) to
/// its cheaper direct side, in place. Used to finalize PARALLELNOSY output,
/// whose unassigned edges default to the hybrid policy.
void FinalizeWithHybrid(const Graph& g, const Workload& w, Schedule* schedule);

}  // namespace piggy
