#include "core/planner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "core/baselines.h"
#include "core/cost_model.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace piggy {

std::string PlanContext::ToString() const {
  std::string threads = num_threads == 0 ? "auto" : std::to_string(num_threads);
  std::string deadline =
      deadline_seconds > 0 ? StrFormat("%.3gs", deadline_seconds) : "none";
  return StrFormat("threads=%s deadline=%s cancel=%s", threads.c_str(),
                   deadline.c_str(), cancel != nullptr ? "armed" : "none");
}

std::string PlanIterationStats::ToString() const {
  return StrFormat("candidates=%zu applied=%zu covered=%zu cost=%.3f",
                   candidates, applied, edges_covered, cost_after);
}

std::string PlanResult::ToString() const {
  return StrFormat(
      "%s: cost=%.3f ff=%.3f ratio=%.3fx iterations=%zu converged=%d "
      "wall=%.2fs", planner.c_str(), final_cost, hybrid_cost,
      ImprovementRatio(hybrid_cost, final_cost), iterations.size(),
      converged ? 1 : 0, wall_seconds);
}

namespace {

Status CheckPlanInputs(const Graph& g, const Workload& w) {
  if (w.num_users() != g.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  w.num_users(), g.num_nodes()));
  }
  return Status::OK();
}

/// Compiles the context's deadline + cancellation + progress into the
/// optimizer-facing hooks. `fired` records whether the stop predicate ever
/// returned true (=> the optimizer finished early; PlanResult.converged).
PlanHooks CompileHooks(const PlanContext& ctx, std::shared_ptr<bool> fired) {
  PlanHooks hooks;
  hooks.progress = ctx.progress;
  if (ctx.deadline_seconds > 0 || ctx.cancel != nullptr) {
    auto timer = std::make_shared<WallTimer>();
    const double deadline = ctx.deadline_seconds;
    const std::atomic<bool>* cancel = ctx.cancel;
    hooks.should_stop = [timer, deadline, cancel, fired]() {
      const bool stop =
          (cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
          (deadline > 0 && timer->Seconds() >= deadline);
      if (stop) *fired = true;
      return stop;
    };
  }
  return hooks;
}

class ChitChatPlanner final : public Planner {
 public:
  explicit ChitChatPlanner(const ChitChatOptions& options) : options_(options) {}

  const PlannerInfo& info() const override {
    static const PlannerInfo kInfo{
        "chitchat",
        "greedy set-cover over hub-graphs via the densest-subgraph oracle; "
        "O(log n) approximation (paper Alg. 1)"};
    return kInfo;
  }

  Result<PlanResult> Plan(const Graph& g, const Workload& w,
                          const PlanContext& ctx) const override {
    PIGGY_RETURN_NOT_OK(CheckPlanInputs(g, w));
    WallTimer timer;
    auto fired = std::make_shared<bool>(false);
    ChitChatOptions options = options_;
    if (ctx.num_threads != 0) options.num_threads = ctx.num_threads;
    options.hooks = CompileHooks(ctx, fired);

    ChitChatStats stats;
    PIGGY_ASSIGN_OR_RETURN(Schedule schedule, RunChitChat(g, w, options, &stats));

    PlanResult result;
    result.schedule = std::move(schedule);
    result.final_cost = stats.final_cost;
    result.hybrid_cost = HybridCost(g, w);
    result.converged = !*fired;
    result.wall_seconds = timer.Seconds();
    result.planner = name();
    result.stats_text = stats.ToString();
    return result;
  }

 private:
  ChitChatOptions options_;
};

class ParallelNosyPlanner final : public Planner {
 public:
  explicit ParallelNosyPlanner(const ParallelNosyOptions& options)
      : options_(options) {}

  const PlannerInfo& info() const override {
    static const PlannerInfo kInfo{
        "nosy",
        "iterative single-consumer hub heuristic with parallel candidate/lock/"
        "apply phases (paper Alg. 2)"};
    return kInfo;
  }

  Result<PlanResult> Plan(const Graph& g, const Workload& w,
                          const PlanContext& ctx) const override {
    PIGGY_RETURN_NOT_OK(CheckPlanInputs(g, w));
    WallTimer timer;
    auto fired = std::make_shared<bool>(false);
    ParallelNosyOptions options = options_;
    if (ctx.num_threads != 0) options.num_threads = ctx.num_threads;
    options.hooks = CompileHooks(ctx, fired);

    PIGGY_ASSIGN_OR_RETURN(ParallelNosyResult nosy, RunParallelNosy(g, w, options));

    PlanResult result;
    result.schedule = std::move(nosy.schedule);
    result.final_cost = nosy.final_cost;
    result.hybrid_cost = nosy.hybrid_cost;
    result.iterations.reserve(nosy.iterations.size());
    for (const NosyIterationStats& it : nosy.iterations) {
      result.iterations.push_back(
          {it.candidates, it.applied, it.edges_covered, it.cost_after});
    }
    result.converged = nosy.converged && !*fired;
    result.wall_seconds = timer.Seconds();
    result.planner = name();
    if (!nosy.iterations.empty()) {
      result.stats_text = nosy.iterations.back().ToString();
    }
    return result;
  }

 private:
  ParallelNosyOptions options_;
};

/// The three single-shot baselines share one implementation.
class BaselinePlanner final : public Planner {
 public:
  enum class Kind { kPushAll, kPullAll, kHybrid };

  explicit BaselinePlanner(Kind kind) : kind_(kind) {}

  const PlannerInfo& info() const override {
    static const PlannerInfo kPush{
        "push-all", "every edge pushed; queries read only the user's own view"};
    static const PlannerInfo kPull{
        "pull-all", "every edge pulled; shares write only the user's own view"};
    static const PlannerInfo kHybrid{
        "hybrid", "per-edge min(push, pull) of Silberstein et al. (FF "
        "baseline); optimal without piggybacking"};
    switch (kind_) {
      case Kind::kPushAll: return kPush;
      case Kind::kPullAll: return kPull;
      case Kind::kHybrid: return kHybrid;
    }
    return kHybrid;  // unreachable
  }

  Result<PlanResult> Plan(const Graph& g, const Workload& w,
                          const PlanContext& ctx) const override {
    (void)ctx;  // single-shot: nothing to thread, cancel, or report
    PIGGY_RETURN_NOT_OK(CheckPlanInputs(g, w));
    WallTimer timer;
    PlanResult result;
    switch (kind_) {
      case Kind::kPushAll: result.schedule = PushAllSchedule(g); break;
      case Kind::kPullAll: result.schedule = PullAllSchedule(g); break;
      case Kind::kHybrid: result.schedule = HybridSchedule(g, w); break;
    }
    result.final_cost = ScheduleCost(g, w, result.schedule, ResidualPolicy::kFree);
    result.hybrid_cost = HybridCost(g, w);
    result.wall_seconds = timer.Seconds();
    result.planner = name();
    return result;
  }

 private:
  Kind kind_;
};

struct Registry {
  std::mutex mu;
  // Canonical name -> (info, factory); alias -> canonical name.
  std::map<std::string, PlannerInfo, std::less<>> infos;
  std::map<std::string, std::function<std::unique_ptr<Planner>()>, std::less<>>
      factories;
  std::map<std::string, std::string, std::less<>> aliases;

  Status RegisterLocked(PlannerInfo info,
                        std::function<std::unique_ptr<Planner>()> factory,
                        std::vector<std::string> alias_names) {
    if (factories.count(info.name) || aliases.count(info.name)) {
      return Status::AlreadyExists("planner already registered: " + info.name);
    }
    for (const std::string& a : alias_names) {
      if (factories.count(a) || aliases.count(a)) {
        return Status::AlreadyExists("planner alias already registered: " + a);
      }
    }
    for (const std::string& a : alias_names) aliases[a] = info.name;
    factories[info.name] = std::move(factory);
    infos[info.name] = std::move(info);
    return Status::OK();
  }

  std::string ValidNamesLocked() const {
    std::string names;
    for (const auto& [name, info] : infos) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    if (!aliases.empty()) {
      names += " (aliases:";
      for (const auto& [alias, canonical] : aliases) names += " " + alias;
      names += ")";
    }
    return names;
  }
};

Registry& GlobalRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    auto built_in = [r](PlannerInfo info,
                        std::function<std::unique_ptr<Planner>()> factory,
                        std::vector<std::string> alias_names = {}) {
      Status st = r->RegisterLocked(std::move(info), std::move(factory),
                                    std::move(alias_names));
      PIGGY_CHECK(st.ok()) << st.ToString();
    };
    built_in(ChitChatPlanner({}).info(),
             [] { return std::make_unique<ChitChatPlanner>(ChitChatOptions{}); });
    built_in(ParallelNosyPlanner({}).info(),
             [] {
               return std::make_unique<ParallelNosyPlanner>(ParallelNosyOptions{});
             },
             {"parallelnosy"});
    using Kind = BaselinePlanner::Kind;
    for (Kind kind : {Kind::kPushAll, Kind::kPullAll, Kind::kHybrid}) {
      built_in(BaselinePlanner(kind).info(),
               [kind] { return std::make_unique<BaselinePlanner>(kind); },
               kind == Kind::kHybrid ? std::vector<std::string>{"ff"}
                                     : std::vector<std::string>{});
    }
    return r;
  }();
  return *registry;
}

}  // namespace

Result<std::unique_ptr<Planner>> MakePlanner(std::string_view name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::string key(name);
  auto alias = registry.aliases.find(key);
  if (alias != registry.aliases.end()) key = alias->second;
  auto it = registry.factories.find(key);
  if (it == registry.factories.end()) {
    return Status::InvalidArgument(
        StrFormat("unknown planner '%s'; valid planners: %s",
                  std::string(name).c_str(),
                  registry.ValidNamesLocked().c_str()));
  }
  return it->second();
}

std::vector<PlannerInfo> RegisteredPlanners() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<PlannerInfo> infos;
  infos.reserve(registry.infos.size());
  for (const auto& [name, info] : registry.infos) infos.push_back(info);
  return infos;  // std::map iteration is already name-sorted
}

Status RegisterPlanner(PlannerInfo info,
                       std::function<std::unique_ptr<Planner>()> factory,
                       std::vector<std::string> aliases) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.RegisterLocked(std::move(info), std::move(factory),
                                 std::move(aliases));
}

std::unique_ptr<Planner> MakeChitChatPlanner(const ChitChatOptions& options) {
  return std::make_unique<ChitChatPlanner>(options);
}

std::unique_ptr<Planner> MakeParallelNosyPlanner(
    const ParallelNosyOptions& options) {
  return std::make_unique<ParallelNosyPlanner>(options);
}

}  // namespace piggy
