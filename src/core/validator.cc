#include "core/validator.h"

#include "util/string_util.h"

namespace piggy {

namespace {

// Shared implementation for any graph type with HasEdge / InNeighbors /
// ForEachEdge (Graph and DynamicGraph).
template <typename GraphT>
Status ValidateImpl(const GraphT& g, const Schedule& s,
                    const ValidatorOptions& options) {
  Status failure = Status::OK();

  // 1. Referential integrity: H/L entries must be graph edges.
  s.ForEachPush([&](const Edge& e) {
    if (failure.ok() && !g.HasEdge(e.src, e.dst)) {
      failure = Status::FailedPrecondition(
          StrFormat("push entry %u->%u is not a graph edge", e.src, e.dst));
    }
  });
  PIGGY_RETURN_NOT_OK(failure);
  s.ForEachPull([&](const Edge& e) {
    if (failure.ok() && !g.HasEdge(e.src, e.dst)) {
      failure = Status::FailedPrecondition(
          StrFormat("pull entry %u->%u is not a graph edge", e.src, e.dst));
    }
  });
  PIGGY_RETURN_NOT_OK(failure);

  // 2. C entries must name a hub actually wired up in H and L.
  s.ForEachHubCover([&](const Edge& e, NodeId w) {
    if (!failure.ok()) return;
    if (!g.HasEdge(e.src, e.dst)) {
      failure = Status::FailedPrecondition(
          StrFormat("cover entry %u->%u is not a graph edge", e.src, e.dst));
    } else if (!g.HasEdge(e.src, w) || !g.HasEdge(w, e.dst)) {
      failure = Status::FailedPrecondition(
          StrFormat("hub %u for %u->%u lacks graph edges", w, e.src, e.dst));
    } else if (!s.IsPush(e.src, w)) {
      failure = Status::FailedPrecondition(
          StrFormat("hub %u for %u->%u: %u->%u not in H", w, e.src, e.dst, e.src, w));
    } else if (!s.IsPull(w, e.dst)) {
      failure = Status::FailedPrecondition(
          StrFormat("hub %u for %u->%u: %u->%u not in L", w, e.src, e.dst, w, e.dst));
    }
  });
  PIGGY_RETURN_NOT_OK(failure);

  // 3. Coverage: every graph edge must be served per Theorem 1.
  g.ForEachEdge([&](const Edge& e) {
    if (!failure.ok()) return;
    if (s.IsPush(e.src, e.dst) || s.IsPull(e.src, e.dst)) return;
    if (s.IsHubCovered(e.src, e.dst)) return;  // hub verified in step 2
    if (options.allow_implicit_hubs) {
      for (NodeId w : g.InNeighbors(e.dst)) {
        if (w != e.src && s.IsPush(e.src, w) && s.IsPull(w, e.dst) &&
            g.HasEdge(e.src, w)) {
          return;
        }
      }
    }
    if (!options.allow_unassigned) {
      failure = Status::FailedPrecondition(
          StrFormat("edge %u->%u has no service (push/pull/hub)", e.src, e.dst));
    }
  });
  return failure;
}

}  // namespace

Status ValidateSchedule(const Graph& g, const Schedule& s,
                        const ValidatorOptions& options) {
  return ValidateImpl(g, s, options);
}

Status ValidateSchedule(const DynamicGraph& g, const Schedule& s,
                        const ValidatorOptions& options) {
  return ValidateImpl(g, s, options);
}

}  // namespace piggy
