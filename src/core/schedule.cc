#include "core/schedule.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace piggy {

std::vector<std::vector<NodeId>> Schedule::BuildPushSets(size_t num_users) const {
  std::vector<std::vector<NodeId>> sets(num_users);
  push_.ForEach([&sets, num_users](uint64_t key) {
    Edge e = EdgeFromKey(key);
    if (e.src < num_users && e.dst < num_users) sets[e.src].push_back(e.dst);
  });
  for (auto& s : sets) std::sort(s.begin(), s.end());
  return sets;
}

std::vector<std::vector<NodeId>> Schedule::BuildPullSets(size_t num_users) const {
  std::vector<std::vector<NodeId>> sets(num_users);
  pull_.ForEach([&sets, num_users](uint64_t key) {
    Edge e = EdgeFromKey(key);
    if (e.src < num_users && e.dst < num_users) sets[e.dst].push_back(e.src);
  });
  for (auto& s : sets) std::sort(s.begin(), s.end());
  return sets;
}

}  // namespace piggy
