// Weighted densest-subgraph oracle (paper Sec. 3.1, Lemma 1).
//
// CHITCHAT's greedy set-cover step must find, for a hub w, the sub-hub-graph
// (X', Y') of the maximal hub-graph G(X, w, Y) minimizing cost per newly
// covered edge, i.e. maximizing the weighted density
//
//     d_w(S) = |E(S) ∩ Z| / g(S)
//
// where E(S) counts (a) push links x -> w for x in X'∩S, (b) pull links
// w -> y for y in Y'∩S, and (c) cross edges x -> y between selected nodes;
// Z is the set of still-uncovered edges; g sums node weights (rp(x) for
// producers, rc(y) for consumers, 0 for nodes whose link is already paid,
// g(w) = 0 for the hub itself).
//
// The solver is the greedy peeling algorithm of Asahiro et al. / Charikar
// generalized to node weights: repeatedly delete the node minimizing
// d(u)/g(u) (weighted degree over uncovered incident edges), and return the
// best intermediate subgraph. Lemma 1 proves a factor-2 approximation. An
// exhaustive solver is provided for cross-checking on small instances.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/oracle_scratch.h"
#include "graph/graph.h"

namespace piggy {

/// \brief One oracle instance: the (capped) maximal hub-graph of a hub node,
/// annotated with weights and coverage flags.
///
/// Producers and consumers are parallel arrays; cross_edges holds
/// (producer index, consumer index) pairs for *uncovered* cross edges only —
/// covered cross edges contribute neither coverage nor cost and are dropped
/// at construction.
struct HubGraphInstance {
  NodeId hub = 0;

  std::vector<NodeId> producers;            ///< x with x -> hub in E
  std::vector<double> producer_weight;      ///< g(x): 0 if x->hub already in H
  std::vector<uint8_t> producer_link_in_z;  ///< 1 iff x -> hub uncovered

  std::vector<NodeId> consumers;            ///< y with hub -> y in E
  std::vector<double> consumer_weight;      ///< g(y): 0 if hub->y already in L
  std::vector<uint8_t> consumer_link_in_z;  ///< 1 iff hub -> y uncovered

  std::vector<std::pair<uint32_t, uint32_t>> cross_edges;

  size_t num_nodes() const { return producers.size() + consumers.size(); }
};

/// \brief A selected sub-hub-graph with its objective value.
struct DensestSubgraphSolution {
  std::vector<uint32_t> producer_idx;  ///< indices into instance.producers
  std::vector<uint32_t> consumer_idx;  ///< indices into instance.consumers
  size_t covered = 0;                  ///< |E(S) ∩ Z|
  double cost = 0;                     ///< g(S)
  /// covered / cost; +inf when cost == 0 and covered > 0; 0 when covered == 0.
  double density = 0;

  /// Cost per newly covered element (1/density); +inf when covered == 0.
  double CostPerElement() const;
};

/// Computes covered/cost/density of an explicit node selection (testing and
/// bookkeeping helper). Indices must be valid and duplicate-free.
DensestSubgraphSolution EvaluateSelection(const HubGraphInstance& instance,
                                          std::vector<uint32_t> producer_idx,
                                          std::vector<uint32_t> consumer_idx);

/// Greedy weighted peeling (factor-2 approximation, linear-ish time) into
/// `out`, reusing the flat CSR buffers of `scratch` and the capacity of
/// `out`'s index vectors. Steady-state calls perform zero heap allocations
/// once the arena has warmed up; this is the hot path of CHITCHAT's oracle
/// sweeps (one arena per worker thread). Callers solving one-off instances
/// declare a local OracleScratch — the old by-value convenience wrapper hid
/// an allocation per call on the hot path and has been removed.
void SolveWeightedDensestSubgraph(const HubGraphInstance& instance,
                                  OracleScratch& scratch,
                                  DensestSubgraphSolution* out);

/// Exact solution by subset enumeration; requires num_nodes() <= 20.
DensestSubgraphSolution SolveDensestSubgraphExhaustive(const HubGraphInstance& instance);

}  // namespace piggy
