// Throughput cost model (paper Sec. 2.1 and 4.2).
//
//   c(H, L) = sum_{u->v in H} rp(u) + sum_{u->v in L} rc(v)
//
// Graph edges not assigned by the schedule (neither pushed, pulled, nor
// hub-covered) are costed as if served by the hybrid baseline — PARALLELNOSY
// leaves such edges to the hybrid policy at run time — unless the caller
// requests strict accounting. Predicted throughput is the inverse of cost;
// the improvement ratio of algorithm A over baseline B is cost_B / cost_A.

#pragma once

#include <algorithm>

#include "core/schedule.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "workload/workload.h"

namespace piggy {

/// How to account for graph edges with no assigned service.
enum class ResidualPolicy {
  kHybrid,  ///< cost min(rp(src), rc(dst)) — served directly at run time
  kFree,    ///< cost 0 — caller asserts full assignment separately
};

/// Cost of serving edge u -> v directly under the hybrid (FF) policy.
inline double HybridEdgeCost(const Workload& w, NodeId u, NodeId v) {
  return std::min(w.rp(u), w.rc(v));
}

/// Cost of a schedule over any graph type exposing ForEachEdge(fn).
///
/// Iterates graph edges, so stray schedule entries for edges not in the graph
/// contribute nothing (relevant after incremental removals).
template <typename GraphT>
double ScheduleCost(const GraphT& g, const Workload& w, const Schedule& s,
                    ResidualPolicy residual = ResidualPolicy::kHybrid) {
  double cost = 0;
  g.ForEachEdge([&](const Edge& e) {
    bool assigned = false;
    if (s.IsPush(e.src, e.dst)) {
      cost += w.rp(e.src);
      assigned = true;
    }
    if (s.IsPull(e.src, e.dst)) {
      cost += w.rc(e.dst);
      assigned = true;
    }
    if (!assigned && !s.IsHubCovered(e.src, e.dst) &&
        residual == ResidualPolicy::kHybrid) {
      cost += HybridEdgeCost(w, e.src, e.dst);
    }
  });
  return cost;
}

/// Cost of the hybrid (FF) baseline: sum over edges of min(rp, rc).
template <typename GraphT>
double HybridCost(const GraphT& g, const Workload& w) {
  double cost = 0;
  g.ForEachEdge([&](const Edge& e) { cost += HybridEdgeCost(w, e.src, e.dst); });
  return cost;
}

/// Predicted throughput t = 1 / cost (paper Sec. 4.2).
inline double PredictedThroughput(double cost) {
  return cost > 0 ? 1.0 / cost : 0.0;
}

/// Predicted improvement ratio of a schedule with cost `cost` over a baseline
/// with cost `baseline_cost` (>1 means the schedule wins).
inline double ImprovementRatio(double baseline_cost, double cost) {
  return cost > 0 ? baseline_cost / cost : 0.0;
}

}  // namespace piggy
