// Umbrella header: the full public API of the social-piggybacking library.
//
// The two entry points are the Planner registry (offline optimization) and
// the FeedService facade (online serving):
//
//   #include "core/piggy.h"
//   using namespace piggy;
//
//   Graph g = MakeFlickrLike(20000, /*seed=*/1).ValueOrDie();
//   Workload w = GenerateWorkload(g, {.read_write_ratio = 5.0}).ValueOrDie();
//
//   // Offline: any registered planner through one contract.
//   auto planner = MakePlanner("chitchat").MoveValueOrDie();   // or "nosy",
//   PlanResult plan = planner->Plan(g, w).MoveValueOrDie();    // "hybrid", ...
//   double ratio = ImprovementRatio(plan.hybrid_cost, plan.final_cost);
//
//   // Online: a serving deployment around the planned schedule.
//   FeedServiceOptions opts;
//   opts.planner = "chitchat";
//   opts.prototype.num_servers = 500;
//   auto service = FeedService::Create(g, opts).MoveValueOrDie();
//   service->Share(42);
//   auto feed = service->QueryStream(7).MoveValueOrDie();
//   service->Follow(/*follower=*/7, /*producer=*/42);  // schedule stays valid
//
//   // Scale out: the same surface over N shards (cluster/cluster_service.h).
//   ClusterOptions copts;
//   copts.num_shards = 16;
//   copts.partitioner = "edge-cut";   // or "hash"
//   auto cluster = ClusterService::Create(g, copts).MoveValueOrDie();
//
// DEPRECATED LEGACY SURFACE — the per-algorithm free functions RunChitChat,
// RunParallelNosy, HybridSchedule, PushAllSchedule and PullAllSchedule remain
// for compatibility (the registry planners are proven bit-identical to them
// by planner_registry_test), but new code should go through MakePlanner /
// FeedService; the free functions will eventually be demoted out of this
// umbrella.

#pragma once

#include "cluster/cluster_service.h" // IWYU pragma: export
#include "core/active_store.h"       // IWYU pragma: export
#include "core/baselines.h"          // IWYU pragma: export
#include "core/chitchat.h"           // IWYU pragma: export
#include "core/cost_model.h"         // IWYU pragma: export
#include "core/densest_subgraph.h"   // IWYU pragma: export
#include "core/incremental.h"        // IWYU pragma: export
#include "core/parallel_nosy.h"      // IWYU pragma: export
#include "core/plan_hooks.h"         // IWYU pragma: export
#include "core/planner.h"            // IWYU pragma: export
#include "core/schedule.h"           // IWYU pragma: export
#include "core/schedule_io.h"        // IWYU pragma: export
#include "core/validator.h"          // IWYU pragma: export
#include "gen/generators.h"          // IWYU pragma: export
#include "gen/presets.h"             // IWYU pragma: export
#include "graph/dynamic_graph.h"     // IWYU pragma: export
#include "graph/graph.h"             // IWYU pragma: export
#include "graph/graph_builder.h"     // IWYU pragma: export
#include "graph/graph_io.h"          // IWYU pragma: export
#include "graph/graph_stats.h"       // IWYU pragma: export
#include "rebalance/coordinator.h"   // IWYU pragma: export
#include "rebalance/planner.h"       // IWYU pragma: export
#include "rebalance/trigger.h"       // IWYU pragma: export
#include "sampling/samplers.h"       // IWYU pragma: export
#include "store/feed_service.h"      // IWYU pragma: export
#include "store/prototype.h"         // IWYU pragma: export
#include "store/workload_driver.h"   // IWYU pragma: export
#include "workload/workload.h"       // IWYU pragma: export
