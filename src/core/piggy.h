// Umbrella header: the full public API of the social-piggybacking library.
//
// Typical pipeline:
//
//   #include "core/piggy.h"
//   using namespace piggy;
//
//   Graph g = MakeFlickrLike(20000, /*seed=*/1).ValueOrDie();
//   Workload w = GenerateWorkload(g, {.read_write_ratio = 5.0}).ValueOrDie();
//
//   Schedule ff = HybridSchedule(g, w);                      // FF baseline
//   auto pn = RunParallelNosy(g, w).ValueOrDie();            // heuristic
//   Schedule cc = RunChitChat(g, w).ValueOrDie();            // O(log n) approx
//
//   double ratio = ImprovementRatio(HybridCost(g, w), pn.final_cost);
//
//   auto proto = Prototype::Create(g, pn.schedule, {.num_servers = 500});
//   auto report = RunWorkloadDriver(**proto, w, {.num_requests = 100000});

#pragma once

#include "core/active_store.h"       // IWYU pragma: export
#include "core/baselines.h"          // IWYU pragma: export
#include "core/chitchat.h"           // IWYU pragma: export
#include "core/cost_model.h"         // IWYU pragma: export
#include "core/densest_subgraph.h"   // IWYU pragma: export
#include "core/incremental.h"        // IWYU pragma: export
#include "core/parallel_nosy.h"      // IWYU pragma: export
#include "core/schedule.h"           // IWYU pragma: export
#include "core/schedule_io.h"        // IWYU pragma: export
#include "core/validator.h"          // IWYU pragma: export
#include "gen/generators.h"          // IWYU pragma: export
#include "gen/presets.h"             // IWYU pragma: export
#include "graph/dynamic_graph.h"     // IWYU pragma: export
#include "graph/graph.h"             // IWYU pragma: export
#include "graph/graph_builder.h"     // IWYU pragma: export
#include "graph/graph_io.h"          // IWYU pragma: export
#include "graph/graph_stats.h"       // IWYU pragma: export
#include "sampling/samplers.h"       // IWYU pragma: export
#include "store/prototype.h"         // IWYU pragma: export
#include "store/workload_driver.h"   // IWYU pragma: export
#include "workload/workload.h"       // IWYU pragma: export
