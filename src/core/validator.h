// Schedule validation against Theorem 1 (bounded staleness).
//
// A schedule guarantees bounded staleness iff every edge u -> v of the graph
// is served by (i) a push, (ii) a pull, or (iii) piggybacking through a hub w
// with u -> w in H and w -> v in L (and both edges present in the graph).
// The validator re-derives hub validity from H and L instead of trusting the
// C bookkeeping, and additionally checks referential integrity of all three
// sets against the graph.

#pragma once

#include "core/schedule.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/status.h"

namespace piggy {

/// \brief Validation knobs.
struct ValidatorOptions {
  /// Accept edges with no assignment at all (PARALLELNOSY intermediate
  /// states, where unassigned edges fall back to the hybrid policy at run
  /// time and are therefore still served within bounded staleness).
  bool allow_unassigned = false;
  /// Accept an unassigned edge if *some* hub serves it (u -> w in H and
  /// w -> v in L for any w), even without a C entry. Used by property tests.
  bool allow_implicit_hubs = false;
};

/// Validates the schedule against a CSR graph.
Status ValidateSchedule(const Graph& g, const Schedule& s,
                        const ValidatorOptions& options = {});

/// Validates the schedule against a dynamic graph (incremental maintenance).
Status ValidateSchedule(const DynamicGraph& g, const Schedule& s,
                        const ValidatorOptions& options = {});

}  // namespace piggy
