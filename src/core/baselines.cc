#include "core/baselines.h"

namespace piggy {

Schedule PushAllSchedule(const Graph& g) {
  Schedule s;
  g.ForEachEdge([&s](const Edge& e) { s.AddPush(e.src, e.dst); });
  return s;
}

Schedule PullAllSchedule(const Graph& g) {
  Schedule s;
  g.ForEachEdge([&s](const Edge& e) { s.AddPull(e.src, e.dst); });
  return s;
}

Schedule HybridSchedule(const Graph& g, const Workload& w) {
  Schedule s;
  g.ForEachEdge([&](const Edge& e) {
    if (w.rp(e.src) <= w.rc(e.dst)) {
      s.AddPush(e.src, e.dst);
    } else {
      s.AddPull(e.src, e.dst);
    }
  });
  return s;
}

void FinalizeWithHybrid(const Graph& g, const Workload& w, Schedule* schedule) {
  g.ForEachEdge([&](const Edge& e) {
    if (schedule->IsAssigned(e.src, e.dst)) return;
    if (w.rp(e.src) <= w.rc(e.dst)) {
      schedule->AddPush(e.src, e.dst);
    } else {
      schedule->AddPull(e.src, e.dst);
    }
  });
}

}  // namespace piggy
