#include "core/incremental.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/cost_model.h"
#include "util/string_util.h"

namespace piggy {

IncrementalMaintainer::IncrementalMaintainer(DynamicGraph* graph,
                                             Schedule* schedule,
                                             const Workload* workload)
    : graph_(graph), schedule_(schedule), workload_(workload) {
  PIGGY_CHECK(graph_ != nullptr);
  PIGGY_CHECK(schedule_ != nullptr);
  PIGGY_CHECK(workload_ != nullptr);
  RebuildIndexes();
}

void IncrementalMaintainer::RebuildIndexes() {
  by_push_.Clear();
  by_pull_.Clear();
  schedule_->ForEachHubCover([this](const Edge& e, NodeId w) {
    uint64_t push_key = EdgeKey(e.src, w);
    if (auto* list = by_push_.Find(push_key)) {
      list->push_back(e.dst);
    } else {
      by_push_.Put(push_key, {e.dst});
    }
    uint64_t pull_key = EdgeKey(w, e.dst);
    if (auto* list = by_pull_.Find(pull_key)) {
      list->push_back(e.src);
    } else {
      by_pull_.Put(pull_key, {e.src});
    }
  });
}

void IncrementalMaintainer::EraseFrom(std::vector<NodeId>& v, NodeId x) {
  auto it = std::find(v.begin(), v.end(), x);
  if (it != v.end()) v.erase(it);
}

void IncrementalMaintainer::ServeDirect(NodeId u, NodeId v) {
  if (workload_->rp(u) <= workload_->rc(v)) {
    schedule_->AddPush(u, v);
  } else {
    schedule_->AddPull(u, v);
  }
}

void IncrementalMaintainer::DropCoverEntry(NodeId u, NodeId v, NodeId hub) {
  schedule_->ClearHubCover(u, v);
  if (auto* list = by_push_.Find(EdgeKey(u, hub))) EraseFrom(*list, v);
  if (auto* list = by_pull_.Find(EdgeKey(hub, v))) EraseFrom(*list, u);
}

Status IncrementalMaintainer::AddEdge(NodeId u, NodeId v) {
  if (u == v) return Status::InvalidArgument("self-loop");
  if (u >= workload_->num_users() || v >= workload_->num_users()) {
    return Status::OutOfRange(
        StrFormat("node %u or %u outside workload (%zu users)", u, v,
                  workload_->num_users()));
  }
  graph_->EnsureNodes(static_cast<size_t>(std::max(u, v)) + 1);
  if (!graph_->AddEdge(u, v)) return Status::OK();  // already present
  if (!schedule_->IsAssigned(u, v)) ServeDirect(u, v);
  return Status::OK();
}

void IncrementalMaintainer::RepairEdgeAdded(NodeId u, NodeId v) {
  if (!graph_->HasEdge(u, v)) return;  // removed again while the plan flew
  if (!schedule_->IsAssigned(u, v)) ServeDirect(u, v);
}

Status IncrementalMaintainer::RemoveEdge(NodeId u, NodeId v) {
  if (!graph_->RemoveEdge(u, v)) {
    return Status::NotFound(StrFormat("edge %u->%u not in graph", u, v));
  }
  RepairEdgeRemoved(u, v);
  return Status::OK();
}

void IncrementalMaintainer::RepairEdgeRemoved(NodeId u, NodeId v) {
  // The removed edge's own cover entry, if any.
  if (auto hub = schedule_->HubFor(u, v)) DropCoverEntry(u, v, *hub);

  // If u -> v was a supporting push (v acting as hub), re-serve dependents.
  if (schedule_->IsPush(u, v)) {
    schedule_->RemovePush(u, v);
    if (auto* list = by_push_.Find(EdgeKey(u, v))) {
      std::vector<NodeId> dependents = *list;  // DropCoverEntry mutates *list
      for (NodeId y : dependents) {
        DropCoverEntry(u, y, v);
        if (graph_->HasEdge(u, y) && !schedule_->IsAssigned(u, y)) {
          ServeDirect(u, y);
          ++repairs_;
        }
      }
      by_push_.Erase(EdgeKey(u, v));
    }
  }

  // If u -> v was a supporting pull (u acting as hub), re-serve dependents.
  if (schedule_->IsPull(u, v)) {
    schedule_->RemovePull(u, v);
    if (auto* list = by_pull_.Find(EdgeKey(u, v))) {
      std::vector<NodeId> dependents = *list;
      for (NodeId x : dependents) {
        DropCoverEntry(x, v, u);
        if (graph_->HasEdge(x, v) && !schedule_->IsAssigned(x, v)) {
          ServeDirect(x, v);
          ++repairs_;
        }
      }
      by_pull_.Erase(EdgeKey(u, v));
    }
  }
}

}  // namespace piggy
