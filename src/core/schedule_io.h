// Schedule persistence.
//
// In the paper's architecture the request schedule is computed offline (a
// Hadoop job over the social graph) and shipped to the application-logic
// servers, which keep push/pull sets in memory. This module provides the
// interchange format: a line-oriented text file
//
//   piggy-schedule v1
//   H <src> <dst>
//   L <src> <dst>
//   C <src> <dst> <hub>
//   E <push> <pull> <cover>
//
// '#' starts a comment. The trailing `E` footer carries the entry counts so a
// truncated file is detected instead of silently yielding a partial schedule
// (the durability layer embeds serialized schedules in snapshots, where a torn
// write is a real possibility). The format is stable, diff-friendly and easy
// to produce from other tooling.

#pragma once

#include <string>
#include <string_view>

#include "core/schedule.h"
#include "util/status.h"

namespace piggy {

/// Renders a schedule in the text format above (H, then L, then C entries,
/// each sorted by edge key for deterministic output, then the E footer).
std::string SerializeSchedule(const Schedule& s);

/// Parses a schedule serialized by SerializeSchedule. Malformed or truncated
/// input returns an IOError naming `source_name` and the byte offset of the
/// offending line; a missing footer means the data was cut short.
Result<Schedule> ParseSchedule(std::string_view data,
                               const std::string& source_name);

/// Writes a schedule to `path` via SerializeSchedule.
Status WriteScheduleText(const Schedule& s, const std::string& path);

/// Reads a schedule written by WriteScheduleText.
Result<Schedule> ReadScheduleText(const std::string& path);

}  // namespace piggy
