// Schedule persistence.
//
// In the paper's architecture the request schedule is computed offline (a
// Hadoop job over the social graph) and shipped to the application-logic
// servers, which keep push/pull sets in memory. This module provides the
// interchange format: a line-oriented text file
//
//   piggy-schedule v1
//   H <src> <dst>
//   L <src> <dst>
//   C <src> <dst> <hub>
//
// '#' starts a comment. The format is stable, diff-friendly and easy to
// produce from other tooling.

#pragma once

#include <string>

#include "core/schedule.h"
#include "util/status.h"

namespace piggy {

/// Writes a schedule to `path` (H, then L, then C entries, each sorted by
/// edge key for deterministic output).
Status WriteScheduleText(const Schedule& s, const std::string& path);

/// Reads a schedule written by WriteScheduleText.
Result<Schedule> ReadScheduleText(const std::string& path);

}  // namespace piggy
