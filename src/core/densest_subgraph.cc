#include "core/densest_subgraph.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace piggy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double DensityOf(size_t covered, double cost) {
  if (covered == 0) return 0.0;
  if (cost <= 0) return kInf;
  return static_cast<double>(covered) / cost;
}

// Compares candidate states: higher density wins; among equal densities
// (notably +inf vs +inf) more coverage wins.
bool BetterState(size_t covered_a, double cost_a, size_t covered_b, double cost_b) {
  double da = DensityOf(covered_a, cost_a);
  double db = DensityOf(covered_b, cost_b);
  if (da != db) return da > db;
  return covered_a > covered_b;
}

}  // namespace

double DensestSubgraphSolution::CostPerElement() const {
  if (covered == 0) return kInf;
  return cost / static_cast<double>(covered);
}

DensestSubgraphSolution EvaluateSelection(const HubGraphInstance& instance,
                                          std::vector<uint32_t> producer_idx,
                                          std::vector<uint32_t> consumer_idx) {
  DensestSubgraphSolution sol;
  sol.producer_idx = std::move(producer_idx);
  sol.consumer_idx = std::move(consumer_idx);

  std::vector<uint8_t> p_sel(instance.producers.size(), 0);
  std::vector<uint8_t> c_sel(instance.consumers.size(), 0);
  for (uint32_t p : sol.producer_idx) {
    PIGGY_CHECK_LT(p, instance.producers.size());
    p_sel[p] = 1;
    sol.cost += instance.producer_weight[p];
    sol.covered += instance.producer_link_in_z[p];
  }
  for (uint32_t c : sol.consumer_idx) {
    PIGGY_CHECK_LT(c, instance.consumers.size());
    c_sel[c] = 1;
    sol.cost += instance.consumer_weight[c];
    sol.covered += instance.consumer_link_in_z[c];
  }
  for (const auto& [p, c] : instance.cross_edges) {
    if (p_sel[p] && c_sel[c]) ++sol.covered;
  }
  sol.density = DensityOf(sol.covered, sol.cost);
  return sol;
}

DensestSubgraphSolution SolveWeightedDensestSubgraph(const HubGraphInstance& instance) {
  const size_t np = instance.producers.size();
  const size_t nc = instance.consumers.size();
  const size_t n = np + nc;
  if (n == 0) return DensestSubgraphSolution{};

  // Node numbering: producers [0, np), consumers [np, np + nc).
  // Cross adjacency between the two sides.
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& [p, c] : instance.cross_edges) {
    adj[p].push_back(static_cast<uint32_t>(np + c));
    adj[np + c].push_back(p);
  }

  auto weight_of = [&](uint32_t node) {
    return node < np ? instance.producer_weight[node]
                     : instance.consumer_weight[node - np];
  };
  auto link_in_z = [&](uint32_t node) -> size_t {
    return node < np ? instance.producer_link_in_z[node]
                     : instance.consumer_link_in_z[node - np];
  };

  // deg[u] = uncovered incident edges while u is alive: the hub link (if
  // uncovered) plus alive cross edges.
  std::vector<size_t> deg(n);
  size_t covered = 0;
  double cost = 0;
  size_t weighted_alive = 0;  // nodes with positive weight still alive
  for (uint32_t u = 0; u < n; ++u) {
    deg[u] = link_in_z(u) + adj[u].size();
    covered += link_in_z(u);
    cost += weight_of(u);
    if (weight_of(u) > 0) ++weighted_alive;
  }
  covered += instance.cross_edges.size();

  auto weighted_degree = [&](uint32_t u) {
    double g = weight_of(u);
    if (g <= 0) return deg[u] > 0 ? kInf : kInf;  // free nodes are never peeled
    return static_cast<double>(deg[u]) / g;
  };

  // Lazy min-heap of (weighted degree, node id); stale entries are skipped by
  // comparing the recorded degree against the current one.
  struct HeapEntry {
    double wd;
    uint32_t node;
    size_t deg_at_push;
  };
  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.wd != b.wd) return a.wd > b.wd;
    return a.node > b.node;  // deterministic tie-break: smaller id first
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(cmp);
  for (uint32_t u = 0; u < n; ++u) {
    if (weight_of(u) > 0) heap.push({weighted_degree(u), u, deg[u]});
  }

  std::vector<uint8_t> alive(n, 1);
  // Track the best intermediate state; reconstruct it from the removal order.
  size_t best_covered = covered;
  double best_cost = cost;
  size_t best_removed_count = 0;
  std::vector<uint32_t> removal_order;
  removal_order.reserve(n);

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (!alive[top.node] || top.deg_at_push != deg[top.node]) continue;

    // Peel top.node.
    uint32_t u = top.node;
    alive[u] = 0;
    removal_order.push_back(u);
    covered -= deg[u];
    cost -= weight_of(u);
    // Only weighted nodes are ever peeled; once none remain alive the true
    // residual cost is exactly zero — clear the floating-point subtraction
    // residue so free coverage registers as infinite density.
    if (--weighted_alive == 0) cost = 0.0;
    for (uint32_t v : adj[u]) {
      if (!alive[v]) continue;
      PIGGY_CHECK_GT(deg[v], 0u);
      --deg[v];
      if (weight_of(v) > 0) heap.push({weighted_degree(v), v, deg[v]});
    }
    // Note: deg[u] intentionally keeps its pre-removal value only for the
    // subtraction above; clear it so stale heap entries never match.
    deg[u] = std::numeric_limits<size_t>::max();

    if (BetterState(covered, cost, best_covered, best_cost)) {
      best_covered = covered;
      best_cost = cost;
      best_removed_count = removal_order.size();
    }
  }

  // Survivors of the best prefix of removals form the solution.
  std::vector<uint8_t> in_best(n, 1);
  for (size_t i = 0; i < best_removed_count; ++i) in_best[removal_order[i]] = 0;

  DensestSubgraphSolution sol;
  for (uint32_t u = 0; u < np; ++u) {
    if (in_best[u]) sol.producer_idx.push_back(u);
  }
  for (uint32_t u = static_cast<uint32_t>(np); u < n; ++u) {
    if (in_best[u]) sol.consumer_idx.push_back(u - static_cast<uint32_t>(np));
  }
  sol.covered = best_covered;
  sol.cost = best_cost;
  sol.density = DensityOf(best_covered, best_cost);
  return sol;
}

DensestSubgraphSolution SolveDensestSubgraphExhaustive(const HubGraphInstance& instance) {
  const size_t np = instance.producers.size();
  const size_t nc = instance.consumers.size();
  const size_t n = np + nc;
  PIGGY_CHECK_LE(n, 20u) << "exhaustive solver is for small instances";

  DensestSubgraphSolution best;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<uint32_t> ps, cs;
    for (uint32_t u = 0; u < n; ++u) {
      if (!(mask >> u & 1)) continue;
      if (u < np) {
        ps.push_back(u);
      } else {
        cs.push_back(u - static_cast<uint32_t>(np));
      }
    }
    DensestSubgraphSolution sol = EvaluateSelection(instance, std::move(ps), std::move(cs));
    if (BetterState(sol.covered, sol.cost, best.covered, best.cost)) {
      best = std::move(sol);
    }
  }
  return best;
}

}  // namespace piggy
