#include "core/densest_subgraph.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace piggy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double DensityOf(size_t covered, double cost) {
  if (covered == 0) return 0.0;
  if (cost <= 0) return kInf;
  return static_cast<double>(covered) / cost;
}

// Compares candidate states: higher density wins; among equal densities
// (notably +inf vs +inf) more coverage wins.
bool BetterState(size_t covered_a, double cost_a, size_t covered_b, double cost_b) {
  double da = DensityOf(covered_a, cost_a);
  double db = DensityOf(covered_b, cost_b);
  if (da != db) return da > db;
  return covered_a > covered_b;
}

}  // namespace

double DensestSubgraphSolution::CostPerElement() const {
  if (covered == 0) return kInf;
  return cost / static_cast<double>(covered);
}

DensestSubgraphSolution EvaluateSelection(const HubGraphInstance& instance,
                                          std::vector<uint32_t> producer_idx,
                                          std::vector<uint32_t> consumer_idx) {
  DensestSubgraphSolution sol;
  sol.producer_idx = std::move(producer_idx);
  sol.consumer_idx = std::move(consumer_idx);

  std::vector<uint8_t> p_sel(instance.producers.size(), 0);
  std::vector<uint8_t> c_sel(instance.consumers.size(), 0);
  for (uint32_t p : sol.producer_idx) {
    PIGGY_CHECK_LT(p, instance.producers.size());
    p_sel[p] = 1;
    sol.cost += instance.producer_weight[p];
    sol.covered += instance.producer_link_in_z[p];
  }
  for (uint32_t c : sol.consumer_idx) {
    PIGGY_CHECK_LT(c, instance.consumers.size());
    c_sel[c] = 1;
    sol.cost += instance.consumer_weight[c];
    sol.covered += instance.consumer_link_in_z[c];
  }
  for (const auto& [p, c] : instance.cross_edges) {
    if (p_sel[p] && c_sel[c]) ++sol.covered;
  }
  sol.density = DensityOf(sol.covered, sol.cost);
  return sol;
}

void SolveWeightedDensestSubgraph(const HubGraphInstance& instance,
                                  OracleScratch& scratch,
                                  DensestSubgraphSolution* out) {
  out->producer_idx.clear();
  out->consumer_idx.clear();
  out->covered = 0;
  out->cost = 0;
  out->density = 0;

  const size_t np = instance.producers.size();
  const size_t nc = instance.consumers.size();
  const size_t n = np + nc;
  if (n == 0) return;
  const uint32_t np32 = static_cast<uint32_t>(np);
  const uint32_t n32 = static_cast<uint32_t>(n);

  // Flat CSR cross adjacency over the instance nodes (producers [0, np),
  // consumers [np, n)), built by counting sort so per-node neighbor order
  // matches cross_edges order.
  scratch.csr_offsets.assign(n + 1, 0);
  for (const auto& [p, c] : instance.cross_edges) {
    ++scratch.csr_offsets[p + 1];
    ++scratch.csr_offsets[np32 + c + 1];
  }
  for (uint32_t u = 0; u < n32; ++u) {
    scratch.csr_offsets[u + 1] += scratch.csr_offsets[u];
  }
  scratch.csr_adj.resize(2 * instance.cross_edges.size());
  scratch.cursor.assign(scratch.csr_offsets.begin(), scratch.csr_offsets.end() - 1);
  for (const auto& [p, c] : instance.cross_edges) {
    scratch.csr_adj[scratch.cursor[p]++] = np32 + c;
    scratch.csr_adj[scratch.cursor[np32 + c]++] = p;
  }

  // deg[u] = uncovered incident edges while u is alive: the hub link (if
  // uncovered) plus alive cross edges.
  scratch.weight.resize(n);
  scratch.deg.resize(n);
  scratch.alive.assign(n, 1);
  scratch.removal_order.clear();
  scratch.heap.clear();

  size_t covered = 0;
  double cost = 0;
  size_t weighted_alive = 0;  // nodes with positive weight still alive
  for (uint32_t u = 0; u < n32; ++u) {
    const double g = u < np32 ? instance.producer_weight[u]
                              : instance.consumer_weight[u - np32];
    const uint32_t link = u < np32 ? instance.producer_link_in_z[u]
                                   : instance.consumer_link_in_z[u - np32];
    scratch.weight[u] = g;
    scratch.deg[u] = link + (scratch.csr_offsets[u + 1] - scratch.csr_offsets[u]);
    covered += link;
    cost += g;
    if (g > 0) ++weighted_alive;
  }
  covered += instance.cross_edges.size();

  // Lazy min-heap of (weighted degree, node id); stale entries are skipped by
  // comparing the recorded degree against the current one. Free nodes are
  // never peeled (they can only help).
  auto cmp = [](const OracleScratch::HeapEntry& a, const OracleScratch::HeapEntry& b) {
    if (a.wd != b.wd) return a.wd > b.wd;
    return a.node > b.node;  // deterministic tie-break: smaller id first
  };
  auto heap_push = [&scratch, &cmp](uint32_t u) {
    scratch.heap.push_back({static_cast<double>(scratch.deg[u]) / scratch.weight[u],
                            u, scratch.deg[u]});
    std::push_heap(scratch.heap.begin(), scratch.heap.end(), cmp);
  };
  // Bulk-load the initial entries and heapify once (O(n) instead of
  // O(n log n) repeated pushes). Entries are pairwise distinct under the
  // comparator, so the pop sequence — and hence the result — is independent
  // of the heap's internal layout.
  for (uint32_t u = 0; u < n32; ++u) {
    if (scratch.weight[u] > 0) {
      scratch.heap.push_back(
          {static_cast<double>(scratch.deg[u]) / scratch.weight[u], u, scratch.deg[u]});
    }
  }
  std::make_heap(scratch.heap.begin(), scratch.heap.end(), cmp);

  // Track the best intermediate state; reconstruct it from the removal order.
  size_t best_covered = covered;
  double best_cost = cost;
  size_t best_removed_count = 0;

  while (!scratch.heap.empty()) {
    const OracleScratch::HeapEntry top = scratch.heap.front();
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(), cmp);
    scratch.heap.pop_back();
    if (!scratch.alive[top.node] || top.deg_at_push != scratch.deg[top.node]) continue;

    // Peel top.node.
    const uint32_t u = top.node;
    scratch.alive[u] = 0;
    scratch.removal_order.push_back(u);
    covered -= scratch.deg[u];
    cost -= scratch.weight[u];
    // Only weighted nodes are ever peeled; once none remain alive the true
    // residual cost is exactly zero — clear the floating-point subtraction
    // residue so free coverage registers as infinite density.
    if (--weighted_alive == 0) cost = 0.0;
    for (uint32_t k = scratch.csr_offsets[u]; k < scratch.csr_offsets[u + 1]; ++k) {
      const uint32_t v = scratch.csr_adj[k];
      if (!scratch.alive[v]) continue;
      PIGGY_CHECK_GT(scratch.deg[v], 0u);
      --scratch.deg[v];
      if (scratch.weight[v] > 0) heap_push(v);
    }
    // Note: deg[u] intentionally keeps its pre-removal value only for the
    // subtraction above; clear it so stale heap entries never match.
    scratch.deg[u] = std::numeric_limits<uint32_t>::max();

    if (BetterState(covered, cost, best_covered, best_cost)) {
      best_covered = covered;
      best_cost = cost;
      best_removed_count = scratch.removal_order.size();
    }
  }

  // Survivors of the best prefix of removals form the solution (alive is
  // reused as the "in best" marker — every peel already set it to 0, so only
  // the suffix removed after the best prefix needs restoring).
  scratch.alive.assign(n, 1);
  for (size_t i = 0; i < best_removed_count; ++i) {
    scratch.alive[scratch.removal_order[i]] = 0;
  }
  for (uint32_t u = 0; u < np32; ++u) {
    if (scratch.alive[u]) out->producer_idx.push_back(u);
  }
  for (uint32_t u = np32; u < n32; ++u) {
    if (scratch.alive[u]) out->consumer_idx.push_back(u - np32);
  }
  out->covered = best_covered;
  out->cost = best_cost;
  out->density = DensityOf(best_covered, best_cost);
}

DensestSubgraphSolution SolveDensestSubgraphExhaustive(const HubGraphInstance& instance) {
  const size_t np = instance.producers.size();
  const size_t nc = instance.consumers.size();
  const size_t n = np + nc;
  PIGGY_CHECK_LE(n, 20u) << "exhaustive solver is for small instances";

  DensestSubgraphSolution best;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<uint32_t> ps, cs;
    for (uint32_t u = 0; u < n; ++u) {
      if (!(mask >> u & 1)) continue;
      if (u < np) {
        ps.push_back(u);
      } else {
        cs.push_back(u - static_cast<uint32_t>(np));
      }
    }
    DensestSubgraphSolution sol = EvaluateSelection(instance, std::move(ps), std::move(cs));
    if (BetterState(sol.covered, sol.cost, best.covered, best.cost)) {
      best = std::move(sol);
    }
  }
  return best;
}

}  // namespace piggy
