#include "core/active_store.h"

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace piggy {

void ActiveSchedule::AddPropagation(NodeId producer, NodeId via, NodeId target) {
  uint64_t key = EdgeKey(producer, via);
  std::vector<NodeId>* targets = sets_.Find(key);
  if (targets == nullptr) {
    sets_.Put(key, {target});
    ++entries_;
    return;
  }
  for (NodeId t : *targets) {
    if (t == target) return;  // already present
  }
  targets->push_back(target);
  ++entries_;
}

std::vector<NodeId> ActiveSchedule::PropagationSet(NodeId producer,
                                                   NodeId via) const {
  const std::vector<NodeId>* targets = sets_.Find(EdgeKey(producer, via));
  return targets ? *targets : std::vector<NodeId>{};
}

Status ActiveSchedule::Validate(const Graph& g) const {
  Status failure = Status::OK();
  ForEachPropagation([&](NodeId producer, NodeId via, NodeId target) {
    if (!failure.ok()) return;
    if (!g.HasEdge(producer, via)) {
      failure = Status::FailedPrecondition(
          StrFormat("propagation rides missing edge %u->%u", producer, via));
    } else if (!g.HasEdge(producer, target)) {
      failure = Status::FailedPrecondition(
          StrFormat("propagation to %u, who does not subscribe to %u", target,
                    producer));
    }
  });
  return failure;
}

namespace {

// Views that store events of `producer` under the active schedule, found by
// BFS over push edges and propagation sets. Returns pairs of (view,
// deliveries), deliveries being how many times the event arrives (each costs
// rp under the active cost model; the passive simulation pays once).
std::vector<std::pair<NodeId, size_t>> ActiveDeliveries(const Graph& g,
                                                        const ActiveSchedule& s,
                                                        NodeId producer) {
  U64Map<size_t> deliveries;  // view -> arrival count
  std::deque<NodeId> frontier;

  // Client-side pushes.
  for (NodeId v : g.OutNeighbors(producer)) {
    if (s.base().IsPush(producer, v)) {
      deliveries.Put(v, 1);
      frontier.push_back(v);
    }
  }
  // Server-side propagation: triggered only on *first* arrival
  // (Definition 5: "stores for the first time").
  while (!frontier.empty()) {
    NodeId via = frontier.front();
    frontier.pop_front();
    for (NodeId target : s.PropagationSet(producer, via)) {
      size_t* count = deliveries.Find(target);
      if (count == nullptr) {
        deliveries.Put(target, 1);
        frontier.push_back(target);
      } else {
        ++*count;  // duplicate delivery: charged, never re-propagated
      }
    }
  }

  std::vector<std::pair<NodeId, size_t>> out;
  out.reserve(deliveries.size());
  deliveries.ForEach([&out](uint64_t view, size_t count) {
    out.emplace_back(static_cast<NodeId>(view), count);
  });
  return out;
}

}  // namespace

double ActiveScheduleCost(const Graph& g, const Workload& w,
                          const ActiveSchedule& s) {
  double cost = 0;
  // Pull side: as in the passive model.
  s.base().ForEachPull([&](const Edge& e) {
    if (g.HasEdge(e.src, e.dst)) cost += w.rc(e.dst);
  });
  // Push + propagation side: every delivery of u's events costs rp(u).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& [view, count] : ActiveDeliveries(g, s, u)) {
      (void)view;
      cost += w.rp(u) * static_cast<double>(count);
    }
  }
  return cost;
}

Result<Schedule> SimulateAsPassive(const Graph& g, const ActiveSchedule& s) {
  PIGGY_RETURN_NOT_OK(s.Validate(g));
  Schedule passive;
  s.base().ForEachPull([&passive](const Edge& e) { passive.AddPull(e.src, e.dst); });
  // Flatten every reachable (producer, view) delivery into one direct push.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& [view, count] : ActiveDeliveries(g, s, u)) {
      (void)count;
      passive.AddPush(u, view);
    }
  }
  // Hub covers (if any) carry over untouched: their wiring lives in H and L
  // and flattening only adds pushes.
  s.base().ForEachHubCover([&passive](const Edge& e, NodeId hub) {
    passive.SetHubCover(e.src, e.dst, hub);
  });
  return passive;
}

}  // namespace piggy
