#include "core/cost_model.h"

// All cost-model entry points are templates or inline; this translation unit
// exists to anchor the header in the build and to instantiate the common
// specializations once for link-time reuse.

namespace piggy {

template double ScheduleCost<Graph>(const Graph&, const Workload&, const Schedule&,
                                    ResidualPolicy);
template double ScheduleCost<DynamicGraph>(const DynamicGraph&, const Workload&,
                                           const Schedule&, ResidualPolicy);
template double HybridCost<Graph>(const Graph&, const Workload&);
template double HybridCost<DynamicGraph>(const DynamicGraph&, const Workload&);

}  // namespace piggy
