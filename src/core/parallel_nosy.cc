#include "core/parallel_nosy.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.h"
#include "core/cost_model.h"
#include "mapreduce/mapreduce.h"
#include "simd/kernels.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/u64_containers.h"

namespace piggy {

namespace {

// A candidate hub-graph G(X, w, y) produced by phase 1.
struct Candidate {
  NodeId w = 0;
  NodeId y = 0;
  std::vector<NodeId> xs;
  double gain = 0;
};

// A lock request: candidate identified by its hub edge (w -> y), with the
// gain used for arbitration.
struct LockRequest {
  double gain;
  uint64_t hub_key;
};

// Schedule mutation produced by phase 3, applied at the merge barrier.
struct Update {
  enum Kind : uint8_t { kPush, kPull, kCover };
  Kind kind;
  uint64_t edge_key;
  NodeId hub;  // for kCover
};

// Deterministic lock arbitration (phase 2). Highest gain wins; ties go to the
// smaller hub-edge key, or to a salted hash for the randomized ablation.
bool LockWins(const LockRequest& a, const LockRequest& b, bool randomized,
              uint64_t salt) {
  if (a.gain != b.gain) return a.gain > b.gain;
  if (randomized) return Mix64(a.hub_key ^ salt) < Mix64(b.hub_key ^ salt);
  return a.hub_key < b.hub_key;
}

class NosyState {
 public:
  NosyState(const Graph& g, const Workload& w, const ParallelNosyOptions& options)
      : g_(g), w_(w), options_(options) {}

  // ---- Phase 1 helpers (read-only on the frozen schedule) ----------------

  // Positive cost of requiring a push on e = x -> w (paper's c_X).
  double PushCost(NodeId x, NodeId w) const {
    if (schedule_.IsPush(x, w)) return 0.0;
    if (schedule_.IsPull(x, w)) return w_.rp(x);
    return w_.rp(x) - HybridEdgeCost(w_, x, w);
  }

  // Positive cost of requiring a pull on e = w -> y (specular).
  double PullCost(NodeId w, NodeId y) const {
    if (schedule_.IsPull(w, y)) return 0.0;
    if (schedule_.IsPush(w, y)) return w_.rc(y);
    return w_.rc(y) - HybridEdgeCost(w_, w, y);
  }

  // Gain of selecting hub-graph (w, y, xs): hybrid cost saved on the cross
  // edges minus the push/pull costs incurred.
  double Gain(NodeId w, NodeId y, const std::vector<NodeId>& xs) const {
    double saved = 0;
    double cost = PullCost(w, y);
    for (NodeId x : xs) {
      saved += HybridEdgeCost(w_, x, y);
      cost += PushCost(x, w);
    }
    return saved - cost;
  }

  // Builds the candidate for hub edge w -> y, or nullopt if it does not
  // qualify. Deterministic; called again in phase 3 to re-derive X.
  std::optional<Candidate> BuildCandidate(NodeId w, NodeId y) const {
    if (schedule_.IsHubCovered(w, y)) return std::nullopt;
    Candidate cand;
    cand.w = w;
    cand.y = y;
    for (NodeId x : g_.InNeighbors(w)) {
      if (cand.xs.size() >= options_.max_hub_producers) break;
      if (x == y) continue;
      if (schedule_.IsHubCovered(x, w)) continue;  // keep prior optimizations
      if (!g_.HasEdge(x, y)) continue;             // need the cross edge
      if (schedule_.IsHubCovered(x, y) || schedule_.IsPush(x, y) ||
          schedule_.IsPull(x, y)) {
        continue;  // covering x -> y through w would be useless
      }
      cand.xs.push_back(x);
    }
    if (cand.xs.empty()) return std::nullopt;
    cand.gain = Gain(w, y, cand.xs);
    if (cand.gain <= options_.min_gain) return std::nullopt;
    return cand;
  }

  // Emits the lock requests of a candidate: exactly the edges whose schedule
  // entry the candidate would modify. Edges already carrying the required
  // service (x -> w in H, w -> y in L) need no lock: no other candidate can
  // change them in a conflicting way (there are no removals, and the
  // phase-1 conditions bar anyone from covering an edge that is in H or L).
  // Scoping locks to modifications is what lets a hub with many consumers
  // adopt them all in one iteration once its pushes are in place, instead of
  // one per iteration.
  template <typename F>
  void ForEachLockedEdge(const Candidate& cand, F fn) const {
    for (NodeId x : cand.xs) {
      if (!schedule_.IsPush(x, cand.w)) fn(EdgeKey(x, cand.w));
      fn(EdgeKey(x, cand.y));  // cross edges are unassigned by construction
    }
    if (!schedule_.IsPull(cand.w, cand.y)) fn(EdgeKey(cand.w, cand.y));
  }

  // ---- Phase 3: scheduling decision for one candidate --------------------

  // `granted` = sorted edge keys this candidate won. An edge that needed no
  // lock (service already in place) counts as granted. Appends updates.
  void Decide(const Candidate& cand, const std::vector<uint64_t>& granted,
              std::vector<Update>& updates, size_t* applied) const {
    auto has = [&granted](uint64_t key) {
      return std::binary_search(granted.begin(), granted.end(), key);
    };
    if (!schedule_.IsPull(cand.w, cand.y) && !has(EdgeKey(cand.w, cand.y))) {
      return;  // cannot schedule the pull
    }

    std::vector<NodeId> xs_granted;
    xs_granted.reserve(cand.xs.size());
    for (NodeId x : cand.xs) {
      bool push_ok = schedule_.IsPush(x, cand.w) || has(EdgeKey(x, cand.w));
      if (push_ok && has(EdgeKey(x, cand.y))) {
        xs_granted.push_back(x);
      }
    }
    if (xs_granted.empty()) return;
    if (xs_granted.size() < cand.xs.size()) {
      // Partial grant: re-evaluate on the shrunk hub-graph G(X', w, y).
      if (Gain(cand.w, cand.y, xs_granted) <= options_.min_gain) return;
    }
    if (!schedule_.IsPull(cand.w, cand.y)) {
      updates.push_back({Update::kPull, EdgeKey(cand.w, cand.y), 0});
    }
    for (NodeId x : xs_granted) {
      if (!schedule_.IsPush(x, cand.w)) {
        updates.push_back({Update::kPush, EdgeKey(x, cand.w), 0});
      }
      updates.push_back({Update::kCover, EdgeKey(x, cand.y), cand.w});
    }
    ++*applied;
  }

  // ---- Merge: applies the iteration's updates to the schedule ------------

  size_t Merge(const std::vector<Update>& updates) {
    size_t covered = 0;
    for (const Update& u : updates) {
      Edge e = EdgeFromKey(u.edge_key);
      switch (u.kind) {
        case Update::kPush:
          schedule_.AddPush(e.src, e.dst);
          break;
        case Update::kPull:
          schedule_.AddPull(e.src, e.dst);
          break;
        case Update::kCover:
          if (schedule_.SetHubCover(e.src, e.dst, u.hub)) ++covered;
          break;
      }
    }
    return covered;
  }

  const Graph& g_;
  const Workload& w_;
  const ParallelNosyOptions& options_;
  Schedule schedule_;
};

// ---- Sequential reference executor ---------------------------------------

std::vector<Update> RunIterationSequential(NosyState& state,
                                           const std::vector<Edge>& edges,
                                           uint64_t salt,
                                           NosyIterationStats* it_stats,
                                           size_t* applied) {
  // Phase 1: candidates.
  std::vector<Candidate> candidates;
  for (const Edge& e : edges) {
    auto cand = state.BuildCandidate(e.src, e.dst);
    if (cand) candidates.push_back(std::move(*cand));
  }
  it_stats->candidates = candidates.size();

  // Phase 2: arbitration per locked edge.
  U64Map<LockRequest> winners;
  size_t requests = 0;
  for (const Candidate& cand : candidates) {
    LockRequest req{cand.gain, EdgeKey(cand.w, cand.y)};
    state.ForEachLockedEdge(cand, [&](uint64_t key) {
      ++requests;
      LockRequest* cur = winners.Find(key);
      if (cur == nullptr) {
        winners.Put(key, req);
      } else if (LockWins(req, *cur, state.options_.randomized_tie_break, salt)) {
        *cur = req;
      }
    });
  }
  it_stats->lock_requests = requests;

  // Invert: granted edge keys per hub edge.
  U64Map<std::vector<uint64_t>> grants;
  winners.ForEach([&grants](uint64_t edge_key, const LockRequest& req) {
    std::vector<uint64_t>* list = grants.Find(req.hub_key);
    if (list == nullptr) {
      grants.Put(req.hub_key, {edge_key});
    } else {
      list->push_back(edge_key);
    }
  });

  // Phase 3: decisions.
  std::vector<Update> updates;
  for (const Candidate& cand : candidates) {
    const std::vector<uint64_t>* granted = grants.Find(EdgeKey(cand.w, cand.y));
    if (granted == nullptr) continue;
    std::vector<uint64_t> sorted = *granted;
    std::sort(sorted.begin(), sorted.end());
    state.Decide(cand, sorted, updates, applied);
  }
  return updates;
}

// ---- MapReduce executor ---------------------------------------------------

std::vector<Update> RunIterationMapReduce(NosyState& state,
                                          const std::vector<Edge>& edges,
                                          uint64_t salt, ThreadPool& pool,
                                          NosyIterationStats* it_stats,
                                          size_t* applied) {
  const bool randomized = state.options_.randomized_tie_break;

  // Job A — map: candidate selection per hub edge, emitting one lock request
  // per touched edge; reduce: grant each edge to the best request, emitting
  // (hub_key, granted edge key).
  std::atomic<size_t> candidates{0};
  std::atomic<size_t> requests{0};
  using Grant = std::pair<uint64_t, uint64_t>;  // hub_key -> granted edge key
  std::vector<Grant> grants = mr::RunMapReduce<Edge, uint64_t, LockRequest, Grant>(
      pool, edges,
      [&state, &candidates, &requests](const Edge& e,
                                       mr::Emitter<uint64_t, LockRequest>& out) {
        auto cand = state.BuildCandidate(e.src, e.dst);
        if (!cand) return;
        candidates.fetch_add(1, std::memory_order_relaxed);
        LockRequest req{cand->gain, EdgeKey(cand->w, cand->y)};
        size_t emitted = 0;
        state.ForEachLockedEdge(*cand, [&out, &req, &emitted](uint64_t key) {
          out.Emit(key, req);
          ++emitted;
        });
        requests.fetch_add(emitted, std::memory_order_relaxed);
      },
      [randomized, salt](const uint64_t& edge_key, std::vector<LockRequest>& reqs,
                         std::vector<Grant>& out) {
        const LockRequest* best = &reqs[0];
        for (const LockRequest& r : reqs) {
          if (LockWins(r, *best, randomized, salt)) best = &r;
        }
        out.emplace_back(best->hub_key, edge_key);
      });
  it_stats->candidates = candidates.load();
  it_stats->lock_requests = requests.load();

  // Job B — reduce by hub edge: re-derive the candidate, apply the decision
  // rule on the granted subset, emit updates.
  std::atomic<size_t> applied_count{0};
  std::vector<Update> updates = mr::RunMapReduce<Grant, uint64_t, uint64_t, Update>(
      pool, grants,
      [](const Grant& grant, mr::Emitter<uint64_t, uint64_t>& out) {
        out.Emit(grant.first, grant.second);
      },
      [&state, &applied_count](const uint64_t& hub_key, std::vector<uint64_t>& granted,
                               std::vector<Update>& out) {
        Edge hub_edge = EdgeFromKey(hub_key);
        auto cand = state.BuildCandidate(hub_edge.src, hub_edge.dst);
        if (!cand) return;  // unreachable: grants imply a phase-1 candidate
        std::sort(granted.begin(), granted.end());
        size_t applied_here = 0;
        state.Decide(*cand, granted, out, &applied_here);
        applied_count.fetch_add(applied_here, std::memory_order_relaxed);
      });
  *applied += applied_count.load();
  return updates;
}

// Computes the hub edges whose candidate evaluation may change after the
// given schedule updates: for a changed edge a -> b these are (a, b) itself
// (its pull cost changed), (b, y) for consumers y of b (a -> b is a push
// link of hub b), and (w, b) for every 2-path a -> w -> b (a -> b is a cross
// edge of those hub-graphs). Restricting the next iteration's candidate
// selection to these edges is result-equivalent to a full rescan — untouched
// candidates see identical inputs and reproduce identical (non-)decisions —
// and matches the paper's observation that iterations get cheaper as fewer
// optimization opportunities remain.
std::vector<Edge> ComputeActiveEdges(const Graph& g,
                                     const std::vector<Update>& updates) {
  U64Set dirty;
  std::vector<NodeId> common;
  for (const Update& u : updates) {
    Edge e = EdgeFromKey(u.edge_key);
    dirty.Insert(u.edge_key);
    for (NodeId y : g.OutNeighbors(e.dst)) dirty.Insert(EdgeKey(e.dst, y));
    common.clear();
    simd::IntersectSortedInto(g.OutNeighbors(e.src), g.InNeighbors(e.dst), &common);
    for (NodeId w : common) dirty.Insert(EdgeKey(w, e.dst));
  }
  std::vector<uint64_t> keys = dirty.ToVector();
  std::sort(keys.begin(), keys.end());
  std::vector<Edge> edges;
  edges.reserve(keys.size());
  for (uint64_t key : keys) edges.push_back(EdgeFromKey(key));
  return edges;
}

}  // namespace

std::string NosyIterationStats::ToString() const {
  return StrFormat(
      "candidates=%zu lock_requests=%zu applied=%zu covered=%zu cost=%.3f",
      candidates, lock_requests, applied, edges_covered, cost_after);
}

Result<ParallelNosyResult> RunParallelNosy(const Graph& g, const Workload& w,
                                           const ParallelNosyOptions& options) {
  if (w.num_users() != g.num_nodes()) {
    return Status::InvalidArgument("workload size does not match graph");
  }
  if (options.max_hub_producers == 0) {
    return Status::InvalidArgument("max_hub_producers must be positive");
  }

  NosyState state(g, w, options);
  ParallelNosyResult result;
  result.hybrid_cost = HybridCost(g, w);

  // Iteration 1 evaluates every edge; later iterations only the edges whose
  // hub-graph inputs changed (see ComputeActiveEdges).
  std::vector<Edge> active = g.Edges();
  std::unique_ptr<ThreadPool> pool;
  if (options.use_mapreduce) {
    pool = std::make_unique<ThreadPool>(
        options.num_threads ? options.num_threads : ThreadPool::DefaultThreads());
  }

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (options.hooks.ShouldStop()) break;  // early but valid: finalize below
    NosyIterationStats it_stats;
    size_t applied = 0;
    const uint64_t salt = Mix64(iter + 1);
    std::vector<Update> updates =
        options.use_mapreduce
            ? RunIterationMapReduce(state, active, salt, *pool, &it_stats, &applied)
            : RunIterationSequential(state, active, salt, &it_stats, &applied);
    it_stats.applied = applied;
    it_stats.edges_covered = state.Merge(updates);
    it_stats.cost_after = ScheduleCost(g, w, state.schedule_, ResidualPolicy::kHybrid);
    result.iterations.push_back(it_stats);
    options.hooks.Report("iteration", iter + 1, options.max_iterations,
                         it_stats.cost_after);
    if (applied == 0) {
      result.converged = true;
      break;
    }
    active = ComputeActiveEdges(g, updates);
  }

  if (options.finalize_hybrid) {
    FinalizeWithHybrid(g, w, &state.schedule_);
  }
  result.final_cost = ScheduleCost(g, w, state.schedule_, ResidualPolicy::kHybrid);
  result.schedule = std::move(state.schedule_);
  return result;
}

}  // namespace piggy
