#include "obs/trace.h"

#include <fstream>

#include "util/string_util.h"

namespace piggy {
namespace obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kReplanStart: return "replan_start";
    case TraceEventKind::kReplanCommit: return "replan_commit";
    case TraceEventKind::kScheduleSwap: return "schedule_swap";
    case TraceEventKind::kPlanPhase: return "plan_phase";
    case TraceEventKind::kWalRotate: return "wal_rotate";
    case TraceEventKind::kSnapshotPublish: return "snapshot_publish";
    case TraceEventKind::kShardKill: return "shard_kill";
    case TraceEventKind::kShardRestart: return "shard_restart";
    case TraceEventKind::kRecovery: return "recovery";
    case TraceEventKind::kTriggerFire: return "trigger_fire";
    case TraceEventKind::kMigrationBegin: return "migration_begin";
    case TraceEventKind::kMigrationEnd: return "migration_end";
    case TraceEventKind::kEpoch: return "epoch";
  }
  return "unknown";
}

TraceLog::TraceLog(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      t0_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

double TraceLog::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void TraceLog::Instant(TraceEventKind kind, int32_t shard,
                       std::vector<std::pair<std::string, std::string>> args,
                       std::string name) {
  TraceEvent ev;
  ev.kind = kind;
  ev.name = std::move(name);
  ev.ts_us = NowUs();
  ev.shard = shard;
  ev.args = std::move(args);
  Emit(std::move(ev));
}

void TraceLog::Span(TraceEventKind kind, double start_us, int32_t shard,
                    std::vector<std::pair<std::string, std::string>> args,
                    std::string name) {
  TraceEvent ev;
  ev.kind = kind;
  ev.name = std::move(name);
  ev.ts_us = start_us;
  ev.dur_us = NowUs() - start_us;
  if (ev.dur_us < 0) ev.dur_us = 0;
  ev.shard = shard;
  ev.args = std::move(args);
  Emit(std::move(ev));
}

void TraceLog::Emit(TraceEvent ev) {
  if (ev.name.empty()) ev.name = TraceEventKindName(ev.kind);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  // Full: overwrite the oldest event (next_ is the ring's logical head).
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ArgsJson(const TraceEvent& ev) {
  std::string out = "{";
  for (size_t i = 0; i < ev.args.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("\"%s\":\"%s\"", JsonEscape(ev.args[i].first).c_str(),
                     JsonEscape(ev.args[i].second).c_str());
  }
  out += "}";
  return out;
}

// chrome://tracing event: timed phases become complete ("X") spans, the
// rest instants ("i"). Shard-scoped events render on the shard's track.
std::string ChromeEventJson(const TraceEvent& ev) {
  const char* kind = TraceEventKindName(ev.kind);
  const int32_t tid = ev.shard >= 0 ? ev.shard : -1;
  std::string out = StrFormat(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f",
      JsonEscape(ev.name).c_str(), kind, tid, ev.ts_us);
  if (ev.dur_us > 0) {
    out += StrFormat(",\"ph\":\"X\",\"dur\":%.3f", ev.dur_us);
  } else {
    out += ",\"ph\":\"i\",\"s\":\"g\"";
  }
  out += ",\"args\":" + ArgsJson(ev) + "}";
  return out;
}

// Typed event: the schema tests and RunReport consume.
std::string TypedEventJson(const TraceEvent& ev) {
  std::string out = StrFormat(
      "{\"kind\":\"%s\",\"name\":\"%s\",\"ts_us\":%.3f,\"dur_us\":%.3f,"
      "\"shard\":%d,\"args\":",
      TraceEventKindName(ev.kind), JsonEscape(ev.name).c_str(), ev.ts_us,
      ev.dur_us, ev.shard);
  out += ArgsJson(ev);
  out += "}";
  return out;
}

}  // namespace

std::string TraceToJson(const std::vector<TraceEvent>& events,
                        uint64_t dropped) {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n";
    out += ChromeEventJson(events[i]);
  }
  out += "\n],\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n";
    out += TypedEventJson(events[i]);
  }
  out += StrFormat("\n],\"dropped\":%llu}\n",
                   static_cast<unsigned long long>(dropped));
  return out;
}

std::string TraceLog::ToJson() const { return TraceToJson(Events(), dropped()); }

Status WriteTraceFile(const TraceLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  out << log.ToJson();
  out.flush();
  if (!out) {
    return Status::IOError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace piggy
