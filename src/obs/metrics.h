// MetricsRegistry: named counters, gauges, and latency histograms shared by
// the serving plane, the cluster, and the durability layer.
//
// Hot-path cost model: Counter::Add and Histogram::Record touch one
// thread-striped, cache-line-padded relaxed atomic slot — no locks, no
// allocation, and no sharing between concurrently serving threads (each
// thread is round-robin-assigned a stripe on first use). Reads (Value,
// Percentile, ToJson) merge the stripes; they are intended for polls and
// end-of-run dumps, not per-op use.
//
// Histograms use fixed log-spaced buckets between [min, max): value v lands
// in bucket floor(log(v/min) / log(ratio)) where ratio = (max/min)^(1/n).
// Percentile() interpolates inside the covering bucket, so its error versus
// the exact nearest-rank statistic (percentile.h) is bounded by one bucket
// width — bench_fig11_serving asserts exactly that bound.
//
// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex and
// returns a stable reference: register once at construction, cache the
// pointer, record through the pointer on the hot path.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace piggy {
namespace obs {

/// Number of independent per-thread slots in every striped metric.
constexpr size_t kStripeCount = 16;

/// Stripe index of the calling thread (round-robin assigned on first use,
/// cached in a thread_local).
inline size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripeCount;
  return stripe;
}

namespace internal {

// fetch_add for atomic<double> via CAS (portable across libstdc++ versions).
inline void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// \brief Monotonic striped counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    stripes_[ThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged total across stripes.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  Stripe stripes_[kStripeCount];
};

/// \brief Last-writer-wins instantaneous value (poll-time published).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// \brief Fixed log-spaced-bucket histogram with striped recording.
class Histogram {
 public:
  /// Buckets span [min_value, max_value) in `num_buckets` geometric steps;
  /// values below land in a dedicated underflow bucket, values at or above
  /// in an overflow bucket. All three arguments must be positive and
  /// max_value > min_value.
  Histogram(double min_value, double max_value, size_t num_buckets);

  void Record(double v) {
    Stripe& s = stripes_[ThreadStripe()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAddDouble(s.sum, v);
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  double Sum() const;

  /// Interpolated percentile at quantile q in [0, 1]. Uses the same rank
  /// convention as NearestRankPercentile (rank = floor(q * count), clamped),
  /// so both statistics fall inside the same bucket and the estimate is
  /// within one bucket width of the exact value. Underflow clamps to
  /// min_value, overflow to max_value. Returns 0 on an empty histogram.
  double Percentile(double q) const;

  double min_value() const { return lo_; }
  double max_value() const { return hi_; }
  size_t num_buckets() const { return num_buckets_; }
  /// Geometric width of one bucket: upper bound / lower bound.
  double bucket_ratio() const { return ratio_; }

  /// Slot in the per-stripe count array for `v`: 0 = underflow,
  /// 1..num_buckets = log-spaced buckets, num_buckets + 1 = overflow.
  /// Exposed for tests.
  size_t BucketIndex(double v) const;
  /// Lower bound of slot `i` (0 for the underflow slot).
  double SlotLowerBound(size_t i) const;

  /// Merged per-slot counts (size num_buckets + 2, layout as BucketIndex).
  std::vector<uint64_t> MergedSlots() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  };

  double lo_;
  double hi_;
  size_t num_buckets_;
  double ratio_;          // per-bucket geometric width
  double inv_log_ratio_;  // 1 / log(ratio)
  // bounds_[i] = lo * ratio^i (bounds_[num_buckets_] = hi exactly); used to
  // correct the log-computed index at exact boundaries where floating-point
  // fuzz puts floor(log(v/lo)/log(ratio)) one off.
  std::vector<double> bounds_;
  Stripe stripes_[kStripeCount];
};

/// \brief Point-in-time percentile summary of a histogram.
struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

HistogramSummary Summarize(const Histogram& h);

/// \brief Named registry owning counters, gauges, and histograms.
///
/// Thread-safe. Getter calls with the same name return the same object; the
/// reference stays valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// Sizing arguments apply on first registration only; later calls with
  /// the same name return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name, double min_value = 0.5,
                          double max_value = 1e6, size_t num_buckets = 96);

  /// Returns nullptr when no counter with that name has been registered.
  const Counter* FindCounter(const std::string& name) const;

  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"count":..,"sum":..,"p50":..,"p95":..,"p99":..}}}.
  std::string ToJson() const;

  /// Aligned human-readable dump (sorted by name) for `piggy_tool stats`.
  std::string ToText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace piggy
