// Shared percentile estimators.
//
// Two estimators live here so every consumer agrees on the definition:
//
//  - NearestRankPercentile: the exact nearest-rank statistic over a raw
//    sample vector (what the concurrent driver and benches report).
//  - Histogram::Percentile (metrics.h): the interpolated estimate from
//    log-spaced buckets, whose error versus the exact value is bounded by
//    one bucket width (asserted in bench_fig11_serving).

#pragma once

#include <vector>

namespace piggy {
namespace obs {

/// Exact nearest-rank percentile of `v` at quantile `q` in [0, 1].
/// Partially reorders `v` (nth_element); returns 0 on an empty sample.
double NearestRankPercentile(std::vector<double>& v, double q);

}  // namespace obs
}  // namespace piggy
