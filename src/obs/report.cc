#include "obs/report.h"

#include <map>

#include "util/string_util.h"

namespace piggy {
namespace obs {

namespace {

std::string ArgsLine(const TraceEvent& ev) {
  std::string out;
  for (const auto& [key, value] : ev.args) {
    out += StrFormat(" %s=%s", key.c_str(), value.c_str());
  }
  return out;
}

}  // namespace

std::string RenderRunReport(const std::vector<TraceEvent>& events,
                            uint64_t dropped) {
  std::string out = "== run report ==\n";
  if (dropped > 0) {
    out += StrFormat("(timeline truncated: %s oldest events dropped)\n",
                     WithCommas(dropped).c_str());
  }
  std::map<std::string, uint64_t> totals;
  for (const TraceEvent& ev : events) {
    ++totals[TraceEventKindName(ev.kind)];
    std::string shard =
        ev.shard >= 0 ? StrFormat("shard %-2d", ev.shard) : std::string("cluster ");
    std::string dur = ev.dur_us > 0 ? StrFormat(" (%.2f ms)", ev.dur_us / 1e3)
                                    : std::string();
    out += StrFormat("[%10.3f ms] %s %-16s%s%s\n", ev.ts_us / 1e3,
                     shard.c_str(), TraceEventKindName(ev.kind),
                     ArgsLine(ev).c_str(), dur.c_str());
  }
  out += StrFormat("-- %s event(s)", WithCommas(events.size()).c_str());
  for (const auto& [kind, n] : totals) {
    out += StrFormat("  %s=%s", kind.c_str(), WithCommas(n).c_str());
  }
  out += "\n";
  return out;
}

}  // namespace obs
}  // namespace piggy
