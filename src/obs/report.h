// RunReport: renders a trace into a human-readable timeline.
//
// Turns the typed events of a TraceLog (or any event vector) into the
// story of a run — epochs, replans, migrations, failures and recoveries in
// time order, followed by per-kind totals. This is what `piggy_tool replay
// --trace-out` prints when asked for a report, and the quickest way to see
// *why* a run behaved the way it did without loading the trace in
// chrome://tracing.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace piggy {
namespace obs {

/// Renders `events` (assumed oldest-first, as TraceLog::Events returns) as
/// an aligned timeline plus a summary footer. `dropped` is the TraceLog's
/// dropped-events counter; when non-zero the report says the timeline is
/// truncated.
std::string RenderRunReport(const std::vector<TraceEvent>& events,
                            uint64_t dropped = 0);

inline std::string RenderRunReport(const TraceLog& log) {
  return RenderRunReport(log.Events(), log.dropped());
}

}  // namespace obs
}  // namespace piggy
