#include "obs/percentile.h"

#include <algorithm>
#include <cstddef>

namespace piggy {
namespace obs {

double NearestRankPercentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size()));
  idx = std::min(idx, v.size() - 1);
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(idx), v.end());
  return v[idx];
}

}  // namespace obs
}  // namespace piggy
