#include "obs/metrics.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace piggy {
namespace obs {

Histogram::Histogram(double min_value, double max_value, size_t num_buckets)
    : lo_(min_value), hi_(max_value), num_buckets_(num_buckets) {
  PIGGY_CHECK_GT(lo_, 0.0);
  PIGGY_CHECK_GT(hi_, lo_);
  PIGGY_CHECK_GT(num_buckets_, 0u);
  ratio_ = std::pow(hi_ / lo_, 1.0 / static_cast<double>(num_buckets_));
  inv_log_ratio_ = 1.0 / std::log(ratio_);
  bounds_.resize(num_buckets_ + 1);
  for (size_t i = 0; i < num_buckets_; ++i) {
    bounds_[i] = lo_ * std::pow(ratio_, static_cast<double>(i));
  }
  bounds_[num_buckets_] = hi_;
  for (Stripe& s : stripes_) {
    s.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(num_buckets_ + 2);
    for (size_t i = 0; i < num_buckets_ + 2; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

size_t Histogram::BucketIndex(double v) const {
  if (!(v >= lo_)) return 0;  // underflow (also catches NaN)
  if (v >= hi_) return num_buckets_ + 1;
  const double pos = std::log(v / lo_) * inv_log_ratio_;
  size_t idx = static_cast<size_t>(pos);
  if (idx >= num_buckets_) idx = num_buckets_ - 1;
  // Snap to the precomputed bounds at exact boundaries, where the log is
  // off by an ulp in either direction.
  if (v >= bounds_[idx + 1]) {
    ++idx;
  } else if (v < bounds_[idx] && idx > 0) {
    --idx;
  }
  return idx + 1;
}

double Histogram::SlotLowerBound(size_t i) const {
  if (i == 0) return 0;
  if (i >= num_buckets_ + 1) return hi_;
  return bounds_[i - 1];
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const Stripe& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::MergedSlots() const {
  std::vector<uint64_t> merged(num_buckets_ + 2, 0);
  for (const Stripe& s : stripes_) {
    for (size_t i = 0; i < merged.size(); ++i) {
      merged[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::Percentile(double q) const {
  const std::vector<uint64_t> slots = MergedSlots();
  uint64_t count = 0;
  for (uint64_t c : slots) count += c;
  if (count == 0) return 0;
  // Same rank convention as NearestRankPercentile over the merged counts.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == 0) continue;
    if (rank < cum + slots[i]) {
      if (i == 0) return lo_;                  // underflow: clamp up
      if (i == num_buckets_ + 1) return hi_;   // overflow: clamp down
      // Linear interpolation at the midpoint of the rank's slice of the
      // bucket keeps the estimate strictly inside [lower, upper).
      const double lower = SlotLowerBound(i);
      const double upper = lower * ratio_;
      const double frac = (static_cast<double>(rank - cum) + 0.5) /
                          static_cast<double>(slots[i]);
      return lower + (upper - lower) * frac;
    }
    cum += slots[i];
  }
  return hi_;  // unreachable: rank < count
}

HistogramSummary Summarize(const Histogram& h) {
  HistogramSummary s;
  s.count = h.Count();
  s.sum = h.Sum();
  s.p50 = h.Percentile(0.50);
  s.p95 = h.Percentile(0.95);
  s.p99 = h.Percentile(0.99);
  return s;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         double min_value, double max_value,
                                         size_t num_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(min_value, max_value, num_buckets);
  }
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(c->Value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%.6g", JsonEscape(name).c_str(), g->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    const HistogramSummary s = Summarize(*h);
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"sum\":%.6g,\"p50\":%.6g,\"p95\":%.6g,"
        "\"p99\":%.6g}",
        JsonEscape(name).c_str(), static_cast<unsigned long long>(s.count),
        s.sum, s.p50, s.p95, s.p99);
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%-44s %s\n", name.c_str(),
                     WithCommas(c->Value()).c_str());
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%-44s %.4g\n", name.c_str(), g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSummary s = Summarize(*h);
    const double mean =
        s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0;
    out += StrFormat(
        "%-44s n=%-10s mean=%-8.4g p50=%-8.4g p95=%-8.4g p99=%.4g\n",
        name.c_str(), WithCommas(s.count).c_str(), mean, s.p50, s.p95, s.p99);
  }
  return out;
}

}  // namespace obs
}  // namespace piggy
