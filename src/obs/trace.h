// TraceLog: bounded ring buffer of typed control-plane events.
//
// The trace records WHY the serving system did something and how long each
// phase took: replans (start/commit with planner, cost, wall), schedule
// swaps, WAL rotations and snapshot publishes, shard kills/restarts with
// recovery stats, rebalance-trigger fires with the watch that tripped,
// migration batches, and replay epoch rows. These are control-plane events —
// tens to thousands per run, never per-request — so the log is a single
// mutex-protected ring: bounded memory, drops-oldest on overflow with a
// dropped-events counter, and zero cost when no TraceLog is wired in
// (every producer takes a nullable TraceLog*).
//
// Export formats:
//  - ToJson(): one JSON object {"traceEvents":[...], "events":[...],
//    "dropped":N}. The "traceEvents" array is chrome://tracing-compatible
//    (load the file directly in chrome://tracing or ui.perfetto.dev); the
//    "events" array is the typed schema tests and RunReport consume. Both
//    views describe the same ring.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace piggy {
namespace obs {

enum class TraceEventKind {
  kReplanStart,
  kReplanCommit,
  kScheduleSwap,
  kPlanPhase,
  kWalRotate,
  kSnapshotPublish,
  kShardKill,
  kShardRestart,
  kRecovery,
  kTriggerFire,
  kMigrationBegin,
  kMigrationEnd,
  kEpoch,
};

/// Stable wire name of a kind, e.g. "replan_commit".
const char* TraceEventKindName(TraceEventKind kind);

/// \brief One recorded event. dur_us == 0 marks an instant.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kEpoch;
  std::string name;   // short human label, defaults to the kind name
  double ts_us = 0;   // start, microseconds since TraceLog construction
  double dur_us = 0;  // span length; 0 = instant
  int32_t shard = -1;  // -1 when not shard-scoped
  std::vector<std::pair<std::string, std::string>> args;
};

/// \brief Thread-safe bounded event ring.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096);

  /// Microseconds since construction (monotonic); use to timestamp the
  /// start of a span, then pass to Span() at the end.
  double NowUs() const;

  /// Records an instant event stamped now.
  void Instant(TraceEventKind kind, int32_t shard = -1,
               std::vector<std::pair<std::string, std::string>> args = {},
               std::string name = {});

  /// Records a span from `start_us` (a prior NowUs() reading) to now.
  void Span(TraceEventKind kind, double start_us, int32_t shard = -1,
            std::vector<std::pair<std::string, std::string>> args = {},
            std::string name = {});

  /// Appends a fully-formed event (ts/dur already set).
  void Emit(TraceEvent ev);

  /// Oldest-first copy of the retained events.
  std::vector<TraceEvent> Events() const;

  /// Events overwritten because the ring was full.
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  std::string ToJson() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;               // overwrite cursor once full
  uint64_t dropped_ = 0;
};

/// Serializes events (e.g. a TraceLog::Events() copy) without a TraceLog.
std::string TraceToJson(const std::vector<TraceEvent>& events,
                        uint64_t dropped);

/// Writes log.ToJson() to `path` (chrome://tracing loads it directly).
Status WriteTraceFile(const TraceLog& log, const std::string& path);

}  // namespace obs
}  // namespace piggy
