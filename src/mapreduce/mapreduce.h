// In-process MapReduce substrate.
//
// PARALLELNOSY is specified as a sequence of MapReduce jobs (paper Sec. 3.2):
// candidate selection is a map over hub-graphs, lock granting a reduce keyed
// by edge, and scheduling decisions a reduce keyed by hub-graph. The paper
// ran Hadoop on 1500 cores; this substrate reproduces the same programming
// model — shard the input, map with an emitter, shuffle by key hash, reduce
// per key group — over a thread pool, with fully deterministic output order
// (reduce partitions in index order, keys sorted within a partition, values
// in map-shard order).

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace piggy::mr {

/// \brief Execution knobs for one job.
///
/// Defaults are fixed constants rather than functions of the pool size so a
/// job's output is bit-identical regardless of worker count — parallelism
/// never changes results, only wall-clock time.
struct JobOptions {
  /// Number of reduce partitions (0 = default 64).
  size_t num_reduce_partitions = 0;
  /// Number of map shards (0 = default 64).
  size_t num_map_shards = 0;
};

/// \brief Post-run counters.
struct JobStats {
  size_t map_inputs = 0;
  size_t emitted_pairs = 0;
  size_t distinct_keys = 0;
  size_t outputs = 0;

  std::string ToString() const;
};

/// \brief Collects (key, value) pairs from one map shard, bucketed by the
/// reduce partition of the key.
template <typename K, typename V>
class Emitter {
 public:
  Emitter(size_t num_partitions) : buckets_(num_partitions) {}

  void Emit(K key, V value) {
    size_t p = Mix64(static_cast<uint64_t>(std::hash<K>{}(key))) % buckets_.size();
    buckets_[p].emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::vector<std::pair<K, V>>>& buckets() { return buckets_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> buckets_;
};

/// \brief Runs a full map-shuffle-reduce job and returns the concatenated
/// reducer outputs in deterministic order.
///
/// \param pool     worker pool
/// \param inputs   map inputs (consumed read-only, shared across threads)
/// \param map_fn   void(const In&, Emitter<K, V>&); thread-safe w.r.t. inputs
/// \param reduce_fn void(const K&, std::vector<V>&, std::vector<Out>&);
///                 receives all values for one key (deterministic order) and
///                 appends any number of outputs
template <typename In, typename K, typename V, typename Out>
std::vector<Out> RunMapReduce(
    ThreadPool& pool, const std::vector<In>& inputs,
    const std::function<void(const In&, Emitter<K, V>&)>& map_fn,
    const std::function<void(const K&, std::vector<V>&, std::vector<Out>&)>& reduce_fn,
    JobOptions options = {}, JobStats* stats = nullptr) {
  const size_t num_partitions =
      options.num_reduce_partitions ? options.num_reduce_partitions : 64;
  const size_t num_shards = options.num_map_shards ? options.num_map_shards : 64;

  // ---- Map phase: one emitter per shard.
  std::vector<Emitter<K, V>> emitters;
  emitters.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) emitters.emplace_back(num_partitions);
  ParallelForShards(pool, inputs.size(), num_shards,
                    [&](size_t shard, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        map_fn(inputs[i], emitters[shard]);
                      }
                    });

  // ---- Shuffle + reduce phase: per partition, gather pairs from all shards
  // (shard order fixed => deterministic), group by key, reduce.
  std::vector<std::vector<Out>> partition_outputs(num_partitions);
  std::vector<size_t> partition_keys(num_partitions, 0);
  ParallelFor(pool, num_partitions, [&](size_t p) {
    std::vector<std::pair<K, V>> pairs;
    size_t total = 0;
    for (auto& em : emitters) total += em.buckets()[p].size();
    pairs.reserve(total);
    for (auto& em : emitters) {
      auto& bucket = em.buckets()[p];
      std::move(bucket.begin(), bucket.end(), std::back_inserter(pairs));
      bucket.clear();
    }
    // Stable sort keeps shard/emission order within equal keys.
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<V> values;
    size_t i = 0;
    while (i < pairs.size()) {
      size_t j = i;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      values.clear();
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) values.push_back(std::move(pairs[k].second));
      reduce_fn(pairs[i].first, values, partition_outputs[p]);
      ++partition_keys[p];
      i = j;
    }
  });

  std::vector<Out> outputs;
  size_t total_out = 0;
  for (auto& po : partition_outputs) total_out += po.size();
  outputs.reserve(total_out);
  for (auto& po : partition_outputs) {
    std::move(po.begin(), po.end(), std::back_inserter(outputs));
  }

  if (stats != nullptr) {
    stats->map_inputs = inputs.size();
    stats->emitted_pairs = 0;  // consumed during shuffle; report keys/outputs
    stats->distinct_keys = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      stats->distinct_keys += partition_keys[p];
    }
    stats->outputs = outputs.size();
  }
  return outputs;
}

}  // namespace piggy::mr
