#include "mapreduce/mapreduce.h"

#include "util/string_util.h"

#include <string>

namespace piggy::mr {

std::string JobStats::ToString() const {
  return StrFormat("map_inputs=%zu distinct_keys=%zu outputs=%zu", map_inputs,
                   distinct_keys, outputs);
}

}  // namespace piggy::mr
