#include "store/app_client.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace piggy {

AppClient::AppClient(const Graph& graph, const Schedule& schedule,
                     const Partitioner* partitioner, std::vector<ViewStore>* servers,
                     size_t feed_size)
    : graph_(graph),
      partitioner_(partitioner),
      servers_(servers),
      feed_size_(feed_size) {
  PIGGY_CHECK(partitioner_ != nullptr);
  PIGGY_CHECK(servers_ != nullptr);
  PIGGY_CHECK_EQ(servers_->size(), partitioner_->num_servers());

  const size_t n = graph.num_nodes();
  push_views_ = schedule.BuildPushSets(n);
  pull_views_ = schedule.BuildPullSets(n);
  interest_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    // Own view first in both lists (updates and queries always touch it).
    push_views_[u].insert(push_views_[u].begin(), u);
    pull_views_[u].insert(pull_views_[u].begin(), u);
    auto followees = graph.InNeighbors(u);
    interest_[u].reserve(followees.size() + 1);
    interest_[u].assign(followees.begin(), followees.end());
    auto it = std::lower_bound(interest_[u].begin(), interest_[u].end(), u);
    interest_[u].insert(it, u);
  }
}

std::vector<AppClient::ServerBatch> AppClient::GroupByServer(
    std::span<const NodeId> views) const {
  // Per-call scratch so concurrent requests never share grouping state.
  std::vector<std::pair<uint32_t, NodeId>> placed;
  placed.reserve(views.size());
  for (NodeId view : views) {
    placed.emplace_back(partitioner_->ServerOf(view), view);
  }
  std::stable_sort(placed.begin(), placed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ServerBatch> batches;
  for (size_t i = 0; i < placed.size();) {
    ServerBatch batch;
    batch.server = placed[i].first;
    while (i < placed.size() && placed[i].first == batch.server) {
      batch.views.push_back(placed[i].second);
      ++i;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void AppClient::ShareEvent(NodeId u, uint64_t event_id, uint64_t timestamp) {
  PIGGY_CHECK_LT(u, push_views_.size());
  share_requests_.fetch_add(1, std::memory_order_relaxed);
  EventTuple event{u, event_id, timestamp};
  for (const ServerBatch& batch : GroupByServer(push_views_[u])) {
    (*servers_)[batch.server].UpdateBatch(batch.views, event);
    update_messages_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<EventTuple> AppClient::QueryStream(NodeId u) {
  PIGGY_CHECK_LT(u, pull_views_.size());
  query_requests_.fetch_add(1, std::memory_order_relaxed);
  std::vector<EventTuple> merged;
  for (const ServerBatch& batch : GroupByServer(pull_views_[u])) {
    std::vector<EventTuple> part =
        (*servers_)[batch.server].QueryBatch(batch.views, interest_[u], feed_size_);
    merged.insert(merged.end(), part.begin(), part.end());
    query_messages_.fetch_add(1, std::memory_order_relaxed);
  }
  return TopKNewest(std::move(merged), feed_size_);
}

}  // namespace piggy
