#include "store/app_client.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace piggy {

AppClient::AppClient(const Graph& graph, const Schedule& schedule,
                     const Partitioner* partitioner, std::vector<ViewStore>* servers,
                     size_t feed_size)
    : graph_(graph),
      partitioner_(partitioner),
      servers_(servers),
      feed_size_(feed_size) {
  PIGGY_CHECK(partitioner_ != nullptr);
  PIGGY_CHECK(servers_ != nullptr);
  PIGGY_CHECK_EQ(servers_->size(), partitioner_->num_servers());

  const size_t n = graph.num_nodes();
  push_views_ = schedule.BuildPushSets(n);
  pull_views_ = schedule.BuildPullSets(n);
  interest_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    // Own view first in both lists (updates and queries always touch it).
    push_views_[u].insert(push_views_[u].begin(), u);
    pull_views_[u].insert(pull_views_[u].begin(), u);
    auto followees = graph.InNeighbors(u);
    interest_[u].reserve(followees.size() + 1);
    interest_[u].assign(followees.begin(), followees.end());
    auto it = std::lower_bound(interest_[u].begin(), interest_[u].end(), u);
    interest_[u].insert(it, u);
  }
  per_server_views_.resize(partitioner_->num_servers());
}

void AppClient::GroupByServer(std::span<const NodeId> views) {
  for (uint32_t s : touched_servers_) per_server_views_[s].clear();
  touched_servers_.clear();
  for (NodeId view : views) {
    uint32_t s = partitioner_->ServerOf(view);
    if (per_server_views_[s].empty()) touched_servers_.push_back(s);
    per_server_views_[s].push_back(view);
  }
}

void AppClient::ShareEvent(NodeId u, uint64_t event_id, uint64_t timestamp) {
  PIGGY_CHECK_LT(u, push_views_.size());
  ++metrics_.share_requests;
  GroupByServer(push_views_[u]);
  EventTuple event{u, event_id, timestamp};
  for (uint32_t s : touched_servers_) {
    (*servers_)[s].UpdateBatch(per_server_views_[s], event);
    ++metrics_.update_messages;
  }
}

std::vector<EventTuple> AppClient::QueryStream(NodeId u) {
  PIGGY_CHECK_LT(u, pull_views_.size());
  ++metrics_.query_requests;
  GroupByServer(pull_views_[u]);
  std::vector<EventTuple> merged;
  for (uint32_t s : touched_servers_) {
    std::vector<EventTuple> part =
        (*servers_)[s].QueryBatch(per_server_views_[s], interest_[u], feed_size_);
    merged.insert(merged.end(), part.begin(), part.end());
    ++metrics_.query_messages;
  }
  return TopKNewest(std::move(merged), feed_size_);
}

}  // namespace piggy
