#include "store/app_client.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace piggy {

namespace {

// True iff sorted `sub` is a subset of sorted `super`.
bool SortedSubset(std::span<const NodeId> sub, std::span<const NodeId> super) {
  if (sub.size() > super.size()) return false;
  auto it = super.begin();
  for (NodeId v : sub) {
    it = std::lower_bound(it, super.end(), v);
    if (it == super.end() || *it != v) return false;
    ++it;
  }
  return true;
}

}  // namespace

AppClient::AppClient(const Graph& graph, const Schedule& schedule,
                     const Partitioner* partitioner, std::vector<ViewStore>* servers,
                     size_t feed_size, GraphLayout layout)
    : graph_(graph),
      partitioner_(partitioner),
      servers_(servers),
      feed_size_(feed_size),
      layout_(layout) {
  PIGGY_CHECK(partitioner_ != nullptr);
  PIGGY_CHECK(servers_ != nullptr);
  PIGGY_CHECK_EQ(servers_->size(), partitioner_->num_servers());

  const size_t n = graph.num_nodes();
  push_views_ = schedule.BuildPushSets(n);
  pull_views_ = schedule.BuildPullSets(n);
  interest_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    // Own view first in both lists (updates and queries always touch it).
    push_views_[u].insert(push_views_[u].begin(), u);
    pull_views_[u].insert(pull_views_[u].begin(), u);
    auto followees = graph.InNeighbors(u);
    interest_[u].reserve(followees.size() + 1);
    interest_[u].assign(followees.begin(), followees.end());
    auto it = std::lower_bound(interest_[u].begin(), interest_[u].end(), u);
    interest_[u].insert(it, u);
  }
  // Schedule-implied membership: view w can only ever contain events from
  // producers whose push set includes w. When that producer set is a subset
  // of interest[u] for every view u pulls, the query-side interest filter is
  // an identity — mark u filter-free and its queries skip the filter (and,
  // under the compressed layout, the per-query decode) entirely. Covers the
  // common non-hub pulls: own views and followee-owned views.
  std::vector<std::vector<NodeId>> sources(n);
  for (NodeId u = 0; u < n; ++u) {
    // Ascending u keeps every sources[w] sorted.
    for (NodeId w : push_views_[u]) sources[w].push_back(u);
  }
  filter_free_.assign(n, 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w : pull_views_[u]) {
      if (!SortedSubset(sources[w], interest_[u])) {
        filter_free_[u] = 0;
        break;
      }
    }
  }

  if (layout_ == GraphLayout::kCompressed) {
    interest_compressed_ = CompressedLists::FromLists(interest_);
    interest_ = {};  // keep only the compressed form resident
    interest_bytes_ = interest_compressed_.TotalBytes();
  } else {
    size_t bytes = interest_.size() * sizeof(std::vector<NodeId>);
    for (const std::vector<NodeId>& list : interest_) {
      bytes += list.capacity() * sizeof(NodeId);
    }
    interest_bytes_ = bytes;
  }
}

std::vector<AppClient::ServerBatch> AppClient::GroupByServer(
    std::span<const NodeId> views) const {
  // Per-call scratch so concurrent requests never share grouping state.
  std::vector<std::pair<uint32_t, NodeId>> placed;
  placed.reserve(views.size());
  for (NodeId view : views) {
    placed.emplace_back(partitioner_->ServerOf(view), view);
  }
  std::stable_sort(placed.begin(), placed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ServerBatch> batches;
  for (size_t i = 0; i < placed.size();) {
    ServerBatch batch;
    batch.server = placed[i].first;
    while (i < placed.size() && placed[i].first == batch.server) {
      batch.views.push_back(placed[i].second);
      ++i;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void AppClient::ShareEvent(NodeId u, uint64_t event_id, uint64_t timestamp) {
  PIGGY_CHECK_LT(u, push_views_.size());
  share_requests_.fetch_add(1, std::memory_order_relaxed);
  EventTuple event{u, event_id, timestamp};
  for (const ServerBatch& batch : GroupByServer(push_views_[u])) {
    (*servers_)[batch.server].UpdateBatch(batch.views, event);
    update_messages_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<EventTuple> AppClient::QueryStream(NodeId u) {
  PIGGY_CHECK_LT(u, pull_views_.size());
  query_requests_.fetch_add(1, std::memory_order_relaxed);
  // Filter-free users (schedule-implied membership, see the constructor)
  // never materialize the interest span. Filtered users under the compressed
  // layout decode it into scratch — the trade the layout option makes: a
  // varint walk per filtered query for a fraction of the resident bytes.
  // Flat layout serves the stored list directly. The scratch is
  // thread_local, not per-call: a malloc per query would dominate the decode
  // itself at million-user scale, and each serving thread owning one buffer
  // keeps concurrent queries race-free (the span never escapes this call).
  const bool filtered = filter_free_[u] == 0;
  static thread_local std::vector<NodeId> scratch;
  std::span<const NodeId> interest;
  if (filtered) {
    if (layout_ == GraphLayout::kCompressed) {
      interest_compressed_.DecodeInto(u, &scratch);
      interest = scratch;
    } else {
      interest = interest_[u];
    }
  }
  std::vector<EventTuple> merged;
  for (const ServerBatch& batch : GroupByServer(pull_views_[u])) {
    ViewStore& server = (*servers_)[batch.server];
    std::vector<EventTuple> part =
        filtered ? server.QueryBatch(batch.views, interest, feed_size_)
                 : server.QueryBatch(batch.views, feed_size_);
    merged.insert(merged.end(), part.begin(), part.end());
    query_messages_.fetch_add(1, std::memory_order_relaxed);
  }
  return TopKNewest(std::move(merged), feed_size_);
}

}  // namespace piggy
