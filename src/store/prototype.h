// The assembled social-networking system prototype (paper Sec. 4.3).
//
// Wires together a partitioned view-server fleet, an Algorithm-3 client, and
// an event-log auditor. The paper measures *actual throughput* — requests per
// second with the fleet saturated; in this simulator the binding resource is
// server messages, so actual throughput is modeled as
//
//     throughput = messages_per_second_per_client / messages_per_request
//
// which reproduces the paper's per-client curves: with one server every
// request costs exactly one message; as the fleet grows requests fan out to
// more servers and per-client throughput drops, while better schedules
// (fewer views per request) fan out less.
//
// Thread safety: ShareEvent and QueryStream may be called concurrently from
// many threads (the client and fleet are internally synchronized; the audit
// log has its own mutex). Audits stay *exact* only when no share overlapped
// the audited query — BeginAudit captures a token (log version + quiescence)
// before the query and AuditStream downgrades to soundness-only checks when
// the token shows a racing share; single-threaded drivers always get the
// full oracle comparison.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/schedule.h"
#include "graph/compressed_adjacency.h"
#include "graph/graph.h"
#include "store/app_client.h"
#include "store/partitioner.h"
#include "store/view_store.h"
#include "util/status.h"

namespace piggy {

/// \brief Prototype configuration.
struct PrototypeOptions {
  size_t num_servers = 16;
  size_t feed_size = 10;       ///< events per stream (paper: 10 latest)
  size_t view_capacity = 128;  ///< events retained per view (0 = unbounded)
  uint64_t partition_salt = kDefaultPartitionSalt;
  /// Interest-set storage layout: flat CSR (fast, 4 bytes/entry) or
  /// delta-varint compressed (compact, decoded per query). Identical query
  /// results either way.
  GraphLayout layout = GraphLayout::kFlatCsr;
  /// Calibration constant: batched messages one client can issue per second.
  /// Chosen so the 1-server point lands in the paper's 60-70k req/s range.
  double client_messages_per_second = 70000.0;
};

/// \brief A running system instance.
class Prototype {
 public:
  /// Builds the fleet and client for a graph + finalized schedule.
  static Result<std::unique_ptr<Prototype>> Create(const Graph& graph,
                                                   const Schedule& schedule,
                                                   const PrototypeOptions& options);

  /// User u shares an event; the event is also recorded in the audit log.
  /// Returns the assigned tuple (the durability layer logs its event id).
  EventTuple ShareEvent(NodeId u);

  /// Draws the next self-assigned sequence number WITHOUT publishing
  /// anything. A durable FeedService frames the WAL record under this seq
  /// first and only then publishes via ShareEvent(u, seq), so an event a
  /// concurrent reader can observe is always at least on the log. Keeps the
  /// id == timestamp invariant of the plain overload; a seq burned by a
  /// failed log append leaves a harmless gap.
  uint64_t DrawShareSeq();

  /// Shares with an externally assigned sequence number used as both event id
  /// and timestamp (the cluster's global ordering). Self-assigned ids are
  /// 1, 2, 3, ... = timestamps, so passing seq = next id is bit-identical to
  /// the plain overload.
  void ShareEvent(NodeId u, uint64_t seq);

  /// Assembles u's event stream.
  std::vector<EventTuple> QueryStream(NodeId u);

  /// Pre-query capture for exact audits under concurrency: remembers the log
  /// version and whether any share was in flight.
  struct AuditToken {
    uint64_t log_version = 0;
    bool quiescent = true;
  };
  AuditToken BeginAudit() const {
    AuditToken token;
    // Order matters: read in-flight before the version so a share that
    // appends between the two reads flips quiescent, not just the version.
    token.quiescent = shares_in_flight_.load(std::memory_order_acquire) == 0;
    token.log_version = log_version_.load(std::memory_order_acquire);
    return token;
  }

  /// Checks a query result against the audit log oracle: with unbounded (or
  /// untrimmed) views the stream must equal the k newest events of u's
  /// followees (+ u); with trimming it must at least be sound (only followee
  /// events, newest-first). Returns the first violation found.
  Status AuditStream(NodeId u, const std::vector<EventTuple>& stream) const {
    return AuditStream(u, stream, BeginAudit());
  }

  /// Same, with a token captured *before* the audited query ran. Soundness
  /// (no leaked producers, newest-first order) is always checked;
  /// completeness against the oracle only when no share overlapped the query
  /// (token quiescent, log version unchanged, nothing in flight now).
  Status AuditStream(NodeId u, const std::vector<EventTuple>& stream,
                     const AuditToken& token) const;

  /// Modeled per-client actual throughput (requests/second) given the
  /// messages-per-request observed since the last ResetMetrics.
  double ActualThroughput() const;

  /// Per-server query-message counts (Fig. 8's load metric).
  std::vector<uint64_t> PerServerQueryLoad() const;
  /// Per-server update-message counts.
  std::vector<uint64_t> PerServerUpdateLoad() const;

  AppClient& client() { return *client_; }
  const AppClient& client() const { return *client_; }
  std::vector<ViewStore>& servers() { return servers_; }
  const Partitioner& partitioner() const { return *partitioner_; }
  const Graph& graph() const { return graph_; }
  const PrototypeOptions& options() const { return options_; }

  /// Total events dropped by view trimming across the fleet.
  uint64_t TotalTrimmedEvents() const;

  /// Copy of every event shared so far, in share order (the audit oracle's
  /// input; a copy so serving threads can keep appending).
  std::vector<EventTuple> EventLog() const {
    std::lock_guard<std::mutex> lock(log_mu_);
    return event_log_;
  }

  /// Replays a previously captured event log into a freshly built instance:
  /// each event is written through the client into the fleet and appended to
  /// the audit log, preserving ids and timestamps; the id/clock counters
  /// resume past the replayed maxima. Used by FeedService to rebuild the
  /// serving plane around a new schedule without losing stored events.
  /// Fails if events were already shared or the log is not in share order.
  Status RestoreEvents(const std::vector<EventTuple>& log);

  void ResetMetrics();

 private:
  Prototype(const Graph& graph, const PrototypeOptions& options);

  void AppendAndDeliver(NodeId u, uint64_t event_id, uint64_t timestamp);

  const Graph& graph_;
  PrototypeOptions options_;
  std::unique_ptr<HashPartitioner> partitioner_;
  std::vector<ViewStore> servers_;
  std::unique_ptr<AppClient> client_;

  // Audit log: every shared event in timestamp order, guarded by log_mu_.
  mutable std::mutex log_mu_;
  std::vector<EventTuple> event_log_;
  uint64_t next_event_id_ = 1;
  uint64_t clock_ = 1;
  // Bumped on every log append; with shares_in_flight_ it lets audits detect
  // shares that overlapped a query.
  std::atomic<uint64_t> log_version_{0};
  std::atomic<int64_t> shares_in_flight_{0};
};

}  // namespace piggy
