#include "store/view_store.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

namespace piggy {

std::vector<EventTuple> TopKNewest(std::vector<EventTuple> events, size_t k) {
  std::sort(events.begin(), events.end(), NewerThan);
  // The same event can arrive from several views (e.g. two hubs both storing
  // a producer's events); streams have set semantics, so drop duplicates.
  events.erase(std::unique(events.begin(), events.end()), events.end());
  if (events.size() > k) events.resize(k);
  return events;
}

void ViewStore::UpdateBatch(std::span<const NodeId> views, const EventTuple& event) {
  ++metrics_.update_messages;
  for (NodeId owner : views) {
    std::vector<EventTuple>* view = views_.Find(owner);
    if (view == nullptr) {
      views_.Put(owner, {event});
    } else {
      view->push_back(event);
      if (view_capacity_ > 0 && view->size() > view_capacity_) {
        // Events arrive in timestamp order, so the front is the oldest.
        view->erase(view->begin());
        ++metrics_.trimmed_events;
      }
    }
    ++metrics_.view_writes;
  }
}

std::vector<EventTuple> ViewStore::QueryBatch(std::span<const NodeId> views,
                                              std::span<const NodeId> interest,
                                              size_t k) {
  ++metrics_.query_messages;
  std::vector<EventTuple> candidates;
  for (NodeId owner : views) {
    ++metrics_.view_reads;
    const std::vector<EventTuple>* view = views_.Find(owner);
    if (view == nullptr) continue;
    // Scan newest-first; each view contributes at most k matching events.
    size_t taken = 0;
    for (auto it = view->rbegin(); it != view->rend() && taken < k; ++it) {
      if (std::binary_search(interest.begin(), interest.end(), it->producer)) {
        candidates.push_back(*it);
        ++taken;
      }
    }
  }
  return TopKNewest(std::move(candidates), k);
}

std::vector<EventTuple> ViewStore::ReadView(NodeId owner) const {
  const std::vector<EventTuple>* view = views_.Find(owner);
  return view ? *view : std::vector<EventTuple>{};
}

}  // namespace piggy
