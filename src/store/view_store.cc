#include "store/view_store.h"

#include <algorithm>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace piggy {

std::vector<EventTuple> TopKNewest(std::vector<EventTuple> events, size_t k) {
  std::sort(events.begin(), events.end(), NewerThan);
  // The same event can arrive from several views (e.g. two hubs both storing
  // a producer's events); streams have set semantics, so drop duplicates.
  events.erase(std::unique(events.begin(), events.end()), events.end());
  if (events.size() > k) events.resize(k);
  return events;
}

void ViewStore::UpdateBatch(std::span<const NodeId> views, const EventTuple& event) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++metrics_.update_messages;
  for (NodeId owner : views) {
    std::vector<EventTuple>* view = views_.Find(owner);
    if (view == nullptr) {
      views_.Put(owner, {event});
    } else {
      // Oldest-first order; concurrent writers may deliver slightly stale
      // timestamps, so walk back from the tail to the sorted slot (one step
      // at most in the common case).
      auto pos = view->end();
      while (pos != view->begin() && NewerThan(*(pos - 1), event)) --pos;
      view->insert(pos, event);
      if (view_capacity_ > 0 && view->size() > view_capacity_) {
        // Sorted oldest-first, so the front is the oldest.
        view->erase(view->begin());
        ++metrics_.trimmed_events;
      }
    }
    ++metrics_.view_writes;
  }
}

std::vector<EventTuple> ViewStore::QueryBatch(std::span<const NodeId> views,
                                              std::span<const NodeId> interest,
                                              size_t k) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++metrics_.query_messages;
  std::vector<EventTuple> candidates;
  for (NodeId owner : views) {
    ++metrics_.view_reads;
    const std::vector<EventTuple>* view = views_.Find(owner);
    if (view == nullptr) continue;
    // Scan newest-first; each view contributes at most k matching events.
    size_t taken = 0;
    for (auto it = view->rbegin(); it != view->rend() && taken < k; ++it) {
      if (std::binary_search(interest.begin(), interest.end(), it->producer)) {
        candidates.push_back(*it);
        ++taken;
      }
    }
  }
  return TopKNewest(std::move(candidates), k);
}

std::vector<EventTuple> ViewStore::ReadView(NodeId owner) const {
  std::lock_guard<std::mutex> lock(*mu_);
  const std::vector<EventTuple>* view = views_.Find(owner);
  return view ? *view : std::vector<EventTuple>{};
}

}  // namespace piggy
