#include "store/view_store.h"

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "simd/kernels.h"

namespace piggy {

// The gather-based interest filter reads the producer key as the first 32-bit
// word of each stored tuple at a fixed word stride.
static_assert(sizeof(EventTuple) == 24, "EventTuple layout drives the key stride");
static_assert(offsetof(EventTuple, producer) == 0,
              "producer must be the leading key word");

std::vector<EventTuple> TopKNewest(std::vector<EventTuple> events, size_t k) {
  std::sort(events.begin(), events.end(), NewerThan);
  // The same event can arrive from several views (e.g. two hubs both storing
  // a producer's events); streams have set semantics, so drop duplicates.
  events.erase(std::unique(events.begin(), events.end()), events.end());
  if (events.size() > k) events.resize(k);
  return events;
}

void ViewStore::UpdateBatch(std::span<const NodeId> views, const EventTuple& event) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++metrics_.update_messages;
  for (NodeId owner : views) {
    std::vector<EventTuple>* view = views_.Find(owner);
    if (view == nullptr) {
      views_.Put(owner, {event});
    } else {
      // Oldest-first order; concurrent writers may deliver slightly stale
      // timestamps, so walk back from the tail to the sorted slot (one step
      // at most in the common case).
      auto pos = view->end();
      while (pos != view->begin() && NewerThan(*(pos - 1), event)) --pos;
      view->insert(pos, event);
      if (view_capacity_ > 0 && view->size() > view_capacity_) {
        // Sorted oldest-first, so the front is the oldest.
        view->erase(view->begin());
        ++metrics_.trimmed_events;
      }
    }
    ++metrics_.view_writes;
  }
}

std::vector<EventTuple> ViewStore::QueryBatch(std::span<const NodeId> views,
                                              std::span<const NodeId> interest,
                                              size_t k) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++metrics_.query_messages;
  std::vector<EventTuple> candidates;
  std::vector<uint32_t> sel;
  for (NodeId owner : views) {
    ++metrics_.view_reads;
    const std::vector<EventTuple>* view = views_.Find(owner);
    if (view == nullptr) continue;
    // Newest-first interest scan, vectorized: each view contributes at most k
    // matching events; indices come back in descending (newest-first) order.
    sel.clear();
    simd::SelectKeyedNewestInto(reinterpret_cast<const uint32_t*>(view->data()),
                                sizeof(EventTuple) / sizeof(uint32_t), view->size(),
                                interest, k, &sel);
    for (uint32_t r : sel) candidates.push_back((*view)[r]);
  }
  return TopKNewest(std::move(candidates), k);
}

std::vector<EventTuple> ViewStore::QueryBatch(std::span<const NodeId> views,
                                              size_t k) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++metrics_.query_messages;
  std::vector<EventTuple> candidates;
  for (NodeId owner : views) {
    ++metrics_.view_reads;
    const std::vector<EventTuple>* view = views_.Find(owner);
    if (view == nullptr) continue;
    // Views are sorted oldest-first, so the newest k are the tail; emit in
    // descending record order to mirror the filtered scan exactly.
    const size_t take = std::min(k, view->size());
    for (size_t r = view->size(); r > view->size() - take; --r) {
      candidates.push_back((*view)[r - 1]);
    }
  }
  return TopKNewest(std::move(candidates), k);
}

std::vector<EventTuple> ViewStore::ReadView(NodeId owner) const {
  std::lock_guard<std::mutex> lock(*mu_);
  const std::vector<EventTuple>* view = views_.Find(owner);
  return view ? *view : std::vector<EventTuple>{};
}

}  // namespace piggy
