// Application-logic client (Algorithm 3 of the paper).
//
// Translates user requests into batched data-store messages:
//
//   share(u, e):  insert e into u's own view and every view in u's push set
//                 h[u]; one update message per distinct server.
//   query(u):     query u's own view and every view in u's pull set l[u];
//                 one query message per distinct server; merge the replies
//                 into the 10 latest events (the generic `filter`).
//
// Push and pull sets come from the request schedule; the client logic is
// schedule-agnostic exactly as the paper stresses.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/schedule.h"
#include "graph/graph.h"
#include "store/partitioner.h"
#include "store/view_store.h"

namespace piggy {

/// \brief Client-side counters; messages are the throughput currency.
struct ClientMetrics {
  uint64_t share_requests = 0;
  uint64_t query_requests = 0;
  uint64_t update_messages = 0;
  uint64_t query_messages = 0;

  uint64_t requests() const { return share_requests + query_requests; }
  double MessagesPerRequest() const {
    uint64_t r = requests();
    return r ? static_cast<double>(update_messages + query_messages) /
                   static_cast<double>(r)
             : 0.0;
  }
};

/// \brief One application-logic server acting as data-store client.
class AppClient {
 public:
  /// \param graph       social graph (borrowed); provides interest sets
  /// \param schedule    request schedule (borrowed only during construction)
  /// \param partitioner view placement (borrowed)
  /// \param servers     data-store fleet (borrowed, mutated by requests)
  /// \param feed_size   events per assembled stream (paper: 10)
  AppClient(const Graph& graph, const Schedule& schedule,
            const Partitioner* partitioner, std::vector<ViewStore>* servers,
            size_t feed_size = 10);

  /// Shares a new event by user u (Algorithm 3, update path).
  void ShareEvent(NodeId u, uint64_t event_id, uint64_t timestamp);

  /// Assembles u's event stream (Algorithm 3, query path).
  std::vector<EventTuple> QueryStream(NodeId u);

  const ClientMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = ClientMetrics{}; }

  /// The views written on u's shares (own view first).
  std::span<const NodeId> PushViews(NodeId u) const { return push_views_[u]; }
  /// The views read on u's queries (own view first).
  std::span<const NodeId> PullViews(NodeId u) const { return pull_views_[u]; }

 private:
  const Graph& graph_;
  const Partitioner* partitioner_;
  std::vector<ViewStore>* servers_;
  size_t feed_size_;

  // Materialized per-user view lists: h[u] / l[u] plus the own view.
  std::vector<std::vector<NodeId>> push_views_;
  std::vector<std::vector<NodeId>> pull_views_;
  // interest_[u] = sorted {u} ∪ followees(u); the query-side filter.
  std::vector<std::vector<NodeId>> interest_;

  // Scratch: views grouped per server for the current request.
  std::vector<std::vector<NodeId>> per_server_views_;
  std::vector<uint32_t> touched_servers_;

  ClientMetrics metrics_;

  void GroupByServer(std::span<const NodeId> views);
};

}  // namespace piggy
