// Application-logic client (Algorithm 3 of the paper).
//
// Translates user requests into batched data-store messages:
//
//   share(u, e):  insert e into u's own view and every view in u's push set
//                 h[u]; one update message per distinct server.
//   query(u):     query u's own view and every view in u's pull set l[u];
//                 one query message per distinct server; merge the replies
//                 into the 10 latest events (the generic `filter`).
//
// Push and pull sets come from the request schedule; the client logic is
// schedule-agnostic exactly as the paper stresses.
//
// Thread safety: the materialized view lists are immutable after
// construction, request grouping uses per-call scratch, and the counters are
// relaxed atomics — ShareEvent / QueryStream may be called from any number
// of threads concurrently.

#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/schedule.h"
#include "graph/compressed_adjacency.h"
#include "graph/graph.h"
#include "store/partitioner.h"
#include "store/view_store.h"

namespace piggy {

/// \brief Client-side counters; messages are the throughput currency.
struct ClientMetrics {
  uint64_t share_requests = 0;
  uint64_t query_requests = 0;
  uint64_t update_messages = 0;
  uint64_t query_messages = 0;

  uint64_t requests() const { return share_requests + query_requests; }
  double MessagesPerRequest() const {
    uint64_t r = requests();
    return r ? static_cast<double>(update_messages + query_messages) /
                   static_cast<double>(r)
             : 0.0;
  }
};

/// \brief One application-logic server acting as data-store client.
class AppClient {
 public:
  /// \param graph       social graph (borrowed); provides interest sets
  /// \param schedule    request schedule (borrowed only during construction)
  /// \param partitioner view placement (borrowed)
  /// \param servers     data-store fleet (borrowed, mutated by requests)
  /// \param feed_size   events per assembled stream (paper: 10)
  /// \param layout      interest-set storage layout (flat CSR or compressed)
  AppClient(const Graph& graph, const Schedule& schedule,
            const Partitioner* partitioner, std::vector<ViewStore>* servers,
            size_t feed_size = 10, GraphLayout layout = GraphLayout::kFlatCsr);

  /// Shares a new event by user u (Algorithm 3, update path).
  void ShareEvent(NodeId u, uint64_t event_id, uint64_t timestamp);

  /// Assembles u's event stream (Algorithm 3, query path).
  std::vector<EventTuple> QueryStream(NodeId u);

  /// Snapshot of the counters (relaxed loads; exact once writers quiesce).
  ClientMetrics metrics() const {
    ClientMetrics m;
    m.share_requests = share_requests_.load(std::memory_order_relaxed);
    m.query_requests = query_requests_.load(std::memory_order_relaxed);
    m.update_messages = update_messages_.load(std::memory_order_relaxed);
    m.query_messages = query_messages_.load(std::memory_order_relaxed);
    return m;
  }
  void ResetMetrics() {
    share_requests_.store(0, std::memory_order_relaxed);
    query_requests_.store(0, std::memory_order_relaxed);
    update_messages_.store(0, std::memory_order_relaxed);
    query_messages_.store(0, std::memory_order_relaxed);
  }

  /// The views written on u's shares (own view first).
  std::span<const NodeId> PushViews(NodeId u) const { return push_views_[u]; }
  /// The views read on u's queries (own view first).
  std::span<const NodeId> PullViews(NodeId u) const { return pull_views_[u]; }

  /// True when u's queries skip the interest filter entirely: the schedule
  /// guarantees every producer that can land in u's pulled views is already
  /// in u's interest set (precomputed at construction).
  bool QueryFilterFree(NodeId u) const { return filter_free_[u] != 0; }

  /// The interest-set storage layout this client was built with.
  GraphLayout layout() const { return layout_; }
  /// Resident bytes of the interest sets under the active layout (payload
  /// plus per-list bookkeeping) — the memory the layout option trades against
  /// query-path decode work.
  size_t InterestBytes() const { return interest_bytes_; }

 private:
  const Graph& graph_;
  const Partitioner* partitioner_;
  std::vector<ViewStore>* servers_;
  size_t feed_size_;

  // Materialized per-user view lists: h[u] / l[u] plus the own view.
  // Immutable after construction (rebuilds create a fresh client).
  std::vector<std::vector<NodeId>> push_views_;
  std::vector<std::vector<NodeId>> pull_views_;
  // interest[u] = sorted {u} ∪ followees(u); the query-side filter. Stored
  // flat (interest_) or delta-varint compressed (interest_compressed_,
  // decoded into per-call scratch on queries) per layout_.
  GraphLayout layout_;
  std::vector<std::vector<NodeId>> interest_;
  CompressedLists interest_compressed_;
  size_t interest_bytes_ = 0;
  // filter_free_[u] != 0 when every producer reachable through u's pull set
  // is schedule-guaranteed to be in interest[u], making the query-side
  // filter an identity — those queries never touch the interest set (and
  // under the compressed layout never pay the decode). One byte per user,
  // immutable after construction.
  std::vector<uint8_t> filter_free_;

  std::atomic<uint64_t> share_requests_{0};
  std::atomic<uint64_t> query_requests_{0};
  std::atomic<uint64_t> update_messages_{0};
  std::atomic<uint64_t> query_messages_{0};

  // (server, views...) runs for one request, built in per-call scratch.
  struct ServerBatch {
    uint32_t server;
    std::vector<NodeId> views;
  };
  std::vector<ServerBatch> GroupByServer(std::span<const NodeId> views) const;
};

}  // namespace piggy
