#include "store/partitioner.h"

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace piggy {

HashPartitioner::HashPartitioner(size_t num_servers, uint64_t salt)
    : num_servers_(num_servers), salt_(salt) {
  PIGGY_CHECK_GT(num_servers, 0u);
}

double PlacementAwareCost(const Graph& g, const Workload& w, const Schedule& s,
                          const Partitioner& partitioner) {
  const size_t n = g.num_nodes();
  const size_t servers = partitioner.num_servers();
  std::vector<std::vector<NodeId>> push_sets = s.BuildPushSets(n);
  std::vector<std::vector<NodeId>> pull_sets = s.BuildPullSets(n);

  // Stamped scratch for distinct-server counting.
  std::vector<uint64_t> stamp(servers, 0);
  uint64_t tick = 0;
  auto distinct_servers = [&](NodeId self, const std::vector<NodeId>& others) {
    ++tick;
    size_t count = 0;
    uint32_t s0 = partitioner.ServerOf(self);
    stamp[s0] = tick;
    ++count;
    for (NodeId v : others) {
      uint32_t sv = partitioner.ServerOf(v);
      if (stamp[sv] != tick) {
        stamp[sv] = tick;
        ++count;
      }
    }
    return count;
  };

  double cost = 0;
  for (NodeId u = 0; u < n; ++u) {
    cost += w.rp(u) * static_cast<double>(distinct_servers(u, push_sets[u]));
    cost += w.rc(u) * static_cast<double>(distinct_servers(u, pull_sets[u]));
  }
  return cost;
}

}  // namespace piggy
