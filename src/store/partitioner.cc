#include "store/partitioner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace piggy {

namespace {

const std::string kHashName = "hash";
const std::string kEdgeCutName = "edge-cut";

}  // namespace

HashPartitioner::HashPartitioner(size_t num_servers, uint64_t salt)
    : num_servers_(num_servers), salt_(salt) {
  PIGGY_CHECK_GT(num_servers, 0u);
}

const std::string& HashPartitioner::name() const { return kHashName; }

const std::string& GreedyEdgeCutPartitioner::name() const { return kEdgeCutName; }

Result<GreedyEdgeCutPartitioner> GreedyEdgeCutPartitioner::Build(
    const Graph& g, const Workload& w, size_t num_shards,
    const EdgeCutOptions& options) {
  if (num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  if (w.num_users() != g.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  w.num_users(), g.num_nodes()));
  }
  if (options.balance_slack < 0) {
    return Status::InvalidArgument("balance_slack must be non-negative");
  }
  const size_t n = g.num_nodes();
  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> assignment(n, kUnassigned);
  if (n == 0) return GreedyEdgeCutPartitioner(std::move(assignment), num_shards);

  // Hubs first: placing high-degree users early lets their communities
  // accrete around them instead of scattering before the hub is pinned.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    return g.OutDegree(a) + g.InDegree(a) > g.OutDegree(b) + g.InDegree(b);
  });

  const double capacity =
      std::max(1.0, std::ceil(static_cast<double>(n) / static_cast<double>(num_shards)) *
                        (1.0 + options.balance_slack));
  std::vector<size_t> load(num_shards, 0);
  std::vector<double> affinity(num_shards, 0.0);
  std::vector<uint32_t> touched;
  touched.reserve(64);

  for (NodeId u : order) {
    // Rate-weighted affinity to every shard holding a placed neighbor. The
    // weight of an edge is what cutting it would cost the cluster: the
    // cheaper (hybrid-rule) side min(rp(producer), rc(consumer)).
    for (NodeId v : g.OutNeighbors(u)) {  // u -> v: u produces for v
      uint32_t s = assignment[v];
      if (s == kUnassigned) continue;
      if (affinity[s] == 0.0) touched.push_back(s);
      affinity[s] += std::min(w.rp(u), w.rc(v));
    }
    for (NodeId v : g.InNeighbors(u)) {  // v -> u: u consumes from v
      uint32_t s = assignment[v];
      if (s == kUnassigned) continue;
      if (affinity[s] == 0.0) touched.push_back(s);
      affinity[s] += std::min(w.rp(v), w.rc(u));
    }

    uint32_t best = 0;
    double best_score = -1.0;
    size_t best_load = SIZE_MAX;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (static_cast<double>(load[s]) >= capacity) continue;
      const double score =
          affinity[s] * (1.0 - static_cast<double>(load[s]) / capacity);
      if (score > best_score ||
          (score == best_score && load[s] < best_load)) {
        best = s;
        best_score = score;
        best_load = load[s];
      }
    }
    PIGGY_CHECK_NE(best_load, SIZE_MAX);  // capacity * k >= n: a slot exists
    assignment[u] = best;
    ++load[best];

    for (uint32_t s : touched) affinity[s] = 0.0;
    touched.clear();
  }
  return GreedyEdgeCutPartitioner(std::move(assignment), num_shards);
}

size_t GreedyEdgeCutPartitioner::cut_edges(const Graph& g) const {
  size_t cut = 0;
  g.ForEachEdge([&](const Edge& e) {
    cut += assignment_[e.src] != assignment_[e.dst];
  });
  return cut;
}

std::vector<PartitionerInfo> RegisteredPartitioners() {
  return {
      {kEdgeCutName,
       "greedy rate-weighted edge-cut placement (co-locates communities)"},
      {kHashName, "salted-hash placement (the paper's Sec. 4.3 default)"},
  };
}

Result<std::unique_ptr<Partitioner>> MakePartitioner(std::string_view name,
                                                     const Graph& g,
                                                     const Workload& w,
                                                     size_t num_servers,
                                                     uint64_t salt) {
  if (num_servers == 0) {
    return Status::InvalidArgument("need at least one server");
  }
  if (name == kHashName) {
    return std::unique_ptr<Partitioner>(
        std::make_unique<HashPartitioner>(num_servers, salt));
  }
  if (name == kEdgeCutName || name == "greedy") {
    PIGGY_ASSIGN_OR_RETURN(GreedyEdgeCutPartitioner part,
                           GreedyEdgeCutPartitioner::Build(g, w, num_servers));
    return std::unique_ptr<Partitioner>(
        std::make_unique<GreedyEdgeCutPartitioner>(std::move(part)));
  }
  std::vector<std::string> names;
  for (const PartitionerInfo& info : RegisteredPartitioners()) {
    names.push_back(info.name);
  }
  return Status::InvalidArgument(
      StrFormat("unknown partitioner '%.*s'; valid partitioners: %s",
                static_cast<int>(name.size()), name.data(),
                StrJoin(names, ", ").c_str()));
}

double PlacementAwareCost(const Graph& g, const Workload& w, const Schedule& s,
                          const Partitioner& partitioner) {
  const size_t n = g.num_nodes();
  const size_t servers = partitioner.num_servers();
  std::vector<std::vector<NodeId>> push_sets = s.BuildPushSets(n);
  std::vector<std::vector<NodeId>> pull_sets = s.BuildPullSets(n);

  // Stamped scratch for distinct-server counting.
  std::vector<uint64_t> stamp(servers, 0);
  uint64_t tick = 0;
  auto distinct_servers = [&](NodeId self, const std::vector<NodeId>& others) {
    ++tick;
    size_t count = 0;
    uint32_t s0 = partitioner.ServerOf(self);
    stamp[s0] = tick;
    ++count;
    for (NodeId v : others) {
      uint32_t sv = partitioner.ServerOf(v);
      if (stamp[sv] != tick) {
        stamp[sv] = tick;
        ++count;
      }
    }
    return count;
  };

  double cost = 0;
  for (NodeId u = 0; u < n; ++u) {
    cost += w.rp(u) * static_cast<double>(distinct_servers(u, push_sets[u]));
    cost += w.rc(u) * static_cast<double>(distinct_servers(u, pull_sets[u]));
  }
  return cost;
}

}  // namespace piggy
