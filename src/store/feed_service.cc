#include "store/feed_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "core/cost_model.h"
#include "core/schedule_io.h"
#include "core/validator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace piggy {

namespace {

ClientMetrics SumMetrics(const ClientMetrics& a, const ClientMetrics& b) {
  ClientMetrics sum;
  sum.share_requests = a.share_requests + b.share_requests;
  sum.query_requests = a.query_requests + b.query_requests;
  sum.update_messages = a.update_messages + b.update_messages;
  sum.query_messages = a.query_messages + b.query_messages;
  return sum;
}

// Records wall microseconds into `h` on destruction. Pass nullptr to
// disable (e.g. while Recover() replays the WAL through the public API —
// replayed traffic must not pollute the serving latency histograms).
class ScopedLatency {
 public:
  explicit ScopedLatency(obs::Histogram* h) : h_(h) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (h_ != nullptr) h_->Record(timer_.Seconds() * 1e6);
  }

 private:
  obs::Histogram* h_;
  WallTimer timer_;
};

// Folds a planner's progress stream into one kPlanPhase span per optimizer
// phase (progress callbacks are never concurrent, so plain state is safe).
struct PlanPhaseTracer {
  std::string phase;
  double start_us = 0;
  size_t steps = 0;
  double cost = 0;

  void Observe(obs::TraceLog* trace, int32_t shard, const PlanProgress& p) {
    if (phase != p.phase) {
      Close(trace, shard);
      phase = p.phase;
      start_us = trace->NowUs();
    }
    steps = p.step;
    cost = p.cost;
  }

  void Close(obs::TraceLog* trace, int32_t shard) {
    if (phase.empty()) return;
    trace->Span(obs::TraceEventKind::kPlanPhase, start_us, shard,
                {{"phase", phase},
                 {"steps", std::to_string(steps)},
                 {"cost", StrFormat("%.1f", cost)}},
                "plan:" + phase);
    phase.clear();
    steps = 0;
    cost = 0;
  }
};

}  // namespace

std::string FeedService::Metrics::ToString() const {
  return StrFormat(
      "planner=%s replan=%s cost=%.1f ff=%.1f ratio=%.3fx replans=%zu "
      "(bg=%zu drift=%zu score=%.3f) repairs=%zu churn=%zu rebuilds=%zu "
      "shares=%lu queries=%lu audited=%lu mpr=%.2f throughput=%.0f req/s "
      "layout=%s interest=%.2fB/edge",
      planner.c_str(), replan_policy.c_str(), schedule_cost, hybrid_cost,
      ImprovementRatio(hybrid_cost, schedule_cost), replans, background_replans,
      drift_replans, drift_score, repairs, churn_ops, serving_rebuilds,
      static_cast<unsigned long>(shares), static_cast<unsigned long>(queries),
      static_cast<unsigned long>(audited_queries), messages_per_request,
      actual_throughput, layout.c_str(), interest_bytes_per_edge);
}

FeedService::FeedService(const Graph& graph, Workload workload,
                         FeedServiceOptions options)
    : options_(std::move(options)),
      graph_(graph),
      workload_(std::move(workload)) {
  share_us_ = &registry_.GetHistogram("feed.share_us");
  query_us_ = &registry_.GetHistogram("feed.query_us");
  follow_us_ = &registry_.GetHistogram("feed.follow_us");
  unfollow_us_ = &registry_.GetHistogram("feed.unfollow_us");
  replan_us_ = &registry_.GetHistogram("feed.replan_us", 0.5, 1e9, 96);
  // The durability layer shares this service's registry and trace ring, so
  // one export covers the whole shard (Recover() re-binds the pair it adopts
  // via BindObservability — its ShardDurability is opened before `this`
  // exists).
  options_.durability.metrics = &registry_;
  options_.durability.trace = options_.trace;
  options_.durability.trace_shard = options_.trace_shard;
}

FeedService::~FeedService() {
  {
    std::lock_guard<std::mutex> rl(replan_mu_);
    replan_shutdown_ = true;
  }
  replan_cancel_.store(true, std::memory_order_release);
  replan_cv_.notify_all();
  if (replan_thread_.joinable()) replan_thread_.join();
}

Result<std::unique_ptr<FeedService>> FeedService::Create(
    const Graph& graph, const FeedServiceOptions& options) {
  PIGGY_ASSIGN_OR_RETURN(Workload workload,
                         GenerateWorkload(graph, options.workload));
  return Create(graph, std::move(workload), options);
}

Result<std::unique_ptr<FeedService>> FeedService::Create(
    const Graph& graph, Workload workload, const FeedServiceOptions& options) {
  if (workload.num_users() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  workload.num_users(), graph.num_nodes()));
  }
  auto service = std::unique_ptr<FeedService>(
      new FeedService(graph, std::move(workload), options));
  // The legacy counter knob is the every-N policy under its old name.
  if (service->options_.replan.mode == ReplanMode::kNever &&
      options.replan_after_churn > 0) {
    service->options_.replan = ReplanPolicy::EveryN(options.replan_after_churn);
  }
  if (service->options_.replan.mode == ReplanMode::kDrift) {
    service->estimator_ = std::make_unique<RateDriftEstimator>(
        graph.num_nodes(), service->options_.replan.drift);
  }
  service->maintainer_ = std::make_unique<IncrementalMaintainer>(
      &service->graph_, &service->schedule_, &service->workload_);
  PIGGY_RETURN_NOT_OK(service->Replan());
  {
    std::unique_lock<std::shared_mutex> lock(service->mu_);
    PIGGY_RETURN_NOT_OK(service->RefreshServingLocked());
  }
  if (service->options_.durability.enabled()) {
    PIGGY_ASSIGN_OR_RETURN(
        service->durability_,
        ShardDurability::Create(service->options_.durability, graph));
    // Snapshot 0 captures the initial plan; wal-000000.log opens for appends.
    std::unique_lock<std::shared_mutex> lock(service->mu_);
    PIGGY_RETURN_NOT_OK(service->WriteSnapshotLocked());
  }
  return service;
}

Result<std::unique_ptr<FeedService>> FeedService::Recover(
    const FeedServiceOptions& options, RecoveryStats* stats_out) {
  const auto start = std::chrono::steady_clock::now();
  const double trace_start =
      options.trace != nullptr ? options.trace->NowUs() : 0.0;
  RecoveryStats stats;
  PIGGY_ASSIGN_OR_RETURN(std::unique_ptr<ShardDurability> durability,
                         ShardDurability::Open(options.durability));
  PIGGY_ASSIGN_OR_RETURN(ShardDurability::RecoveredState state,
                         durability->Recover());
  const double load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const SnapshotData& snap = state.snapshot;
  stats.snapshot_id = snap.id;
  stats.snapshot_events = snap.events.size();
  stats.wal_records = state.wal_records.size();
  stats.torn_tail = state.torn_tail;
  stats.fallback = state.fallback;
  stats.wal_valid_bytes = state.wal_valid_bytes;
  stats.wal_total_bytes = state.wal_total_bytes;

  if (snap.production.size() != state.base_graph.num_nodes()) {
    return Status::IOError(
        StrFormat("snapshot rates cover %zu users but base graph has %zu nodes",
                  snap.production.size(), state.base_graph.num_nodes()));
  }
  Workload workload;
  workload.production = snap.production;
  workload.consumption = snap.consumption;

  auto service = std::unique_ptr<FeedService>(
      new FeedService(state.base_graph, std::move(workload), options));
  if (service->options_.replan.mode == ReplanMode::kNever &&
      options.replan_after_churn > 0) {
    service->options_.replan = ReplanPolicy::EveryN(options.replan_after_churn);
  }
  if (service->options_.replan.mode == ReplanMode::kDrift) {
    service->estimator_ = std::make_unique<RateDriftEstimator>(
        state.base_graph.num_nodes(), service->options_.replan.drift);
  }

  // Snapshot-time graph = base + the snapshot's cumulative churn delta (the
  // graph the embedded schedule was planned/repaired against). The WAL's
  // churn goes through the maintainer below, like any live Follow/Unfollow.
  for (const auto& [added, edge] : snap.churn) {
    if (edge.src >= state.base_graph.num_nodes() ||
        edge.dst >= state.base_graph.num_nodes()) {
      return Status::IOError(
          StrFormat("snapshot churn edge %u->%u outside base graph", edge.src,
                    edge.dst));
    }
    if (added) {
      service->graph_.AddEdge(edge.src, edge.dst);
    } else {
      service->graph_.RemoveEdge(edge.src, edge.dst);
    }
  }
  PIGGY_ASSIGN_OR_RETURN(
      service->schedule_,
      ParseSchedule(snap.schedule_text,
                    options.durability.data_dir + ":snapshot-schedule"));
  service->maintainer_ = std::make_unique<IncrementalMaintainer>(
      &service->graph_, &service->schedule_, &service->workload_);
  service->maintainer_->RebuildIndexes();
  PIGGY_RETURN_NOT_OK(ValidateSchedule(service->graph_, service->schedule_));
  {
    // Rebase the drift policy on the recovered plan's advantage so recovery
    // does not itself look like drift.
    const double cost = ScheduleCost(service->graph_, service->workload_,
                                     service->schedule_, ResidualPolicy::kFree);
    const double hybrid = HybridCost(service->graph_, service->workload_);
    service->plan_advantage_ = cost > 0 ? hybrid / cost : 1.0;
    service->edges_at_plan_ = service->graph_.num_edges();
  }
  {
    std::unique_lock<std::shared_mutex> lock(service->mu_);
    PIGGY_RETURN_NOT_OK(service->RefreshServingLocked());
    if (!snap.events.empty()) {
      PIGGY_RETURN_NOT_OK(service->prototype_->RestoreEvents(snap.events));
      service->prototype_->client().ResetMetrics();
    }
  }

  // Replay the WAL tail through the public API. replaying_ suppresses
  // re-logging and replan policies; planner runs happen exactly where a
  // kReplanCommit record marks a committed live replan.
  service->durability_ = std::move(durability);
  service->durability_->BindObservability(&service->registry_, options.trace,
                                          options.trace_shard);
  service->replaying_ = true;
  Status replay_status;
  for (const WalRecord& r : state.wal_records) {
    switch (r.type) {
      case WalRecordType::kShare:
        replay_status = service->Share(r.user, r.seq);
        ++stats.replayed_shares;
        break;
      case WalRecordType::kFollow:
        replay_status = service->Follow(r.user, r.producer);
        ++stats.replayed_follows;
        break;
      case WalRecordType::kUnfollow:
        replay_status = service->Unfollow(r.user, r.producer);
        ++stats.replayed_unfollows;
        break;
      case WalRecordType::kRateShift:
        replay_status = service->SetUserRates(r.user, r.rp, r.rc);
        ++stats.replayed_rate_shifts;
        break;
      case WalRecordType::kReplanCommit:
        replay_status = service->Replan();
        ++stats.replayed_replans;
        break;
      case WalRecordType::kMigrationCommit:
        // A marker, not an operation: the migrated state it commits is the
        // seeded shares/churn already replayed above (destination) or state
        // that left with the users (source).
        ++stats.replayed_migration_commits;
        break;
    }
    if (!replay_status.ok()) break;
  }
  service->replaying_ = false;
  PIGGY_RETURN_NOT_OK(replay_status);
  PIGGY_RETURN_NOT_OK(service->durability_->ResumeAppending());
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service->recovery_stats_ = stats;
  // Surface the recovery outcome through the registry (piggy_tool stats,
  // ClusterMetrics) alongside the structured stats.
  service->registry_.GetCounter("recovery.runs").Add();
  service->registry_.GetCounter("recovery.wal_records").Add(stats.wal_records);
  service->registry_.GetCounter("recovery.snapshot_events")
      .Add(stats.snapshot_events);
  if (stats.torn_tail) service->registry_.GetCounter("recovery.torn_tails").Add();
  if (stats.fallback) service->registry_.GetCounter("recovery.fallbacks").Add();
  service->registry_.GetGauge("recovery.wall_seconds").Set(stats.wall_seconds);
  if (options.trace != nullptr) {
    options.trace->Span(
        obs::TraceEventKind::kRecovery, trace_start, options.trace_shard,
        {{"snapshot", std::to_string(stats.snapshot_id)},
         {"snapshot_events", std::to_string(stats.snapshot_events)},
         {"wal_records", std::to_string(stats.wal_records)},
         {"torn_tail", stats.torn_tail ? "true" : "false"},
         {"fallback", stats.fallback ? "true" : "false"},
         {"load_ms", StrFormat("%.3f", load_seconds * 1e3)},
         {"replay_ms",
          StrFormat("%.3f", (stats.wall_seconds - load_seconds) * 1e3)}});
  }
  if (stats_out != nullptr) *stats_out = stats;
  return service;
}

Status FeedService::Replan() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return ReplanLocked();
}

Status FeedService::ReplanLocked() {
  obs::TraceLog* trace = options_.trace;
  const double trace_start = trace != nullptr ? trace->NowUs() : 0.0;
  WallTimer replan_timer;
  if (trace != nullptr) {
    trace->Instant(obs::TraceEventKind::kReplanStart, options_.trace_shard,
                   {{"planner", options_.planner},
                    {"mode", replaying_ ? "replay" : "inline"}});
  }
  PIGGY_ASSIGN_OR_RETURN(std::unique_ptr<Planner> planner,
                         MakePlanner(options_.planner));
  PIGGY_ASSIGN_OR_RETURN(Graph snapshot, graph_.Snapshot());
  PlanContext ctx = options_.plan_context;
  auto tracer = std::make_shared<PlanPhaseTracer>();
  if (trace != nullptr) {
    const int32_t shard = options_.trace_shard;
    auto prev = ctx.progress;
    ctx.progress = [trace, shard, tracer,
                    prev = std::move(prev)](const PlanProgress& p) {
      if (prev) prev(p);
      tracer->Observe(trace, shard, p);
    };
  }
  PIGGY_ASSIGN_OR_RETURN(PlanResult plan,
                         planner->Plan(snapshot, workload_, ctx));
  if (trace != nullptr) tracer->Close(trace, options_.trace_shard);
  schedule_ = std::move(plan.schedule);
  maintainer_->RebuildIndexes();
  options_.planner = plan.planner;  // canonicalize aliases ("ff" -> "hybrid")
  // The drift policy measures erosion relative to the advantage this plan
  // opened with (scale-invariant, so traffic surges alone never trigger).
  plan_advantage_ =
      plan.final_cost > 0 ? plan.hybrid_cost / plan.final_cost : 1.0;
  edges_at_plan_ = graph_.num_edges();
  if (estimator_ != nullptr) estimator_->OnReplanned();
  ++replans_;
  churn_since_plan_ = 0;
  serving_dirty_ = true;
  // An in-flight background plan lost the race; its publish step sees the
  // epoch moved and discards itself.
  ++plan_epoch_;
  churn_journal_.clear();
  if (replan_us_ != nullptr) replan_us_->Record(replan_timer.Seconds() * 1e6);
  registry_.GetCounter("feed.replans").Add();
  if (trace != nullptr) {
    trace->Span(obs::TraceEventKind::kReplanCommit, trace_start,
                options_.trace_shard,
                {{"planner", options_.planner},
                 {"cost", StrFormat("%.1f", plan.final_cost)},
                 {"epoch", std::to_string(plan_epoch_)}});
    trace->Instant(obs::TraceEventKind::kScheduleSwap, options_.trace_shard,
                   {{"epoch", std::to_string(plan_epoch_)},
                    {"mode", replaying_ ? "replay" : "inline"}});
  }
  if (durability_ != nullptr && !replaying_) {
    // The commit record pins the replan's position in the op stream so
    // recovery re-runs the planner at exactly this point; the snapshot that
    // usually follows bounds replay to one plan epoch.
    PIGGY_RETURN_NOT_OK(durability_->LogReplanCommit());
    if (options_.durability.snapshot_on_replan) {
      PIGGY_RETURN_NOT_OK(WriteSnapshotLocked());
    }
  }
  return Status::OK();
}

Status FeedService::StartBackgroundReplan() {
  return RequestBackgroundReplan(/*refresh=*/false);
}

Status FeedService::RequestBackgroundReplan(bool refresh) {
  std::lock_guard<std::mutex> rl(replan_mu_);
  if (replan_shutdown_) {
    return Status::FailedPrecondition("FeedService is shutting down");
  }
  if (!replan_thread_.joinable()) {
    replan_thread_ = std::thread(&FeedService::ReplanThreadMain, this);
  }
  if (replan_requested_ || replan_running_) {
    // Coalesce: one queued run covers every trigger that raced it.
    replan_refresh_workload_ = replan_refresh_workload_ || refresh;
    return Status::OK();
  }
  replan_requested_ = true;
  replan_refresh_workload_ = refresh;
  replan_cv_.notify_all();
  return Status::OK();
}

Status FeedService::WaitForBackgroundReplan() {
  std::unique_lock<std::mutex> rl(replan_mu_);
  replan_cv_.wait(rl, [this] {
    return (!replan_requested_ && !replan_running_) || replan_shutdown_;
  });
  return background_status_;
}

void FeedService::ReplanThreadMain() {
  std::unique_lock<std::mutex> rl(replan_mu_);
  while (true) {
    replan_cv_.wait(rl, [this] { return replan_requested_ || replan_shutdown_; });
    if (replan_shutdown_) return;
    replan_requested_ = false;
    const bool refresh = replan_refresh_workload_;
    replan_refresh_workload_ = false;
    replan_running_ = true;
    rl.unlock();
    Status status = BackgroundReplanOnce(refresh);
    rl.lock();
    replan_running_ = false;
    background_status_ = status;
    replan_cv_.notify_all();
  }
}

Status FeedService::BackgroundReplanOnce(bool refresh_workload) {
  // Phase 1 — freeze the inputs under the exclusive lock and arm the churn
  // journal: Follow/Unfollow from here to publish are recorded and re-applied
  // to the fresh schedule via the Sec-3.3 local repair.
  Graph planning_snapshot;
  Workload workload_copy;
  std::string planner_name;
  size_t epoch = 0;
  obs::TraceLog* trace = options_.trace;
  const double trace_start = trace != nullptr ? trace->NowUs() : 0.0;
  WallTimer replan_timer;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (refresh_workload && estimator_ != nullptr && estimator_->Warm()) {
      workload_ = estimator_->EstimateWorkload(workload_);
    }
    PIGGY_ASSIGN_OR_RETURN(planning_snapshot, graph_.Snapshot());
    workload_copy = workload_;
    planner_name = options_.planner;
    churn_journal_.clear();
    journal_active_ = true;
    epoch = plan_epoch_;
  }
  if (trace != nullptr) {
    trace->Instant(obs::TraceEventKind::kReplanStart, options_.trace_shard,
                   {{"planner", planner_name}, {"mode", "background"}});
  }
  auto disarm_journal = [this] {
    std::unique_lock<std::shared_mutex> lock(mu_);
    journal_active_ = false;
    churn_journal_.clear();
  };

  // Phase 2 — plan against the frozen snapshot, no locks held. Serving
  // proceeds at full concurrency; shutdown flips the cancel token and the
  // planner finishes early with an anytime-valid schedule.
  Result<std::unique_ptr<Planner>> planner = MakePlanner(planner_name);
  if (!planner.ok()) {
    disarm_journal();
    return planner.status();
  }
  PlanContext ctx = options_.plan_context;
  ctx.cancel = &replan_cancel_;
  auto tracer = std::make_shared<PlanPhaseTracer>();
  if (trace != nullptr) {
    const int32_t shard = options_.trace_shard;
    auto prev = ctx.progress;
    ctx.progress = [trace, shard, tracer,
                    prev = std::move(prev)](const PlanProgress& p) {
      if (prev) prev(p);
      tracer->Observe(trace, shard, p);
    };
  }
  Result<PlanResult> plan_result =
      (*planner)->Plan(planning_snapshot, workload_copy, ctx);
  if (trace != nullptr) tracer->Close(trace, options_.trace_shard);
  if (!plan_result.ok()) {
    disarm_journal();
    return plan_result.status();
  }
  PlanResult plan = std::move(plan_result).MoveValueOrDie();

  // Phase 3 — pre-build the replacement serving plane off-thread (the double
  // buffer): new fleet + client around the planned schedule, restored from a
  // copy of the event log.
  std::vector<EventTuple> log_copy;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (prototype_ != nullptr) log_copy = prototype_->EventLog();
  }
  auto fresh_snapshot = std::make_unique<Graph>(std::move(planning_snapshot));
  bool plane_ok = false;
  std::unique_ptr<Prototype> plane;
  {
    Result<std::unique_ptr<Prototype>> built =
        Prototype::Create(*fresh_snapshot, plan.schedule, options_.prototype);
    if (built.ok()) {
      plane = std::move(built).MoveValueOrDie();
      Status restored =
          log_copy.empty() ? Status::OK() : plane->RestoreEvents(log_copy);
      if (restored.ok()) {
        // Replay traffic is bookkeeping, not served requests.
        plane->client().ResetMetrics();
        plane_ok = true;
      }
    }
  }

  // Phase 4 — publish under one brief exclusive section: swap the schedule,
  // re-apply journaled churn, and either swap the pre-built plane in (after
  // replaying shares that raced the build) or mark the plane for a lazy
  // rebuild when churn invalidated its view lists.
  std::unique_lock<std::shared_mutex> lock(mu_);
  journal_active_ = false;
  if (replan_cancel_.load(std::memory_order_acquire) || plan_epoch_ != epoch) {
    churn_journal_.clear();
    return Status::OK();  // superseded by shutdown or a newer plan
  }
  schedule_ = std::move(plan.schedule);
  maintainer_->RebuildIndexes();
  const size_t raced_churn = churn_journal_.size();
  for (const ChurnRecord& rec : churn_journal_) {
    if (rec.added) {
      maintainer_->RepairEdgeAdded(rec.producer, rec.consumer);
    } else {
      maintainer_->RepairEdgeRemoved(rec.producer, rec.consumer);
    }
  }
  churn_journal_.clear();
  options_.planner = plan.planner;
  plan_advantage_ =
      plan.final_cost > 0 ? plan.hybrid_cost / plan.final_cost : 1.0;
  edges_at_plan_ = graph_.num_edges();
  if (estimator_ != nullptr) estimator_->OnReplanned();
  ++replans_;
  background_replans_.fetch_add(1, std::memory_order_relaxed);
  ++plan_epoch_;
  churn_since_plan_ = raced_churn;
  if (replan_us_ != nullptr) replan_us_->Record(replan_timer.Seconds() * 1e6);
  registry_.GetCounter("feed.replans").Add();
  registry_.GetCounter("feed.background_replans").Add();
  if (trace != nullptr) {
    trace->Span(obs::TraceEventKind::kReplanCommit, trace_start,
                options_.trace_shard,
                {{"planner", options_.planner},
                 {"cost", StrFormat("%.1f", plan.final_cost)},
                 {"epoch", std::to_string(plan_epoch_)},
                 {"raced_churn", std::to_string(raced_churn)}});
    trace->Instant(obs::TraceEventKind::kScheduleSwap, options_.trace_shard,
                   {{"epoch", std::to_string(plan_epoch_)},
                    {"mode", "background"}});
  }
  if (durability_ != nullptr) {
    // Same durable commit as the inline path; the event log is current under
    // this exclusive section, so snapshotting before the plane swap is safe.
    PIGGY_RETURN_NOT_OK(durability_->LogReplanCommit());
    if (options_.durability.snapshot_on_replan) {
      PIGGY_RETURN_NOT_OK(WriteSnapshotLocked());
    }
  }

  if (raced_churn == 0 && plane_ok && prototype_ != nullptr) {
    // No churn raced: the pre-built plane's view lists match the published
    // schedule. Replay the shares that arrived during the build (a sorted
    // log diff — ids equal timestamps by construction) and swap in O(delta).
    std::vector<EventTuple> current = prototype_->EventLog();
    std::vector<EventTuple> delta;
    size_t matched = 0;
    for (const EventTuple& e : current) {
      if (matched < log_copy.size() && log_copy[matched] == e) {
        ++matched;
      } else {
        delta.push_back(e);
      }
    }
    bool delta_ok = matched == log_copy.size();
    for (const EventTuple& e : delta) {
      if (e.event_id != e.timestamp) delta_ok = false;
    }
    if (delta_ok) {
      for (const EventTuple& e : delta) plane->ShareEvent(e.producer, e.event_id);
      plane->client().ResetMetrics();
      AccumulateClientMetrics();
      prototype_ = std::move(plane);          // old plane released first ...
      snapshot_ = std::move(fresh_snapshot);  // ... then the graph it borrowed
      ++serving_rebuilds_;
      serving_dirty_ = false;
      return Status::OK();
    }
  }
  serving_dirty_ = true;  // lazy rebuild on the next request
  return Status::OK();
}

Status FeedService::EnsureServing(std::shared_lock<std::shared_mutex>& lock) {
  while (serving_dirty_ || prototype_ == nullptr) {
    lock.unlock();
    {
      std::unique_lock<std::shared_mutex> rebuild(mu_);
      PIGGY_RETURN_NOT_OK(RefreshServingLocked());
    }
    lock.lock();
  }
  return Status::OK();
}

Status FeedService::RefreshServingLocked() {
  if (prototype_ != nullptr && !serving_dirty_) return Status::OK();

  std::vector<EventTuple> log;
  if (prototype_ != nullptr) {
    AccumulateClientMetrics();
    log = prototype_->EventLog();
    prototype_.reset();  // must drop its borrow before snapshot_ is replaced
    ++serving_rebuilds_;
  }
  PIGGY_ASSIGN_OR_RETURN(Graph snapshot, graph_.Snapshot());
  snapshot_ = std::make_unique<Graph>(std::move(snapshot));
  PIGGY_ASSIGN_OR_RETURN(prototype_, Prototype::Create(*snapshot_, schedule_,
                                                       options_.prototype));
  if (!log.empty()) {
    PIGGY_RETURN_NOT_OK(prototype_->RestoreEvents(log));
    // Replay traffic is bookkeeping, not served requests: keep it out of the
    // messages-per-request accounting (accumulated_ holds the real history).
    // Only the client counters — the fleet's ServerMetrics must survive, or
    // zeroing trimmed_events would defeat AuditStream's "completeness not
    // provable once trimming happened" guard and fail correct queries.
    prototype_->client().ResetMetrics();
  }
  serving_dirty_ = false;
  return Status::OK();
}

void FeedService::AccumulateClientMetrics() {
  if (prototype_ == nullptr) return;
  accumulated_ = SumMetrics(accumulated_, prototype_->client().metrics());
  prototype_->client().ResetMetrics();
}

Status FeedService::Share(NodeId u) {
  ScopedLatency latency(replaying_ ? nullptr : share_us_);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (u >= graph_.num_nodes()) {
      return Status::InvalidArgument(StrFormat("unknown user %u", u));
    }
    PIGGY_RETURN_NOT_OK(EnsureServing(lock));
    // Draw the seq, WAL-frame the record, then publish: a concurrent
    // QueryStream can only ever observe an event that is already on the
    // log, so neither the ack nor any read exposes state a crash could
    // roll back past (ShardDurability serializes concurrent appends
    // internally; a seq burned by a failed append is a harmless gap).
    const uint64_t seq = prototype_->DrawShareSeq();
    if (durability_ != nullptr && !replaying_) {
      PIGGY_RETURN_NOT_OK(durability_->LogShare(u, seq));
    }
    prototype_->ShareEvent(u, seq);
  }
  PIGGY_RETURN_NOT_OK(ObserveRequest(/*is_share=*/true, u));
  return MaybeSnapshot();
}

Status FeedService::Share(NodeId u, uint64_t seq) {
  ScopedLatency latency(replaying_ ? nullptr : share_us_);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (u >= graph_.num_nodes()) {
      return Status::InvalidArgument(StrFormat("unknown user %u", u));
    }
    PIGGY_RETURN_NOT_OK(EnsureServing(lock));
    // Same visibility contract as the self-sequenced overload: the record
    // goes on the log before the event becomes readable.
    if (durability_ != nullptr && !replaying_) {
      PIGGY_RETURN_NOT_OK(durability_->LogShare(u, seq));
    }
    prototype_->ShareEvent(u, seq);
  }
  PIGGY_RETURN_NOT_OK(ObserveRequest(/*is_share=*/true, u));
  return MaybeSnapshot();
}

Result<std::vector<EventTuple>> FeedService::QueryStream(NodeId u) {
  ScopedLatency latency(replaying_ ? nullptr : query_us_);
  std::vector<EventTuple> stream;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (u >= graph_.num_nodes()) {
      return Status::InvalidArgument(StrFormat("unknown user %u", u));
    }
    PIGGY_RETURN_NOT_OK(EnsureServing(lock));
    // Token before the query: audits stay exact in single-threaded use and
    // downgrade to soundness-only when a share overlapped this query.
    Prototype::AuditToken token = prototype_->BeginAudit();
    stream = prototype_->QueryStream(u);
    if (options_.audit_every > 0 &&
        (queries_since_audit_.fetch_add(1, std::memory_order_relaxed) + 1) %
                options_.audit_every ==
            0) {
      PIGGY_RETURN_NOT_OK(prototype_->AuditStream(u, stream, token));
      audited_queries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PIGGY_RETURN_NOT_OK(ObserveRequest(/*is_share=*/false, u));
  return stream;
}

Status FeedService::ObserveRequest(bool is_share, NodeId u) {
  if (replaying_) return Status::OK();  // replayed traffic is not observation
  if (estimator_ == nullptr) return Status::OK();
  if (is_share) {
    estimator_->RecordShare(u);
  } else {
    estimator_->RecordQuery(u);
  }
  if (!estimator_->WindowFull()) return Status::OK();
  if (!estimator_->FoldWindow()) return Status::OK();  // another thread folded

  // Rate component: fraction of the plan's cost advantage lost under the
  // estimated rates. Only trusted after warmup — thin observation windows
  // fake small amounts of drift.
  const bool warm = estimator_->Warm();
  double rate_score = 0;
  double structural_score = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (warm) {
      const Workload estimated = estimator_->EstimateWorkload(workload_);
      const double cost =
          ScheduleCost(graph_, estimated, schedule_, ResidualPolicy::kFree);
      const double hybrid = HybridCost(graph_, estimated);
      const double advantage = cost > 0 ? hybrid / cost : 1.0;
      rate_score = plan_advantage_ > 0
                       ? std::max(0.0, 1.0 - advantage / plan_advantage_)
                       : 0.0;
    }
    // Structural component: churn repairs serve each new edge individually,
    // so piggybacking decays in proportion to the churned-edge fraction.
    // Exact, no warmup needed.
    structural_score = estimator_->options().churn_weight *
                       static_cast<double>(churn_since_plan_) /
                       static_cast<double>(std::max<size_t>(edges_at_plan_, 1));
  }
  const double score = std::max(rate_score, structural_score);
  last_drift_score_.store(score, std::memory_order_relaxed);

  if (score > estimator_->options().threshold && estimator_->ReplanAllowed()) {
    drift_replans_.fetch_add(1, std::memory_order_relaxed);
    if (options_.background_replan) {
      // Re-estimation happens on the background thread against the same
      // estimator (refresh only once warm).
      return RequestBackgroundReplan(/*refresh=*/warm);
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (warm) {
      // Replan against the traffic actually observed, not deployment-day
      // rates (a purely structural trigger inside warmup keeps the planned
      // rates rather than trusting a noisy estimate).
      workload_ = estimator_->EstimateWorkload(workload_);
    }
    return ReplanLocked();
  }
  return Status::OK();
}

Status FeedService::ApplyChurnLocked(Status churn_result, bool added,
                                     NodeId producer, NodeId consumer) {
  PIGGY_RETURN_NOT_OK(churn_result);
  if (durability_ != nullptr && !replaying_) {
    PIGGY_RETURN_NOT_OK(durability_->LogChurn(added, producer, consumer));
  }
  ++churn_ops_;
  ++churn_since_plan_;
  serving_dirty_ = true;
  if (journal_active_) churn_journal_.push_back({added, producer, consumer});
  // During WAL replay the policy stays inert: replans happen exactly where
  // kReplanCommit records mark them, not where a counter would re-fire.
  if (replaying_) return Status::OK();
  switch (options_.replan.mode) {
    case ReplanMode::kNever:
      break;
    case ReplanMode::kEveryNChurn:
      if (churn_since_plan_ >= options_.replan.every_n_churn) {
        if (options_.background_replan) {
          return RequestBackgroundReplan(/*refresh=*/false);
        }
        return ReplanLocked();
      }
      break;
    case ReplanMode::kDrift:
      // Structural drift surfaces through the cost evaluation on the served
      // request cadence (new edges are carried at hybrid cost until then).
      estimator_->RecordChurn();
      break;
  }
  return Status::OK();
}

Status FeedService::Follow(NodeId follower, NodeId producer) {
  ScopedLatency latency(replaying_ ? nullptr : follow_us_);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (follower >= graph_.num_nodes() || producer >= graph_.num_nodes()) {
      return Status::InvalidArgument("unknown user in Follow");
    }
    if (follower == producer) {
      return Status::InvalidArgument("users may not follow themselves");
    }
    if (graph_.HasEdge(producer, follower)) return Status::OK();  // already follows
    PIGGY_RETURN_NOT_OK(ApplyChurnLocked(maintainer_->AddEdge(producer, follower),
                                         /*added=*/true, producer, follower));
  }
  return MaybeSnapshot();
}

Status FeedService::Unfollow(NodeId follower, NodeId producer) {
  ScopedLatency latency(replaying_ ? nullptr : unfollow_us_);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (follower >= graph_.num_nodes() || producer >= graph_.num_nodes()) {
      return Status::InvalidArgument("unknown user in Unfollow");
    }
    if (!graph_.HasEdge(producer, follower)) return Status::OK();  // not following
    PIGGY_RETURN_NOT_OK(
        ApplyChurnLocked(maintainer_->RemoveEdge(producer, follower),
                         /*added=*/false, producer, follower));
  }
  return MaybeSnapshot();
}

Status FeedService::SetUserRates(NodeId u, double production,
                                 double consumption) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  workload_.production[u] = production;
  workload_.consumption[u] = consumption;
  if (durability_ != nullptr && !replaying_) {
    return durability_->LogRateShift(u, production, consumption);
  }
  return Status::OK();
}

Status FeedService::LogMigrationCommit() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (durability_ == nullptr || replaying_) return Status::OK();
  return durability_->LogMigrationCommit();
}

Status FeedService::WriteSnapshotLocked() {
  if (durability_ == nullptr) return Status::OK();
  SnapshotData data;  // id + churn delta are filled in by ShardDurability
  data.production = workload_.production;
  data.consumption = workload_.consumption;
  data.schedule_text = SerializeSchedule(schedule_);
  if (prototype_ != nullptr) data.events = prototype_->EventLog();
  return durability_->WriteSnapshot(std::move(data));
}

Status FeedService::MaybeSnapshot() {
  if (durability_ == nullptr || replaying_) return Status::OK();
  const uint64_t every = options_.durability.snapshot_every;
  if (every == 0 || durability_->records_since_snapshot() < every) {
    return Status::OK();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Another writer may have rotated while this one waited for the lock.
  if (durability_->records_since_snapshot() < every) return Status::OK();
  return WriteSnapshotLocked();
}

Result<DriverReport> FeedService::Drive(const DriverOptions& options) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PIGGY_RETURN_NOT_OK(EnsureServing(lock));
  PIGGY_ASSIGN_OR_RETURN(DriverReport report,
                         RunWorkloadDriver(*prototype_, workload_, options));
  audited_queries_.fetch_add(report.audited_queries, std::memory_order_relaxed);
  return report;
}

Result<Prototype*> FeedService::ServingPlane() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PIGGY_RETURN_NOT_OK(EnsureServing(lock));
  return prototype_.get();
}

Workload FeedService::WorkloadSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return workload_;
}

Result<uint64_t> FeedService::TrimmedEvents() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PIGGY_RETURN_NOT_OK(EnsureServing(lock));
  return prototype_->TotalTrimmedEvents();
}

Status FeedService::Validate() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ValidateSchedule(graph_, schedule_);
}

std::pair<double, double> FeedService::CostsUnder(const Workload& truth) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return {ScheduleCost(graph_, truth, schedule_, ResidualPolicy::kFree),
          HybridCost(graph_, truth)};
}

FeedService::Metrics FeedService::GetMetrics() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Metrics m;
  m.planner = options_.planner;
  m.replan_policy = options_.replan.ToString();
  m.schedule_cost =
      ScheduleCost(graph_, workload_, schedule_, ResidualPolicy::kFree);
  m.hybrid_cost = HybridCost(graph_, workload_);
  m.replans = replans_;
  m.background_replans = background_replans_.load(std::memory_order_relaxed);
  m.drift_replans = drift_replans_.load(std::memory_order_relaxed);
  m.drift_score = last_drift_score_.load(std::memory_order_relaxed);
  m.repairs = maintainer_->repairs();
  m.churn_ops = churn_ops_;
  m.serving_rebuilds = serving_rebuilds_;
  ClientMetrics client = accumulated_;
  if (prototype_ != nullptr) {
    client = SumMetrics(client, prototype_->client().metrics());
  }
  m.shares = client.share_requests;
  m.queries = client.query_requests;
  m.audited_queries = audited_queries_.load(std::memory_order_relaxed);
  m.messages_per_request = client.MessagesPerRequest();
  m.actual_throughput =
      m.messages_per_request > 0
          ? options_.prototype.client_messages_per_second / m.messages_per_request
          : 0.0;
  m.layout = GraphLayoutName(options_.prototype.layout);
  if (prototype_ != nullptr) {
    m.interest_bytes = prototype_->client().InterestBytes();
    m.interest_bytes_per_edge =
        graph_.num_edges() > 0
            ? static_cast<double>(m.interest_bytes) /
                  static_cast<double>(graph_.num_edges())
            : 0.0;
  }
  // Publish the poll-time figures as gauges so a registry export carries the
  // cost picture without a separate Metrics call.
  registry_.GetGauge("feed.schedule_cost").Set(m.schedule_cost);
  registry_.GetGauge("feed.hybrid_cost").Set(m.hybrid_cost);
  registry_.GetGauge("feed.drift_score").Set(m.drift_score);
  registry_.GetGauge("feed.messages_per_request").Set(m.messages_per_request);
  registry_.GetGauge("feed.interest_bytes").Set(static_cast<double>(m.interest_bytes));
  return m;
}

}  // namespace piggy
