#include "store/feed_service.h"

#include <algorithm>
#include <utility>

#include "core/cost_model.h"
#include "core/validator.h"
#include "util/string_util.h"

namespace piggy {

namespace {

ClientMetrics SumMetrics(const ClientMetrics& a, const ClientMetrics& b) {
  ClientMetrics sum;
  sum.share_requests = a.share_requests + b.share_requests;
  sum.query_requests = a.query_requests + b.query_requests;
  sum.update_messages = a.update_messages + b.update_messages;
  sum.query_messages = a.query_messages + b.query_messages;
  return sum;
}

}  // namespace

std::string FeedService::Metrics::ToString() const {
  return StrFormat(
      "planner=%s replan=%s cost=%.1f ff=%.1f ratio=%.3fx replans=%zu "
      "(drift=%zu score=%.3f) repairs=%zu churn=%zu rebuilds=%zu shares=%lu "
      "queries=%lu audited=%lu mpr=%.2f throughput=%.0f req/s",
      planner.c_str(), replan_policy.c_str(), schedule_cost, hybrid_cost,
      ImprovementRatio(hybrid_cost, schedule_cost), replans, drift_replans,
      drift_score, repairs, churn_ops, serving_rebuilds,
      static_cast<unsigned long>(shares), static_cast<unsigned long>(queries),
      static_cast<unsigned long>(audited_queries), messages_per_request,
      actual_throughput);
}

FeedService::FeedService(const Graph& graph, Workload workload,
                         FeedServiceOptions options)
    : options_(std::move(options)),
      graph_(graph),
      workload_(std::move(workload)) {}

Result<std::unique_ptr<FeedService>> FeedService::Create(
    const Graph& graph, const FeedServiceOptions& options) {
  PIGGY_ASSIGN_OR_RETURN(Workload workload,
                         GenerateWorkload(graph, options.workload));
  return Create(graph, std::move(workload), options);
}

Result<std::unique_ptr<FeedService>> FeedService::Create(
    const Graph& graph, Workload workload, const FeedServiceOptions& options) {
  if (workload.num_users() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  workload.num_users(), graph.num_nodes()));
  }
  auto service = std::unique_ptr<FeedService>(
      new FeedService(graph, std::move(workload), options));
  // The legacy counter knob is the every-N policy under its old name.
  if (service->options_.replan.mode == ReplanMode::kNever &&
      options.replan_after_churn > 0) {
    service->options_.replan = ReplanPolicy::EveryN(options.replan_after_churn);
  }
  if (service->options_.replan.mode == ReplanMode::kDrift) {
    service->estimator_ = std::make_unique<RateDriftEstimator>(
        graph.num_nodes(), service->options_.replan.drift);
  }
  service->maintainer_ = std::make_unique<IncrementalMaintainer>(
      &service->graph_, &service->schedule_, &service->workload_);
  PIGGY_RETURN_NOT_OK(service->Replan());
  PIGGY_RETURN_NOT_OK(service->RefreshServing());
  return service;
}

Status FeedService::Replan() {
  PIGGY_ASSIGN_OR_RETURN(std::unique_ptr<Planner> planner,
                         MakePlanner(options_.planner));
  PIGGY_ASSIGN_OR_RETURN(Graph snapshot, graph_.Snapshot());
  PIGGY_ASSIGN_OR_RETURN(PlanResult plan,
                         planner->Plan(snapshot, workload_, options_.plan_context));
  schedule_ = std::move(plan.schedule);
  maintainer_->RebuildIndexes();
  options_.planner = plan.planner;  // canonicalize aliases ("ff" -> "hybrid")
  // The drift policy measures erosion relative to the advantage this plan
  // opened with (scale-invariant, so traffic surges alone never trigger).
  plan_advantage_ =
      plan.final_cost > 0 ? plan.hybrid_cost / plan.final_cost : 1.0;
  edges_at_plan_ = graph_.num_edges();
  if (estimator_ != nullptr) estimator_->OnReplanned();
  ++replans_;
  churn_since_plan_ = 0;
  serving_dirty_ = true;
  return Status::OK();
}

Status FeedService::RefreshServing() {
  if (prototype_ != nullptr && !serving_dirty_) return Status::OK();

  std::vector<EventTuple> log;
  if (prototype_ != nullptr) {
    AccumulateClientMetrics();
    log = prototype_->EventLog();
    prototype_.reset();  // must drop its borrow before snapshot_ is replaced
    ++serving_rebuilds_;
  }
  PIGGY_ASSIGN_OR_RETURN(snapshot_, graph_.Snapshot());
  PIGGY_ASSIGN_OR_RETURN(prototype_, Prototype::Create(snapshot_, schedule_,
                                                       options_.prototype));
  if (!log.empty()) {
    PIGGY_RETURN_NOT_OK(prototype_->RestoreEvents(log));
    // Replay traffic is bookkeeping, not served requests: keep it out of the
    // messages-per-request accounting (accumulated_ holds the real history).
    // Only the client counters — the fleet's ServerMetrics must survive, or
    // zeroing trimmed_events would defeat AuditStream's "completeness not
    // provable once trimming happened" guard and fail correct queries.
    prototype_->client().ResetMetrics();
  }
  serving_dirty_ = false;
  return Status::OK();
}

void FeedService::AccumulateClientMetrics() {
  if (prototype_ == nullptr) return;
  accumulated_ = SumMetrics(accumulated_, prototype_->client().metrics());
  prototype_->client().ResetMetrics();
}

Status FeedService::Share(NodeId u) {
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  PIGGY_RETURN_NOT_OK(RefreshServing());
  prototype_->ShareEvent(u);
  return ObserveRequest(/*is_share=*/true, u);
}

Result<std::vector<EventTuple>> FeedService::QueryStream(NodeId u) {
  if (u >= graph_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  PIGGY_RETURN_NOT_OK(RefreshServing());
  std::vector<EventTuple> stream = prototype_->QueryStream(u);
  if (options_.audit_every > 0 &&
      ++queries_since_audit_ >= options_.audit_every) {
    queries_since_audit_ = 0;
    PIGGY_RETURN_NOT_OK(prototype_->AuditStream(u, stream));
    ++audited_queries_;
  }
  PIGGY_RETURN_NOT_OK(ObserveRequest(/*is_share=*/false, u));
  return stream;
}

Status FeedService::ObserveRequest(bool is_share, NodeId u) {
  if (estimator_ == nullptr) return Status::OK();
  if (is_share) {
    estimator_->RecordShare(u);
  } else {
    estimator_->RecordQuery(u);
  }
  if (!estimator_->WindowFull()) return Status::OK();
  estimator_->FoldWindow();

  // Rate component: fraction of the plan's cost advantage lost under the
  // estimated rates. Only trusted after warmup — thin observation windows
  // fake small amounts of drift. snapshot_ is fresh here: Share/QueryStream
  // call RefreshServing first.
  double rate_score = 0;
  if (estimator_->Warm()) {
    const Workload estimated = estimator_->EstimateWorkload(workload_);
    const double cost =
        ScheduleCost(snapshot_, estimated, schedule_, ResidualPolicy::kFree);
    const double hybrid = HybridCost(snapshot_, estimated);
    const double advantage = cost > 0 ? hybrid / cost : 1.0;
    rate_score = plan_advantage_ > 0
                     ? std::max(0.0, 1.0 - advantage / plan_advantage_)
                     : 0.0;
  }
  // Structural component: churn repairs serve each new edge individually, so
  // piggybacking decays in proportion to the churned-edge fraction. Exact,
  // no warmup needed.
  const double structural_score =
      estimator_->options().churn_weight *
      static_cast<double>(churn_since_plan_) /
      static_cast<double>(std::max<size_t>(edges_at_plan_, 1));
  last_drift_score_ = std::max(rate_score, structural_score);

  if (last_drift_score_ > estimator_->options().threshold &&
      estimator_->ReplanAllowed()) {
    if (estimator_->Warm()) {
      // Replan against the traffic actually observed, not deployment-day
      // rates (a purely structural trigger inside warmup keeps the planned
      // rates rather than trusting a noisy estimate).
      workload_ = estimator_->EstimateWorkload(workload_);
    }
    ++drift_replans_;
    return Replan();
  }
  return Status::OK();
}

Status FeedService::ApplyChurn(Status churn_result) {
  PIGGY_RETURN_NOT_OK(churn_result);
  ++churn_ops_;
  ++churn_since_plan_;
  serving_dirty_ = true;
  switch (options_.replan.mode) {
    case ReplanMode::kNever:
      break;
    case ReplanMode::kEveryNChurn:
      if (churn_since_plan_ >= options_.replan.every_n_churn) return Replan();
      break;
    case ReplanMode::kDrift:
      // Structural drift surfaces through the cost evaluation on the served
      // request cadence (new edges are carried at hybrid cost until then).
      estimator_->RecordChurn();
      break;
  }
  return Status::OK();
}

Status FeedService::Follow(NodeId follower, NodeId producer) {
  if (follower >= graph_.num_nodes() || producer >= graph_.num_nodes()) {
    return Status::InvalidArgument("unknown user in Follow");
  }
  if (follower == producer) {
    return Status::InvalidArgument("users may not follow themselves");
  }
  if (graph_.HasEdge(producer, follower)) return Status::OK();  // already follows
  return ApplyChurn(maintainer_->AddEdge(producer, follower));
}

Status FeedService::Unfollow(NodeId follower, NodeId producer) {
  if (follower >= graph_.num_nodes() || producer >= graph_.num_nodes()) {
    return Status::InvalidArgument("unknown user in Unfollow");
  }
  if (!graph_.HasEdge(producer, follower)) return Status::OK();  // not following
  return ApplyChurn(maintainer_->RemoveEdge(producer, follower));
}

Result<DriverReport> FeedService::Drive(const DriverOptions& options) {
  PIGGY_RETURN_NOT_OK(RefreshServing());
  PIGGY_ASSIGN_OR_RETURN(DriverReport report,
                         RunWorkloadDriver(*prototype_, workload_, options));
  audited_queries_ += report.audited_queries;
  return report;
}

Result<Prototype*> FeedService::ServingPlane() {
  PIGGY_RETURN_NOT_OK(RefreshServing());
  return prototype_.get();
}

Status FeedService::Validate() const {
  return ValidateSchedule(graph_, schedule_);
}

FeedService::Metrics FeedService::GetMetrics() const {
  Metrics m;
  m.planner = options_.planner;
  m.replan_policy = options_.replan.ToString();
  m.schedule_cost =
      ScheduleCost(graph_, workload_, schedule_, ResidualPolicy::kFree);
  m.hybrid_cost = HybridCost(graph_, workload_);
  m.replans = replans_;
  m.drift_replans = drift_replans_;
  m.drift_score = last_drift_score_;
  m.repairs = maintainer_->repairs();
  m.churn_ops = churn_ops_;
  m.serving_rebuilds = serving_rebuilds_;
  ClientMetrics client = accumulated_;
  if (prototype_ != nullptr) {
    client = SumMetrics(client, prototype_->client().metrics());
  }
  m.shares = client.share_requests;
  m.queries = client.query_requests;
  m.audited_queries = audited_queries_;
  m.messages_per_request = client.MessagesPerRequest();
  m.actual_throughput =
      m.messages_per_request > 0
          ? options_.prototype.client_messages_per_second / m.messages_per_request
          : 0.0;
  return m;
}

}  // namespace piggy
