#include "store/concurrent_driver.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>

#include "obs/percentile.h"
#include "util/alias_table.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace piggy {

namespace {

LatencyProfile Summarize(std::vector<double>& latencies_us) {
  LatencyProfile p;
  p.count = latencies_us.size();
  if (latencies_us.empty()) return p;
  p.p50_us = obs::NearestRankPercentile(latencies_us, 0.50);
  p.p95_us = obs::NearestRankPercentile(latencies_us, 0.95);
  p.p99_us = obs::NearestRankPercentile(latencies_us, 0.99);
  p.max_us = *std::max_element(latencies_us.begin(), latencies_us.end());
  return p;
}

}  // namespace

std::string ConcurrentDriveReport::ToString() const {
  return StrFormat(
      "threads=%zu ops=%lu (shares=%lu queries=%lu) wall=%.3fs "
      "tput=%.0f ops/s share p50/p95/p99=%.1f/%.1f/%.1f us "
      "query p50/p95/p99=%.1f/%.1f/%.1f us",
      client_threads, static_cast<unsigned long>(shares + queries),
      static_cast<unsigned long>(shares), static_cast<unsigned long>(queries),
      wall_seconds, ops_per_second, share_latency.p50_us, share_latency.p95_us,
      share_latency.p99_us, query_latency.p50_us, query_latency.p95_us,
      query_latency.p99_us);
}

Result<ConcurrentDriveReport> RunConcurrentDriver(
    const Workload& workload, const ServingOps& ops,
    const ConcurrentDriverOptions& options) {
  if (options.client_threads == 0) {
    return Status::InvalidArgument("client_threads must be positive");
  }
  if (options.requests_per_thread == 0) {
    return Status::InvalidArgument("requests_per_thread must be positive");
  }
  if (!ops.share || !ops.query) {
    return Status::InvalidArgument("ServingOps must bind share and query");
  }
  const double total_p = workload.TotalProduction();
  const double total_c = workload.TotalConsumption();
  if (total_p <= 0 || total_c <= 0) {
    return Status::InvalidArgument("workload must have positive total rates");
  }
  const AliasTable share_sampler(workload.production);
  const AliasTable query_sampler(workload.consumption);
  const double p_share = total_p / (total_p + total_c);

  const size_t threads = options.client_threads;
  struct ThreadResult {
    Status status;
    uint64_t shares = 0;
    uint64_t queries = 0;
    std::vector<double> share_us;
    std::vector<double> query_us;
  };
  std::vector<ThreadResult> results(threads);

  WallTimer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        ThreadResult& out = results[t];
        // Distinct deterministic stream per thread; Mix64 decorrelates
        // adjacent thread indices.
        Rng rng(Mix64(options.seed * 0x9e3779b97f4a7c15ULL + t + 1));
        out.share_us.reserve(options.requests_per_thread);
        out.query_us.reserve(options.requests_per_thread);
        using Clock = std::chrono::steady_clock;
        for (size_t i = 0; i < options.requests_per_thread; ++i) {
          const bool is_share = rng.Bernoulli(p_share);
          const NodeId u = is_share ? share_sampler.Sample(rng)
                                    : query_sampler.Sample(rng);
          const auto begin = Clock::now();
          const Status st = is_share ? ops.share(u) : ops.query(u);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - begin)
                  .count();
          if (!st.ok()) {
            out.status = st;
            return;
          }
          if (is_share) {
            ++out.shares;
            out.share_us.push_back(us);
            if (options.share_histogram != nullptr) {
              options.share_histogram->Record(us);
            }
          } else {
            ++out.queries;
            out.query_us.push_back(us);
            if (options.query_histogram != nullptr) {
              options.query_histogram->Record(us);
            }
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
  }
  const double seconds = wall.Seconds();

  ConcurrentDriveReport report;
  report.client_threads = threads;
  report.wall_seconds = seconds;
  std::vector<double> share_us, query_us;
  for (ThreadResult& r : results) {
    PIGGY_RETURN_NOT_OK(r.status);
    report.shares += r.shares;
    report.queries += r.queries;
    share_us.insert(share_us.end(), r.share_us.begin(), r.share_us.end());
    query_us.insert(query_us.end(), r.query_us.begin(), r.query_us.end());
  }
  if (seconds > 0) {
    report.ops_per_second =
        static_cast<double>(report.shares + report.queries) / seconds;
  }
  report.share_latency = Summarize(share_us);
  report.query_latency = Summarize(query_us);
  return report;
}

Result<ConcurrentDriveReport> RunConcurrentDriver(
    FeedService& service, const ConcurrentDriverOptions& options) {
  ServingOps ops;
  ops.share = [&service](NodeId u) { return service.Share(u); };
  ops.query = [&service](NodeId u) { return service.QueryStream(u).status(); };
  // Snapshot under the service lock: a drift replan may re-estimate the
  // workload mid-drive, and the driver's mix must stay fixed anyway.
  return RunConcurrentDriver(service.WorkloadSnapshot(), ops, options);
}

Result<ConcurrentDriveReport> RunConcurrentDriver(
    ClusterService& cluster, const ConcurrentDriverOptions& options) {
  ServingOps ops;
  ops.share = [&cluster](NodeId u) { return cluster.Share(u); };
  ops.query = [&cluster](NodeId u) { return cluster.QueryStream(u).status(); };
  return RunConcurrentDriver(cluster.workload(), ops, options);
}

}  // namespace piggy
