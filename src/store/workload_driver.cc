#include "store/workload_driver.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/alias_table.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace piggy {

double DriverReport::NormalizedQueryLoadMean() const {
  if (per_server_queries.empty()) return 0;
  uint64_t total = 0;
  for (uint64_t q : per_server_queries) total += q;
  if (total == 0) return 0;
  double sum = 0;
  for (uint64_t q : per_server_queries) {
    sum += static_cast<double>(q) / static_cast<double>(total);
  }
  return sum / static_cast<double>(per_server_queries.size());
}

double DriverReport::NormalizedQueryLoadVariance() const {
  if (per_server_queries.empty()) return 0;
  uint64_t total = 0;
  for (uint64_t q : per_server_queries) total += q;
  if (total == 0) return 0;
  double mean = NormalizedQueryLoadMean();
  double sum_sq = 0;
  for (uint64_t q : per_server_queries) {
    double norm = static_cast<double>(q) / static_cast<double>(total);
    sum_sq += (norm - mean) * (norm - mean);
  }
  return sum_sq / static_cast<double>(per_server_queries.size());
}

std::string DriverReport::ToString() const {
  return StrFormat(
      "requests=%lu (shares=%lu queries=%lu) msgs/req=%.3f throughput=%.0f "
      "audits=%zu",
      static_cast<unsigned long>(client.requests()),
      static_cast<unsigned long>(client.share_requests),
      static_cast<unsigned long>(client.query_requests), messages_per_request,
      actual_throughput, audited_queries);
}

Result<DriverReport> RunWorkloadDriver(Prototype& prototype, const Workload& workload,
                                       const DriverOptions& options) {
  if (workload.num_users() != prototype.graph().num_nodes()) {
    return Status::InvalidArgument("workload size does not match prototype graph");
  }
  const double total_p = workload.TotalProduction();
  const double total_c = workload.TotalConsumption();
  if (total_p <= 0 || total_c <= 0) {
    return Status::InvalidArgument("workload must have positive total rates");
  }

  AliasTable share_sampler(workload.production);
  AliasTable query_sampler(workload.consumption);
  const double p_share = total_p / (total_p + total_c);
  Rng rng(options.seed);

  DriverReport report;
  for (size_t i = 0; i < options.num_requests; ++i) {
    if (rng.Bernoulli(p_share)) {
      prototype.ShareEvent(share_sampler.Sample(rng));
    } else {
      NodeId u = query_sampler.Sample(rng);
      Prototype::AuditToken token = prototype.BeginAudit();
      std::vector<EventTuple> stream = prototype.QueryStream(u);
      if (options.audit_every > 0 &&
          (report.audited_queries == 0 ||
           prototype.client().metrics().query_requests % options.audit_every == 0)) {
        PIGGY_RETURN_NOT_OK(prototype.AuditStream(u, stream, token));
        ++report.audited_queries;
      }
    }
  }

  report.client = prototype.client().metrics();
  report.per_server_queries = prototype.PerServerQueryLoad();
  report.per_server_updates = prototype.PerServerUpdateLoad();
  report.messages_per_request = report.client.MessagesPerRequest();
  report.actual_throughput = prototype.ActualThroughput();
  return report;
}

}  // namespace piggy
