// Request driver: replays a rate-weighted request mix against the prototype.
//
// Requests are sampled exactly as the cost model assumes: a request is a
// share with probability R_p / (R_p + R_c) (total production over total
// rate), the acting user drawn from the per-user rates via alias tables.
// Deterministic per seed.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/prototype.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Driver configuration.
struct DriverOptions {
  size_t num_requests = 100000;
  uint64_t seed = 7;
  /// Audit every Nth query against the event-log oracle (0 = no audits).
  size_t audit_every = 0;
};

/// \brief Measurements from one driver run.
struct DriverReport {
  ClientMetrics client;
  std::vector<uint64_t> per_server_queries;
  std::vector<uint64_t> per_server_updates;
  double actual_throughput = 0;     ///< modeled requests/second per client
  double messages_per_request = 0;
  size_t audited_queries = 0;

  /// Mean and variance of per-server query load normalized by total queries
  /// (Fig. 8's y-axis).
  double NormalizedQueryLoadMean() const;
  double NormalizedQueryLoadVariance() const;

  std::string ToString() const;
};

/// Runs `options.num_requests` sampled requests. Returns an error if any
/// audited query diverges from the oracle.
Result<DriverReport> RunWorkloadDriver(Prototype& prototype, const Workload& workload,
                                       const DriverOptions& options);

}  // namespace piggy
