// Data partitioning: mapping user views to data-store servers.
//
// The paper's prototype hashes user ids to servers (Sec. 4.3, "the view of a
// user u is stored in a random server, selected by hashing the id"). Because
// clients batch — one message per server per request — placement shapes the
// measured throughput: co-located views are free to reach. The DISSEMINATION
// problem deliberately ignores placement (it is dynamic and often hidden
// inside the store layer); the placement-aware predicted cost here is the
// quantity Figure 7 plots to show the schedules win anyway.

#pragma once

#include <cstdint>
#include <memory>

#include "core/schedule.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Maps users to data-store servers.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Server hosting the view of `user`, in [0, num_servers()).
  virtual uint32_t ServerOf(NodeId user) const = 0;

  /// Number of servers.
  virtual size_t num_servers() const = 0;
};

/// \brief Salted-hash partitioning (deterministic pseudo-random placement).
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(size_t num_servers, uint64_t salt = 0x9a75a11ceULL);

  uint32_t ServerOf(NodeId user) const override {
    return static_cast<uint32_t>(Mix64(user ^ salt_) % num_servers_);
  }

  size_t num_servers() const override { return num_servers_; }

 private:
  size_t num_servers_;
  uint64_t salt_;
};

/// \brief Predicted cost with data placement (Fig. 7):
///
///   cost = sum_u rp(u) * |servers({u} ∪ push_set(u))|
///        + sum_u rc(u) * |servers({u} ∪ pull_set(u))|
///
/// With one server every request costs exactly one message (the optimum the
/// figure normalizes by). The schedule must be finalized (every edge pushed,
/// pulled or hub-covered).
double PlacementAwareCost(const Graph& g, const Workload& w, const Schedule& s,
                          const Partitioner& partitioner);

}  // namespace piggy
