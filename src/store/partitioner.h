// Data partitioning: mapping user views to data-store servers (and, in the
// cluster layer, whole users to serving shards).
//
// The paper's prototype hashes user ids to servers (Sec. 4.3, "the view of a
// user u is stored in a random server, selected by hashing the id"). Because
// clients batch — one message per server per request — placement shapes the
// measured throughput: co-located views are free to reach. The DISSEMINATION
// problem deliberately ignores placement (it is dynamic and often hidden
// inside the store layer); the placement-aware predicted cost here is the
// quantity Figure 7 plots to show the schedules win anyway.
//
// Beyond the paper's hash placement, GreedyEdgeCutPartitioner computes a
// graph-aware assignment that co-locates tightly connected users, minimizing
// the rate-weighted edge cut — exactly the traffic that crosses shards in the
// cluster layer (src/cluster). Partitioners are instantiated by registry name
// via MakePartitioner ("hash" | "edge-cut"), mirroring the planner registry.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/schedule.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// Default salt of the hash placement. One constant shared by every
/// construction path (direct HashPartitioner, MakePartitioner,
/// PrototypeOptions, ClusterOptions) so they all agree on the same placement.
inline constexpr uint64_t kDefaultPartitionSalt = 0x9a75a11ceULL;

/// \brief Maps users to data-store servers.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Server hosting the view of `user`, in [0, num_servers()).
  virtual uint32_t ServerOf(NodeId user) const = 0;

  /// Number of servers.
  virtual size_t num_servers() const = 0;

  /// Registry name of the policy ("hash", "edge-cut", ...).
  virtual const std::string& name() const = 0;
};

/// \brief Salted-hash partitioning (deterministic pseudo-random placement).
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(size_t num_servers,
                           uint64_t salt = kDefaultPartitionSalt);

  uint32_t ServerOf(NodeId user) const override {
    return static_cast<uint32_t>(Mix64(user ^ salt_) % num_servers_);
  }

  size_t num_servers() const override { return num_servers_; }
  const std::string& name() const override;

 private:
  size_t num_servers_;
  uint64_t salt_;
};

/// \brief Knobs of the greedy edge-cut partitioner.
struct EdgeCutOptions {
  /// Per-shard capacity is ceil(n / k) * (1 + balance_slack): the slack a
  /// shard may run over a perfectly even split before the greedy pass stops
  /// adding to it. Small values keep load balanced at a slightly higher cut.
  double balance_slack = 0.05;
};

/// \brief Graph-aware placement minimizing the rate-weighted edge cut.
///
/// A one-pass weighted linear-deterministic-greedy (LDG) streaming
/// partitioner: users are visited in decreasing total-degree order (hubs
/// first, so their communities accrete around them) and each is assigned to
/// the shard maximizing
///
///     affinity(u, s) * (1 - load(s) / capacity)
///
/// where affinity(u, s) sums, over u's already-placed neighbors in s, the
/// cost the edge would add if it were cut: min(rp(producer), rc(consumer)) —
/// the cheaper (hybrid-rule) side that the cluster layer pays in cross-shard
/// messages. Deterministic; ties break toward the least-loaded shard.
class GreedyEdgeCutPartitioner : public Partitioner {
 public:
  /// Computes the assignment for every node of `g`. The workload must cover
  /// the graph (rates weight the cut).
  static Result<GreedyEdgeCutPartitioner> Build(const Graph& g, const Workload& w,
                                                size_t num_shards,
                                                const EdgeCutOptions& options = {});

  uint32_t ServerOf(NodeId user) const override {
    PIGGY_CHECK_LT(user, assignment_.size());
    return assignment_[user];
  }

  size_t num_servers() const override { return num_shards_; }
  const std::string& name() const override;

  /// The full assignment (one shard id per node).
  const std::vector<uint32_t>& assignment() const { return assignment_; }

  /// Number of edges whose endpoints land on different shards.
  size_t cut_edges(const Graph& g) const;

 private:
  GreedyEdgeCutPartitioner(std::vector<uint32_t> assignment, size_t num_shards)
      : assignment_(std::move(assignment)), num_shards_(num_shards) {}

  std::vector<uint32_t> assignment_;
  size_t num_shards_;
};

/// \brief Registry metadata for one partitioner policy.
struct PartitionerInfo {
  std::string name;         ///< canonical registry key
  std::string description;  ///< one line, shown by `piggy_tool --partitioner list`
};

/// All registered partitioners, sorted by name.
std::vector<PartitionerInfo> RegisteredPartitioners();

/// Instantiates a partitioner by registry name ("hash" | "edge-cut"; alias
/// "greedy" -> "edge-cut"). The graph/workload are only read at build time
/// (the hash policy ignores them). Unknown names return InvalidArgument
/// listing the valid options, mirroring MakePlanner.
Result<std::unique_ptr<Partitioner>> MakePartitioner(
    std::string_view name, const Graph& g, const Workload& w, size_t num_servers,
    uint64_t salt = kDefaultPartitionSalt);

/// \brief Predicted cost with data placement (Fig. 7):
///
///   cost = sum_u rp(u) * |servers({u} ∪ push_set(u))|
///        + sum_u rc(u) * |servers({u} ∪ pull_set(u))|
///
/// With one server every request costs exactly one message (the optimum the
/// figure normalizes by). The schedule must be finalized (every edge pushed,
/// pulled or hub-covered).
double PlacementAwareCost(const Graph& g, const Workload& w, const Schedule& s,
                          const Partitioner& partitioner);

}  // namespace piggy
