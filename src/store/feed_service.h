// FeedService: the production-style facade over the whole piggybacking
// pipeline.
//
// Owns everything a serving deployment needs — the evolving social graph, the
// request schedule produced by a registry planner, the Prototype serving
// plane (partitioned view fleet + Algorithm-3 client + audit oracle), and the
// IncrementalMaintainer that keeps the schedule Theorem-1 valid under churn —
// behind an online API:
//
//   auto service = FeedService::Create(graph, options).MoveValueOrDie();
//   service->Share(user);                   // write path
//   auto feed = service->QueryStream(user); // read path (optionally audited)
//   service->Follow(alice, bob);            // churn; schedule repaired locally
//   service->Replan();                      // full re-optimization, any time
//   auto m = service->Metrics();            // cost + serving counters
//
// Lifecycle under churn: Follow/Unfollow apply the paper's Sec.-3.3 local
// rules immediately (the schedule never goes invalid), and the serving plane
// (whose per-user view lists are materialized from the schedule) is rebuilt
// lazily before the next Share/Query — stored events survive rebuilds via
// Prototype::RestoreEvents. Accumulated churn degrades schedule *quality*,
// never validity; FeedServiceOptions::replan picks the re-optimization
// policy: never (explicit Replan() only), every N churn ops (the blind
// counter), or drift-triggered — a rate-drift estimator watches served
// traffic and replans with re-estimated rates once the schedule's cost
// advantage erodes (see scenario/drift.h). Scenario code never reaches into
// Prototype internals.
//
// ## Threading model
//
// Share / QueryStream / GetMetrics / Validate take a reader (shared) lock and
// run concurrently from any number of client threads — the plane underneath
// (fleet, client, audit log) is internally synchronized. Follow / Unfollow /
// Replan take the writer (exclusive) lock; churn is a brief local repair, so
// writers never stall readers for long.
//
// With `background_replan` set (or via StartBackgroundReplan), policy-
// triggered planner runs move to a dedicated thread: it snapshots the graph +
// workload under the lock, plans against the frozen snapshot *outside* any
// lock (anytime-safe: PlanContext cancellation cuts it short on shutdown),
// pre-builds the replacement serving plane off-thread, and publishes
// schedule + plane in one brief exclusive section. Follow/Unfollow that
// raced the plan are journaled and re-applied to the fresh schedule through
// the Sec-3.3 local repair at publish time; shares that raced are replayed
// into the pre-built plane by a log diff. Serving threads only ever block
// for the swap, never for the planner.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "core/planner.h"
#include "core/schedule.h"
#include "durability/durable_state.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/drift.h"
#include "store/prototype.h"
#include "store/view_store.h"
#include "store/workload_driver.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief FeedService configuration.
struct FeedServiceOptions {
  /// Registry name of the planner computing (and re-computing) the schedule.
  std::string planner = "nosy";
  /// Thread budget / deadline / cancellation / progress for every plan run.
  PlanContext plan_context;
  /// Serving-plane sizing (fleet, feed size, view capacity, calibration).
  PrototypeOptions prototype;
  /// Workload synthesis knobs, used by the Create overload without an
  /// explicit workload.
  WorkloadOptions workload;
  /// Re-run the planner automatically after this many Follow/Unfollow
  /// operations since the last plan (0 = only explicit Replan calls).
  /// Legacy spelling of ReplanPolicy::EveryN — ignored when `replan` sets a
  /// non-default mode.
  size_t replan_after_churn = 0;
  /// When to re-run the planner: never (default), every N churn ops, or
  /// drift-triggered with rates re-estimated from observed traffic (see
  /// scenario/drift.h).
  ReplanPolicy replan;
  /// Run policy-triggered replans (every-N / drift) on a background thread
  /// that plans against a frozen snapshot and atomically swaps the result
  /// in, instead of planning inline on the serving thread.
  bool background_replan = false;
  /// Audit every Nth query against the event-log oracle (0 = no audits).
  size_t audit_every = 0;
  /// WAL + snapshot persistence (disabled unless data_dir is set). Every
  /// acked Share/Follow/Unfollow/rate-shift is WAL-framed before the ack;
  /// snapshots rotate per `snapshot_every` / `snapshot_on_replan`.
  DurabilityOptions durability;
  /// Control-plane event sink (replan/swap/rotation/recovery events). Not
  /// owned; may be null. Shard-scoped events carry `trace_shard` so one ring
  /// shared by a cluster keeps every shard's events on its own track.
  obs::TraceLog* trace = nullptr;
  int32_t trace_shard = -1;
};

/// \brief A running feed-serving deployment.
class FeedService {
 public:
  /// Plans an initial schedule for `graph` with the configured planner and
  /// builds the serving plane. The graph is copied into an internal dynamic
  /// graph; the caller's instance is not referenced afterwards.
  static Result<std::unique_ptr<FeedService>> Create(
      const Graph& graph, const FeedServiceOptions& options);

  /// Same, with explicit per-user rates (must cover every node).
  static Result<std::unique_ptr<FeedService>> Create(
      const Graph& graph, Workload workload, const FeedServiceOptions& options);

  /// Rebuilds a service from `options.durability.data_dir`: loads the newest
  /// valid snapshot (graph delta + rates + schedule + event log), then
  /// replays the WAL tail through the normal Share/Follow/Unfollow paths —
  /// no planner run unless the WAL says one committed. A torn final record
  /// (crash mid-append) is dropped; everything acked before it survives.
  /// On success the service is live and appending to the recovered WAL.
  static Result<std::unique_ptr<FeedService>> Recover(
      const FeedServiceOptions& options, RecoveryStats* stats = nullptr);

  ~FeedService();

  /// User u shares an event. Thread-safe.
  Status Share(NodeId u);

  /// Shares with an externally assigned global sequence number (used as both
  /// event id and timestamp) — the cluster's cross-shard ordering. Thread-
  /// safe.
  Status Share(NodeId u, uint64_t seq);

  /// Assembles u's event stream; audited against the oracle every
  /// options.audit_every queries. Thread-safe.
  Result<std::vector<EventTuple>> QueryStream(NodeId u);

  /// `follower` starts following `producer` (graph edge producer ->
  /// follower). The new edge is served directly at the cheaper side
  /// immediately; OK if already following. Thread-safe (exclusive).
  Status Follow(NodeId follower, NodeId producer);

  /// `follower` stops following `producer`. Hub covers that piggybacked on
  /// the removed edge are re-served directly; OK if not following. Thread-
  /// safe (exclusive).
  Status Unfollow(NodeId follower, NodeId producer);

  /// Updates u's workload rates (durably logged as a rate-shift record).
  /// Thread-safe (exclusive).
  Status SetUserRates(NodeId u, double production, double consumption);

  /// Appends a migration-commit marker to this shard's WAL (no-op without
  /// durability). The cluster's MigrationCoordinator writes it to both sides
  /// of a user migration right before the assignment cutover; on recovery the
  /// marker replays as a no-op. Thread-safe.
  Status LogMigrationCommit();

  /// Re-runs the configured planner on the current graph and swaps the fresh
  /// schedule in (stored events are preserved). Synchronous: plans inline
  /// holding the exclusive lock (stop-the-world; the explicit API).
  Status Replan();

  /// Posts one planner run to the background replanner (spawning it on first
  /// use) and returns immediately; serving proceeds while it plans. The
  /// result is swapped in atomically, with raced churn repaired. No-op if a
  /// background run is already queued or in flight.
  Status StartBackgroundReplan();

  /// Blocks until no background replan is queued or running; returns the
  /// status of the last completed background run (OK if none ever ran).
  Status WaitForBackgroundReplan();

  /// Replays a rate-weighted request mix through the service (the paper's
  /// measurement loop). Uses the service's own workload and audit oracle.
  Result<DriverReport> Drive(const DriverOptions& options);

  /// \brief Cost + serving counters, aggregated across serving-plane
  /// rebuilds.
  struct Metrics {
    std::string planner;          ///< registry name of the planning policy
    std::string replan_policy;    ///< "never" | "every-N" | "drift"
    double schedule_cost = 0;     ///< current schedule cost on current graph
    double hybrid_cost = 0;       ///< FF baseline cost on current graph
    size_t replans = 0;           ///< full planner runs (incl. the initial)
    size_t background_replans = 0;  ///< replans run on the background thread
    size_t drift_replans = 0;     ///< replans triggered by the drift policy
    double drift_score = 0;       ///< last drift evaluation (0 = no drift)
    size_t repairs = 0;           ///< hub covers re-served due to unfollows
    size_t churn_ops = 0;         ///< Follow/Unfollow ops applied
    size_t serving_rebuilds = 0;  ///< lazy serving-plane reconstructions
    uint64_t shares = 0;
    uint64_t queries = 0;
    uint64_t audited_queries = 0;
    double messages_per_request = 0;
    double actual_throughput = 0;  ///< modeled req/s per client
    std::string layout;            ///< interest-set layout ("flat"|"compressed")
    size_t interest_bytes = 0;     ///< resident interest-set bytes
    double interest_bytes_per_edge = 0;  ///< interest_bytes / graph edges

    std::string ToString() const;
  };
  Metrics GetMetrics() const;

  /// Re-checks the Theorem-1 validity of the current schedule against the
  /// current graph (the maintainer guarantees it; tests assert it).
  Status Validate() const;

  /// Per-service metrics: request-latency histograms (feed.share_us /
  /// feed.query_us / feed.follow_us / feed.unfollow_us), replan wall timings,
  /// durability timings, and recovery counters. The reference is stable for
  /// the service's lifetime and safe to read from any thread.
  obs::MetricsRegistry& registry() const { return registry_; }

  /// Stats of the Recover() run that built this service (all-zero when the
  /// service was created fresh rather than recovered).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// (schedule cost, hybrid-baseline cost) of the current schedule/topology
  /// under externally supplied rates, computed under the service lock — the
  /// thread-safe spelling of ScheduleCost(graph(), truth, schedule()), which
  /// would race a concurrent schedule swap. Thread-safe.
  std::pair<double, double> CostsUnder(const Workload& truth) const;

  const DynamicGraph& graph() const { return graph_; }
  const Workload& workload() const { return workload_; }

  /// Copy of the current workload taken under the lock — the reference above
  /// is unsafe while a drift replan may re-estimate rates concurrently.
  Workload WorkloadSnapshot() const;
  const Schedule& schedule() const { return schedule_; }
  const FeedServiceOptions& options() const { return options_; }

  /// The serving plane, rebuilt first if churn left it stale. Exposed for
  /// measurement code (benches) that inspects per-server load. NOT safe
  /// against concurrent churn/replans — the pointer is invalidated by the
  /// next rebuild; single-threaded measurement use only.
  Result<Prototype*> ServingPlane();

  /// Events trimmed from serving views since the last plane rebuild (caps
  /// provable audit completeness, see Prototype::AuditStream). Thread-safe.
  Result<uint64_t> TrimmedEvents();

 private:
  FeedService(const Graph& graph, Workload workload, FeedServiceOptions options);

  /// One journaled Follow/Unfollow that raced an in-flight background plan.
  struct ChurnRecord {
    bool added = false;
    NodeId producer = 0;
    NodeId consumer = 0;
  };

  /// Upgrades to the exclusive lock and rebuilds the serving plane if churn
  /// or a replan left it stale. On return the shared lock is held again and
  /// prototype_ is fresh; on error the shared lock is released.
  Status EnsureServing(std::shared_lock<std::shared_mutex>& lock);

  /// Rebuilds the Prototype around the current graph + schedule, replaying
  /// the stored event log. No-op when the plane is fresh. Requires mu_ held
  /// exclusively.
  Status RefreshServingLocked();

  /// Plans inline against the current graph and swaps the schedule in.
  /// Requires mu_ held exclusively.
  Status ReplanLocked();

  /// The background replanner body: snapshot under the lock, plan + pre-
  /// build the plane outside it, publish + repair raced churn under it.
  Status BackgroundReplanOnce(bool refresh_workload);
  void ReplanThreadMain();
  /// Queues a background run; spawns the thread on first use. `refresh`
  /// re-estimates the workload from the drift estimator before planning.
  Status RequestBackgroundReplan(bool refresh);

  /// Folds the live client counters into the accumulated totals (called
  /// before the serving plane is torn down). Requires mu_ held exclusively.
  void AccumulateClientMetrics();

  /// Churn bookkeeping + replan policy. Requires mu_ held exclusively.
  Status ApplyChurnLocked(Status churn_result, bool added, NodeId producer,
                          NodeId consumer);

  /// Builds a SnapshotData from the live state (rates, schedule, event log)
  /// and rotates the durability pair. Requires mu_ held exclusively. No-op
  /// without durability.
  Status WriteSnapshotLocked();

  /// Snapshot-by-record-count trigger, called after acked writes with no
  /// lock held; takes the exclusive lock only when the threshold is crossed.
  Status MaybeSnapshot();

  /// Drift-mode bookkeeping for one served request, and — when an
  /// observation window completes — the drift evaluation: if the schedule
  /// lost more than the configured fraction of its cost advantage under the
  /// estimated rates and current topology, the workload is re-estimated from
  /// observations and the planner re-run (inline or in the background per
  /// options). Called WITHOUT mu_ held. No-op outside ReplanMode::kDrift.
  Status ObserveRequest(bool is_share, NodeId u);

  FeedServiceOptions options_;

  // Observability. The registry is owned here; the latency histograms are
  // registered once in the constructor and recorded through cached pointers
  // on the serving path (one striped relaxed atomic per op). Mutable:
  // recording from const read paths is not logical state mutation.
  mutable obs::MetricsRegistry registry_;
  obs::Histogram* share_us_ = nullptr;
  obs::Histogram* query_us_ = nullptr;
  obs::Histogram* follow_us_ = nullptr;
  obs::Histogram* unfollow_us_ = nullptr;
  obs::Histogram* replan_us_ = nullptr;
  RecoveryStats recovery_stats_;

  // WAL + snapshot pair (null when durability is disabled). Appends are
  // internally serialized; rotation happens under mu_ exclusive only.
  std::unique_ptr<ShardDurability> durability_;
  // True while Recover() replays the WAL through the public API: durable
  // logging is suppressed (the records are already on disk), replan policies
  // are inert (replans come from kReplanCommit records, at their logged
  // positions), and snapshot triggers don't fire. Plain bool: recovery is
  // single-threaded by construction.
  bool replaying_ = false;

  // Serving state, guarded by mu_: readers (Share/QueryStream/metrics) take
  // it shared, churn/replans/rebuilds take it exclusive.
  mutable std::shared_mutex mu_;
  DynamicGraph graph_;
  Workload workload_;
  Schedule schedule_;
  std::unique_ptr<IncrementalMaintainer> maintainer_;

  // Serving plane: a CSR snapshot of graph_ plus the prototype bound to it.
  // serving_dirty_ means graph_/schedule_ moved on and both must be rebuilt
  // before the next request. Heap-held so a pre-built replacement can be
  // swapped in (prototype_ borrows *snapshot_).
  std::unique_ptr<Graph> snapshot_;
  std::unique_ptr<Prototype> prototype_;
  bool serving_dirty_ = false;

  // Follow/Unfollow that raced an in-flight background plan (guarded by mu_;
  // journal_active_ is set while a plan is in flight).
  std::vector<ChurnRecord> churn_journal_;
  bool journal_active_ = false;
  // Bumped on every schedule swap; an in-flight background plan that lost a
  // publish race (e.g. to an explicit Replan) is discarded.
  size_t plan_epoch_ = 0;

  // Drift-triggered replanning (ReplanMode::kDrift only).
  std::unique_ptr<RateDriftEstimator> estimator_;
  double plan_advantage_ = 1.0;  ///< hybrid/schedule cost ratio at plan time
  size_t edges_at_plan_ = 0;     ///< structural-drift denominator
  std::atomic<size_t> drift_replans_{0};
  std::atomic<double> last_drift_score_{0};

  // Counters that survive serving-plane rebuilds. Guarded by mu_ unless
  // atomic (the atomics are bumped on the shared-lock serving path).
  ClientMetrics accumulated_;
  size_t replans_ = 0;
  std::atomic<size_t> background_replans_{0};
  size_t churn_ops_ = 0;
  size_t churn_since_plan_ = 0;
  size_t serving_rebuilds_ = 0;
  std::atomic<uint64_t> audited_queries_{0};
  std::atomic<uint64_t> queries_since_audit_{0};

  // Background replanner: one thread, spawned lazily, condition-triggered.
  std::mutex replan_mu_;
  std::condition_variable replan_cv_;
  bool replan_requested_ = false;
  bool replan_refresh_workload_ = false;
  bool replan_running_ = false;
  bool replan_shutdown_ = false;
  Status background_status_;
  std::atomic<bool> replan_cancel_{false};
  std::thread replan_thread_;
};

}  // namespace piggy
