// FeedService: the production-style facade over the whole piggybacking
// pipeline.
//
// Owns everything a serving deployment needs — the evolving social graph, the
// request schedule produced by a registry planner, the Prototype serving
// plane (partitioned view fleet + Algorithm-3 client + audit oracle), and the
// IncrementalMaintainer that keeps the schedule Theorem-1 valid under churn —
// behind an online API:
//
//   auto service = FeedService::Create(graph, options).MoveValueOrDie();
//   service->Share(user);                   // write path
//   auto feed = service->QueryStream(user); // read path (optionally audited)
//   service->Follow(alice, bob);            // churn; schedule repaired locally
//   service->Replan();                      // full re-optimization, any time
//   auto m = service->Metrics();            // cost + serving counters
//
// Lifecycle under churn: Follow/Unfollow apply the paper's Sec.-3.3 local
// rules immediately (the schedule never goes invalid), and the serving plane
// (whose per-user view lists are materialized from the schedule) is rebuilt
// lazily before the next Share/Query — stored events survive rebuilds via
// Prototype::RestoreEvents. Accumulated churn degrades schedule *quality*,
// never validity; FeedServiceOptions::replan picks the re-optimization
// policy: never (explicit Replan() only), every N churn ops (the blind
// counter), or drift-triggered — a rate-drift estimator watches served
// traffic and replans with re-estimated rates once the schedule's cost
// advantage erodes (see scenario/drift.h). Scenario code never reaches into
// Prototype internals.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/planner.h"
#include "core/schedule.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "scenario/drift.h"
#include "store/prototype.h"
#include "store/view_store.h"
#include "store/workload_driver.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief FeedService configuration.
struct FeedServiceOptions {
  /// Registry name of the planner computing (and re-computing) the schedule.
  std::string planner = "nosy";
  /// Thread budget / deadline / cancellation / progress for every plan run.
  PlanContext plan_context;
  /// Serving-plane sizing (fleet, feed size, view capacity, calibration).
  PrototypeOptions prototype;
  /// Workload synthesis knobs, used by the Create overload without an
  /// explicit workload.
  WorkloadOptions workload;
  /// Re-run the planner automatically after this many Follow/Unfollow
  /// operations since the last plan (0 = only explicit Replan calls).
  /// Legacy spelling of ReplanPolicy::EveryN — ignored when `replan` sets a
  /// non-default mode.
  size_t replan_after_churn = 0;
  /// When to re-run the planner: never (default), every N churn ops, or
  /// drift-triggered with rates re-estimated from observed traffic (see
  /// scenario/drift.h).
  ReplanPolicy replan;
  /// Audit every Nth query against the event-log oracle (0 = no audits).
  size_t audit_every = 0;
};

/// \brief A running feed-serving deployment.
class FeedService {
 public:
  /// Plans an initial schedule for `graph` with the configured planner and
  /// builds the serving plane. The graph is copied into an internal dynamic
  /// graph; the caller's instance is not referenced afterwards.
  static Result<std::unique_ptr<FeedService>> Create(
      const Graph& graph, const FeedServiceOptions& options);

  /// Same, with explicit per-user rates (must cover every node).
  static Result<std::unique_ptr<FeedService>> Create(
      const Graph& graph, Workload workload, const FeedServiceOptions& options);

  /// User u shares an event.
  Status Share(NodeId u);

  /// Assembles u's event stream; audited against the oracle every
  /// options.audit_every queries.
  Result<std::vector<EventTuple>> QueryStream(NodeId u);

  /// `follower` starts following `producer` (graph edge producer ->
  /// follower). The new edge is served directly at the cheaper side
  /// immediately; OK if already following.
  Status Follow(NodeId follower, NodeId producer);

  /// `follower` stops following `producer`. Hub covers that piggybacked on
  /// the removed edge are re-served directly; OK if not following.
  Status Unfollow(NodeId follower, NodeId producer);

  /// Re-runs the configured planner on the current graph and swaps the fresh
  /// schedule in (stored events are preserved).
  Status Replan();

  /// Replays a rate-weighted request mix through the service (the paper's
  /// measurement loop). Uses the service's own workload and audit oracle.
  Result<DriverReport> Drive(const DriverOptions& options);

  /// \brief Cost + serving counters, aggregated across serving-plane
  /// rebuilds.
  struct Metrics {
    std::string planner;          ///< registry name of the planning policy
    std::string replan_policy;    ///< "never" | "every-N" | "drift"
    double schedule_cost = 0;     ///< current schedule cost on current graph
    double hybrid_cost = 0;       ///< FF baseline cost on current graph
    size_t replans = 0;           ///< full planner runs (incl. the initial)
    size_t drift_replans = 0;     ///< replans triggered by the drift policy
    double drift_score = 0;       ///< last drift evaluation (0 = no drift)
    size_t repairs = 0;           ///< hub covers re-served due to unfollows
    size_t churn_ops = 0;         ///< Follow/Unfollow ops applied
    size_t serving_rebuilds = 0;  ///< lazy serving-plane reconstructions
    uint64_t shares = 0;
    uint64_t queries = 0;
    uint64_t audited_queries = 0;
    double messages_per_request = 0;
    double actual_throughput = 0;  ///< modeled req/s per client

    std::string ToString() const;
  };
  Metrics GetMetrics() const;

  /// Re-checks the Theorem-1 validity of the current schedule against the
  /// current graph (the maintainer guarantees it; tests assert it).
  Status Validate() const;

  const DynamicGraph& graph() const { return graph_; }
  const Workload& workload() const { return workload_; }
  const Schedule& schedule() const { return schedule_; }
  const FeedServiceOptions& options() const { return options_; }

  /// The serving plane, rebuilt first if churn left it stale. Exposed for
  /// measurement code (benches) that inspects per-server load.
  Result<Prototype*> ServingPlane();

 private:
  FeedService(const Graph& graph, Workload workload, FeedServiceOptions options);

  /// Rebuilds the Prototype around the current graph + schedule, replaying
  /// the stored event log. No-op when the plane is fresh.
  Status RefreshServing();

  /// Folds the live client counters into the accumulated totals (called
  /// before the serving plane is torn down, and by GetMetrics).
  void AccumulateClientMetrics();

  Status ApplyChurn(Status churn_result);

  /// Drift-mode bookkeeping for one served request, and — when an
  /// observation window completes — the drift evaluation: if the schedule
  /// lost more than the configured fraction of its cost advantage under the
  /// estimated rates and current topology, the workload is re-estimated from
  /// observations and the planner re-run. No-op outside ReplanMode::kDrift.
  Status ObserveRequest(bool is_share, NodeId u);

  FeedServiceOptions options_;
  DynamicGraph graph_;
  Workload workload_;
  Schedule schedule_;
  std::unique_ptr<IncrementalMaintainer> maintainer_;

  // Serving plane: a CSR snapshot of graph_ plus the prototype bound to it.
  // serving_dirty_ means graph_/schedule_ moved on and both must be rebuilt
  // before the next request.
  Graph snapshot_;
  std::unique_ptr<Prototype> prototype_;
  bool serving_dirty_ = false;

  // Drift-triggered replanning (ReplanMode::kDrift only).
  std::unique_ptr<RateDriftEstimator> estimator_;
  double plan_advantage_ = 1.0;  ///< hybrid/schedule cost ratio at plan time
  size_t edges_at_plan_ = 0;     ///< structural-drift denominator
  size_t drift_replans_ = 0;
  double last_drift_score_ = 0;

  // Counters that survive serving-plane rebuilds.
  ClientMetrics accumulated_;
  size_t replans_ = 0;
  size_t churn_ops_ = 0;
  size_t churn_since_plan_ = 0;
  size_t serving_rebuilds_ = 0;
  uint64_t audited_queries_ = 0;
  uint64_t queries_since_audit_ = 0;
};

}  // namespace piggy
