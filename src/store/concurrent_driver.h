// Multi-threaded serving driver: the measurement loop behind the concurrent
// serving bench (bench_fig11_serving), `piggy_tool --client-threads`, and the
// concurrent stress tests.
//
// N client threads hammer one serving endpoint with a rate-weighted
// share/query mix, back to back (a saturating load: each thread issues its
// next request the moment the previous one returns, so throughput measures
// the serving plane's capacity under lock contention and the latency
// percentiles its service time, including any time spent waiting behind a
// schedule swap). Every request is timed individually; the report carries
// aggregate ops/sec plus p50/p95/p99 per op kind — the tail is where a
// stop-the-world replan would show, and its absence is what the background
// replanner buys.
//
// The endpoint is abstracted as two thread-safe callables (share, query), so
// the same driver runs against a FeedService, a ClusterService, or any future
// serving surface; convenience overloads bind both. Determinism: thread t
// draws from Rng(seed, t), so a fixed (seed, threads) pair replays the same
// per-thread op streams — the interleaving, of course, is the machine's.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_service.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "store/feed_service.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Knobs of one concurrent drive.
struct ConcurrentDriverOptions {
  /// Client threads issuing requests concurrently.
  size_t client_threads = 1;
  /// Requests each thread issues (total ops = threads x this).
  size_t requests_per_thread = 1000;
  /// Seed of the per-thread op streams.
  uint64_t seed = 42;
  /// Optional histograms fed the exact same per-op samples the exact
  /// percentiles are computed from; lets a bench compare the bucketed
  /// estimate against the nearest-rank truth. Not owned; may be null.
  obs::Histogram* share_histogram = nullptr;
  obs::Histogram* query_histogram = nullptr;
};

/// \brief Latency percentiles of one op kind, in microseconds.
struct LatencyProfile {
  uint64_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// \brief Measurements from one concurrent drive.
struct ConcurrentDriveReport {
  size_t client_threads = 0;
  uint64_t shares = 0;
  uint64_t queries = 0;
  double wall_seconds = 0;
  double ops_per_second = 0;  ///< aggregate Share+QueryStream throughput
  LatencyProfile share_latency;
  LatencyProfile query_latency;

  std::string ToString() const;
};

/// \brief A serving endpoint as the driver sees it: one thread-safe write op
/// and one thread-safe read op.
struct ServingOps {
  std::function<Status(NodeId)> share;
  std::function<Status(NodeId)> query;
};

/// Drives `ops` from options.client_threads threads with a share/query mix
/// weighted by `workload` (same Bernoulli split as RunWorkloadDriver).
/// Returns the first op error, if any thread hit one.
Result<ConcurrentDriveReport> RunConcurrentDriver(
    const Workload& workload, const ServingOps& ops,
    const ConcurrentDriverOptions& options);

/// Same, against a FeedService (Share / QueryStream).
Result<ConcurrentDriveReport> RunConcurrentDriver(
    FeedService& service, const ConcurrentDriverOptions& options);

/// Same, against a sharded ClusterService.
Result<ConcurrentDriveReport> RunConcurrentDriver(
    ClusterService& cluster, const ConcurrentDriverOptions& options);

}  // namespace piggy
