#include "store/prototype.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace piggy {

Prototype::Prototype(const Graph& graph, const PrototypeOptions& options)
    : graph_(graph), options_(options) {}

Result<std::unique_ptr<Prototype>> Prototype::Create(const Graph& graph,
                                                     const Schedule& schedule,
                                                     const PrototypeOptions& options) {
  if (options.num_servers == 0) {
    return Status::InvalidArgument("need at least one server");
  }
  if (options.feed_size == 0) {
    return Status::InvalidArgument("feed_size must be positive");
  }
  auto proto = std::unique_ptr<Prototype>(new Prototype(graph, options));
  proto->partitioner_ = std::make_unique<HashPartitioner>(options.num_servers,
                                                          options.partition_salt);
  proto->servers_.reserve(options.num_servers);
  for (size_t s = 0; s < options.num_servers; ++s) {
    proto->servers_.emplace_back(static_cast<uint32_t>(s), options.view_capacity);
  }
  proto->client_ = std::make_unique<AppClient>(
      graph, schedule, proto->partitioner_.get(), &proto->servers_,
      options.feed_size, options.layout);
  return proto;
}

void Prototype::AppendAndDeliver(NodeId u, uint64_t event_id, uint64_t timestamp) {
  shares_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  EventTuple event{u, event_id, timestamp};
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    // Keep the log in (timestamp, event id) share order: concurrent cluster
    // writers can deliver externally sequenced events slightly late, so walk
    // back from the tail (one step at most in the common case).
    auto pos = event_log_.end();
    while (pos != event_log_.begin() && NewerThan(*(pos - 1), event)) --pos;
    event_log_.insert(pos, event);
    next_event_id_ = std::max(next_event_id_, event_id + 1);
    clock_ = std::max(clock_, timestamp + 1);
    log_version_.fetch_add(1, std::memory_order_release);
  }
  client_->ShareEvent(u, event.event_id, event.timestamp);
  shares_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

EventTuple Prototype::ShareEvent(NodeId u) {
  shares_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  EventTuple event;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    event = EventTuple{u, next_event_id_++, clock_++};
    event_log_.push_back(event);
    log_version_.fetch_add(1, std::memory_order_release);
  }
  client_->ShareEvent(u, event.event_id, event.timestamp);
  shares_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return event;
}

uint64_t Prototype::DrawShareSeq() {
  std::lock_guard<std::mutex> lock(log_mu_);
  const uint64_t seq = next_event_id_++;
  clock_ = std::max(clock_, seq + 1);
  return seq;
}

void Prototype::ShareEvent(NodeId u, uint64_t seq) {
  AppendAndDeliver(u, seq, seq);
}

std::vector<EventTuple> Prototype::QueryStream(NodeId u) {
  return client_->QueryStream(u);
}

Status Prototype::AuditStream(NodeId u, const std::vector<EventTuple>& stream,
                              const AuditToken& token) const {
  // Soundness: only events of followed producers (or u itself), newest-first.
  auto followees = graph_.InNeighbors(u);
  for (size_t i = 0; i < stream.size(); ++i) {
    const EventTuple& e = stream[i];
    bool allowed = e.producer == u ||
                   std::binary_search(followees.begin(), followees.end(), e.producer);
    if (!allowed) {
      return Status::Internal(StrFormat("stream of %u leaks producer %u", u,
                                        e.producer));
    }
    if (i > 0 && NewerThan(e, stream[i - 1])) {
      return Status::Internal(StrFormat("stream of %u not sorted at %zu", u, i));
    }
  }

  // Completeness is provable only when no share overlapped the query: the
  // token was quiescent, nothing is in flight now, and the log version did
  // not move in between. (Single-threaded drivers always satisfy this.)
  AuditToken now = BeginAudit();
  if (!token.quiescent || !now.quiescent || now.log_version != token.log_version) {
    return Status::OK();
  }
  if (TotalTrimmedEvents() > 0) return Status::OK();  // completeness not provable

  // Completeness (bounded staleness with Theta = 0 in the simulator): the
  // stream must be exactly the k newest oracle events.
  std::vector<EventTuple> log = EventLog();
  // The log copy sits outside the window `now` proved share-free: a share
  // landing between that check and the copy would put an event in the oracle
  // the stream never saw. Re-verify before comparing (a share starting after
  // this line cannot have touched the copy above).
  const AuditToken after = BeginAudit();
  if (!after.quiescent || after.log_version != token.log_version) {
    return Status::OK();
  }
  std::vector<EventTuple> oracle;
  for (const EventTuple& e : log) {
    if (e.producer == u ||
        std::binary_search(followees.begin(), followees.end(), e.producer)) {
      oracle.push_back(e);
    }
  }
  oracle = TopKNewest(std::move(oracle), options_.feed_size);
  if (oracle.size() != stream.size()) {
    return Status::Internal(StrFormat("stream of %u has %zu events, oracle %zu", u,
                                      stream.size(), oracle.size()));
  }
  for (size_t i = 0; i < oracle.size(); ++i) {
    if (!(oracle[i] == stream[i])) {
      return Status::Internal(
          StrFormat("stream of %u diverges from oracle at position %zu "
                    "(event %lu vs %lu)",
                    u, i, stream[i].event_id, oracle[i].event_id));
    }
  }
  return Status::OK();
}

double Prototype::ActualThroughput() const {
  double mpr = client_->metrics().MessagesPerRequest();
  return mpr > 0 ? options_.client_messages_per_second / mpr : 0.0;
}

std::vector<uint64_t> Prototype::PerServerQueryLoad() const {
  std::vector<uint64_t> load;
  load.reserve(servers_.size());
  for (const ViewStore& s : servers_) load.push_back(s.metrics().query_messages);
  return load;
}

std::vector<uint64_t> Prototype::PerServerUpdateLoad() const {
  std::vector<uint64_t> load;
  load.reserve(servers_.size());
  for (const ViewStore& s : servers_) load.push_back(s.metrics().update_messages);
  return load;
}

Status Prototype::RestoreEvents(const std::vector<EventTuple>& log) {
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    if (!event_log_.empty()) {
      return Status::FailedPrecondition(
          "RestoreEvents requires a fresh prototype (events already shared)");
    }
  }
  for (size_t i = 0; i < log.size(); ++i) {
    if (i > 0 && log[i].timestamp < log[i - 1].timestamp) {
      return Status::InvalidArgument("event log not in share (timestamp) order");
    }
    if (log[i].producer >= graph_.num_nodes()) {
      return Status::InvalidArgument("event log references unknown producer");
    }
  }
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    event_log_ = log;
    for (const EventTuple& e : log) {
      next_event_id_ = std::max(next_event_id_, e.event_id + 1);
      clock_ = std::max(clock_, e.timestamp + 1);
    }
    log_version_.fetch_add(1, std::memory_order_release);
  }
  for (const EventTuple& e : log) {
    client_->ShareEvent(e.producer, e.event_id, e.timestamp);
  }
  return Status::OK();
}

uint64_t Prototype::TotalTrimmedEvents() const {
  uint64_t total = 0;
  for (const ViewStore& s : servers_) total += s.metrics().trimmed_events;
  return total;
}

void Prototype::ResetMetrics() {
  client_->ResetMetrics();
  for (ViewStore& s : servers_) s.ResetMetrics();
}

}  // namespace piggy
