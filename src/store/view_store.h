// One data-store server holding materialized per-user views.
//
// Mirrors the paper's prototype (Sec. 4.3): memcached plus a thin server-side
// layer that aggregates and filters tuples on queries and trims views on
// insert. A view is a list of (producer, event id, timestamp) tuples — the
// event-stream *index*; rendering (texts, pictures) is out of scope exactly
// as in the paper.
//
// Thread safety: each server guards its views and counters with one internal
// mutex, so concurrent UpdateBatch / QueryBatch calls from many client
// threads are safe and contention is per-server (the fleet is the stripe
// set). Events may arrive slightly out of timestamp order under concurrency;
// UpdateBatch inserts in sorted position (near the tail in practice).

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/u64_containers.h"

namespace piggy {

/// \brief The 24-byte event tuple of the paper's prototype.
struct EventTuple {
  NodeId producer = 0;
  uint64_t event_id = 0;
  uint64_t timestamp = 0;

  bool operator==(const EventTuple&) const = default;
};

/// Orders events newest-first (timestamp desc, then event id desc).
inline bool NewerThan(const EventTuple& a, const EventTuple& b) {
  if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
  return a.event_id > b.event_id;
}

/// \brief Per-server counters (message = one batched client request).
struct ServerMetrics {
  uint64_t update_messages = 0;  ///< batched update requests received
  uint64_t query_messages = 0;   ///< batched query requests received
  uint64_t view_writes = 0;      ///< individual view insertions
  uint64_t view_reads = 0;       ///< individual views scanned by queries
  uint64_t trimmed_events = 0;   ///< events dropped by capacity trimming
};

/// \brief In-memory view server.
class ViewStore {
 public:
  /// `view_capacity` caps events retained per view (0 = unbounded).
  explicit ViewStore(uint32_t server_id, size_t view_capacity = 128)
      : server_id_(server_id),
        view_capacity_(view_capacity),
        mu_(std::make_unique<std::mutex>()) {}

  uint32_t server_id() const { return server_id_; }

  /// Applies one batched update message: inserts `event` into every view in
  /// `views` (all hosted here). Events usually arrive in nondecreasing
  /// timestamp order; concurrent clients may invert neighbours, so the
  /// insert walks back from the tail to the sorted position.
  void UpdateBatch(std::span<const NodeId> views, const EventTuple& event);

  /// Applies one batched query message: returns the `k` newest events across
  /// `views` whose producer appears in the sorted `interest` span. The
  /// interest filter is what keeps a pull from a hub's view from leaking
  /// events of producers the querying user does not follow.
  std::vector<EventTuple> QueryBatch(std::span<const NodeId> views,
                                     std::span<const NodeId> interest, size_t k);

  /// Unfiltered batched query: the `k` newest events across `views` with no
  /// interest membership test. Only correct when the caller proved every
  /// producer that can appear in these views is interesting (see AppClient's
  /// schedule-implied membership precompute); output is then bit-identical to
  /// the filtered overload without touching the interest set at all.
  std::vector<EventTuple> QueryBatch(std::span<const NodeId> views, size_t k);

  /// Direct read of a full view (tests / audits). Empty if absent.
  std::vector<EventTuple> ReadView(NodeId owner) const;

  size_t num_views() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return views_.size();
  }
  /// Snapshot of the counters (coherent: taken under the server mutex).
  ServerMetrics metrics() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return metrics_;
  }
  void ResetMetrics() {
    std::lock_guard<std::mutex> lock(*mu_);
    metrics_ = ServerMetrics{};
  }

 private:
  uint32_t server_id_;
  size_t view_capacity_;
  // One mutex per server: the fleet is the concurrency stripe set. Boxed so
  // ViewStore stays movable (the fleet lives in a std::vector).
  std::unique_ptr<std::mutex> mu_;
  // Views keyed by owner id; events stored oldest-first (append order).
  U64Map<std::vector<EventTuple>> views_;
  ServerMetrics metrics_;
};

/// Merges candidate lists and keeps the `k` newest (helper shared with the
/// client-side merge).
std::vector<EventTuple> TopKNewest(std::vector<EventTuple> events, size_t k);

}  // namespace piggy
