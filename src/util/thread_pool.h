// Fixed-size thread pool and a blocking ParallelFor helper.
//
// Used by the MapReduce substrate (src/mapreduce) and the PARALLELNOSY
// parallel executor. ParallelFor/ParallelForShards propagate the first
// exception thrown by a shard, after all shards have finished.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace piggy {

/// \brief A fixed-size worker pool executing posted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Posts a task; returns a future completed when the task finishes.
  std::future<void> Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void WaitIdle();

  /// Default pool size: hardware concurrency clamped to [1, 16].
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::packaged_task<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Runs fn(i) for i in [0, n) across the pool, in chunks; blocks until
/// all iterations complete. `fn` must be thread-safe across distinct i.
void ParallelFor(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn);

/// \brief Runs fn(shard, begin, end) for `shards` contiguous ranges covering
/// [0, n); blocks until done. Useful when per-shard state is needed.
void ParallelForShards(
    ThreadPool& pool, size_t n, size_t shards,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn);

}  // namespace piggy
