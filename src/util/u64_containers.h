// Open-addressing hash set / map specialized for dense uint64 keys.
//
// The scheduling algorithms index edges by a packed 64-bit key (src<<32|dst)
// and perform tens of millions of membership tests; std::unordered_set's
// node-based layout is a measurable bottleneck there. These containers use
// linear probing over a power-of-two table with tombstone-free deletion
// (backward-shift), splitmix64 key mixing, and a reserved empty sentinel.
//
// Restrictions: the key value UINT64_MAX is reserved and must not be inserted.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace piggy {

namespace internal {
constexpr uint64_t kEmptyKey = ~0ULL;

inline size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace internal

/// \brief Hash set of uint64 keys (UINT64_MAX reserved).
class U64Set {
 public:
  explicit U64Set(size_t expected = 0) { Rehash(internal::NextPow2(expected * 2 + 16)); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Current table size (power of two); grows at ~0.7 load.
  size_t capacity() const { return slots_.size(); }

  /// Inserts `key`; returns true if newly inserted.
  bool Insert(uint64_t key) {
    PIGGY_CHECK_NE(key, internal::kEmptyKey);
    size_t i = Probe(key);
    if (slots_[i] == key) return false;
    // Grow only for genuinely new keys: a duplicate insert near the load
    // threshold must not trigger a rehash.
    if ((size_ + 1) * 10 >= capacity() * 7) {
      Rehash(capacity() * 2);
      i = Probe(key);
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  /// True iff `key` is present.
  bool Contains(uint64_t key) const {
    return slots_[Probe(key)] == key;
  }

  /// Removes `key`; returns true if it was present. Uses backward-shift
  /// deletion so lookups never scan tombstones.
  bool Erase(uint64_t key) {
    size_t i = Probe(key);
    if (slots_[i] != key) return false;
    RemoveAt(i);
    --size_;
    return true;
  }

  void Clear() {
    std::fill(slots_.begin(), slots_.end(), internal::kEmptyKey);
    size_ = 0;
  }

  /// Calls fn(key) for every element (unspecified order).
  template <typename F>
  void ForEach(F fn) const {
    for (uint64_t k : slots_) {
      if (k != internal::kEmptyKey) fn(k);
    }
  }

  /// Copies elements into a vector (unspecified order).
  std::vector<uint64_t> ToVector() const {
    std::vector<uint64_t> out;
    out.reserve(size_);
    ForEach([&out](uint64_t k) { out.push_back(k); });
    return out;
  }

 private:
  size_t Mask() const { return slots_.size() - 1; }

  size_t Probe(uint64_t key) const {
    size_t i = Mix64(key) & Mask();
    while (slots_[i] != internal::kEmptyKey && slots_[i] != key) {
      i = (i + 1) & Mask();
    }
    return i;
  }

  void RemoveAt(size_t i) {
    slots_[i] = internal::kEmptyKey;
    size_t j = i;
    for (;;) {
      j = (j + 1) & Mask();
      if (slots_[j] == internal::kEmptyKey) return;
      size_t home = Mix64(slots_[j]) & Mask();
      // Shift back if the element's home position does not lie in (i, j].
      if (((j - home) & Mask()) >= ((j - i) & Mask())) {
        slots_[i] = slots_[j];
        slots_[j] = internal::kEmptyKey;
        i = j;
      }
    }
  }

  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(new_cap, internal::kEmptyKey);
    for (uint64_t k : old) {
      if (k != internal::kEmptyKey) slots_[Probe(k)] = k;
    }
  }

  std::vector<uint64_t> slots_;
  size_t size_ = 0;
};

/// \brief Hash map from uint64 keys (UINT64_MAX reserved) to values V.
template <typename V>
class U64Map {
 public:
  explicit U64Map(size_t expected = 0) {
    size_t cap = internal::NextPow2(expected * 2 + 16);
    keys_.assign(cap, internal::kEmptyKey);
    values_.resize(cap);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Current table size (power of two); grows at ~0.7 load.
  size_t capacity() const { return keys_.size(); }

  /// Inserts or overwrites; returns true if newly inserted.
  bool Put(uint64_t key, V value) {
    PIGGY_CHECK_NE(key, internal::kEmptyKey);
    size_t i = Probe(key);
    if (keys_[i] == key) {
      values_[i] = std::move(value);
      return false;
    }
    // Grow only for genuinely new keys: an overwrite near the load threshold
    // must not trigger a rehash.
    if ((size_ + 1) * 10 >= keys_.size() * 7) {
      Rehash(keys_.size() * 2);
      i = Probe(key);
    }
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
    return true;
  }

  /// Inserts only if absent (no overwrite); returns true if inserted.
  bool PutIfAbsent(uint64_t key, V value) {
    if (Contains(key)) return false;
    return Put(key, std::move(value));
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  const V* Find(uint64_t key) const {
    size_t i = Probe(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }
  V* Find(uint64_t key) {
    size_t i = Probe(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// Removes `key`; returns true if it was present.
  bool Erase(uint64_t key) {
    size_t i = Probe(key);
    if (keys_[i] != key) return false;
    RemoveAt(i);
    --size_;
    return true;
  }

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), internal::kEmptyKey);
    size_ = 0;
  }

  /// Calls fn(key, const V&) for every entry (unspecified order).
  template <typename F>
  void ForEach(F fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != internal::kEmptyKey) fn(keys_[i], values_[i]);
    }
  }

 private:
  size_t Mask() const { return keys_.size() - 1; }

  size_t Probe(uint64_t key) const {
    size_t i = Mix64(key) & Mask();
    while (keys_[i] != internal::kEmptyKey && keys_[i] != key) {
      i = (i + 1) & Mask();
    }
    return i;
  }

  void RemoveAt(size_t i) {
    keys_[i] = internal::kEmptyKey;
    size_t j = i;
    for (;;) {
      j = (j + 1) & Mask();
      if (keys_[j] == internal::kEmptyKey) return;
      size_t home = Mix64(keys_[j]) & Mask();
      if (((j - home) & Mask()) >= ((j - i) & Mask())) {
        keys_[i] = keys_[j];
        values_[i] = std::move(values_[j]);
        keys_[j] = internal::kEmptyKey;
        i = j;
      }
    }
  }

  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_cap, internal::kEmptyKey);
    values_.assign(new_cap, V());
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != internal::kEmptyKey) {
        size_t j = Probe(old_keys[i]);
        keys_[j] = old_keys[i];
        values_[j] = std::move(old_values[i]);
      }
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  size_t size_ = 0;
};

}  // namespace piggy
