// Wall-clock timing helper for benches and progress logging.

#pragma once

#include <chrono>

namespace piggy {

/// \brief Monotonic stopwatch started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace piggy
