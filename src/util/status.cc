#include "util/status.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "util/logging.h"

namespace piggy {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ ? rep_->msg : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

namespace internal {

void DieBecauseResultError(const Status& status) {
  PIGGY_LOG(Fatal) << "Result::ValueOrDie on error status: "
                   << status.ToString();
  std::abort();  // unreachable: Fatal aborts; satisfies [[noreturn]]
}

void DieBecauseResultOk() {
  PIGGY_LOG(Fatal) << "Result constructed from an OK Status";
  std::abort();  // unreachable: Fatal aborts; satisfies [[noreturn]]
}

}  // namespace internal
}  // namespace piggy
