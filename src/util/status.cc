#include "util/status.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

namespace piggy {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ ? rep_->msg : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

namespace internal {

void DieBecauseResultError(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieBecauseResultOk() {
  std::fprintf(stderr, "Result constructed from an OK Status\n");
  std::abort();
}

}  // namespace internal
}  // namespace piggy
