// Fault-injection registry for the durability layer.
//
// A FailPoint is a named site in the WAL/snapshot write path that a test can
// arm to fail in a controlled way. The production code calls
// `FailPointRegistry::Instance().Hit("wal.append")` before each write and
// interprets the returned action:
//
//   kOff            proceed normally (the fast path: one relaxed atomic load)
//   kError          return an IOError without writing anything
//   kCrashHard      simulate a process kill *before* the write: nothing is
//                   written, the registry enters the crashed state
//   kCrashTornWrite simulate a kill *mid*-write: the caller persists a
//                   partial prefix of the record, then the registry enters
//                   the crashed state
//
// The crashed state models "the process is dead": every subsequent Hit() on
// any point reports kCrashHard, so all later durability I/O fail-stops. The
// in-memory service keeps running (tests still talk to it to learn what was
// acked), but nothing after the crash point reaches disk — exactly the
// SIGKILL contract. Tests call ResetCrash()/ClearAll() before recovering.
//
// Arm(name, action, skip) lets the first `skip` hits pass before triggering,
// which is how the kill-and-recover test sweeps the crash site across every
// record boundary of a storm.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace piggy {

enum class FailPointAction : uint8_t {
  kOff = 0,
  kError,
  kCrashHard,
  kCrashTornWrite,
};

class FailPointRegistry {
 public:
  static FailPointRegistry& Instance();

  /// Arms `name` to return `action` after `skip` passing hits. Re-arming
  /// replaces any previous setting for the point.
  void Arm(const std::string& name, FailPointAction action, uint64_t skip = 0);

  /// Disarms a single point (the crashed flag is left untouched).
  void Disarm(const std::string& name);

  /// Disarms every point and clears the crashed flag.
  void ClearAll();

  /// Consults the point. Crash actions latch the crashed flag and disarm the
  /// point; once crashed, every point answers kCrashHard.
  FailPointAction Hit(const std::string& name);

  /// True once a crash action has fired (and until ResetCrash/ClearAll).
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  void ResetCrash() { crashed_.store(false, std::memory_order_release); }

  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

 private:
  FailPointRegistry() = default;

  struct Armed {
    FailPointAction action = FailPointAction::kOff;
    uint64_t skip = 0;  // hits remaining before the action triggers
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Armed> points_;
  std::atomic<int> armed_count_{0};
  std::atomic<bool> crashed_{false};
};

}  // namespace piggy
