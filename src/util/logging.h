// Minimal leveled logging plus CHECK macros.
//
// PIGGY_CHECK* document and enforce internal invariants; they abort on
// violation (programming error). Recoverable conditions use Status instead.

#pragma once

#include <sstream>
#include <string>

namespace piggy {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace piggy

#define PIGGY_LOG(level)                                                     \
  ::piggy::internal::LogMessage(::piggy::LogLevel::k##level, __FILE__, __LINE__)

#define PIGGY_CHECK(cond)                                               \
  if (!(cond))                                                          \
  PIGGY_LOG(Fatal) << "Check failed: " #cond " "

#define PIGGY_CHECK_OP(a, b, op) PIGGY_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define PIGGY_CHECK_EQ(a, b) PIGGY_CHECK_OP(a, b, ==)
#define PIGGY_CHECK_NE(a, b) PIGGY_CHECK_OP(a, b, !=)
#define PIGGY_CHECK_LT(a, b) PIGGY_CHECK_OP(a, b, <)
#define PIGGY_CHECK_LE(a, b) PIGGY_CHECK_OP(a, b, <=)
#define PIGGY_CHECK_GT(a, b) PIGGY_CHECK_OP(a, b, >)
#define PIGGY_CHECK_GE(a, b) PIGGY_CHECK_OP(a, b, >=)

#define PIGGY_CHECK_OK(expr)                           \
  do {                                                 \
    ::piggy::Status _st = (expr);                      \
    PIGGY_CHECK(_st.ok()) << _st.ToString();           \
  } while (0)
