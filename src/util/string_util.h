// Small string helpers used by I/O, logging and the bench harness.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace piggy {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a delimiter; consecutive delimiters produce empty fields unless
/// `skip_empty` is set.
std::vector<std::string> StrSplit(std::string_view s, char delim,
                                  bool skip_empty = false);

/// Joins elements with a separator.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithCommas(uint64_t n);

}  // namespace piggy
