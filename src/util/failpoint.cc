#include "util/failpoint.h"

namespace piggy {

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry registry;
  return registry;
}

void FailPointRegistry::Arm(const std::string& name, FailPointAction action,
                            uint64_t skip) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(name, Armed{action, skip});
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_release);
}

void FailPointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_release);
  }
}

void FailPointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_count_.store(0, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
}

FailPointAction FailPointRegistry::Hit(const std::string& name) {
  if (crashed_.load(std::memory_order_acquire)) {
    return FailPointAction::kCrashHard;
  }
  if (armed_count_.load(std::memory_order_acquire) == 0) {
    return FailPointAction::kOff;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return FailPointAction::kOff;
  if (it->second.skip > 0) {
    --it->second.skip;
    return FailPointAction::kOff;
  }
  FailPointAction action = it->second.action;
  if (action == FailPointAction::kCrashHard ||
      action == FailPointAction::kCrashTornWrite) {
    points_.erase(it);
    armed_count_.fetch_sub(1, std::memory_order_release);
    crashed_.store(true, std::memory_order_release);
  }
  return action;
}

}  // namespace piggy
