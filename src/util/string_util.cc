#include "util/string_util.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace piggy {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim, bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view field = s.substr(start, pos - start);
    if (!field.empty() || !skip_empty) out.emplace_back(field);
    start = pos + 1;
    if (pos == s.size()) break;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string WithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace piggy
