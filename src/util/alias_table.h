// Walker alias method for O(1) sampling from a discrete distribution.
//
// The prototype's workload driver draws millions of user ids weighted by
// production / consumption rates; the alias table makes each draw two table
// lookups regardless of population size.

#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace piggy {

/// \brief Samples indices i in [0, n) with probability weights[i] / sum.
class AliasTable {
 public:
  /// Builds the table from non-negative weights; at least one weight must be
  /// positive.
  explicit AliasTable(const std::vector<double>& weights) {
    const size_t n = weights.size();
    PIGGY_CHECK_GT(n, 0u);
    double total = 0;
    for (double w : weights) {
      PIGGY_CHECK_GE(w, 0.0);
      total += w;
    }
    PIGGY_CHECK_GT(total, 0.0);
    total_ = total;

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);
    std::vector<double> scaled(n);
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      uint32_t s = small.back();
      small.pop_back();
      uint32_t l = large.back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Leftovers are 1.0 up to floating-point error.
    for (uint32_t i : large) prob_[i] = 1.0;
    for (uint32_t i : small) prob_[i] = 1.0;
  }

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Sum of the input weights.
  double total_weight() const { return total_; }

  /// Draws one index.
  uint32_t Sample(Rng& rng) const {
    uint32_t i = static_cast<uint32_t>(rng.Uniform(prob_.size()));
    return rng.UniformDouble() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  double total_ = 0;
};

}  // namespace piggy
