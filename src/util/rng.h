// Deterministic pseudo-random number generation.
//
// All randomized components of the library (generators, samplers, workload
// synthesis, the prototype's request driver) take an explicit Rng so that
// every experiment is reproducible from a seed. The engine is xoshiro256**,
// seeded via splitmix64, both public-domain algorithms by Blackman & Vigna.

#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace piggy {

/// splitmix64 single step; also usable as a cheap 64-bit mix/hash function.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value (for hashing node/edge ids).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

/// \brief Deterministic xoshiro256** generator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from a single seed via splitmix64.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return std::numeric_limits<uint64_t>::max(); }

  /// Next raw 64-bit value.
  uint64_t operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    PIGGY_CHECK_GT(bound, 0u);
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PIGGY_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly samples one element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    PIGGY_CHECK(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Derives an independent child generator (for per-thread determinism).
  Rng Fork() { return Rng((*this)()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace piggy
