// Status / Result error-handling primitives.
//
// The library follows the Arrow / RocksDB convention: fallible operations on
// library paths return a Status (or a Result<T> carrying a value), never throw.
// Programming errors (violated preconditions that indicate a bug, not bad
// input) abort via PIGGY_CHECK in logging.h.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace piggy {

/// Machine-readable category of a Status.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kFailedPrecondition,
  kNotImplemented,
  kInternal,
  kUnavailable,
};

/// \brief Returns a stable human-readable name for a StatusCode
/// (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// The OK state is represented with no heap allocation; error states carry a
/// heap-allocated message so that Status stays pointer-sized and cheap to
/// return by value.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// StatusCode::kOk (use the default constructor for success).
  Status(StatusCode code, std::string msg);

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk for a successful status.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for a successful status.
  const std::string& message() const;

  /// True iff the status has the given error code.
  bool Is(StatusCode code) const { return this->code() == code; }
  bool IsInvalidArgument() const { return Is(StatusCode::kInvalidArgument); }
  bool IsNotFound() const { return Is(StatusCode::kNotFound); }
  bool IsAlreadyExists() const { return Is(StatusCode::kAlreadyExists); }
  bool IsOutOfRange() const { return Is(StatusCode::kOutOfRange); }
  bool IsIOError() const { return Is(StatusCode::kIOError); }
  bool IsFailedPrecondition() const { return Is(StatusCode::kFailedPrecondition); }
  bool IsNotImplemented() const { return Is(StatusCode::kNotImplemented); }
  bool IsInternal() const { return Is(StatusCode::kInternal); }
  bool IsUnavailable() const { return Is(StatusCode::kUnavailable); }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  // nullptr == OK. shared_ptr keeps Status copyable without duplicating the
  // message; error paths are cold so the control block cost is irrelevant.
  std::shared_ptr<const Rep> rep_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Access to the value when holding an error is a
/// programming bug and aborts.
template <typename T>
class Result {
 public:
  using ValueType = T;

  /// Implicit conversion from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit conversion from an error status. `status.ok()` must be false.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    AbortIfOk();
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  /// Borrowing accessors; require ok().
  const T& ValueOrDie() const& {
    AbortIfError();
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    AbortIfError();
    return std::get<T>(v_);
  }
  /// Moves the value out; requires ok().
  T MoveValueOrDie() && {
    AbortIfError();
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void AbortIfError() const;
  void AbortIfOk() const;

  std::variant<Status, T> v_;
};

namespace internal {
[[noreturn]] void DieBecauseResultError(const Status& status);
[[noreturn]] void DieBecauseResultOk();
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieBecauseResultError(std::get<Status>(v_));
}

template <typename T>
void Result<T>::AbortIfOk() const {
  if (ok()) internal::DieBecauseResultOk();
}

/// Propagates a non-OK Status to the caller.
#define PIGGY_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::piggy::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define PIGGY_CONCAT_IMPL(a, b) a##b
#define PIGGY_CONCAT(a, b) PIGGY_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define PIGGY_ASSIGN_OR_RETURN(lhs, expr)                            \
  auto PIGGY_CONCAT(_piggy_res_, __LINE__) = (expr);                 \
  if (!PIGGY_CONCAT(_piggy_res_, __LINE__).ok())                     \
    return PIGGY_CONCAT(_piggy_res_, __LINE__).status();             \
  lhs = std::move(PIGGY_CONCAT(_piggy_res_, __LINE__)).MoveValueOrDie()

}  // namespace piggy
