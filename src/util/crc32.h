// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used by the durability layer to frame WAL records and to seal snapshots:
// a checksum mismatch is how recovery tells a torn or bit-rotted tail from a
// valid record, so this must match the ubiquitous zlib/PNG/ethernet CRC32
// (initial value and final XOR of 0xFFFFFFFF) — any external tool can verify
// the files.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace piggy {

namespace internal {

inline constexpr std::array<uint32_t, 256> kCrc32Table = [] {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}();

}  // namespace internal

/// Extends a running CRC32 over `len` bytes. Start (and finish) with the
/// default `crc` for a whole-buffer checksum; feed the previous return value
/// to checksum incrementally.
inline uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace piggy
