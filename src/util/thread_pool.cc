#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace piggy {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PIGGY_CHECK(!stop_) << "Submit after shutdown";
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::DefaultThreads() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return std::min<size_t>(16, std::max<size_t>(1, hw));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn) {
  ParallelForShards(pool, n, pool.num_threads() * 4,
                    [&fn](size_t, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) fn(i);
                    });
}

void ParallelForShards(
    ThreadPool& pool, size_t n, size_t shards,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  shards = std::max<size_t>(1, std::min(shards, n));
  const size_t chunk = (n + shards - 1) / shards;
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(pool.Submit([s, begin, end, &fn] { fn(s, begin, end); }));
  }
  // Drain every future before propagating: rethrowing on the first failed
  // shard would unwind the caller's frame while later shards still hold a
  // reference to `fn` (packaged_task futures do not block on destruction).
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace piggy
