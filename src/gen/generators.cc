#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "util/string_util.h"
#include "util/u64_containers.h"

namespace piggy {

namespace {

// Edge accumulator with O(1) membership used during generation, where nodes
// appear in id order and we need follower/followee lists for preferential
// attachment and triadic closure.
struct GenState {
  explicit GenState(size_t n) : followees(n), followers(n) {}

  // followees[b] = producers b subscribes to (edges a -> b).
  // followers[a] = consumers of a (same edges, other side).
  std::vector<std::vector<NodeId>> followees;
  std::vector<std::vector<NodeId>> followers;
  // Flat list of edge endpoints weighted by follower count: sampling a
  // uniform element of `attachment` picks a node proportionally to
  // (followers + 1) because each node is appended once on creation and once
  // per follower gained.
  std::vector<NodeId> attachment;
  U64Set edges;

  bool AddFollow(NodeId followee, NodeId follower) {
    if (followee == follower) return false;
    if (!edges.Insert(EdgeKey(followee, follower))) return false;
    followees[follower].push_back(followee);
    followers[followee].push_back(follower);
    attachment.push_back(followee);
    return true;
  }
};

}  // namespace

Result<Graph> GenerateSocialNetwork(const SocialNetworkOptions& options,
                                    uint64_t seed) {
  const size_t n = options.num_nodes;
  const size_t seeds = std::max<size_t>(2, std::min(options.seed_nodes, n));
  if (n < 2) return Status::InvalidArgument("need at least 2 nodes");
  if (options.edges_per_node < 1.0) {
    return Status::InvalidArgument("edges_per_node must be >= 1");
  }
  if (options.triadic_closure < 0 || options.triadic_closure > 1 ||
      options.reciprocation < 0 || options.reciprocation > 1) {
    return Status::InvalidArgument("probabilities must lie in [0, 1]");
  }

  Rng rng(seed);
  GenState state(n);

  // Seed clique: mutual follows among the first `seeds` nodes.
  for (NodeId a = 0; a < seeds; ++a) {
    for (NodeId b = 0; b < seeds; ++b) {
      if (a != b) state.AddFollow(a, b);
    }
  }
  // Register seed nodes once each so they are sampleable even without
  // followers.
  for (NodeId a = 0; a < seeds; ++a) state.attachment.push_back(a);

  for (NodeId b = static_cast<NodeId>(seeds); b < n; ++b) {
    state.attachment.push_back(b);  // base weight for the new node itself
    // Number of follows this node creates: 1 + Binomial-ish jitter around
    // edges_per_node, implemented as floor + Bernoulli(frac).
    double target = options.edges_per_node;
    size_t follows = static_cast<size_t>(target);
    if (rng.Bernoulli(target - std::floor(target))) ++follows;
    follows = std::max<size_t>(1, follows);

    // New users join through one friend and then discover that friend's
    // network: the first follow is the preferential-attachment "anchor", and
    // each triadic closure follows one of the anchor's followees c. That
    // wires c -> anchor, anchor -> b, c -> b — so the anchor's view is a hub
    // that can serve every closure edge of b with a single pull, which is
    // exactly the concentration real social graphs show and piggybacking
    // exploits.
    NodeId anchor = b;  // set by the first successful follow

    for (size_t f = 0; f < follows; ++f) {
      NodeId followee = b;
      bool via_triangle =
          anchor != b && rng.Bernoulli(options.triadic_closure);
      if (via_triangle) {
        // Pick an unfollowed followee of the anchor; retry a few times since
        // popular candidates are often already followed.
        const auto& theirs = state.followees[anchor];
        for (int attempt = 0; attempt < 6 && followee == b; ++attempt) {
          if (theirs.empty()) break;
          NodeId c = theirs[rng.Uniform(theirs.size())];
          if (c != b && !state.edges.Contains(EdgeKey(c, b))) followee = c;
        }
      }
      if (followee == b) {
        // Preferential attachment by follower count.
        followee = state.attachment[rng.Uniform(state.attachment.size())];
      }
      // A few retries avoid degenerate duplicates without biasing much.
      for (int attempt = 0; attempt < 4 && !state.AddFollow(followee, b);
           ++attempt) {
        followee = state.attachment[rng.Uniform(state.attachment.size())];
      }
      if (anchor == b && !state.followees[b].empty()) {
        anchor = state.followees[b].front();
      }
      if (rng.Bernoulli(options.reciprocation)) state.AddFollow(b, followee);
    }
  }

  GraphBuilder builder(n);
  builder.EnsureNodes(n);
  state.edges.ForEach([&builder](uint64_t key) {
    Edge e = EdgeFromKey(key);
    builder.AddEdge(e.src, e.dst);
  });
  return std::move(builder).Build();
}

Result<Graph> GenerateErdosRenyi(size_t num_nodes, size_t num_edges, uint64_t seed) {
  if (num_nodes < 2) return Status::InvalidArgument("need at least 2 nodes");
  const size_t max_edges = num_nodes * (num_nodes - 1);
  if (num_edges > max_edges) {
    return Status::InvalidArgument(
        StrFormat("num_edges %zu exceeds max %zu", num_edges, max_edges));
  }
  Rng rng(seed);
  U64Set edges(num_edges);
  while (edges.size() < num_edges) {
    NodeId u = static_cast<NodeId>(rng.Uniform(num_nodes));
    NodeId v = static_cast<NodeId>(rng.Uniform(num_nodes));
    if (u != v) edges.Insert(EdgeKey(u, v));
  }
  GraphBuilder builder(num_nodes);
  builder.EnsureNodes(num_nodes);
  edges.ForEach([&builder](uint64_t key) {
    Edge e = EdgeFromKey(key);
    builder.AddEdge(e.src, e.dst);
  });
  return std::move(builder).Build();
}

Result<Graph> GenerateSmallWorld(size_t num_nodes, size_t k, double rewire,
                                 uint64_t seed) {
  if (num_nodes < 3) return Status::InvalidArgument("need at least 3 nodes");
  if (k == 0 || k >= num_nodes) return Status::InvalidArgument("invalid k");
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.EnsureNodes(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (size_t j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      if (rng.Bernoulli(rewire)) {
        v = static_cast<NodeId>(rng.Uniform(num_nodes));
        if (v == u) v = static_cast<NodeId>((u + 1) % num_nodes);
      }
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateComplete(size_t num_nodes) {
  if (num_nodes < 2) return Status::InvalidArgument("need at least 2 nodes");
  GraphBuilder builder(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateStar(size_t num_nodes, NodeId center) {
  if (num_nodes < 2) return Status::InvalidArgument("need at least 2 nodes");
  if (center >= num_nodes) return Status::InvalidArgument("center out of range");
  GraphBuilder builder(num_nodes);
  builder.EnsureNodes(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (v != center) builder.AddEdge(center, v);
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateCycle(size_t num_nodes) {
  if (num_nodes < 2) return Status::InvalidArgument("need at least 2 nodes");
  GraphBuilder builder(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    builder.AddEdge(u, static_cast<NodeId>((u + 1) % num_nodes));
  }
  return std::move(builder).Build();
}

Result<Graph> GenerateBipartite(size_t producers, size_t consumers) {
  if (producers == 0 || consumers == 0) {
    return Status::InvalidArgument("both sides must be non-empty");
  }
  GraphBuilder builder(producers + consumers);
  for (NodeId p = 0; p < producers; ++p) {
    for (size_t c = 0; c < consumers; ++c) {
      builder.AddEdge(p, static_cast<NodeId>(producers + c));
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GeneratePlantedPartition(size_t num_communities,
                                       size_t nodes_per_community, double p_intra,
                                       double p_out, uint64_t seed) {
  if (num_communities == 0 || nodes_per_community == 0) {
    return Status::InvalidArgument("need at least one non-empty community");
  }
  if (p_intra < 0 || p_intra > 1 || p_out < 0 || p_out > 1) {
    return Status::InvalidArgument("edge probabilities must be in [0, 1]");
  }
  const size_t n = num_communities * nodes_per_community;
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.EnsureNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const bool same_block = u % num_communities == v % num_communities;
      if (rng.Bernoulli(same_block ? p_intra : p_out)) builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

}  // namespace piggy
