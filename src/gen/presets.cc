#include "gen/presets.h"

#include <cstdint>

namespace piggy {

SocialNetworkOptions FlickrLikeOptions(const PresetScale& scale) {
  SocialNetworkOptions options;
  options.num_nodes = scale.num_nodes;
  options.edges_per_node = 11.0;  // ~29 avg degree after reciprocation
  options.triadic_closure = 0.65;
  options.reciprocation = 0.60;
  return options;
}

SocialNetworkOptions TwitterLikeOptions(const PresetScale& scale) {
  SocialNetworkOptions options;
  options.num_nodes = scale.num_nodes;
  options.edges_per_node = 16.0;
  options.triadic_closure = 0.55;
  options.reciprocation = 0.20;
  return options;
}

Result<Graph> MakeFlickrLike(size_t num_nodes, uint64_t seed) {
  return GenerateSocialNetwork(FlickrLikeOptions({num_nodes}), seed);
}

Result<Graph> MakeTwitterLike(size_t num_nodes, uint64_t seed) {
  return GenerateSocialNetwork(TwitterLikeOptions({num_nodes}), seed);
}

}  // namespace piggy
