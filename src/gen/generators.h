// Synthetic graph generators.
//
// The paper evaluates on the full Twitter (2009) and Flickr (2008) crawls,
// which are not available offline. Social piggybacking's gains hinge on two
// structural properties the paper calls out explicitly: heavy-tailed degree
// distributions ("presence of many hubs") and a high clustering coefficient
// (many x->w->y wedges closed by a cross edge x->y). The SocialNetwork
// generator reproduces both: directed preferential attachment produces hubs,
// triadic closure ("follow your followee's followees") closes exactly the
// hub triangles piggybacking exploits, and a reciprocation probability models
// mutual-follow edges (high on Flickr, lower on Twitter).
//
// Simpler families (Erdos-Renyi, ring lattice, stars, bipartite) are provided
// as controls and unit-test fixtures.

#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace piggy {

/// \brief Parameters of the social-network generator.
struct SocialNetworkOptions {
  size_t num_nodes = 10000;
  /// Average number of follow edges created per arriving node (before
  /// reciprocation). The final average degree is roughly
  /// edges_per_node * (1 + reciprocation).
  double edges_per_node = 10.0;
  /// Probability that a new follow closes a triangle (follow a followee of an
  /// existing followee) instead of preferential attachment.
  double triadic_closure = 0.5;
  /// Probability that a follow is reciprocated immediately.
  double reciprocation = 0.3;
  /// Size of the seed clique that bootstraps preferential attachment.
  size_t seed_nodes = 5;
};

/// Generates a directed social graph per SocialNetworkOptions. Deterministic
/// given (options, seed).
Result<Graph> GenerateSocialNetwork(const SocialNetworkOptions& options,
                                    uint64_t seed);

/// G(n, m): `num_edges` distinct directed edges placed uniformly at random.
Result<Graph> GenerateErdosRenyi(size_t num_nodes, size_t num_edges, uint64_t seed);

/// Directed ring lattice: each node follows its `k` clockwise successors,
/// each follow rewired to a uniform node with probability `rewire`
/// (Watts-Strogatz style small world).
Result<Graph> GenerateSmallWorld(size_t num_nodes, size_t k, double rewire,
                                 uint64_t seed);

/// Complete digraph on n nodes (both directions of every pair).
Result<Graph> GenerateComplete(size_t num_nodes);

/// Star: `center` broadcasts to all others (center -> i for all i != center).
Result<Graph> GenerateStar(size_t num_nodes, NodeId center = 0);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
Result<Graph> GenerateCycle(size_t num_nodes);

/// Bipartite producers -> consumers: every one of the first `producers` nodes
/// has an edge to every one of the following `consumers` nodes.
Result<Graph> GenerateBipartite(size_t producers, size_t consumers);

/// Planted partition (stochastic block model): `num_communities` blocks of
/// `nodes_per_community` nodes each; a directed edge exists with probability
/// `p_intra` inside a block and `p_out` across blocks (p_out << p_intra gives
/// the community structure that graph-aware placement exploits). Node ids are
/// interleaved across blocks (node i belongs to block i % num_communities) so
/// contiguous-range placements cannot cheat.
Result<Graph> GeneratePlantedPartition(size_t num_communities,
                                       size_t nodes_per_community, double p_intra,
                                       double p_out, uint64_t seed);

}  // namespace piggy
