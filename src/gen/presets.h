// Named dataset presets standing in for the paper's evaluation graphs.
//
// The real datasets: flickr (Apr 2008): 2,409,730 nodes / 71,345,981 edges
// (avg degree ~29.6, high reciprocity); twitter (Aug 2009, Cha et al.):
// 82,949,778 nodes / 1,423,194,279 edges (avg degree ~17.2, but far heavier
// tail and denser two-hop neighborhoods — the paper calls twitter "denser"
// in the sense that matters for hubs). The presets keep those regimes at a
// configurable node scale.

#pragma once

#include <cstdint>

#include "gen/generators.h"

namespace piggy {

/// Scales for presets; nodes for the default benches are laptop-sized.
struct PresetScale {
  size_t num_nodes = 20000;
};

/// Flickr-like: moderate average degree, strong reciprocity, strong triadic
/// closure (contact links are largely mutual).
SocialNetworkOptions FlickrLikeOptions(const PresetScale& scale = {});

/// Twitter-like: heavier tail (more attachment, less closure), low
/// reciprocity, higher average degree.
SocialNetworkOptions TwitterLikeOptions(const PresetScale& scale = {});

/// Generates the preset graphs (deterministic per seed).
Result<Graph> MakeFlickrLike(size_t num_nodes, uint64_t seed);
Result<Graph> MakeTwitterLike(size_t num_nodes, uint64_t seed);

}  // namespace piggy
