// Workload model: per-user production and consumption rates.
//
// Following the paper (Sec. 4.1), rates are synthesized from the graph
// structure per Huberman et al.'s observation: users with many followers
// produce more; users following many others consume more. Production is
// proportional to log(1 + followers) and consumption to log(1 + followees),
// scaled so that mean(consumption) / mean(production) equals the configured
// read/write ratio (the paper's reference value is 5; Sec. 4.4 sweeps it up
// to 100).

#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace piggy {

/// \brief Per-user request rates.
struct Workload {
  std::vector<double> production;   ///< rp(u): event shares per unit time
  std::vector<double> consumption;  ///< rc(u): feed queries per unit time

  size_t num_users() const { return production.size(); }
  double rp(NodeId u) const { return production[u]; }
  double rc(NodeId u) const { return consumption[u]; }

  /// Sum of production rates.
  double TotalProduction() const;
  /// Sum of consumption rates.
  double TotalConsumption() const;
  /// mean(consumption) / mean(production).
  double ReadWriteRatio() const;
};

/// \brief Knobs of the synthetic workload.
struct WorkloadOptions {
  /// Target mean(consumption) / mean(production). Paper reference: 5.
  double read_write_ratio = 5.0;
  /// Mean production rate after scaling (sets the time unit).
  double mean_production = 1.0;
  /// Additive floor applied to both raw rates, for graphs with isolated
  /// nodes. Keep 0 to match the paper (edge endpoints always have positive
  /// degree in the relevant direction).
  double min_rate = 0.0;
};

/// Synthesizes a workload from graph structure. Deterministic (no RNG).
Result<Workload> GenerateWorkload(const Graph& g, const WorkloadOptions& options);

/// Uniform workload (all users share rate rp, query at rate rc); used in
/// tests where hand-computed costs are wanted.
Workload UniformWorkload(size_t num_users, double rp, double rc);

}  // namespace piggy
