#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace piggy {

double Workload::TotalProduction() const {
  return std::accumulate(production.begin(), production.end(), 0.0);
}

double Workload::TotalConsumption() const {
  return std::accumulate(consumption.begin(), consumption.end(), 0.0);
}

double Workload::ReadWriteRatio() const {
  double p = TotalProduction();
  return p > 0 ? TotalConsumption() / p : 0.0;
}

Result<Workload> GenerateWorkload(const Graph& g, const WorkloadOptions& options) {
  if (options.read_write_ratio <= 0) {
    return Status::InvalidArgument("read_write_ratio must be positive");
  }
  if (options.mean_production <= 0) {
    return Status::InvalidArgument("mean_production must be positive");
  }
  const size_t n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");

  Workload w;
  w.production.resize(n);
  w.consumption.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    // Followers of u = consumers of u = out-neighbors under the paper's edge
    // orientation (u -> v means v subscribes to u).
    w.production[u] =
        std::log1p(static_cast<double>(g.OutDegree(u))) + options.min_rate;
    w.consumption[u] =
        std::log1p(static_cast<double>(g.InDegree(u))) + options.min_rate;
  }

  double sum_p = w.TotalProduction();
  double sum_c = w.TotalConsumption();
  if (sum_p <= 0 || sum_c <= 0) {
    return Status::InvalidArgument(
        "graph has no edges; cannot scale rates (set min_rate > 0)");
  }
  const double p_scale = options.mean_production * static_cast<double>(n) / sum_p;
  const double c_scale =
      options.read_write_ratio * options.mean_production * static_cast<double>(n) /
      sum_c;
  for (NodeId u = 0; u < n; ++u) {
    w.production[u] *= p_scale;
    w.consumption[u] *= c_scale;
  }
  return w;
}

Workload UniformWorkload(size_t num_users, double rp, double rc) {
  Workload w;
  w.production.assign(num_users, rp);
  w.consumption.assign(num_users, rc);
  return w;
}

}  // namespace piggy
