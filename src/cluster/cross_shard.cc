#include "cluster/cross_shard.h"

#include <algorithm>

#include "util/logging.h"

namespace piggy {

namespace {

// Appends to the vector stored under `key`, creating it on first use.
template <typename V>
std::vector<V>& GetOrCreate(U64Map<std::vector<V>>& map, uint64_t key) {
  std::vector<V>* v = map.Find(key);
  if (v != nullptr) return *v;
  map.Put(key, {});
  return *map.Find(key);
}

// Removes one occurrence of `value`, erasing the map entry once empty.
template <typename V>
void EraseValue(U64Map<std::vector<V>>& map, uint64_t key, V value) {
  std::vector<V>* v = map.Find(key);
  PIGGY_CHECK(v != nullptr);
  auto it = std::find(v->begin(), v->end(), value);
  PIGGY_CHECK(it != v->end());
  v->erase(it);
  if (v->empty()) map.Erase(key);
}

void SortedInsert(std::vector<uint32_t>& v, uint32_t x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

}  // namespace

CrossShardIndex::CrossShardIndex(size_t num_shards, size_t feed_size)
    : num_shards_(num_shards),
      feed_size_(feed_size),
      replicas_per_shard_(num_shards, 0),
      per_shard_update_messages_(num_shards),
      per_shard_query_messages_(num_shards) {
  PIGGY_CHECK_GT(num_shards, 0u);
  PIGGY_CHECK_GT(feed_size, 0u);
}

std::optional<CrossEdgeMode> CrossShardIndex::ModeOf(NodeId producer,
                                                     NodeId consumer) const {
  const EdgeRec* rec = edges_.Find(EdgeKey(producer, consumer));
  return rec ? std::optional<CrossEdgeMode>(rec->mode) : std::nullopt;
}

bool CrossShardIndex::AddEdge(NodeId producer, uint32_t producer_shard,
                              NodeId consumer, uint32_t consumer_shard,
                              CrossEdgeMode mode,
                              std::span<const uint64_t> producer_history) {
  PIGGY_CHECK_LT(producer_shard, num_shards_);
  PIGGY_CHECK_LT(consumer_shard, num_shards_);
  PIGGY_CHECK_NE(producer_shard, consumer_shard);
  if (!edges_.PutIfAbsent(EdgeKey(producer, consumer),
                          EdgeRec{mode, producer_shard, consumer_shard})) {
    return false;
  }
  if (mode == CrossEdgeMode::kPush) {
    const uint64_t target = EdgeKey(producer, consumer_shard);
    if (uint32_t* count = push_target_count_.Find(target)) {
      ++*count;  // shard already replicates the producer: nothing to move
    } else {
      push_target_count_.Put(target, 1);
      SortedInsert(GetOrCreate(push_shards_, producer), consumer_shard);
      // Materialize the replica: backfill the producer's newest events so
      // pre-follow shares appear in the consumer's feed (one state-transfer
      // message, like any batched update).
      const size_t keep = std::min(producer_history.size(), feed_size_);
      std::vector<uint64_t> seqs(producer_history.end() - keep,
                                 producer_history.end());
      replicas_.Put(EdgeKey(consumer_shard, producer), std::move(seqs));
      ++replica_count_;
      ++replicas_per_shard_[consumer_shard];
      update_messages_.fetch_add(1, std::memory_order_relaxed);
      per_shard_update_messages_[consumer_shard].fetch_add(
          1, std::memory_order_relaxed);
      replica_backfills_.fetch_add(1, std::memory_order_relaxed);
    }
    GetOrCreate(push_producers_, consumer).push_back(producer);
  } else {
    const uint64_t source = EdgeKey(consumer, producer_shard);
    if (uint32_t* count = pull_source_count_.Find(source)) {
      ++*count;
    } else {
      pull_source_count_.Put(source, 1);
      SortedInsert(GetOrCreate(pull_shards_, consumer), producer_shard);
    }
    GetOrCreate(pull_producers_, EdgeKey(consumer, producer_shard))
        .push_back(producer);
  }
  return true;
}

bool CrossShardIndex::RemoveEdge(NodeId producer, NodeId consumer) {
  const EdgeRec* found = edges_.Find(EdgeKey(producer, consumer));
  if (found == nullptr) return false;
  const EdgeRec rec = *found;
  edges_.Erase(EdgeKey(producer, consumer));
  if (rec.mode == CrossEdgeMode::kPush) {
    const uint64_t target = EdgeKey(producer, rec.consumer_shard);
    uint32_t* count = push_target_count_.Find(target);
    PIGGY_CHECK(count != nullptr);
    if (--*count == 0) {
      push_target_count_.Erase(target);
      EraseValue(push_shards_, producer, rec.consumer_shard);
      replicas_.Erase(EdgeKey(rec.consumer_shard, producer));
      --replica_count_;
      --replicas_per_shard_[rec.consumer_shard];
    }
    EraseValue(push_producers_, consumer, producer);
  } else {
    const uint64_t source = EdgeKey(consumer, rec.producer_shard);
    uint32_t* count = pull_source_count_.Find(source);
    PIGGY_CHECK(count != nullptr);
    if (--*count == 0) {
      pull_source_count_.Erase(source);
      EraseValue(pull_shards_, consumer, rec.producer_shard);
    }
    EraseValue(pull_producers_, EdgeKey(consumer, rec.producer_shard), producer);
  }
  return true;
}

size_t CrossShardIndex::Publish(NodeId producer, uint64_t seq) {
  const std::vector<uint32_t>* shards = push_shards_.Find(producer);
  if (shards == nullptr) return 0;
  for (uint32_t shard : *shards) {
    std::vector<uint64_t>* replica = replicas_.Find(EdgeKey(shard, producer));
    PIGGY_CHECK(replica != nullptr);
    // Sorted from the tail: a thread that drew an earlier sequence number but
    // reached the stripe lock later still lands in order (O(1) in the common
    // in-order case).
    auto pos = replica->end();
    while (pos != replica->begin() && *(pos - 1) > seq) --pos;
    replica->insert(pos, seq);
    if (replica->size() > feed_size_) replica->erase(replica->begin());
    per_shard_update_messages_[shard].fetch_add(1, std::memory_order_relaxed);
  }
  update_messages_.fetch_add(shards->size(), std::memory_order_relaxed);
  return shards->size();
}

std::span<const NodeId> CrossShardIndex::PushProducers(NodeId consumer) const {
  const std::vector<NodeId>* v = push_producers_.Find(consumer);
  return v ? std::span<const NodeId>(*v) : std::span<const NodeId>();
}

std::span<const uint32_t> CrossShardIndex::PullShards(NodeId consumer) const {
  const std::vector<uint32_t>* v = pull_shards_.Find(consumer);
  return v ? std::span<const uint32_t>(*v) : std::span<const uint32_t>();
}

std::span<const NodeId> CrossShardIndex::PullProducers(NodeId consumer,
                                                       uint32_t shard) const {
  const std::vector<NodeId>* v = pull_producers_.Find(EdgeKey(consumer, shard));
  return v ? std::span<const NodeId>(*v) : std::span<const NodeId>();
}

std::span<const uint64_t> CrossShardIndex::ReadReplica(uint32_t shard,
                                                       NodeId producer) const {
  const std::vector<uint64_t>* v = replicas_.Find(EdgeKey(shard, producer));
  return v ? std::span<const uint64_t>(*v) : std::span<const uint64_t>();
}

double CrossShardIndex::PredictedCost(const Workload& w) const {
  double cost = 0;
  push_shards_.ForEach([&](uint64_t producer, const std::vector<uint32_t>& shards) {
    cost += w.rp(static_cast<NodeId>(producer)) * static_cast<double>(shards.size());
  });
  pull_shards_.ForEach([&](uint64_t consumer, const std::vector<uint32_t>& shards) {
    cost += w.rc(static_cast<NodeId>(consumer)) * static_cast<double>(shards.size());
  });
  return cost;
}

}  // namespace piggy
