// ShardMap: the cluster's node-placement table.
//
// Freezes a Partitioner's user -> shard assignment and materializes the two
// translations every router operation needs: global id -> (shard, local id)
// and (shard, local id) -> global id. Local ids are dense per shard (the
// shard-local FeedService runs on the shard-induced subgraph re-indexed to
// [0, shard_size)), assigned in ascending global-id order so that a 1-shard
// cluster's local ids are bit-identical to the global ids.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "store/partitioner.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Immutable user -> shard placement with local-id translation.
class ShardMap {
 public:
  /// Snapshots `partitioner`'s assignment for every node of `g`.
  static Result<ShardMap> Build(const Graph& g, const Partitioner& partitioner);

  /// Rebuilds a map from a frozen assignment vector (node -> shard), as
  /// persisted by the durability layer. Every shard index must be
  /// < num_shards; local ids come out identical to the original Build.
  static Result<ShardMap> FromAssignment(std::vector<uint32_t> shard_of,
                                         size_t num_shards);

  /// The raw node -> shard vector (what FromAssignment round-trips).
  const std::vector<uint32_t>& assignment() const { return shard_of_; }

  size_t num_shards() const { return members_.size(); }
  size_t num_nodes() const { return shard_of_.size(); }

  /// Shard hosting `global` (and all its serving state).
  uint32_t ShardOf(NodeId global) const {
    PIGGY_CHECK_LT(global, shard_of_.size());
    return shard_of_[global];
  }

  /// `global`'s dense id inside its shard.
  NodeId LocalId(NodeId global) const {
    PIGGY_CHECK_LT(global, local_id_.size());
    return local_id_[global];
  }

  /// Inverse of LocalId for `shard`.
  NodeId GlobalId(uint32_t shard, NodeId local) const {
    PIGGY_CHECK_LT(shard, members_.size());
    PIGGY_CHECK_LT(local, members_[shard].size());
    return members_[shard][local];
  }

  /// Global ids hosted by `shard`, ascending (index = local id).
  const std::vector<NodeId>& Members(uint32_t shard) const {
    PIGGY_CHECK_LT(shard, members_.size());
    return members_[shard];
  }

  /// Extracts the shard-induced subgraph (both endpoints in `shard`),
  /// re-indexed to local ids.
  Result<Graph> InducedSubgraph(const Graph& g, uint32_t shard) const;

  /// Projects per-user rates onto `shard`'s local id space.
  Workload ProjectWorkload(const Workload& w, uint32_t shard) const;

 private:
  ShardMap() = default;

  std::vector<uint32_t> shard_of_;            // global -> shard
  std::vector<NodeId> local_id_;              // global -> local
  std::vector<std::vector<NodeId>> members_;  // shard -> sorted globals
};

}  // namespace piggy
