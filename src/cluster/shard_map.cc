#include "cluster/shard_map.h"

#include <utility>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace piggy {

Result<ShardMap> ShardMap::Build(const Graph& g, const Partitioner& partitioner) {
  const size_t shards = partitioner.num_servers();
  if (shards == 0) return Status::InvalidArgument("need at least one shard");
  ShardMap map;
  const size_t n = g.num_nodes();
  map.shard_of_.resize(n);
  map.local_id_.resize(n);
  map.members_.resize(shards);
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t s = partitioner.ServerOf(u);
    if (s >= shards) {
      return Status::InvalidArgument(
          StrFormat("partitioner placed user %u on shard %u of %zu", u, s, shards));
    }
    map.shard_of_[u] = s;
    map.local_id_[u] = static_cast<NodeId>(map.members_[s].size());
    map.members_[s].push_back(u);
  }
  return map;
}

Result<ShardMap> ShardMap::FromAssignment(std::vector<uint32_t> shard_of,
                                          size_t num_shards) {
  if (num_shards == 0) return Status::InvalidArgument("need at least one shard");
  ShardMap map;
  const size_t n = shard_of.size();
  map.shard_of_ = std::move(shard_of);
  map.local_id_.resize(n);
  map.members_.resize(num_shards);
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t s = map.shard_of_[u];
    if (s >= num_shards) {
      return Status::InvalidArgument(
          StrFormat("assignment places user %u on shard %u of %zu", u, s,
                    num_shards));
    }
    map.local_id_[u] = static_cast<NodeId>(map.members_[s].size());
    map.members_[s].push_back(u);
  }
  return map;
}

Result<Graph> ShardMap::InducedSubgraph(const Graph& g, uint32_t shard) const {
  PIGGY_CHECK_LT(shard, members_.size());
  GraphBuilder builder(members_[shard].size());
  for (NodeId u : members_[shard]) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (shard_of_[v] == shard) builder.AddEdge(local_id_[u], local_id_[v]);
    }
  }
  return std::move(builder).Build();
}

Workload ShardMap::ProjectWorkload(const Workload& w, uint32_t shard) const {
  PIGGY_CHECK_LT(shard, members_.size());
  Workload local;
  local.production.reserve(members_[shard].size());
  local.consumption.reserve(members_[shard].size());
  for (NodeId u : members_[shard]) {
    local.production.push_back(w.rp(u));
    local.consumption.push_back(w.rc(u));
  }
  return local;
}

}  // namespace piggy
