// ClusterService: a sharded serving cluster behind the FeedService surface.
//
// The paper's prototype serves feeds from a fleet of data-store servers where
// placement shapes throughput (Sec. 4.3, Figs. 7-8). ClusterService takes the
// next step: the social graph itself is partitioned across N shards by a
// pluggable Partitioner ("hash" or the graph-aware "edge-cut"), every shard
// runs a full shard-local FeedService — planned by the registry planner on
// the shard-induced subgraph, all shards planned in parallel — and a router
// presents the single-deployment API:
//
//   auto cluster = ClusterService::Create(graph, options).MoveValueOrDie();
//   cluster->Share(user);                   // routed to the user's shard
//   auto feed = cluster->QueryStream(user); // merged local + cross-shard
//   cluster->Follow(a, b);                  // intra- or cross-shard churn
//   cluster->Replan();                      // all shards replan in parallel
//   auto m = cluster->GetMetrics();         // per-shard load + cross traffic
//
// Cross-shard edges are served by the router (see cluster/cross_shard.h):
// pushes materialize the producer's events into the consumer's shard (one
// replica per shard, one batched update message per touched shard), pulls fan
// out one batched query message per touched shard — the paper's
// one-message-per-server batching rule lifted to shard granularity. A 1-shard
// cluster degenerates to exactly one FeedService with no router overhead:
// schedules and query results are bit-identical to the single-process
// deployment (cluster_test proves it).
//
// Feeds stay audit-exact under churn: the router merges by global share
// order, and QueryStream can audit the merged stream against a cluster-wide
// oracle over the full dynamic graph, every audit_every-th query.
//
// ## Threading model
//
// The router mirrors FeedService's reader/writer split. Share / QueryStream /
// GetMetrics / Validate take the cluster lock shared and run concurrently
// from any number of client threads; Follow / Unfollow / Replan take it
// exclusive. Per-producer mutable state — the global share history and the
// push replicas — is serialized by a small array of stripe mutexes hashed by
// producer id, so concurrent shares and queries only contend when they touch
// the same producer. Global share order comes from an atomic sequence
// counter; a thread that drew an earlier number but reached its stripe later
// is re-ordered by sorted-from-tail inserts (histories, replicas, and the
// shard planes all tolerate out-of-order arrival). Cluster-level audits
// capture a quiescence token before the query — completeness is checked only
// when no share overlapped the merged read, soundness always — and each
// shard-local FeedService is itself fully thread-safe, including its
// background replanner (options.shard.background_replan + the cluster's
// StartBackgroundReplan / WaitForBackgroundReplan fan the per-shard
// replanners out so drift replans never block serving).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cross_shard.h"
#include "cluster/shard_map.h"
#include "durability/durable_state.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/feed_service.h"
#include "store/partitioner.h"
#include "store/view_store.h"
#include "store/workload_driver.h"
#include "util/status.h"
#include "workload/workload.h"

namespace piggy {

/// \brief ClusterService configuration.
struct ClusterOptions {
  /// Number of serving shards.
  size_t num_shards = 1;
  /// Registry name of the placement policy (see RegisteredPartitioners()).
  std::string partitioner = "hash";
  /// Salt for the hash policy (ignored by graph-aware partitioners).
  uint64_t partition_salt = kDefaultPartitionSalt;
  /// Per-shard FeedService configuration: planner, PlanContext, serving-plane
  /// sizing, shard-local audits and the replan policy — shard.replan set to
  /// ReplanPolicy::Drift gives every shard its own traffic-drift estimator,
  /// so replan decisions are per shard (a shard hit by a flash crowd replans;
  /// quiet shards keep their schedules). When shards are planned in
  /// parallel and plan_context.num_threads is 0 (auto), each shard planner
  /// runs single-threaded — the cluster already parallelizes across shards.
  FeedServiceOptions shard;
  /// Audit every Nth merged stream against the cluster-wide oracle (0 = no
  /// cluster-level audits; shard-local audits are configured in shard).
  size_t audit_every = 0;
  /// Re-plan every shard after this many cluster churn ops (0 = only explicit
  /// Replan calls; shard.replan_after_churn additionally applies per shard to
  /// its local churn).
  size_t replan_after_churn = 0;
  /// Cluster-wide persistence root (empty = memory-only, the default). When
  /// set, every shard keeps its own WAL + snapshot pair under
  /// <data_dir>/shard-NNNN and the router keeps a cluster-level pair under
  /// <data_dir>/cluster — churn + rate shifts over the full graph, plus the
  /// frozen node -> shard assignment — so a crashed cluster rebuilds
  /// bit-identically via Recover(). Flush/snapshot knobs apply to the shard
  /// pairs and the cluster pair alike; any durability configured inside
  /// `shard` is overridden (shards must not share a directory).
  DurabilityOptions durability;
  /// Structured trace sink (not owned; null disables tracing). The cluster
  /// emits shard kill/restart, migration batch, and recovery events here and
  /// hands the same log to every shard FeedService (stamped with its shard
  /// id), so one ring holds the causally ordered cluster-wide story.
  obs::TraceLog* trace = nullptr;
};

/// \brief Cluster-wide cost + traffic counters.
struct ClusterMetrics {
  size_t shards = 0;
  std::string partitioner;  ///< placement policy name
  std::string planner;      ///< registry planner name (canonicalized)
  double intra_cost = 0;    ///< sum of shard schedule costs
  double cross_cost = 0;    ///< predicted batched cross-shard cost
  double total_cost = 0;    ///< intra + cross
  size_t cross_edges = 0;   ///< edges currently crossing shards
  size_t replicas = 0;      ///< (producer, shard) replicas materialized
  size_t replans = 0;       ///< planner runs summed over shards
  size_t drift_replans = 0; ///< shard-local drift-triggered replans (summed)
  double max_drift_score = 0;  ///< worst current shard drift estimate
  size_t repairs = 0;       ///< Sec.-3.3 repairs summed over shards
  size_t churn_ops = 0;     ///< cluster Follow/Unfollow ops applied
  uint64_t shares = 0;
  uint64_t queries = 0;
  uint64_t audited_queries = 0;         ///< cluster-level merged-stream audits
  uint64_t cross_update_messages = 0;   ///< remote-push fan-out + backfills
  uint64_t cross_query_messages = 0;    ///< remote-pull fan-out
  std::string layout;           ///< interest-set layout ("flat"|"compressed")
  size_t interest_bytes = 0;    ///< resident interest-set bytes (shard sum)
  double interest_bytes_per_edge = 0;  ///< interest_bytes / cluster edges
  std::vector<uint64_t> per_shard_requests;  ///< requests routed per shard
  double imbalance = 0;  ///< max/mean of per_shard_requests (1 = even)
  /// Work actually landing on each shard: routed requests, plus the batched
  /// cross-shard messages it received (replica updates written into it, pull
  /// batches it served), plus the fan-out batches its own producers sent. A
  /// producer whose followers pull from across the cluster loads its *own*
  /// shard with every remote query — per-shard requests alone would miss
  /// that.
  std::vector<uint64_t> per_shard_work;
  /// Recency-weighted per-shard load: an EMA over the per-shard *work* deltas
  /// between successive GetMetrics calls, so a shard that went hot *recently*
  /// stands out even when lifetime counters say the cluster is even. Window
  /// length is therefore the caller's metrics cadence (the replay loop polls
  /// once per epoch); back-to-back polls with no traffic in between do not
  /// decay the view.
  std::vector<double> per_shard_window;
  double windowed_imbalance = 0;  ///< max/mean of per_shard_window
  /// EMA of cross-shard messages per routed request over the same polling
  /// windows — the trigger's second watch signal: a placement can be balanced
  /// yet pay for it in chatter.
  double windowed_cross_rate = 0;
  /// EMA'd per-shard fan-out *sends* over the same polling windows: where
  /// the batched cross-shard update traffic originates. A celebrity whose
  /// audience spans every shard barely moves the work imbalance (its home
  /// shard may have been light, and every other shard receives the fan-out
  /// evenly), but the sends from its home shard multiply — a trigger
  /// watching each shard against its own history sees it.
  std::vector<double> per_shard_send_window;
  double windowed_send_imbalance = 1;  ///< max/mean of per_shard_send_window
  std::vector<size_t> per_shard_replicas;  ///< replicas hosted per shard
  std::vector<uint64_t> per_shard_cross_updates;  ///< cross msgs into shard
  std::vector<uint64_t> per_shard_cross_queries;  ///< cross pulls from shard
  size_t migrations = 0;      ///< completed MigrateUsers batches
  size_t migrated_users = 0;  ///< users moved across shards (lifetime)
  double messages_per_request = 0;  ///< shard-local + cross messages
  /// Accumulated recovery work: the initial Recover() plus every
  /// RestartShard() since (zeroed for a Create()'d cluster).
  RecoveryStats recovery;

  std::string ToString() const;
};

/// \brief Measurements from one cluster Drive run.
struct ClusterDriveReport {
  uint64_t requests = 0;
  uint64_t shares = 0;
  uint64_t queries = 0;
  size_t audited_queries = 0;
  size_t unavailable = 0;  ///< requests rejected because a shard was down
  double messages_per_request = 0;       ///< incl. cross-shard messages
  double cross_messages_per_request = 0;
  double imbalance = 0;                  ///< max/mean requests per shard

  std::string ToString() const;
};

/// \brief One user relocation inside a MigrateUsers batch.
struct UserMove {
  NodeId user = 0;
  uint32_t to = 0;  ///< destination shard
};

/// \brief A running sharded deployment.
class ClusterService {
 public:
  /// Partitions `graph`, plans every shard in parallel with the configured
  /// registry planner, and builds the shard-local serving planes. The
  /// workload is synthesized once from the full graph (options.shard.workload
  /// knobs) and projected per shard, so rates — and the cross-edge push/pull
  /// decisions — are placement-independent.
  static Result<std::unique_ptr<ClusterService>> Create(
      const Graph& graph, const ClusterOptions& options);

  /// Same, with explicit per-user rates (must cover every node).
  static Result<std::unique_ptr<ClusterService>> Create(
      const Graph& graph, Workload workload, const ClusterOptions& options);

  /// Rebuilds a cluster from `options.durability.data_dir`: reloads the
  /// persisted node -> shard assignment, recovers every shard-local
  /// FeedService in parallel from its own WAL + snapshot pair, reconstructs
  /// the router (share histories and the global sequence counter from the
  /// recovered shard event logs, the cross-shard index from the recovered
  /// graph), then replays the cluster WAL tail — churn and rate shifts —
  /// through the normal routing paths. On success the cluster is live and
  /// appending again.
  static Result<std::unique_ptr<ClusterService>> Recover(
      const ClusterOptions& options, RecoveryStats* stats = nullptr);

  /// User u shares an event: served by u's shard (under the global sequence
  /// number, so merged feeds order by cluster-wide share order), then fanned
  /// out to every shard replicating u (one batched update message per touched
  /// shard). Thread-safe.
  Status Share(NodeId u);

  /// Assembles u's merged event stream: the shard-local feed, plus replicas
  /// of remote push producers (free, they live in u's shard), plus one
  /// batched pull message per remote shard. Audited against the cluster-wide
  /// oracle every options.audit_every queries. Thread-safe.
  Result<std::vector<EventTuple>> QueryStream(NodeId u);

  /// `follower` starts following `producer`. Same-shard edges go through the
  /// shard FeedService (local Sec.-3.3 repair); cross-shard edges are taken
  /// over by the router at the cheaper side (hybrid rule), materializing a
  /// replica on push. OK if already following.
  Status Follow(NodeId follower, NodeId producer);

  /// `follower` stops following `producer`; drops the replica when the last
  /// push edge into its shard disappears. OK if not following.
  Status Unfollow(NodeId follower, NodeId producer);

  /// Updates u's cluster-wide rates (durably logged at the cluster level,
  /// then forwarded to u's shard). Unavailable while u's shard is down.
  /// Thread-safe (exclusive).
  Status SetUserRates(NodeId u, double production, double consumption);

  /// Takes shard `s` out of service: its FeedService is destroyed after an
  /// orderly WAL flush, so a later RestartShard loses nothing (durability
  /// must be enabled — without it the shard state would be gone for good;
  /// crash semantics are exercised through the FailPoint registry instead).
  /// While down, requests owned by the shard — shares and queries of its
  /// users, same-shard churn, rate updates — fail with Unavailable; serving
  /// through the router (push replicas, pulls into live shards) continues.
  /// Thread-safe (exclusive).
  Status KillShard(uint32_t s);

  /// Brings a killed shard back by recovering its FeedService from its
  /// durable directory. No-op if the shard is up. Thread-safe (exclusive).
  Status RestartShard(uint32_t s);

  /// True while shard `s` is killed. Thread-safe.
  bool IsShardDown(uint32_t s) const;

  /// Moves a batch of users to new shards with no serving gap. Three phases:
  ///
  ///   freeze    (exclusive) validate the batch, snapshot the graph, rates and
  ///             share histories of every affected shard under the *new* map,
  ///             and start journaling churn/rate mutations.
  ///   build     (no lock — Shares and QueryStreams keep flowing against the
  ///             old placement) rebuild every affected shard's FeedService on
  ///             its new induced subgraph, seeding the frozen histories; with
  ///             durability, each rebuilt shard writes a fresh
  ///             generation-suffixed directory.
  ///   publish   (exclusive) replay the share/churn/rate delta that arrived
  ///             during build, write a migration-commit marker into the WALs
  ///             on both sides, atomically re-point the persisted assignment
  ///             (the durable commit point), then swap the ShardMap, the
  ///             rebuilt services and the cross-shard index in memory.
  ///
  /// Queries for a migrating user are served from its source shard until the
  /// swap, never Unavailable. A crash before the assignment rename recovers
  /// the old placement, after it the new one — feeds are placement-independent
  /// so either side is exact. No-op moves are filtered; an empty batch is OK.
  /// Fails with Unavailable if a source or destination shard is down, and
  /// FailedPrecondition if another migration is in flight.
  Status MigrateUsers(const std::vector<UserMove>& moves);

  /// Lifetime requests (shares + queries) routed per user — the observed
  /// per-user load a rebalance planner weighs move candidates by.
  /// Thread-safe.
  std::vector<uint64_t> PerUserRequests() const;

  /// Lifetime work attributed per user: routed requests, plus the remote
  /// pull batches served *for* the user's events, plus the fan-out batches
  /// sent for its shares — the work that lands on the user's own shard and
  /// follows the user when it moves. (Push replica *writes* land on consumer
  /// shards and deliberately do not count here.) This is the load signal the
  /// rebalance planner should weigh moves by. Thread-safe.
  std::vector<uint64_t> PerUserLoad() const;

  /// Immutable snapshot of the current cluster graph (base + churn so far).
  /// Thread-safe.
  Result<Graph> GraphSnapshot() const;

  /// Re-runs the configured planner on every shard's current subgraph, in
  /// parallel (stored events are preserved per shard). Synchronous:
  /// holds the cluster lock exclusively while every shard plans.
  Status Replan();

  /// Posts one background planner run to every shard's replanner (spawned on
  /// first use) and returns immediately; serving proceeds while the shards
  /// plan against frozen snapshots and atomically swap results in.
  Status StartBackgroundReplan();

  /// Blocks until no shard has a background replan queued or running; returns
  /// the first shard error, if any.
  Status WaitForBackgroundReplan();

  /// Replays a rate-weighted request mix through the router (the paper's
  /// measurement loop at cluster scale). options.audit_every audits merged
  /// streams regardless of the service-level audit cadence.
  Result<ClusterDriveReport> Drive(const DriverOptions& options);

  ClusterMetrics GetMetrics() const;

  /// Re-checks every shard schedule (Theorem 1) and the router's cross-edge
  /// index against the cluster graph: every edge must be served by exactly
  /// one owner (its shard's schedule, or the router).
  Status Validate() const;

  /// (total cluster cost, unsharded hybrid-baseline cost) under externally
  /// supplied rates: shard-projected schedule costs plus the router's
  /// predicted cross-shard cost, computed under the cluster + shard locks so
  /// it is safe against concurrent background replans. Thread-safe.
  std::pair<double, double> CostsUnder(const Workload& truth) const;

  size_t num_shards() const { return shards_.size(); }
  const ShardMap& shard_map() const { return map_; }
  const CrossShardIndex& cross_index() const { return cross_; }
  const DynamicGraph& graph() const { return graph_; }
  const Workload& workload() const { return workload_; }
  const ClusterOptions& options() const { return options_; }

  /// Shard-local FeedService (measurement code; shard < num_shards()).
  const FeedService& shard(size_t i) const { return *shards_[i].service; }
  FeedService& shard(size_t i) { return *shards_[i].service; }

  /// Cluster-level metrics registry: router counters ("cluster.shares",
  /// "cluster.shard00.requests", ...) and recovery counters live here; the
  /// per-shard serving registries are reachable via shard(i).registry().
  obs::MetricsRegistry& registry() const { return registry_; }

 private:
  struct Shard {
    std::unique_ptr<FeedService> service;
  };

  /// One mutation applied while a migration build was running lock-free.
  /// Publish replays the journal into the rebuilt shards so they catch up to
  /// the live graph/rates before the swap.
  struct MigrationJournalEntry {
    enum class Kind : uint8_t { kFollow, kUnfollow, kRate };
    Kind kind;
    NodeId producer = 0;  ///< the rated user for kRate
    NodeId follower = 0;
    double rp = 0;
    double rc = 0;
  };

  /// Quiescence witness for one merged-stream audit, captured before the
  /// query (the cluster analogue of Prototype::AuditToken): completeness is
  /// provable only if no share was in flight at capture or check time and the
  /// sequence counter did not move in between.
  struct AuditToken {
    uint64_t next_seq = 0;
    bool quiescent = false;
  };

  ClusterService(ClusterOptions options, ShardMap map, Workload workload,
                 size_t feed_size);

  /// Routes one query and optionally audits the merged stream. Takes the
  /// cluster lock shared.
  Result<std::vector<EventTuple>> QueryInternal(NodeId u, bool force_audit);

  /// Checks the merged stream of `u` against the cluster-wide event oracle:
  /// soundness always, completeness only when `token` proves the read was
  /// quiescent. Requires the cluster lock held (shared suffices).
  Status AuditMerged(NodeId u, const std::vector<EventTuple>& stream,
                     const AuditToken& token);

  /// Total batched messages issued by the shard-local clients (cross-shard
  /// router traffic not included).
  double ShardMessages() const;

  /// Serializes per-producer history + replica mutation and reads.
  std::mutex& StripeFor(NodeId producer) const {
    return stripe_mu_[producer % kStripes];
  }

  /// Copies u's global share history under its stripe lock.
  std::vector<uint64_t> HistorySnapshot(NodeId producer) const;

  Status ReplanLocked();
  Status ApplyChurnLocked();

  /// Per-shard FeedService configuration: the shared shard options plus this
  /// shard's durability directory (and a single planner thread when the
  /// cluster itself is the parallel dimension).
  FeedServiceOptions ShardOptions(uint32_t s) const;

  /// Same, pinned to an explicit directory generation (migration builds write
  /// the *next* generation while the current one keeps serving).
  FeedServiceOptions ShardOptionsForGen(uint32_t s, uint64_t gen) const;

  /// Re-derives the router's cross-edge state for every edge incident to a
  /// moved user after the ShardMap swap. Requires mu_ held exclusively.
  void RepairCrossEdges(const std::vector<NodeId>& moved_users);

  /// Rotates the cluster-level durability pair (rates + churn delta +
  /// next_seq; no schedule or events — the shards own those). Requires mu_
  /// held exclusively. No-op without durability.
  Status WriteSnapshotLocked();

  ClusterOptions options_;
  ShardMap map_;
  Workload workload_;
  std::vector<Shard> shards_;
  size_t feed_size_;

  // Cluster-level WAL + snapshot pair (router state; null when durability is
  // disabled). The shard-local pairs live inside the shard FeedServices.
  std::unique_ptr<ShardDurability> durability_;
  // True while Recover() replays the cluster WAL through the public API:
  // durable logging, replan triggers and snapshot rotation are suppressed.
  // Plain bool — recovery is single-threaded by construction.
  bool replaying_ = false;
  // down_[s] is set while shard s is killed (shards_[s].service is null
  // then). Written under the exclusive lock, read under shared.
  std::vector<uint8_t> down_;
  // Durability-directory generation per shard: shard s serves out of
  // shard-NNNN (gen 0) or shard-NNNN.gGGGGGG. A migration rebuilds affected
  // shards into the next generation and bumps this at the swap; persisted in
  // the assignment file so Recover opens the right directories and removes
  // orphaned generations. Written under the exclusive lock.
  std::vector<uint64_t> shard_gen_;
  // True from a migration's freeze to its publish/abort: Follow/Unfollow/
  // SetUserRates journal their mutations so the lock-free build can catch up
  // at publish. All three written under the exclusive lock.
  bool migration_active_ = false;
  std::vector<MigrationJournalEntry> migration_journal_;

  // Cluster-level metrics. Declared before the cached Counter pointers below
  // so the registry outlives every handle registered from it. Router traffic
  // counters moved off ad-hoc atomics onto the registry: this is the single
  // source GetMetrics folds and the rebalance trigger reads.
  mutable obs::MetricsRegistry registry_;
  obs::Counter* migrations_ = nullptr;       // completed MigrateUsers batches
  obs::Counter* migrated_users_ = nullptr;   // users moved (lifetime)
  // Recovery work accumulated across Recover() + RestartShard(); written
  // under the exclusive lock (or before serving starts), read under shared.
  RecoveryStats recovery_stats_;

  // Cluster lock: Share/QueryStream/GetMetrics/Validate shared,
  // Follow/Unfollow/Replan exclusive. graph_ and the cross_ structure are
  // mutated only under the exclusive side.
  mutable std::shared_mutex mu_;
  DynamicGraph graph_;  // the full cluster graph (churn applies here too)
  CrossShardIndex cross_;

  // Per-producer serialization of history + replica contents on the
  // shared-lock serving path. 64 stripes keep the false-sharing odds low at
  // any realistic client thread count.
  static constexpr size_t kStripes = 64;
  mutable std::array<std::mutex, kStripes> stripe_mu_;

  // Global share order: seq is 1-based so a 1-shard cluster's (event_id,
  // timestamp) pairs coincide with the shard prototype's own numbering.
  std::atomic<uint64_t> next_seq_{1};
  // Shares between seq assignment and history publication; with next_seq_ it
  // witnesses audit quiescence (see AuditToken).
  std::atomic<int64_t> shares_in_flight_{0};
  // Per-producer newest share seqs (ascending, trimmed to feed_size): the
  // pull/backfill source and the cluster audit oracle. A feed can never
  // surface more than feed_size events of one producer, so trimming is
  // lossless for serving and auditing. Element u guarded by StripeFor(u).
  std::vector<std::vector<uint64_t>> producer_seqs_;

  // Router counters, bumped on the shared-lock serving path. Registry-backed
  // (thread-striped) counters cached by pointer at construction.
  std::vector<obs::Counter*> per_shard_requests_;
  // Batched fan-out messages sent by each shard's producers (the sending
  // half of cross-shard update work; the receiving half lives in cross_).
  std::vector<obs::Counter*> per_shard_fanout_;
  // Observed per-user load (shares + queries), the rebalance planner's move
  // weights.
  std::vector<std::atomic<uint64_t>> per_user_requests_;
  // Remote pull batches served for each producer's events plus fan-out
  // batches sent for its shares (work on the producer's shard; see
  // PerUserLoad).
  std::vector<std::atomic<uint64_t>> per_user_served_;
  // Recency-weighted per-shard load (see ClusterMetrics::per_shard_window):
  // folded on GetMetrics under its own small mutex so concurrent metric polls
  // stay safe on the shared-lock path.
  mutable std::mutex window_mu_;
  mutable std::vector<double> window_ema_;
  mutable std::vector<uint64_t> window_last_;
  mutable uint64_t window_last_cross_ = 0;
  mutable uint64_t window_last_requests_ = 0;
  mutable double window_cross_rate_ = 0;
  mutable std::vector<double> window_send_ema_;
  mutable std::vector<uint64_t> window_last_sends_;
  obs::Counter* shares_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Counter* audited_queries_ = nullptr;
  std::atomic<uint64_t> queries_since_audit_{0};
  // Churn counters: written under the exclusive lock, read under shared.
  size_t churn_ops_ = 0;
  size_t churn_since_replan_ = 0;
};

}  // namespace piggy
