// CrossShardIndex: the router's state for edges whose endpoints live on
// different shards.
//
// Intra-shard edges are served by the shard-local FeedService (hub
// piggybacking included). A cross-shard edge producer -> consumer cannot ride
// a shard-local schedule, so the router serves it directly on the cheaper
// side — the hybrid rule min(rp(producer), rc(consumer)) — with the paper's
// batching rule applied at shard granularity (one message per touched shard,
// Sec. 4.3):
//
//   push  The producer's events are *materialized into the consumer's shard*:
//         one replica per (producer, shard) no matter how many followers the
//         shard holds. A share costs one batched update message per shard
//         replicating the producer; queries then read the replica locally for
//         free. Creating the first push edge into a shard backfills the
//         replica (one state-transfer message).
//   pull  The consumer fans out on query: one batched query message per
//         distinct producer shard, covering every pulled producer there.
//
// The index stores, per producer, the shards replicating it (update fan-out
// list) and, per consumer, the local replicas to read and the remote shards
// to pull — everything the router needs in O(touched shards) per request.
// Replicas hold global share sequence numbers, newest `feed_size` per
// producer (a feed can never need more).
//
// ## Threading contract (enforced by ClusterService, not internally)
//
// Structure mutations (AddEdge / RemoveEdge) require the caller's exclusive
// lock; structure reads (PushProducers, PullShards, PullProducers, ModeOf,
// counts, PredictedCost) require at least its shared lock. Replica *contents*
// are additionally serialized per producer: Publish(p, .) and ReadReplica(.,
// p) must run under the caller's stripe lock for p (ClusterService hashes
// producers onto a small array of stripe mutexes), so shares and queries for
// different producers never contend. Traffic counters are internal relaxed
// atomics; traffic() returns a point-in-time snapshot.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/u64_containers.h"
#include "workload/workload.h"

namespace piggy {

/// \brief How a cross-shard edge is served.
enum class CrossEdgeMode : uint8_t { kPush, kPull };

/// \brief Router-side message counters (batched messages, the throughput
/// currency — same units as ClientMetrics).
struct CrossTraffic {
  uint64_t update_messages = 0;    ///< remote-push fan-out incl. backfills
  uint64_t query_messages = 0;     ///< remote-pull fan-out
  uint64_t replica_backfills = 0;  ///< replicas materialized by Follow
};

/// \brief Cross-shard edge table + per-shard producer replicas.
class CrossShardIndex {
 public:
  CrossShardIndex(size_t num_shards, size_t feed_size);

  size_t num_shards() const { return num_shards_; }
  /// Cross-shard edges currently tracked.
  size_t num_edges() const { return edges_.size(); }
  /// (producer, shard) replicas currently materialized.
  size_t num_replicas() const { return replica_count_; }
  /// Replicas materialized into each shard (index = shard id). Requires the
  /// caller's shared lock (mutated with the structure, under exclusive).
  const std::vector<size_t>& replicas_per_shard() const {
    return replicas_per_shard_;
  }

  bool HasEdge(NodeId producer, NodeId consumer) const {
    return edges_.Contains(EdgeKey(producer, consumer));
  }
  /// Serving mode of the edge, if tracked.
  std::optional<CrossEdgeMode> ModeOf(NodeId producer, NodeId consumer) const;

  /// Tracks a new cross edge. For the first push edge from `producer` into
  /// `consumer_shard` the replica is materialized from `producer_history`
  /// (ascending global sequence numbers; the newest feed_size are kept) and
  /// one backfill update message is counted. Returns false if already
  /// tracked.
  bool AddEdge(NodeId producer, uint32_t producer_shard, NodeId consumer,
               uint32_t consumer_shard, CrossEdgeMode mode,
               std::span<const uint64_t> producer_history);

  /// Untracks an edge; drops the (producer, shard) replica when the last push
  /// edge into that shard disappears. Returns false if not tracked.
  bool RemoveEdge(NodeId producer, NodeId consumer);

  /// Share fan-out: inserts `seq` into every shard replicating `producer`
  /// (sorted from the tail, so sequence numbers assigned before a slower
  /// thread's insert land in order), one batched update message per touched
  /// shard. Returns the number of shards touched (messages the producer's
  /// shard sent). Requires the caller's stripe lock for `producer`.
  size_t Publish(NodeId producer, uint64_t seq);

  /// Remote producers whose replicas live in the consumer's own shard
  /// (push-mode edges): read locally, zero messages.
  std::span<const NodeId> PushProducers(NodeId consumer) const;

  /// Distinct remote shards the consumer pulls from (sorted ascending).
  std::span<const uint32_t> PullShards(NodeId consumer) const;

  /// Producers the consumer pulls from `shard` (one batched message covers
  /// them all).
  std::span<const NodeId> PullProducers(NodeId consumer, uint32_t shard) const;

  /// Replica contents: newest global sequence numbers of `producer`
  /// materialized in `shard`, ascending. Empty if not replicated.
  std::span<const uint64_t> ReadReplica(uint32_t shard, NodeId producer) const;

  /// Counts the batched messages of one query's pull fan-out (one per shard
  /// in `shards_pulled`). Thread-safe.
  void CountQueryFanout(std::span<const uint32_t> shards_pulled) {
    query_messages_.fetch_add(shards_pulled.size(), std::memory_order_relaxed);
    for (uint32_t s : shards_pulled) {
      per_shard_query_messages_[s].fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Point-in-time traffic snapshot. Thread-safe.
  CrossTraffic traffic() const {
    CrossTraffic t;
    t.update_messages = update_messages_.load(std::memory_order_relaxed);
    t.query_messages = query_messages_.load(std::memory_order_relaxed);
    t.replica_backfills = replica_backfills_.load(std::memory_order_relaxed);
    return t;
  }

  /// Per-shard traffic snapshot: batched cross-shard messages attributed to
  /// the shard they touch (updates land in the replicating shard, query pulls
  /// in the pulled shard). Thread-safe.
  void PerShardTraffic(std::vector<uint64_t>* updates,
                       std::vector<uint64_t>* queries) const {
    updates->resize(num_shards_);
    queries->resize(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      (*updates)[s] =
          per_shard_update_messages_[s].load(std::memory_order_relaxed);
      (*queries)[s] =
          per_shard_query_messages_[s].load(std::memory_order_relaxed);
    }
  }

  /// Predicted steady-state cross-shard cost under the batching rule:
  ///   sum_u rp(u) * |shards replicating u|
  /// + sum_v rc(v) * |shards v pulls from|.
  /// The cluster analogue of PlacementAwareCost's cross-server terms.
  double PredictedCost(const Workload& w) const;

 private:
  struct EdgeRec {
    CrossEdgeMode mode;
    uint32_t producer_shard;
    uint32_t consumer_shard;
  };

  size_t num_shards_;
  size_t feed_size_;

  U64Map<EdgeRec> edges_;                       // EdgeKey(producer, consumer)
  U64Map<uint32_t> push_target_count_;          // EdgeKey(producer, shard)
  U64Map<std::vector<uint32_t>> push_shards_;   // producer -> sorted shards
  U64Map<std::vector<NodeId>> push_producers_;  // consumer -> producers
  U64Map<uint32_t> pull_source_count_;          // EdgeKey(consumer, shard)
  U64Map<std::vector<uint32_t>> pull_shards_;   // consumer -> sorted shards
  U64Map<std::vector<NodeId>> pull_producers_;  // EdgeKey(consumer, shard)
  U64Map<std::vector<uint64_t>> replicas_;      // EdgeKey(shard, producer)
  size_t replica_count_ = 0;
  std::vector<size_t> replicas_per_shard_;      // index = shard
  // Bumped on the shared-lock serving path (Publish / CountQueryFanout).
  std::atomic<uint64_t> update_messages_{0};
  std::atomic<uint64_t> query_messages_{0};
  std::atomic<uint64_t> replica_backfills_{0};
  std::vector<std::atomic<uint64_t>> per_shard_update_messages_;
  std::vector<std::atomic<uint64_t>> per_shard_query_messages_;
};

}  // namespace piggy
