#include "cluster/cluster_service.h"

#include <algorithm>
#include <utility>

#include "core/cost_model.h"
#include "util/alias_table.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace piggy {

namespace {

// Push/pull decision for a cross-shard edge: the hybrid (FF) rule, same
// tie-break as HybridSchedule — push iff rp(producer) <= rc(consumer).
CrossEdgeMode DecideMode(const Workload& w, NodeId producer, NodeId consumer) {
  return w.rp(producer) <= w.rc(consumer) ? CrossEdgeMode::kPush
                                          : CrossEdgeMode::kPull;
}

double MaxOverMean(const std::vector<uint64_t>& loads) {
  if (loads.empty()) return 0;
  uint64_t total = 0, max = 0;
  for (uint64_t x : loads) {
    total += x;
    max = std::max(max, x);
  }
  if (total == 0) return 0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(max) / mean;
}

}  // namespace

std::string ClusterMetrics::ToString() const {
  return StrFormat(
      "shards=%zu partitioner=%s planner=%s cost=%.1f (intra=%.1f cross=%.1f) "
      "cross_edges=%zu replicas=%zu replans=%zu (drift=%zu score=%.3f) "
      "repairs=%zu churn=%zu "
      "shares=%lu queries=%lu audited=%lu cross_msgs=%lu+%lu mpr=%.2f "
      "imbalance=%.2f",
      shards, partitioner.c_str(), planner.c_str(), total_cost, intra_cost,
      cross_cost, cross_edges, replicas, replans, drift_replans,
      max_drift_score, repairs, churn_ops,
      static_cast<unsigned long>(shares), static_cast<unsigned long>(queries),
      static_cast<unsigned long>(audited_queries),
      static_cast<unsigned long>(cross_update_messages),
      static_cast<unsigned long>(cross_query_messages), messages_per_request,
      imbalance);
}

std::string ClusterDriveReport::ToString() const {
  return StrFormat(
      "requests=%lu (shares=%lu queries=%lu) msgs/req=%.3f cross/req=%.3f "
      "imbalance=%.2f audits=%zu",
      static_cast<unsigned long>(requests), static_cast<unsigned long>(shares),
      static_cast<unsigned long>(queries), messages_per_request,
      cross_messages_per_request, imbalance, audited_queries);
}

ClusterService::ClusterService(ClusterOptions options, ShardMap map,
                               Workload workload, size_t feed_size)
    : options_(std::move(options)),
      map_(std::move(map)),
      workload_(std::move(workload)),
      feed_size_(feed_size),
      cross_(map_.num_shards(), feed_size),
      producer_seqs_(map_.num_nodes()),
      per_shard_requests_(map_.num_shards()) {}

Result<std::unique_ptr<ClusterService>> ClusterService::Create(
    const Graph& graph, const ClusterOptions& options) {
  PIGGY_ASSIGN_OR_RETURN(Workload workload,
                         GenerateWorkload(graph, options.shard.workload));
  return Create(graph, std::move(workload), options);
}

Result<std::unique_ptr<ClusterService>> ClusterService::Create(
    const Graph& graph, Workload workload, const ClusterOptions& options) {
  if (workload.num_users() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  workload.num_users(), graph.num_nodes()));
  }
  if (options.shard.prototype.feed_size == 0) {
    return Status::InvalidArgument("feed_size must be positive");
  }
  PIGGY_ASSIGN_OR_RETURN(
      std::unique_ptr<Partitioner> partitioner,
      MakePartitioner(options.partitioner, graph, workload, options.num_shards,
                      options.partition_salt));
  PIGGY_ASSIGN_OR_RETURN(ShardMap map, ShardMap::Build(graph, *partitioner));

  ClusterOptions opts = options;
  opts.partitioner = partitioner->name();  // canonicalize aliases
  auto cluster = std::unique_ptr<ClusterService>(
      new ClusterService(std::move(opts), std::move(map), std::move(workload),
                         options.shard.prototype.feed_size));
  cluster->graph_ = DynamicGraph(graph);

  const size_t shards = cluster->map_.num_shards();
  std::vector<Graph> subgraphs(shards);
  std::vector<Workload> locals(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    PIGGY_ASSIGN_OR_RETURN(subgraphs[s],
                           cluster->map_.InducedSubgraph(graph, s));
    locals[s] = cluster->map_.ProjectWorkload(cluster->workload_, s);
  }

  // Every shard plans concurrently on its induced subgraph; with an auto
  // thread budget each shard planner stays single-threaded (the cluster is
  // the parallel dimension, and oversubscribing k shards x p planner threads
  // helps nobody).
  FeedServiceOptions shard_opts = cluster->options_.shard;
  if (shards > 1 && shard_opts.plan_context.num_threads == 0) {
    shard_opts.plan_context.num_threads = 1;
  }
  cluster->shards_.resize(shards);
  std::vector<Status> status(shards);
  {
    ThreadPool pool(std::min(shards, ThreadPool::DefaultThreads()));
    ParallelFor(pool, shards, [&](size_t s) {
      auto service =
          FeedService::Create(subgraphs[s], std::move(locals[s]), shard_opts);
      if (service.ok()) {
        cluster->shards_[s].service = std::move(service).MoveValueOrDie();
      } else {
        status[s] = service.status();
      }
    });
  }
  for (uint32_t s = 0; s < shards; ++s) {
    if (!status[s].ok()) {
      return Status(status[s].code(),
                    StrFormat("shard %u: %s", s, status[s].message().c_str()));
    }
  }

  // Hand every cross-shard edge to the router at the cheaper side. No events
  // exist yet, so replica backfills are empty (and the backfill messages
  // below are the one-off materialization cost, not steady-state traffic).
  graph.ForEachEdge([&](const Edge& e) {
    const uint32_t sp = cluster->map_.ShardOf(e.src);
    const uint32_t sc = cluster->map_.ShardOf(e.dst);
    if (sp == sc) return;
    cluster->cross_.AddEdge(e.src, sp, e.dst, sc,
                            DecideMode(cluster->workload_, e.src, e.dst), {});
  });
  return cluster;
}

std::vector<uint64_t> ClusterService::HistorySnapshot(NodeId producer) const {
  std::lock_guard<std::mutex> stripe(StripeFor(producer));
  return producer_seqs_[producer];
}

Status ClusterService::Share(NodeId u) {
  if (u >= map_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  const uint32_t s = map_.ShardOf(u);
  // In-flight up BEFORE the seq draw, down after publication: together with
  // next_seq_ this lets audits prove a read window was share-free (any
  // overlapping share is caught in flight at one end of the window or moved
  // the counter in between).
  shares_in_flight_.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_seq_cst);
  // The shard serves the event under the global sequence number, so local
  // feeds order by cluster-wide share order and merged queries read
  // event_id directly. (On a shard error the seq is burned — gaps are
  // harmless, the oracle only ever sees published numbers.)
  Status st = shards_[s].service->Share(map_.LocalId(u), seq);
  if (st.ok()) {
    std::lock_guard<std::mutex> stripe(StripeFor(u));
    std::vector<uint64_t>& history = producer_seqs_[u];
    // Sorted from the tail: a thread that drew an earlier seq but reached
    // the stripe later still lands in order.
    auto pos = history.end();
    while (pos != history.begin() && *(pos - 1) > seq) --pos;
    history.insert(pos, seq);
    if (history.size() > feed_size_) history.erase(history.begin());
    cross_.Publish(u, seq);
    per_shard_requests_[s].fetch_add(1, std::memory_order_relaxed);
    shares_.fetch_add(1, std::memory_order_relaxed);
  }
  shares_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
  return st;
}

Result<std::vector<EventTuple>> ClusterService::QueryStream(NodeId u) {
  const bool audit =
      options_.audit_every > 0 &&
      (queries_since_audit_.fetch_add(1, std::memory_order_relaxed) + 1) %
              options_.audit_every ==
          0;
  return QueryInternal(u, audit);
}

Result<std::vector<EventTuple>> ClusterService::QueryInternal(NodeId u,
                                                              bool force_audit) {
  if (u >= map_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  const uint32_t s = map_.ShardOf(u);
  AuditToken token;
  if (force_audit) {
    token.quiescent =
        shares_in_flight_.load(std::memory_order_seq_cst) == 0;
    token.next_seq = next_seq_.load(std::memory_order_seq_cst);
  }
  PIGGY_ASSIGN_OR_RETURN(std::vector<EventTuple> local,
                         shards_[s].service->QueryStream(map_.LocalId(u)));
  per_shard_requests_[s].fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(1, std::memory_order_relaxed);

  // Collect (seq, producer) candidates. Local feed events carry global
  // sequence numbers (shares are routed with explicit seqs), so event_id is
  // the global share order directly.
  std::vector<std::pair<uint64_t, NodeId>> candidates;
  candidates.reserve(local.size() + 8);
  for (const EventTuple& e : local) {
    candidates.emplace_back(e.event_id, map_.GlobalId(s, e.producer));
  }
  // Remote push producers: replicas materialized in u's own shard, free.
  // Contents are copied out under the producer's stripe (the lock a racing
  // Publish holds).
  for (NodeId producer : cross_.PushProducers(u)) {
    std::lock_guard<std::mutex> stripe(StripeFor(producer));
    for (uint64_t seq : cross_.ReadReplica(s, producer)) {
      candidates.emplace_back(seq, producer);
    }
  }
  // Remote pulls: one batched message per touched shard.
  std::span<const uint32_t> pull_shards = cross_.PullShards(u);
  for (uint32_t remote : pull_shards) {
    for (NodeId producer : cross_.PullProducers(u, remote)) {
      std::lock_guard<std::mutex> stripe(StripeFor(producer));
      for (uint64_t seq : producer_seqs_[producer]) {
        candidates.emplace_back(seq, producer);
      }
    }
  }
  cross_.CountQueryFanout(pull_shards.size());

  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (candidates.size() > feed_size_) candidates.resize(feed_size_);
  std::vector<EventTuple> stream;
  stream.reserve(candidates.size());
  for (const auto& [seq, producer] : candidates) {
    stream.push_back(EventTuple{producer, seq, seq});
  }

  if (force_audit) {
    PIGGY_RETURN_NOT_OK(AuditMerged(u, stream, token));
    audited_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  return stream;
}

Status ClusterService::AuditMerged(NodeId u,
                                   const std::vector<EventTuple>& stream,
                                   const AuditToken& token) {
  auto followees = graph_.InNeighbors(u);
  auto allowed = [&](NodeId producer) {
    return producer == u ||
           std::binary_search(followees.begin(), followees.end(), producer);
  };
  // Soundness: only events of followed producers, newest-first, no repeats.
  // Always checkable — racing shares can only add events, never forge one.
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!allowed(stream[i].producer)) {
      return Status::Internal(StrFormat("merged stream of %u leaks producer %u",
                                        u, stream[i].producer));
    }
    if (i > 0 && stream[i].event_id >= stream[i - 1].event_id) {
      return Status::Internal(
          StrFormat("merged stream of %u not newest-first at %zu", u, i));
    }
  }

  // Completeness needs a share-free read window (the token's quiescence
  // protocol, mirroring Prototype::AuditToken) and untrimmed shard views
  // (same guard as Prototype::AuditStream).
  if (!token.quiescent ||
      shares_in_flight_.load(std::memory_order_seq_cst) != 0 ||
      next_seq_.load(std::memory_order_seq_cst) != token.next_seq) {
    return Status::OK();
  }
  const uint32_t s = map_.ShardOf(u);
  PIGGY_ASSIGN_OR_RETURN(const uint64_t trimmed,
                         shards_[s].service->TrimmedEvents());
  if (trimmed > 0) return Status::OK();

  std::vector<std::pair<uint64_t, NodeId>> oracle;
  auto add_producer = [&](NodeId p) {
    for (uint64_t seq : HistorySnapshot(p)) oracle.emplace_back(seq, p);
  };
  add_producer(u);
  for (NodeId p : followees) add_producer(p);
  // The history snapshots above sit outside the window the recheck proved
  // share-free: a share landing between the recheck and a snapshot would put
  // an event in the oracle the stream never saw. Re-verify before comparing
  // (a share starting after this line cannot have touched the reads above).
  if (shares_in_flight_.load(std::memory_order_seq_cst) != 0 ||
      next_seq_.load(std::memory_order_seq_cst) != token.next_seq) {
    return Status::OK();
  }
  std::sort(oracle.begin(), oracle.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (oracle.size() > feed_size_) oracle.resize(feed_size_);
  if (oracle.size() != stream.size()) {
    return Status::Internal(StrFormat("merged stream of %u has %zu events, oracle %zu",
                                      u, stream.size(), oracle.size()));
  }
  for (size_t i = 0; i < oracle.size(); ++i) {
    if (stream[i].event_id != oracle[i].first ||
        stream[i].producer != oracle[i].second) {
      return Status::Internal(
          StrFormat("merged stream of %u diverges from oracle at %zu", u, i));
    }
  }
  return Status::OK();
}

Status ClusterService::ApplyChurnLocked() {
  ++churn_ops_;
  ++churn_since_replan_;
  if (options_.replan_after_churn > 0 &&
      churn_since_replan_ >= options_.replan_after_churn) {
    churn_since_replan_ = 0;
    if (options_.shard.background_replan) {
      // Per-shard background replanners: post and keep serving.
      for (Shard& shard : shards_) {
        PIGGY_RETURN_NOT_OK(shard.service->StartBackgroundReplan());
      }
      return Status::OK();
    }
    return ReplanLocked();
  }
  return Status::OK();
}

Status ClusterService::Follow(NodeId follower, NodeId producer) {
  if (follower >= map_.num_nodes() || producer >= map_.num_nodes()) {
    return Status::InvalidArgument("unknown user in Follow");
  }
  if (follower == producer) {
    return Status::InvalidArgument("users may not follow themselves");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (graph_.HasEdge(producer, follower)) return Status::OK();
  const uint32_t sp = map_.ShardOf(producer);
  const uint32_t sc = map_.ShardOf(follower);
  if (sp == sc) {
    PIGGY_RETURN_NOT_OK(shards_[sp].service->Follow(map_.LocalId(follower),
                                                    map_.LocalId(producer)));
  } else {
    // Exclusive cluster lock: no share is mid-publication, so the history is
    // stable without its stripe.
    cross_.AddEdge(producer, sp, follower, sc,
                   DecideMode(workload_, producer, follower),
                   producer_seqs_[producer]);
  }
  graph_.AddEdge(producer, follower);
  return ApplyChurnLocked();
}

Status ClusterService::Unfollow(NodeId follower, NodeId producer) {
  if (follower >= map_.num_nodes() || producer >= map_.num_nodes()) {
    return Status::InvalidArgument("unknown user in Unfollow");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!graph_.HasEdge(producer, follower)) return Status::OK();
  const uint32_t sp = map_.ShardOf(producer);
  const uint32_t sc = map_.ShardOf(follower);
  if (sp == sc) {
    PIGGY_RETURN_NOT_OK(shards_[sp].service->Unfollow(map_.LocalId(follower),
                                                      map_.LocalId(producer)));
  } else {
    cross_.RemoveEdge(producer, follower);
  }
  graph_.RemoveEdge(producer, follower);
  return ApplyChurnLocked();
}

Status ClusterService::Replan() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return ReplanLocked();
}

Status ClusterService::ReplanLocked() {
  const size_t shards = shards_.size();
  std::vector<Status> status(shards);
  {
    ThreadPool pool(std::min(shards, ThreadPool::DefaultThreads()));
    ParallelFor(pool, shards,
                [&](size_t s) { status[s] = shards_[s].service->Replan(); });
  }
  for (uint32_t s = 0; s < shards; ++s) {
    if (!status[s].ok()) {
      return Status(status[s].code(),
                    StrFormat("shard %u: %s", s, status[s].message().c_str()));
    }
  }
  churn_since_replan_ = 0;
  return Status::OK();
}

Status ClusterService::StartBackgroundReplan() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (Shard& shard : shards_) {
    PIGGY_RETURN_NOT_OK(shard.service->StartBackgroundReplan());
  }
  churn_since_replan_ = 0;
  return Status::OK();
}

Status ClusterService::WaitForBackgroundReplan() {
  // No cluster lock: shard replanners publish under their own locks, and
  // holding ours here would stall serving for the whole wait.
  Status first = Status::OK();
  for (Shard& shard : shards_) {
    Status st = shard.service->WaitForBackgroundReplan();
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

Result<ClusterDriveReport> ClusterService::Drive(const DriverOptions& options) {
  const double total_p = workload_.TotalProduction();
  const double total_c = workload_.TotalConsumption();
  if (total_p <= 0 || total_c <= 0) {
    return Status::InvalidArgument("workload must have positive total rates");
  }
  AliasTable share_sampler(workload_.production);
  AliasTable query_sampler(workload_.consumption);
  const double p_share = total_p / (total_p + total_c);
  Rng rng(options.seed);

  // Raw counter snapshots: the report is a per-run delta, excluding both
  // earlier runs and the one-off replica-backfill traffic of cluster setup.
  const CrossTraffic cross_before = cross_.traffic();
  const double shard_messages_before = ShardMessages();
  std::vector<uint64_t> shard_requests_before(per_shard_requests_.size());
  for (size_t s = 0; s < shard_requests_before.size(); ++s) {
    shard_requests_before[s] =
        per_shard_requests_[s].load(std::memory_order_relaxed);
  }

  ClusterDriveReport report;
  for (size_t i = 0; i < options.num_requests; ++i) {
    if (rng.Bernoulli(p_share)) {
      PIGGY_RETURN_NOT_OK(Share(share_sampler.Sample(rng)));
      ++report.shares;
    } else {
      const NodeId u = query_sampler.Sample(rng);
      const bool audit =
          options.audit_every > 0 && report.queries % options.audit_every == 0;
      PIGGY_RETURN_NOT_OK(QueryInternal(u, audit).status());
      ++report.queries;
      report.audited_queries += audit;
    }
  }
  report.requests = report.shares + report.queries;

  if (report.requests > 0) {
    const CrossTraffic cross_after = cross_.traffic();
    const uint64_t cross_delta =
        cross_after.update_messages + cross_after.query_messages -
        cross_before.update_messages - cross_before.query_messages;
    const double requests = static_cast<double>(report.requests);
    report.messages_per_request =
        (ShardMessages() - shard_messages_before +
         static_cast<double>(cross_delta)) /
        requests;
    report.cross_messages_per_request =
        static_cast<double>(cross_delta) / requests;
  }
  std::vector<uint64_t> routed(per_shard_requests_.size());
  for (size_t s = 0; s < routed.size(); ++s) {
    routed[s] = per_shard_requests_[s].load(std::memory_order_relaxed) -
                shard_requests_before[s];
  }
  report.imbalance = MaxOverMean(routed);
  return report;
}

double ClusterService::ShardMessages() const {
  // Exact despite going through the per-request ratio: a shard with zero
  // requests has zero client messages.
  double total = 0;
  for (const Shard& shard : shards_) {
    const FeedService::Metrics sm = shard.service->GetMetrics();
    total += sm.messages_per_request * static_cast<double>(sm.shares + sm.queries);
  }
  return total;
}

std::pair<double, double> ClusterService::CostsUnder(const Workload& truth) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  double intra = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Workload local =
        map_.ProjectWorkload(truth, static_cast<uint32_t>(s));
    intra += shards_[s].service->CostsUnder(local).first;
  }
  // The baseline ignores placement: one unsharded deployment's hybrid cost.
  return {intra + cross_.PredictedCost(truth), HybridCost(graph_, truth)};
}

ClusterMetrics ClusterService::GetMetrics() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ClusterMetrics m;
  m.shards = shards_.size();
  m.partitioner = options_.partitioner;
  m.cross_edges = cross_.num_edges();
  m.replicas = cross_.num_replicas();
  m.cross_cost = cross_.PredictedCost(workload_);
  m.churn_ops = churn_ops_;
  m.shares = shares_.load(std::memory_order_relaxed);
  m.queries = queries_.load(std::memory_order_relaxed);
  m.audited_queries = audited_queries_.load(std::memory_order_relaxed);
  const CrossTraffic traffic = cross_.traffic();
  m.cross_update_messages = traffic.update_messages;
  m.cross_query_messages = traffic.query_messages;
  m.per_shard_requests.resize(per_shard_requests_.size());
  for (size_t s = 0; s < per_shard_requests_.size(); ++s) {
    m.per_shard_requests[s] =
        per_shard_requests_[s].load(std::memory_order_relaxed);
  }
  m.imbalance = MaxOverMean(m.per_shard_requests);

  for (const Shard& shard : shards_) {
    const FeedService::Metrics sm = shard.service->GetMetrics();
    m.planner = sm.planner;
    m.intra_cost += sm.schedule_cost;
    m.replans += sm.replans;
    m.drift_replans += sm.drift_replans;
    m.max_drift_score = std::max(m.max_drift_score, sm.drift_score);
    m.repairs += sm.repairs;
  }
  m.total_cost = m.intra_cost + m.cross_cost;
  const uint64_t requests = m.shares + m.queries;
  if (requests > 0) {
    // Lifetime average, so the one-off backfill messages of setup and
    // cross-shard Follows are included (unlike Drive's per-run delta).
    m.messages_per_request =
        (ShardMessages() +
         static_cast<double>(m.cross_update_messages + m.cross_query_messages)) /
        static_cast<double>(requests);
  }
  return m;
}

Status ClusterService::Validate() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status st = shards_[s].service->Validate();
    if (!st.ok()) {
      return Status(st.code(), StrFormat("shard %zu: %s", s, st.message().c_str()));
    }
  }
  // Every cluster edge must have exactly one serving owner: its shard's
  // schedule (same-shard) or the router (cross-shard).
  Status st = Status::OK();
  size_t cross_seen = 0;
  graph_.ForEachEdge([&](const Edge& e) {
    if (!st.ok()) return;
    const uint32_t sp = map_.ShardOf(e.src);
    const uint32_t sc = map_.ShardOf(e.dst);
    if (sp == sc) {
      if (!shards_[sp].service->graph().HasEdge(map_.LocalId(e.src),
                                                map_.LocalId(e.dst))) {
        st = Status::Internal(StrFormat("edge %u->%u missing from shard %u",
                                        e.src, e.dst, sp));
      } else if (cross_.HasEdge(e.src, e.dst)) {
        st = Status::Internal(StrFormat("same-shard edge %u->%u tracked by router",
                                        e.src, e.dst));
      }
    } else {
      ++cross_seen;
      if (!cross_.HasEdge(e.src, e.dst)) {
        st = Status::Internal(StrFormat("cross edge %u->%u not tracked by router",
                                        e.src, e.dst));
      }
    }
  });
  PIGGY_RETURN_NOT_OK(st);
  if (cross_seen != cross_.num_edges()) {
    return Status::Internal(StrFormat("router tracks %zu cross edges, graph has %zu",
                                      cross_.num_edges(), cross_seen));
  }
  return Status::OK();
}

}  // namespace piggy
