#include "cluster/cluster_service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <unordered_set>
#include <utility>

#include "core/cost_model.h"
#include "util/alias_table.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace piggy {

namespace {

// Push/pull decision for a cross-shard edge: the hybrid (FF) rule, same
// tie-break as HybridSchedule — push iff rp(producer) <= rc(consumer).
CrossEdgeMode DecideMode(const Workload& w, NodeId producer, NodeId consumer) {
  return w.rp(producer) <= w.rc(consumer) ? CrossEdgeMode::kPush
                                          : CrossEdgeMode::kPull;
}

// The node -> shard assignment, persisted at Create so Recover rebuilds the
// exact placement (the partitioner may be randomized), and atomically
// re-pointed by MigrateUsers (the rename IS the migration's durable commit):
//   v1 "PIGGYASN": u64 magic, u64 num_shards, u64 num_nodes, num_nodes x u32.
//   v2 "PIGGYAS2": v1 followed by num_shards x u64 per-shard directory
//                  generations, so recovery opens the directories the last
//                  committed migration produced.
constexpr uint64_t kAssignmentMagicV1 = 0x4E53415947474950ULL;  // "PIGGYASN"
constexpr uint64_t kAssignmentMagicV2 = 0x3253415947474950ULL;  // "PIGGYAS2"

std::string AssignmentPath(const std::string& data_dir) {
  return data_dir + "/assignment.bin";
}

// Basename of shard s's durability directory at generation `gen`. Generation
// 0 keeps the historical plain name so pre-migration layouts stay readable.
std::string ShardDirBasename(uint32_t s, uint64_t gen) {
  if (gen == 0) return StrFormat("shard-%04u", s);
  return StrFormat("shard-%04u.g%06llu", s,
                   static_cast<unsigned long long>(gen));
}

// Writes v2 to `path` via a same-directory temp file + rename, so a torn
// write can never clobber the committed assignment.
Status WriteAssignment(const ShardMap& map,
                       const std::vector<uint64_t>& generations,
                       const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError(StrFormat("cannot write %s", tmp.c_str()));
    }
    auto put = [&out](const void* p, size_t n) {
      out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    };
    const uint64_t magic = kAssignmentMagicV2;
    const uint64_t shards = map.num_shards();
    const uint64_t nodes = map.num_nodes();
    put(&magic, sizeof magic);
    put(&shards, sizeof shards);
    put(&nodes, sizeof nodes);
    put(map.assignment().data(), map.assignment().size() * sizeof(uint32_t));
    put(generations.data(), generations.size() * sizeof(uint64_t));
    out.flush();
    if (!out) {
      return Status::IOError(StrFormat("short write to %s", tmp.c_str()));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError(StrFormat("cannot rename %s over %s: %s",
                                     tmp.c_str(), path.c_str(),
                                     ec.message().c_str()));
  }
  return Status::OK();
}

struct AssignmentFile {
  uint64_t num_shards = 0;
  std::vector<uint32_t> shard_of;
  std::vector<uint64_t> generations;  // zeros for a v1 file
};

Result<AssignmentFile> ReadAssignment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  auto get = [&in](void* p, size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0;
  if (!get(&magic, sizeof magic) ||
      (magic != kAssignmentMagicV1 && magic != kAssignmentMagicV2)) {
    return Status::IOError(
        StrFormat("%s is not an assignment file", path.c_str()));
  }
  AssignmentFile file;
  uint64_t nodes = 0;
  if (!get(&file.num_shards, sizeof file.num_shards) ||
      !get(&nodes, sizeof nodes)) {
    return Status::IOError(StrFormat("%s: truncated header", path.c_str()));
  }
  if (file.num_shards == 0 || nodes > (1ull << 32)) {
    return Status::IOError(StrFormat("%s: implausible header", path.c_str()));
  }
  file.shard_of.resize(nodes);
  if (nodes > 0 && !get(file.shard_of.data(), nodes * sizeof(uint32_t))) {
    return Status::IOError(
        StrFormat("%s: truncated assignment", path.c_str()));
  }
  file.generations.assign(file.num_shards, 0);
  if (magic == kAssignmentMagicV2 &&
      !get(file.generations.data(), file.num_shards * sizeof(uint64_t))) {
    return Status::IOError(
        StrFormat("%s: truncated generation table", path.c_str()));
  }
  return file;
}

double MaxOverMean(const std::vector<uint64_t>& loads) {
  if (loads.empty()) return 0;
  uint64_t total = 0, max = 0;
  for (uint64_t x : loads) {
    total += x;
    max = std::max(max, x);
  }
  if (total == 0) return 0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(max) / mean;
}

double MaxOverMean(const std::vector<double>& loads) {
  if (loads.empty()) return 0;
  double total = 0, max = 0;
  for (double x : loads) {
    total += x;
    max = std::max(max, x);
  }
  if (total <= 0) return 0;
  return max / (total / static_cast<double>(loads.size()));
}

}  // namespace

std::string ClusterMetrics::ToString() const {
  return StrFormat(
      "shards=%zu partitioner=%s planner=%s cost=%.1f (intra=%.1f cross=%.1f) "
      "cross_edges=%zu replicas=%zu replans=%zu (drift=%zu score=%.3f) "
      "repairs=%zu churn=%zu "
      "shares=%lu queries=%lu audited=%lu cross_msgs=%lu+%lu mpr=%.2f "
      "imbalance=%.2f windowed=%.2f migrations=%zu (moved=%zu)",
      shards, partitioner.c_str(), planner.c_str(), total_cost, intra_cost,
      cross_cost, cross_edges, replicas, replans, drift_replans,
      max_drift_score, repairs, churn_ops,
      static_cast<unsigned long>(shares), static_cast<unsigned long>(queries),
      static_cast<unsigned long>(audited_queries),
      static_cast<unsigned long>(cross_update_messages),
      static_cast<unsigned long>(cross_query_messages), messages_per_request,
      imbalance, windowed_imbalance, migrations, migrated_users);
}

std::string ClusterDriveReport::ToString() const {
  return StrFormat(
      "requests=%lu (shares=%lu queries=%lu) msgs/req=%.3f cross/req=%.3f "
      "imbalance=%.2f audits=%zu unavailable=%zu",
      static_cast<unsigned long>(requests), static_cast<unsigned long>(shares),
      static_cast<unsigned long>(queries), messages_per_request,
      cross_messages_per_request, imbalance, audited_queries, unavailable);
}

ClusterService::ClusterService(ClusterOptions options, ShardMap map,
                               Workload workload, size_t feed_size)
    : options_(std::move(options)),
      map_(std::move(map)),
      workload_(std::move(workload)),
      feed_size_(feed_size),
      cross_(map_.num_shards(), feed_size),
      producer_seqs_(map_.num_nodes()),
      per_user_requests_(map_.num_nodes()),
      per_user_served_(map_.num_nodes()) {
  down_.assign(map_.num_shards(), 0);
  shard_gen_.assign(map_.num_shards(), 0);
  window_ema_.assign(map_.num_shards(), 0.0);
  window_last_.assign(map_.num_shards(), 0);
  window_send_ema_.assign(map_.num_shards(), 0.0);
  window_last_sends_.assign(map_.num_shards(), 0);
  // Register the router counters once; the hot path records through the
  // cached pointers. Per-user vectors stay raw atomics — a striped Counter
  // is 16 cache lines, far too heavy at num_nodes granularity.
  shares_ = &registry_.GetCounter("cluster.shares");
  queries_ = &registry_.GetCounter("cluster.queries");
  audited_queries_ = &registry_.GetCounter("cluster.audited_queries");
  migrations_ = &registry_.GetCounter("cluster.migrations");
  migrated_users_ = &registry_.GetCounter("cluster.migrated_users");
  per_shard_requests_.reserve(map_.num_shards());
  per_shard_fanout_.reserve(map_.num_shards());
  for (uint32_t s = 0; s < map_.num_shards(); ++s) {
    per_shard_requests_.push_back(
        &registry_.GetCounter(StrFormat("cluster.shard%02u.requests", s)));
    per_shard_fanout_.push_back(
        &registry_.GetCounter(StrFormat("cluster.shard%02u.fanout_sends", s)));
  }
}

FeedServiceOptions ClusterService::ShardOptions(uint32_t s) const {
  return ShardOptionsForGen(s, shard_gen_[s]);
}

FeedServiceOptions ClusterService::ShardOptionsForGen(uint32_t s,
                                                      uint64_t gen) const {
  FeedServiceOptions opts = options_.shard;
  // With an auto thread budget each shard planner stays single-threaded —
  // the cluster is the parallel dimension, and oversubscribing k shards x p
  // planner threads helps nobody.
  if (map_.num_shards() > 1 && opts.plan_context.num_threads == 0) {
    opts.plan_context.num_threads = 1;
  }
  opts.durability = options_.durability;
  if (options_.durability.enabled()) {
    opts.durability.data_dir =
        StrFormat("%s/%s", options_.durability.data_dir.c_str(),
                  ShardDirBasename(s, gen).c_str());
  }
  // All shards share the cluster's trace ring, each stamping its own id.
  opts.trace = options_.trace;
  opts.trace_shard = static_cast<int32_t>(s);
  return opts;
}

Result<std::unique_ptr<ClusterService>> ClusterService::Create(
    const Graph& graph, const ClusterOptions& options) {
  PIGGY_ASSIGN_OR_RETURN(Workload workload,
                         GenerateWorkload(graph, options.shard.workload));
  return Create(graph, std::move(workload), options);
}

Result<std::unique_ptr<ClusterService>> ClusterService::Create(
    const Graph& graph, Workload workload, const ClusterOptions& options) {
  if (workload.num_users() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("workload covers %zu users but graph has %zu nodes",
                  workload.num_users(), graph.num_nodes()));
  }
  if (options.shard.prototype.feed_size == 0) {
    return Status::InvalidArgument("feed_size must be positive");
  }
  PIGGY_ASSIGN_OR_RETURN(
      std::unique_ptr<Partitioner> partitioner,
      MakePartitioner(options.partitioner, graph, workload, options.num_shards,
                      options.partition_salt));
  PIGGY_ASSIGN_OR_RETURN(ShardMap map, ShardMap::Build(graph, *partitioner));

  ClusterOptions opts = options;
  opts.partitioner = partitioner->name();  // canonicalize aliases
  auto cluster = std::unique_ptr<ClusterService>(
      new ClusterService(std::move(opts), std::move(map), std::move(workload),
                         options.shard.prototype.feed_size));
  cluster->graph_ = DynamicGraph(graph);

  const size_t shards = cluster->map_.num_shards();
  std::vector<Graph> subgraphs(shards);
  std::vector<Workload> locals(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    PIGGY_ASSIGN_OR_RETURN(subgraphs[s],
                           cluster->map_.InducedSubgraph(graph, s));
    locals[s] = cluster->map_.ProjectWorkload(cluster->workload_, s);
  }

  // Durable cluster: persist the placement and open the cluster-level pair
  // before the shards spawn (each shard creates its own directory inside).
  if (options.durability.enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(options.durability.data_dir, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot create %s: %s",
                                       options.durability.data_dir.c_str(),
                                       ec.message().c_str()));
    }
    PIGGY_RETURN_NOT_OK(
        WriteAssignment(cluster->map_, cluster->shard_gen_,
                        AssignmentPath(options.durability.data_dir)));
    DurabilityOptions cluster_dur = options.durability;
    cluster_dur.data_dir += "/cluster";
    cluster_dur.metrics = &cluster->registry_;
    cluster_dur.trace = options.trace;
    cluster_dur.trace_shard = -1;  // the router pair is cluster-level
    PIGGY_ASSIGN_OR_RETURN(cluster->durability_,
                           ShardDurability::Create(cluster_dur, graph));
  }

  // Every shard plans concurrently on its induced subgraph.
  cluster->shards_.resize(shards);
  std::vector<Status> status(shards);
  {
    ThreadPool pool(std::min(shards, ThreadPool::DefaultThreads()));
    ParallelFor(pool, shards, [&](size_t s) {
      auto service = FeedService::Create(
          subgraphs[s], std::move(locals[s]),
          cluster->ShardOptions(static_cast<uint32_t>(s)));
      if (service.ok()) {
        cluster->shards_[s].service = std::move(service).MoveValueOrDie();
      } else {
        status[s] = service.status();
      }
    });
  }
  for (uint32_t s = 0; s < shards; ++s) {
    if (!status[s].ok()) {
      return Status(status[s].code(),
                    StrFormat("shard %u: %s", s, status[s].message().c_str()));
    }
  }

  // Hand every cross-shard edge to the router at the cheaper side. No events
  // exist yet, so replica backfills are empty (and the backfill messages
  // below are the one-off materialization cost, not steady-state traffic).
  graph.ForEachEdge([&](const Edge& e) {
    const uint32_t sp = cluster->map_.ShardOf(e.src);
    const uint32_t sc = cluster->map_.ShardOf(e.dst);
    if (sp == sc) return;
    cluster->cross_.AddEdge(e.src, sp, e.dst, sc,
                            DecideMode(cluster->workload_, e.src, e.dst), {});
  });

  // Snapshot 0 of the cluster pair: the initial rates + sequence counter
  // (the churn delta is empty, the shards own schedules and events). Opens
  // the cluster WAL for the churn to come.
  if (cluster->durability_ != nullptr) {
    std::unique_lock<std::shared_mutex> lock(cluster->mu_);
    PIGGY_RETURN_NOT_OK(cluster->WriteSnapshotLocked());
  }
  return cluster;
}

Result<std::unique_ptr<ClusterService>> ClusterService::Recover(
    const ClusterOptions& options, RecoveryStats* stats_out) {
  if (!options.durability.enabled()) {
    return Status::InvalidArgument(
        "ClusterService::Recover needs options.durability.data_dir");
  }
  if (options.shard.prototype.feed_size == 0) {
    return Status::InvalidArgument("feed_size must be positive");
  }
  const auto start = std::chrono::steady_clock::now();
  const double trace_start =
      options.trace != nullptr ? options.trace->NowUs() : 0;
  RecoveryStats stats;

  // Cluster-level pair first: the base graph, the newest valid snapshot
  // (rates + churn delta + sequence counter) and the WAL tail.
  DurabilityOptions cluster_dur = options.durability;
  cluster_dur.data_dir += "/cluster";
  PIGGY_ASSIGN_OR_RETURN(std::unique_ptr<ShardDurability> durability,
                         ShardDurability::Open(cluster_dur));
  PIGGY_ASSIGN_OR_RETURN(ShardDurability::RecoveredState rec,
                         durability->Recover());
  stats.snapshot_id = rec.snapshot.id;
  stats.wal_records = rec.wal_records.size();
  stats.torn_tail = rec.torn_tail;
  stats.fallback = rec.fallback;
  stats.wal_valid_bytes = rec.wal_valid_bytes;
  stats.wal_total_bytes = rec.wal_total_bytes;

  const size_t n = rec.base_graph.num_nodes();
  if (rec.snapshot.production.size() != n) {
    return Status::IOError(
        StrFormat("cluster snapshot has %zu rates for %zu nodes",
                  rec.snapshot.production.size(), n));
  }

  // The frozen node -> shard placement.
  PIGGY_ASSIGN_OR_RETURN(
      AssignmentFile assignment,
      ReadAssignment(AssignmentPath(options.durability.data_dir)));
  if (assignment.shard_of.size() != n) {
    return Status::IOError(
        StrFormat("assignment covers %zu nodes, base graph has %zu",
                  assignment.shard_of.size(), n));
  }
  PIGGY_ASSIGN_OR_RETURN(
      ShardMap map, ShardMap::FromAssignment(std::move(assignment.shard_of),
                                             assignment.num_shards));

  Workload workload;
  workload.production = std::move(rec.snapshot.production);
  workload.consumption = std::move(rec.snapshot.consumption);
  auto cluster = std::unique_ptr<ClusterService>(
      new ClusterService(options, std::move(map), std::move(workload),
                         options.shard.prototype.feed_size));

  // Cluster graph at snapshot time: base + delta. The WAL tail is replayed
  // through Follow/Unfollow below, after the router is rebuilt.
  cluster->graph_ = DynamicGraph(rec.base_graph);
  for (const auto& [added, edge] : rec.snapshot.churn) {
    if (edge.src >= n || edge.dst >= n) {
      return Status::IOError(StrFormat(
          "cluster snapshot churn names edge %u->%u beyond %zu nodes",
          edge.src, edge.dst, n));
    }
    if (added) {
      cluster->graph_.AddEdge(edge.src, edge.dst);
    } else {
      cluster->graph_.RemoveEdge(edge.src, edge.dst);
    }
  }

  // Every shard recovers from its own pair, in parallel (recovery is
  // single-threaded per shard; the cluster is the parallel dimension).
  const size_t shards = cluster->map_.num_shards();
  cluster->shard_gen_ = std::move(assignment.generations);

  // Drop orphaned shard directories: generations a crashed migration built
  // but never committed (crash before the assignment rename), or superseded
  // ones a crash kept the migration from removing (crash right after it).
  {
    std::unordered_set<std::string> expected;
    for (uint32_t s = 0; s < shards; ++s) {
      expected.insert(ShardDirBasename(s, cluster->shard_gen_[s]));
    }
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(
             options.durability.data_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard-", 0) != 0 || expected.count(name) > 0) continue;
      std::error_code rm_ec;
      std::filesystem::remove_all(entry.path(), rm_ec);
    }
  }
  cluster->shards_.resize(shards);
  std::vector<Status> status(shards);
  std::vector<RecoveryStats> shard_stats(shards);
  {
    ThreadPool pool(std::min(shards, ThreadPool::DefaultThreads()));
    ParallelFor(pool, shards, [&](size_t s) {
      auto service =
          FeedService::Recover(cluster->ShardOptions(static_cast<uint32_t>(s)),
                               &shard_stats[s]);
      if (service.ok()) {
        cluster->shards_[s].service = std::move(service).MoveValueOrDie();
      } else {
        status[s] = service.status();
      }
    });
  }
  for (uint32_t s = 0; s < shards; ++s) {
    if (!status[s].ok()) {
      return Status(status[s].code(),
                    StrFormat("shard %u: %s", s, status[s].message().c_str()));
    }
    stats.Accumulate(shard_stats[s]);
  }

  // Share histories + the global sequence counter, rebuilt from the
  // recovered shard event logs (shares were routed with explicit seqs, so
  // shard event ids ARE the global sequence numbers). No locks needed: the
  // cluster is not serving yet.
  uint64_t max_seq = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    PIGGY_ASSIGN_OR_RETURN(Prototype * plane,
                           cluster->shards_[s].service->ServingPlane());
    for (const EventTuple& e : plane->EventLog()) {
      const NodeId global = cluster->map_.GlobalId(s, e.producer);
      cluster->producer_seqs_[global].push_back(e.event_id);
      max_seq = std::max(max_seq, e.event_id);
    }
  }
  for (std::vector<uint64_t>& history : cluster->producer_seqs_) {
    std::sort(history.begin(), history.end());
    if (history.size() > cluster->feed_size_) {
      history.erase(history.begin(),
                    history.end() -
                        static_cast<std::ptrdiff_t>(cluster->feed_size_));
    }
  }
  cluster->next_seq_.store(std::max<uint64_t>(max_seq + 1, 1),
                           std::memory_order_seq_cst);

  // Cross-shard index: every cross edge of the recovered graph goes back to
  // the router at the side the recovered rates prefer; push replicas
  // backfill from the rebuilt histories. (Push/pull placement only shapes
  // message accounting — merged feed contents are mode-independent, so a
  // rate shift flipping a mode across the crash cannot change any feed.)
  cluster->graph_.ForEachEdge([&](const Edge& e) {
    const uint32_t sp = cluster->map_.ShardOf(e.src);
    const uint32_t sc = cluster->map_.ShardOf(e.dst);
    if (sp == sc) return;
    cluster->cross_.AddEdge(e.src, sp, e.dst, sc,
                            DecideMode(cluster->workload_, e.src, e.dst),
                            cluster->producer_seqs_[e.src]);
  });

  // Replay the cluster WAL tail through the public API. Records whose shard
  // forward survived the crash heal as no-ops; records the crash cut off
  // mid-route re-apply (the shard re-logs genuinely missing churn).
  cluster->durability_ = std::move(durability);
  cluster->durability_->BindObservability(&cluster->registry_, options.trace,
                                         /*trace_shard=*/-1);
  cluster->replaying_ = true;
  for (const WalRecord& r : rec.wal_records) {
    Status st;
    switch (r.type) {
      case WalRecordType::kFollow:
        st = cluster->Follow(r.user, r.producer);
        ++stats.replayed_follows;
        break;
      case WalRecordType::kUnfollow:
        st = cluster->Unfollow(r.user, r.producer);
        ++stats.replayed_unfollows;
        break;
      case WalRecordType::kRateShift:
        st = cluster->SetUserRates(r.user, r.rp, r.rc);
        ++stats.replayed_rate_shifts;
        break;
      default:
        st = Status::IOError(
            StrFormat("cluster WAL holds record type %u (only churn and rate "
                      "shifts are cluster-level)",
                      static_cast<unsigned>(r.type)));
        break;
    }
    PIGGY_RETURN_NOT_OK(st);
  }
  cluster->replaying_ = false;
  PIGGY_RETURN_NOT_OK(cluster->durability_->ResumeAppending());

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cluster->recovery_stats_ = stats;
  if (options.trace != nullptr) {
    options.trace->Span(
        obs::TraceEventKind::kRecovery, trace_start, /*shard=*/-1,
        {{"shards", std::to_string(shards)},
         {"wal_records", std::to_string(stats.wal_records)},
         {"snapshot_events", std::to_string(stats.snapshot_events)},
         {"torn_tail", stats.torn_tail ? "1" : "0"},
         {"fallback", stats.fallback ? "1" : "0"}},
        "cluster_recover");
  }
  if (stats_out != nullptr) *stats_out = stats;
  return cluster;
}

std::vector<uint64_t> ClusterService::HistorySnapshot(NodeId producer) const {
  std::lock_guard<std::mutex> stripe(StripeFor(producer));
  return producer_seqs_[producer];
}

Status ClusterService::Share(NodeId u) {
  if (u >= map_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  const uint32_t s = map_.ShardOf(u);
  if (down_[s]) {
    return Status::Unavailable(
        StrFormat("shard %u hosting user %u is down", s, u));
  }
  // In-flight up BEFORE the seq draw, down after publication: together with
  // next_seq_ this lets audits prove a read window was share-free (any
  // overlapping share is caught in flight at one end of the window or moved
  // the counter in between).
  shares_in_flight_.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_seq_cst);
  // The shard serves the event under the global sequence number, so local
  // feeds order by cluster-wide share order and merged queries read
  // event_id directly. (On a shard error the seq is burned — gaps are
  // harmless, the oracle only ever sees published numbers.)
  Status st = shards_[s].service->Share(map_.LocalId(u), seq);
  if (st.ok()) {
    std::lock_guard<std::mutex> stripe(StripeFor(u));
    std::vector<uint64_t>& history = producer_seqs_[u];
    // Sorted from the tail: a thread that drew an earlier seq but reached
    // the stripe later still lands in order.
    auto pos = history.end();
    while (pos != history.begin() && *(pos - 1) > seq) --pos;
    history.insert(pos, seq);
    if (history.size() > feed_size_) history.erase(history.begin());
    const size_t fanout = cross_.Publish(u, seq);
    per_shard_requests_[s]->Add();
    per_user_requests_[u].fetch_add(1, std::memory_order_relaxed);
    if (fanout > 0) {
      // Sending the batched fan-out is work on the producer's shard (the
      // receiving shards are charged inside Publish) — and it follows the
      // producer when it migrates, so it counts toward the user's load too.
      per_shard_fanout_[s]->Add(fanout);
      per_user_served_[u].fetch_add(fanout, std::memory_order_relaxed);
    }
    shares_->Add();
  }
  shares_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
  return st;
}

Result<std::vector<EventTuple>> ClusterService::QueryStream(NodeId u) {
  const bool audit =
      options_.audit_every > 0 &&
      (queries_since_audit_.fetch_add(1, std::memory_order_relaxed) + 1) %
              options_.audit_every ==
          0;
  return QueryInternal(u, audit);
}

Result<std::vector<EventTuple>> ClusterService::QueryInternal(NodeId u,
                                                              bool force_audit) {
  if (u >= map_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  const uint32_t s = map_.ShardOf(u);
  if (down_[s]) {
    return Status::Unavailable(
        StrFormat("shard %u hosting user %u is down", s, u));
  }
  AuditToken token;
  if (force_audit) {
    token.quiescent =
        shares_in_flight_.load(std::memory_order_seq_cst) == 0;
    token.next_seq = next_seq_.load(std::memory_order_seq_cst);
  }
  PIGGY_ASSIGN_OR_RETURN(std::vector<EventTuple> local,
                         shards_[s].service->QueryStream(map_.LocalId(u)));
  per_shard_requests_[s]->Add();
  per_user_requests_[u].fetch_add(1, std::memory_order_relaxed);
  queries_->Add();

  // Collect (seq, producer) candidates. Local feed events carry global
  // sequence numbers (shares are routed with explicit seqs), so event_id is
  // the global share order directly.
  std::vector<std::pair<uint64_t, NodeId>> candidates;
  candidates.reserve(local.size() + 8);
  for (const EventTuple& e : local) {
    candidates.emplace_back(e.event_id, map_.GlobalId(s, e.producer));
  }
  // Remote push producers: replicas materialized in u's own shard, free.
  // Contents are copied out under the producer's stripe (the lock a racing
  // Publish holds).
  for (NodeId producer : cross_.PushProducers(u)) {
    std::lock_guard<std::mutex> stripe(StripeFor(producer));
    for (uint64_t seq : cross_.ReadReplica(s, producer)) {
      candidates.emplace_back(seq, producer);
    }
  }
  // Remote pulls: one batched message per touched shard.
  std::span<const uint32_t> pull_shards = cross_.PullShards(u);
  for (uint32_t remote : pull_shards) {
    for (NodeId producer : cross_.PullProducers(u, remote)) {
      // Serving this pull is work on the *producer's* shard — attribute it
      // to the producer so PerUserLoad follows the work when it moves.
      per_user_served_[producer].fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> stripe(StripeFor(producer));
      for (uint64_t seq : producer_seqs_[producer]) {
        candidates.emplace_back(seq, producer);
      }
    }
  }
  cross_.CountQueryFanout(pull_shards);

  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (candidates.size() > feed_size_) candidates.resize(feed_size_);
  std::vector<EventTuple> stream;
  stream.reserve(candidates.size());
  for (const auto& [seq, producer] : candidates) {
    stream.push_back(EventTuple{producer, seq, seq});
  }

  if (force_audit) {
    PIGGY_RETURN_NOT_OK(AuditMerged(u, stream, token));
    audited_queries_->Add();
  }
  return stream;
}

Status ClusterService::AuditMerged(NodeId u,
                                   const std::vector<EventTuple>& stream,
                                   const AuditToken& token) {
  auto followees = graph_.InNeighbors(u);
  auto allowed = [&](NodeId producer) {
    return producer == u ||
           std::binary_search(followees.begin(), followees.end(), producer);
  };
  // Soundness: only events of followed producers, newest-first, no repeats.
  // Always checkable — racing shares can only add events, never forge one.
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!allowed(stream[i].producer)) {
      return Status::Internal(StrFormat("merged stream of %u leaks producer %u",
                                        u, stream[i].producer));
    }
    if (i > 0 && stream[i].event_id >= stream[i - 1].event_id) {
      return Status::Internal(
          StrFormat("merged stream of %u not newest-first at %zu", u, i));
    }
  }

  // Completeness needs a share-free read window (the token's quiescence
  // protocol, mirroring Prototype::AuditToken) and untrimmed shard views
  // (same guard as Prototype::AuditStream).
  if (!token.quiescent ||
      shares_in_flight_.load(std::memory_order_seq_cst) != 0 ||
      next_seq_.load(std::memory_order_seq_cst) != token.next_seq) {
    return Status::OK();
  }
  const uint32_t s = map_.ShardOf(u);
  PIGGY_ASSIGN_OR_RETURN(const uint64_t trimmed,
                         shards_[s].service->TrimmedEvents());
  if (trimmed > 0) return Status::OK();

  std::vector<std::pair<uint64_t, NodeId>> oracle;
  auto add_producer = [&](NodeId p) {
    for (uint64_t seq : HistorySnapshot(p)) oracle.emplace_back(seq, p);
  };
  add_producer(u);
  for (NodeId p : followees) add_producer(p);
  // The history snapshots above sit outside the window the recheck proved
  // share-free: a share landing between the recheck and a snapshot would put
  // an event in the oracle the stream never saw. Re-verify before comparing
  // (a share starting after this line cannot have touched the reads above).
  if (shares_in_flight_.load(std::memory_order_seq_cst) != 0 ||
      next_seq_.load(std::memory_order_seq_cst) != token.next_seq) {
    return Status::OK();
  }
  std::sort(oracle.begin(), oracle.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (oracle.size() > feed_size_) oracle.resize(feed_size_);
  if (oracle.size() != stream.size()) {
    return Status::Internal(StrFormat("merged stream of %u has %zu events, oracle %zu",
                                      u, stream.size(), oracle.size()));
  }
  for (size_t i = 0; i < oracle.size(); ++i) {
    if (stream[i].event_id != oracle[i].first ||
        stream[i].producer != oracle[i].second) {
      return Status::Internal(
          StrFormat("merged stream of %u diverges from oracle at %zu", u, i));
    }
  }
  return Status::OK();
}

Status ClusterService::ApplyChurnLocked() {
  ++churn_ops_;
  ++churn_since_replan_;
  // During WAL replay the policies below are inert: shard replans fire at
  // their kReplanCommit positions in the shard WALs, and snapshots don't
  // rotate mid-recovery.
  if (replaying_) return Status::OK();
  if (options_.replan_after_churn > 0 &&
      churn_since_replan_ >= options_.replan_after_churn) {
    churn_since_replan_ = 0;
    if (options_.shard.background_replan) {
      // Per-shard background replanners: post and keep serving.
      for (Shard& shard : shards_) {
        if (shard.service == nullptr) continue;
        PIGGY_RETURN_NOT_OK(shard.service->StartBackgroundReplan());
      }
    } else {
      PIGGY_RETURN_NOT_OK(ReplanLocked());
    }
  }
  if (durability_ != nullptr && options_.durability.snapshot_every > 0 &&
      durability_->records_since_snapshot() >=
          options_.durability.snapshot_every) {
    return WriteSnapshotLocked();
  }
  return Status::OK();
}

Status ClusterService::Follow(NodeId follower, NodeId producer) {
  if (follower >= map_.num_nodes() || producer >= map_.num_nodes()) {
    return Status::InvalidArgument("unknown user in Follow");
  }
  if (follower == producer) {
    return Status::InvalidArgument("users may not follow themselves");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (graph_.HasEdge(producer, follower)) return Status::OK();
  const uint32_t sp = map_.ShardOf(producer);
  const uint32_t sc = map_.ShardOf(follower);
  if (sp == sc && down_[sp]) {
    return Status::Unavailable(StrFormat("shard %u is down", sp));
  }
  // Cluster WAL first, shard second: a crash in between leaves the record
  // without the shard edge, and replay heals it (routing the record through
  // this same path is idempotent on the already-applied side).
  if (durability_ != nullptr && !replaying_) {
    PIGGY_RETURN_NOT_OK(durability_->LogChurn(true, producer, follower));
  }
  if (sp == sc) {
    PIGGY_RETURN_NOT_OK(shards_[sp].service->Follow(map_.LocalId(follower),
                                                    map_.LocalId(producer)));
  } else {
    // Exclusive cluster lock: no share is mid-publication, so the history is
    // stable without its stripe.
    cross_.AddEdge(producer, sp, follower, sc,
                   DecideMode(workload_, producer, follower),
                   producer_seqs_[producer]);
  }
  graph_.AddEdge(producer, follower);
  if (migration_active_) {
    migration_journal_.push_back(MigrationJournalEntry{
        MigrationJournalEntry::Kind::kFollow, producer, follower, 0, 0});
  }
  return ApplyChurnLocked();
}

Status ClusterService::Unfollow(NodeId follower, NodeId producer) {
  if (follower >= map_.num_nodes() || producer >= map_.num_nodes()) {
    return Status::InvalidArgument("unknown user in Unfollow");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!graph_.HasEdge(producer, follower)) return Status::OK();
  const uint32_t sp = map_.ShardOf(producer);
  const uint32_t sc = map_.ShardOf(follower);
  if (sp == sc && down_[sp]) {
    return Status::Unavailable(StrFormat("shard %u is down", sp));
  }
  if (durability_ != nullptr && !replaying_) {
    PIGGY_RETURN_NOT_OK(durability_->LogChurn(false, producer, follower));
  }
  if (sp == sc) {
    PIGGY_RETURN_NOT_OK(shards_[sp].service->Unfollow(map_.LocalId(follower),
                                                      map_.LocalId(producer)));
  } else {
    cross_.RemoveEdge(producer, follower);
  }
  graph_.RemoveEdge(producer, follower);
  if (migration_active_) {
    migration_journal_.push_back(MigrationJournalEntry{
        MigrationJournalEntry::Kind::kUnfollow, producer, follower, 0, 0});
  }
  return ApplyChurnLocked();
}

Status ClusterService::SetUserRates(NodeId u, double production,
                                    double consumption) {
  if (u >= map_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("unknown user %u", u));
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uint32_t s = map_.ShardOf(u);
  if (down_[s]) {
    return Status::Unavailable(
        StrFormat("shard %u hosting user %u is down", s, u));
  }
  if (durability_ != nullptr && !replaying_) {
    PIGGY_RETURN_NOT_OK(durability_->LogRateShift(u, production, consumption));
  }
  workload_.production[u] = production;
  workload_.consumption[u] = consumption;
  PIGGY_RETURN_NOT_OK(shards_[s].service->SetUserRates(map_.LocalId(u),
                                                       production,
                                                       consumption));
  if (migration_active_) {
    migration_journal_.push_back(MigrationJournalEntry{
        MigrationJournalEntry::Kind::kRate, u, 0, production, consumption});
  }
  if (durability_ != nullptr && !replaying_ &&
      options_.durability.snapshot_every > 0 &&
      durability_->records_since_snapshot() >=
          options_.durability.snapshot_every) {
    return WriteSnapshotLocked();
  }
  return Status::OK();
}

Status ClusterService::KillShard(uint32_t s) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (s >= shards_.size()) {
    return Status::InvalidArgument(StrFormat("unknown shard %u", s));
  }
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "KillShard requires durability (the shard state would be lost)");
  }
  if (down_[s]) return Status::OK();
  // Orderly drop: the FeedService destructor flushes the shard WAL. Crash
  // semantics — lost buffered appends, torn tails — are exercised through
  // the FailPoint registry instead.
  shards_[s].service.reset();
  down_[s] = 1;
  registry_.GetCounter("cluster.shard_kills").Add();
  if (options_.trace != nullptr) {
    options_.trace->Instant(obs::TraceEventKind::kShardKill,
                            static_cast<int32_t>(s));
  }
  return Status::OK();
}

Status ClusterService::RestartShard(uint32_t s) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (s >= shards_.size()) {
    return Status::InvalidArgument(StrFormat("unknown shard %u", s));
  }
  if (durability_ == nullptr) {
    return Status::FailedPrecondition("RestartShard requires durability");
  }
  if (!down_[s]) return Status::OK();
  const double trace_start =
      options_.trace != nullptr ? options_.trace->NowUs() : 0;
  RecoveryStats rs;
  PIGGY_ASSIGN_OR_RETURN(shards_[s].service,
                         FeedService::Recover(ShardOptions(s), &rs));
  down_[s] = 0;
  recovery_stats_.Accumulate(rs);
  registry_.GetCounter("cluster.shard_restarts").Add();
  if (options_.trace != nullptr) {
    options_.trace->Span(
        obs::TraceEventKind::kShardRestart, trace_start,
        static_cast<int32_t>(s),
        {{"snapshot", std::to_string(rs.snapshot_id)},
         {"wal_records", std::to_string(rs.wal_records)},
         {"snapshot_events", std::to_string(rs.snapshot_events)},
         {"torn_tail", rs.torn_tail ? "1" : "0"},
         {"fallback", rs.fallback ? "1" : "0"}});
  }
  return Status::OK();
}

bool ClusterService::IsShardDown(uint32_t s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PIGGY_CHECK_LT(s, down_.size());
  return down_[s] != 0;
}

void ClusterService::RepairCrossEdges(const std::vector<NodeId>& moved_users) {
  // Every edge whose cross-ness or endpoint shards changed has at least one
  // moved endpoint (a shard map swap cannot re-place anyone else), so walking
  // the moved users' incident edges covers the whole repair. Edges between
  // two moved users show up twice; dedupe.
  U64Set seen(moved_users.size() * 4);
  auto repair = [&](NodeId p, NodeId c) {
    if (!seen.Insert(EdgeKey(p, c))) return;
    if (cross_.HasEdge(p, c)) cross_.RemoveEdge(p, c);
    const uint32_t sp = map_.ShardOf(p);
    const uint32_t sc = map_.ShardOf(c);
    if (sp != sc) {
      // Exclusive cluster lock: no share is mid-publication, so the history
      // is stable without its stripe (same argument as Follow).
      cross_.AddEdge(p, sp, c, sc, DecideMode(workload_, p, c),
                     producer_seqs_[p]);
    }
  };
  for (NodeId u : moved_users) {
    for (NodeId follower : graph_.OutNeighbors(u)) repair(u, follower);
    for (NodeId producer : graph_.InNeighbors(u)) repair(producer, u);
  }
}

Status ClusterService::MigrateUsers(const std::vector<UserMove>& moves) {
  if (moves.empty()) return Status::OK();

  // --- Freeze (exclusive): validate the batch, snapshot everything the
  // rebuild needs, and start journaling concurrent churn/rate mutations. ----
  std::vector<UserMove> effective;
  std::vector<uint32_t> affected;   // sorted shard ids with membership churn
  std::vector<uint64_t> build_gen;  // per affected index: directory gen to build
  std::optional<ShardMap> new_map;
  Graph frozen_graph;
  Workload frozen_workload;
  uint64_t frozen_next_seq = 0;
  // seeds[i][local] = frozen share history of affected[i]'s local user under
  // the NEW map.
  std::vector<std::vector<std::vector<uint64_t>>> seeds;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (migration_active_) {
      return Status::FailedPrecondition(
          "another user migration is in flight");
    }
    std::vector<uint32_t> new_assignment = map_.assignment();
    std::vector<uint8_t> moving(map_.num_nodes(), 0);
    for (const UserMove& m : moves) {
      if (m.user >= map_.num_nodes()) {
        return Status::InvalidArgument(StrFormat("unknown user %u", m.user));
      }
      if (m.to >= map_.num_shards()) {
        return Status::InvalidArgument(
            StrFormat("unknown destination shard %u", m.to));
      }
      if (moving[m.user]) {
        return Status::InvalidArgument(
            StrFormat("user %u moved twice in one batch", m.user));
      }
      moving[m.user] = 1;
      if (map_.ShardOf(m.user) == m.to) continue;  // no-op move
      effective.push_back(m);
      new_assignment[m.user] = m.to;
    }
    if (effective.empty()) return Status::OK();

    std::vector<uint8_t> is_affected(map_.num_shards(), 0);
    for (const UserMove& m : effective) {
      is_affected[map_.ShardOf(m.user)] = 1;
      is_affected[m.to] = 1;
    }
    for (uint32_t s = 0; s < map_.num_shards(); ++s) {
      if (!is_affected[s]) continue;
      if (down_[s]) {
        return Status::Unavailable(
            StrFormat("shard %u involved in the migration is down", s));
      }
      affected.push_back(s);
      build_gen.push_back(shard_gen_[s] + 1);
    }

    auto map_or = ShardMap::FromAssignment(std::move(new_assignment),
                                           map_.num_shards());
    if (!map_or.ok()) return map_or.status();
    new_map.emplace(std::move(map_or).MoveValueOrDie());

    PIGGY_ASSIGN_OR_RETURN(frozen_graph, graph_.Snapshot());
    frozen_workload = workload_;
    frozen_next_seq = next_seq_.load(std::memory_order_seq_cst);
    // Exclusive lock: no share sits between its seq draw and its history
    // publication, so every published seq is < frozen_next_seq and the
    // histories are stable without their stripes.
    seeds.resize(affected.size());
    for (size_t i = 0; i < affected.size(); ++i) {
      const std::vector<NodeId>& members = new_map->Members(affected[i]);
      seeds[i].resize(members.size());
      for (size_t l = 0; l < members.size(); ++l) {
        seeds[i][l] = producer_seqs_[members[l]];
      }
    }
    migration_active_ = true;
    migration_journal_.clear();
  }
  const double migrate_start =
      options_.trace != nullptr ? options_.trace->NowUs() : 0;
  if (options_.trace != nullptr) {
    options_.trace->Instant(
        obs::TraceEventKind::kMigrationBegin, /*shard=*/-1,
        {{"users", std::to_string(effective.size())},
         {"shards", std::to_string(affected.size())}});
  }

  // Undo of a failed migration: stop journaling and drop the half-built
  // generation directories (equivalently: what Recover's orphan scan would
  // do after a crash at the same point).
  auto abort = [&](Status why) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    migration_active_ = false;
    migration_journal_.clear();
    if (options_.durability.enabled()) {
      for (size_t i = 0; i < affected.size(); ++i) {
        std::error_code ec;
        std::filesystem::remove_all(
            ShardOptionsForGen(affected[i], build_gen[i]).durability.data_dir,
            ec);
      }
    }
    return why;
  };

  // --- Build (no lock): every affected shard's FeedService is rebuilt on its
  // new induced subgraph and seeded with the frozen histories, while Shares
  // and QueryStreams keep flowing against the old placement. With durability
  // each rebuild writes the next generation directory — migrated users' WAL
  // records land in the destination shard's own log. ------------------------
  std::vector<std::unique_ptr<FeedService>> rebuilt(affected.size());
  std::vector<Status> status(affected.size());
  {
    ThreadPool pool(std::min(affected.size(), ThreadPool::DefaultThreads()));
    ParallelFor(pool, affected.size(), [&](size_t i) {
      const uint32_t s = affected[i];
      const FeedServiceOptions opts = ShardOptionsForGen(s, build_gen[i]);
      if (opts.durability.enabled()) {
        // A crashed earlier migration may have left this generation behind
        // (Create refuses a non-empty directory).
        std::error_code ec;
        std::filesystem::remove_all(opts.durability.data_dir, ec);
      }
      auto subgraph = new_map->InducedSubgraph(frozen_graph, s);
      if (!subgraph.ok()) {
        status[i] = subgraph.status();
        return;
      }
      auto service =
          FeedService::Create(subgraph.ValueOrDie(),
                              new_map->ProjectWorkload(frozen_workload, s),
                              opts);
      if (!service.ok()) {
        status[i] = service.status();
        return;
      }
      rebuilt[i] = std::move(service).MoveValueOrDie();
      // Seed the frozen histories under their original global seqs — feeds
      // keep their cluster-wide order, and the events are WAL-logged into
      // the destination's own directory.
      const std::vector<NodeId>& members = new_map->Members(s);
      for (size_t l = 0; l < members.size(); ++l) {
        for (uint64_t seq : seeds[i][l]) {
          status[i] = rebuilt[i]->Share(static_cast<NodeId>(l), seq);
          if (!status[i].ok()) return;
        }
      }
    });
  }
  for (size_t i = 0; i < affected.size(); ++i) {
    if (!status[i].ok()) {
      return abort(Status(status[i].code(),
                          StrFormat("rebuilding shard %u: %s", affected[i],
                                    status[i].message().c_str())));
    }
  }

  // --- Publish (exclusive): catch the rebuilt shards up on everything that
  // happened during the build, commit durably, then swap in memory. ---------
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (uint32_t s : affected) {
    if (down_[s]) {
      lock.unlock();
      return abort(Status::Unavailable(StrFormat(
          "shard %u went down during the migration build", s)));
    }
  }

  // Share delta: seqs that arrived while the build ran (exclusive lock again,
  // so histories are stable; frozen seqs are all < frozen_next_seq, so there
  // is no overlap with the seeded prefix).
  for (size_t i = 0; i < affected.size(); ++i) {
    const std::vector<NodeId>& members = new_map->Members(affected[i]);
    for (size_t l = 0; l < members.size(); ++l) {
      for (uint64_t seq : producer_seqs_[members[l]]) {
        if (seq < frozen_next_seq) continue;
        Status st = rebuilt[i]->Share(static_cast<NodeId>(l), seq);
        if (!st.ok()) {
          lock.unlock();
          return abort(st);
        }
      }
    }
  }

  // Journaled churn + rate shifts. Only same-shard edges of affected shards
  // matter here: cross edges live in the router (repaired below), and
  // unaffected shards kept serving their own churn all along.
  std::vector<int64_t> rebuilt_index(map_.num_shards(), -1);
  for (size_t i = 0; i < affected.size(); ++i) {
    rebuilt_index[affected[i]] = static_cast<int64_t>(i);
  }
  for (const MigrationJournalEntry& e : migration_journal_) {
    Status st;
    if (e.kind == MigrationJournalEntry::Kind::kRate) {
      const uint32_t s = new_map->ShardOf(e.producer);
      if (rebuilt_index[s] < 0) continue;
      st = rebuilt[static_cast<size_t>(rebuilt_index[s])]->SetUserRates(
          new_map->LocalId(e.producer), e.rp, e.rc);
    } else {
      const uint32_t sp = new_map->ShardOf(e.producer);
      const uint32_t sc = new_map->ShardOf(e.follower);
      if (sp != sc || rebuilt_index[sp] < 0) continue;
      FeedService& svc = *rebuilt[static_cast<size_t>(rebuilt_index[sp])];
      st = e.kind == MigrationJournalEntry::Kind::kFollow
               ? svc.Follow(new_map->LocalId(e.follower),
                            new_map->LocalId(e.producer))
               : svc.Unfollow(new_map->LocalId(e.follower),
                              new_map->LocalId(e.producer));
    }
    if (!st.ok()) {
      lock.unlock();
      return abort(st);
    }
  }

  if (durability_ != nullptr) {
    // Migration-commit markers on both sides of every move, then the atomic
    // assignment re-point — THE durable commit. A crash before the rename
    // recovers the old placement (the new directories are orphans); after
    // it, the new one. Feeds are placement-independent, so either side
    // recovers the exact acked state.
    for (size_t i = 0; i < affected.size(); ++i) {
      Status st = shards_[affected[i]].service->LogMigrationCommit();
      if (st.ok()) st = rebuilt[i]->LogMigrationCommit();
      if (!st.ok()) {
        lock.unlock();
        return abort(st);
      }
    }
    if (FailPointRegistry::Instance().Hit("migration.commit") !=
        FailPointAction::kOff) {
      lock.unlock();
      return abort(Status::IOError("failpoint migration.commit"));
    }
    std::vector<uint64_t> new_gens = shard_gen_;
    for (size_t i = 0; i < affected.size(); ++i) {
      new_gens[affected[i]] = build_gen[i];
    }
    Status st = WriteAssignment(*new_map, new_gens,
                                AssignmentPath(options_.durability.data_dir));
    if (!st.ok()) {
      lock.unlock();
      return abort(st);
    }
    if (FailPointRegistry::Instance().Hit("migration.cutover") !=
        FailPointAction::kOff) {
      // Disk already committed the move, so the new directories must
      // survive. Fail-stop model: the caller recovers the cluster and lands
      // on the new placement.
      migration_active_ = false;
      migration_journal_.clear();
      return Status::IOError("failpoint migration.cutover");
    }
  }

  // --- In-memory commit (infallible): swap the map, the rebuilt services
  // and the router's cross-edge state. Queries were served from the source
  // shards up to this exclusive section; from here they hit the
  // destinations — no serving gap in between. -------------------------------
  std::vector<NodeId> moved_users;
  moved_users.reserve(effective.size());
  for (const UserMove& m : effective) moved_users.push_back(m.user);
  std::vector<std::string> old_dirs;
  if (options_.durability.enabled()) {
    for (size_t i = 0; i < affected.size(); ++i) {
      old_dirs.push_back(
          ShardOptionsForGen(affected[i], shard_gen_[affected[i]])
              .durability.data_dir);
    }
  }
  map_ = std::move(*new_map);
  for (size_t i = 0; i < affected.size(); ++i) {
    const uint32_t s = affected[i];
    // The replaced service flushes its WAL in its destructor (orderly
    // handoff, like KillShard).
    shards_[s].service = std::move(rebuilt[i]);
    shard_gen_[s] = build_gen[i];
  }
  RepairCrossEdges(moved_users);
  migration_active_ = false;
  migration_journal_.clear();
  migrations_->Add();
  migrated_users_->Add(effective.size());
  if (options_.trace != nullptr) {
    options_.trace->Span(
        obs::TraceEventKind::kMigrationEnd, migrate_start, /*shard=*/-1,
        {{"users", std::to_string(effective.size())},
         {"shards", std::to_string(affected.size())}});
  }
  lock.unlock();

  // Superseded generations are garbage now; a crash that skips this cleanup
  // is healed by Recover's orphan scan.
  for (const std::string& dir : old_dirs) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return Status::OK();
}

std::vector<uint64_t> ClusterService::PerUserLoad() const {
  std::vector<uint64_t> out(per_user_requests_.size());
  for (size_t u = 0; u < out.size(); ++u) {
    out[u] = per_user_requests_[u].load(std::memory_order_relaxed) +
             per_user_served_[u].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<uint64_t> ClusterService::PerUserRequests() const {
  std::vector<uint64_t> out(per_user_requests_.size());
  for (size_t u = 0; u < out.size(); ++u) {
    out[u] = per_user_requests_[u].load(std::memory_order_relaxed);
  }
  return out;
}

Result<Graph> ClusterService::GraphSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return graph_.Snapshot();
}

Status ClusterService::WriteSnapshotLocked() {
  if (durability_ == nullptr) return Status::OK();
  SnapshotData data;
  data.next_seq = next_seq_.load(std::memory_order_seq_cst);
  data.production = workload_.production;
  data.consumption = workload_.consumption;
  // No schedule and no events at the cluster level: the shards own both.
  return durability_->WriteSnapshot(std::move(data));
}

Status ClusterService::Replan() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return ReplanLocked();
}

Status ClusterService::ReplanLocked() {
  const size_t shards = shards_.size();
  std::vector<Status> status(shards);
  {
    ThreadPool pool(std::min(shards, ThreadPool::DefaultThreads()));
    ParallelFor(pool, shards, [&](size_t s) {
      if (shards_[s].service == nullptr) return;  // killed shard
      status[s] = shards_[s].service->Replan();
    });
  }
  for (uint32_t s = 0; s < shards; ++s) {
    if (!status[s].ok()) {
      return Status(status[s].code(),
                    StrFormat("shard %u: %s", s, status[s].message().c_str()));
    }
  }
  churn_since_replan_ = 0;
  return Status::OK();
}

Status ClusterService::StartBackgroundReplan() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (Shard& shard : shards_) {
    if (shard.service == nullptr) continue;  // killed shard
    PIGGY_RETURN_NOT_OK(shard.service->StartBackgroundReplan());
  }
  churn_since_replan_ = 0;
  return Status::OK();
}

Status ClusterService::WaitForBackgroundReplan() {
  // Shared cluster lock: shard replanners publish under their own locks, so
  // serving proceeds throughout the wait, and a concurrent KillShard (an
  // exclusive acquirer) cannot destroy a service out from under the loop.
  std::shared_lock<std::shared_mutex> lock(mu_);
  Status first = Status::OK();
  for (Shard& shard : shards_) {
    if (shard.service == nullptr) continue;  // killed shard
    Status st = shard.service->WaitForBackgroundReplan();
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

Result<ClusterDriveReport> ClusterService::Drive(const DriverOptions& options) {
  const double total_p = workload_.TotalProduction();
  const double total_c = workload_.TotalConsumption();
  if (total_p <= 0 || total_c <= 0) {
    return Status::InvalidArgument("workload must have positive total rates");
  }
  AliasTable share_sampler(workload_.production);
  AliasTable query_sampler(workload_.consumption);
  const double p_share = total_p / (total_p + total_c);
  Rng rng(options.seed);

  // Raw counter snapshots: the report is a per-run delta, excluding both
  // earlier runs and the one-off replica-backfill traffic of cluster setup.
  const CrossTraffic cross_before = cross_.traffic();
  const double shard_messages_before = ShardMessages();
  std::vector<uint64_t> shard_requests_before(per_shard_requests_.size());
  for (size_t s = 0; s < shard_requests_before.size(); ++s) {
    shard_requests_before[s] = per_shard_requests_[s]->Value();
  }

  ClusterDriveReport report;
  for (size_t i = 0; i < options.num_requests; ++i) {
    // A request routed to a killed shard is a service rejection, not a
    // driver error: count it and keep the mix flowing (scenario replays run
    // through shard-failure windows).
    if (rng.Bernoulli(p_share)) {
      const Status st = Share(share_sampler.Sample(rng));
      if (st.IsUnavailable()) {
        ++report.unavailable;
        continue;
      }
      PIGGY_RETURN_NOT_OK(st);
      ++report.shares;
    } else {
      const NodeId u = query_sampler.Sample(rng);
      const bool audit =
          options.audit_every > 0 && report.queries % options.audit_every == 0;
      const Status st = QueryInternal(u, audit).status();
      if (st.IsUnavailable()) {
        ++report.unavailable;
        continue;
      }
      PIGGY_RETURN_NOT_OK(st);
      ++report.queries;
      report.audited_queries += audit;
    }
  }
  report.requests = report.shares + report.queries;

  if (report.requests > 0) {
    const CrossTraffic cross_after = cross_.traffic();
    const uint64_t cross_delta =
        cross_after.update_messages + cross_after.query_messages -
        cross_before.update_messages - cross_before.query_messages;
    const double requests = static_cast<double>(report.requests);
    report.messages_per_request =
        (ShardMessages() - shard_messages_before +
         static_cast<double>(cross_delta)) /
        requests;
    report.cross_messages_per_request =
        static_cast<double>(cross_delta) / requests;
  }
  std::vector<uint64_t> routed(per_shard_requests_.size());
  for (size_t s = 0; s < routed.size(); ++s) {
    routed[s] = per_shard_requests_[s]->Value() - shard_requests_before[s];
  }
  report.imbalance = MaxOverMean(routed);
  return report;
}

double ClusterService::ShardMessages() const {
  // Exact despite going through the per-request ratio: a shard with zero
  // requests has zero client messages.
  double total = 0;
  for (const Shard& shard : shards_) {
    if (shard.service == nullptr) continue;  // killed shard
    const FeedService::Metrics sm = shard.service->GetMetrics();
    total += sm.messages_per_request * static_cast<double>(sm.shares + sm.queries);
  }
  return total;
}

std::pair<double, double> ClusterService::CostsUnder(const Workload& truth) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  double intra = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].service == nullptr) continue;  // killed shard
    const Workload local =
        map_.ProjectWorkload(truth, static_cast<uint32_t>(s));
    intra += shards_[s].service->CostsUnder(local).first;
  }
  // The baseline ignores placement: one unsharded deployment's hybrid cost.
  return {intra + cross_.PredictedCost(truth), HybridCost(graph_, truth)};
}

ClusterMetrics ClusterService::GetMetrics() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ClusterMetrics m;
  m.shards = shards_.size();
  m.partitioner = options_.partitioner;
  m.cross_edges = cross_.num_edges();
  m.replicas = cross_.num_replicas();
  m.cross_cost = cross_.PredictedCost(workload_);
  m.churn_ops = churn_ops_;
  m.shares = shares_->Value();
  m.queries = queries_->Value();
  m.audited_queries = audited_queries_->Value();
  const CrossTraffic traffic = cross_.traffic();
  m.cross_update_messages = traffic.update_messages;
  m.cross_query_messages = traffic.query_messages;
  m.per_shard_requests.resize(per_shard_requests_.size());
  for (size_t s = 0; s < per_shard_requests_.size(); ++s) {
    m.per_shard_requests[s] = per_shard_requests_[s]->Value();
  }
  m.imbalance = MaxOverMean(m.per_shard_requests);
  m.per_shard_replicas = cross_.replicas_per_shard();
  cross_.PerShardTraffic(&m.per_shard_cross_updates,
                         &m.per_shard_cross_queries);
  // Work landing on a shard = requests routed to it + replica updates written
  // into it + pull batches it served for remote consumers + fan-out batches
  // its own producers sent.
  m.per_shard_work.resize(m.per_shard_requests.size());
  for (size_t s = 0; s < m.per_shard_requests.size(); ++s) {
    m.per_shard_work[s] = m.per_shard_requests[s] +
                          m.per_shard_cross_updates[s] +
                          m.per_shard_cross_queries[s] +
                          per_shard_fanout_[s]->Value();
  }
  m.migrations = migrations_->Value();
  m.migrated_users = migrated_users_->Value();
  m.recovery = recovery_stats_;

  // Fold the per-shard work deltas since the last poll into the EMA view.
  // Idle polls (a probe and a rebalance trigger reading metrics back to
  // back) leave the window untouched so they cannot wash a hot shard out.
  {
    std::lock_guard<std::mutex> wlock(window_mu_);
    uint64_t total_delta = 0;
    for (size_t s = 0; s < m.per_shard_work.size(); ++s) {
      total_delta += m.per_shard_work[s] - window_last_[s];
    }
    if (total_delta > 0) {
      constexpr double kAlpha = 0.6;  // weight of the newest window
      for (size_t s = 0; s < m.per_shard_work.size(); ++s) {
        const double delta =
            static_cast<double>(m.per_shard_work[s] - window_last_[s]);
        window_ema_[s] = kAlpha * delta + (1 - kAlpha) * window_ema_[s];
        window_last_[s] = m.per_shard_work[s];
      }
      // Same cadence for the chatter signal: cross messages per routed
      // request over this window, EMA-smoothed.
      const uint64_t cross_now =
          m.cross_update_messages + m.cross_query_messages;
      uint64_t requests_now = 0;
      for (uint64_t r : m.per_shard_requests) requests_now += r;
      const uint64_t req_delta = requests_now - window_last_requests_;
      if (req_delta > 0) {
        const double rate = static_cast<double>(cross_now - window_last_cross_) /
                            static_cast<double>(req_delta);
        window_cross_rate_ = kAlpha * rate + (1 - kAlpha) * window_cross_rate_;
      }
      // Advance the baselines even on a request-less window: initial
      // replication and migration rebuilds emit state-transfer messages with
      // no requests attached, and they must not be billed to the next
      // window's rate.
      window_last_cross_ = cross_now;
      window_last_requests_ = requests_now;
      // Where the batched sends originate, same cadence: a celebrity's home
      // shard stands out here long before (or without) any work imbalance.
      for (size_t s = 0; s < window_send_ema_.size(); ++s) {
        const uint64_t sends = per_shard_fanout_[s]->Value();
        const double send_delta =
            static_cast<double>(sends - window_last_sends_[s]);
        window_send_ema_[s] =
            kAlpha * send_delta + (1 - kAlpha) * window_send_ema_[s];
        window_last_sends_[s] = sends;
      }
    }
    m.per_shard_window = window_ema_;
    m.windowed_cross_rate = window_cross_rate_;
    m.per_shard_send_window = window_send_ema_;
    m.windowed_send_imbalance = MaxOverMean(window_send_ema_);
  }
  m.windowed_imbalance = MaxOverMean(m.per_shard_window);

  for (const Shard& shard : shards_) {
    if (shard.service == nullptr) continue;  // killed shard
    const FeedService::Metrics sm = shard.service->GetMetrics();
    m.planner = sm.planner;
    m.intra_cost += sm.schedule_cost;
    m.replans += sm.replans;
    m.drift_replans += sm.drift_replans;
    m.max_drift_score = std::max(m.max_drift_score, sm.drift_score);
    m.repairs += sm.repairs;
    m.layout = sm.layout;
    m.interest_bytes += sm.interest_bytes;
  }
  if (graph_.num_edges() > 0) {
    m.interest_bytes_per_edge = static_cast<double>(m.interest_bytes) /
                                static_cast<double>(graph_.num_edges());
  }
  m.total_cost = m.intra_cost + m.cross_cost;
  const uint64_t requests = m.shares + m.queries;
  if (requests > 0) {
    // Lifetime average, so the one-off backfill messages of setup and
    // cross-shard Follows are included (unlike Drive's per-run delta).
    m.messages_per_request =
        (ShardMessages() +
         static_cast<double>(m.cross_update_messages + m.cross_query_messages)) /
        static_cast<double>(requests);
  }
  // Poll-time gauges: the trigger-facing signals, visible in `piggy_tool
  // stats` and registry JSON dumps next to the raw counters.
  registry_.GetGauge("cluster.imbalance").Set(m.imbalance);
  registry_.GetGauge("cluster.windowed_imbalance").Set(m.windowed_imbalance);
  registry_.GetGauge("cluster.windowed_send_imbalance")
      .Set(m.windowed_send_imbalance);
  registry_.GetGauge("cluster.windowed_cross_rate").Set(m.windowed_cross_rate);
  registry_.GetGauge("cluster.total_cost").Set(m.total_cost);
  registry_.GetGauge("cluster.interest_bytes_per_edge")
      .Set(m.interest_bytes_per_edge);
  return m;
}

Status ClusterService::Validate() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].service == nullptr) continue;  // killed shard
    Status st = shards_[s].service->Validate();
    if (!st.ok()) {
      return Status(st.code(), StrFormat("shard %zu: %s", s, st.message().c_str()));
    }
  }
  // Every cluster edge must have exactly one serving owner: its shard's
  // schedule (same-shard) or the router (cross-shard).
  Status st = Status::OK();
  size_t cross_seen = 0;
  graph_.ForEachEdge([&](const Edge& e) {
    if (!st.ok()) return;
    const uint32_t sp = map_.ShardOf(e.src);
    const uint32_t sc = map_.ShardOf(e.dst);
    if (sp == sc) {
      if (down_[sp]) return;  // shard graph unreachable while killed
      if (!shards_[sp].service->graph().HasEdge(map_.LocalId(e.src),
                                                map_.LocalId(e.dst))) {
        st = Status::Internal(StrFormat("edge %u->%u missing from shard %u",
                                        e.src, e.dst, sp));
      } else if (cross_.HasEdge(e.src, e.dst)) {
        st = Status::Internal(StrFormat("same-shard edge %u->%u tracked by router",
                                        e.src, e.dst));
      }
    } else {
      ++cross_seen;
      if (!cross_.HasEdge(e.src, e.dst)) {
        st = Status::Internal(StrFormat("cross edge %u->%u not tracked by router",
                                        e.src, e.dst));
      }
    }
  });
  PIGGY_RETURN_NOT_OK(st);
  if (cross_seen != cross_.num_edges()) {
    return Status::Internal(StrFormat("router tracks %zu cross edges, graph has %zu",
                                      cross_.num_edges(), cross_seen));
  }
  return Status::OK();
}

}  // namespace piggy
