#include "rebalance/coordinator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/string_util.h"

namespace piggy {

Result<bool> MigrationCoordinator::Step() {
  // The load window is always one step, whether or not the trigger fires:
  // sample first so a long quiet stretch cannot smear into the window that
  // finally trips the threshold.
  std::vector<uint64_t> current = cluster_.PerUserLoad();
  std::vector<uint64_t> window(current.size());
  for (size_t u = 0; u < current.size(); ++u) {
    window[u] = current[u] - last_user_load_[u];
  }
  last_user_load_ = std::move(current);

  const ClusterMetrics metrics = cluster_.GetMetrics();
  if (!trigger_.Observe(metrics)) return false;

  // The fire is worth a trace event even if the planner then finds nothing
  // to move — a fired-but-empty tick explains "why did nothing happen".
  if (obs::TraceLog* trace = cluster_.options().trace; trace != nullptr) {
    trace->Instant(
        obs::TraceEventKind::kTriggerFire, /*shard=*/-1,
        {{"reason", trigger_.last_fire_reason()},
         {"windowed_imbalance", StrFormat("%.3f", metrics.windowed_imbalance)},
         {"windowed_cross_rate",
          StrFormat("%.4f", metrics.windowed_cross_rate)},
         {"windowed_send_imbalance",
          StrFormat("%.3f", metrics.windowed_send_imbalance)}});
  }
  std::string fire_counter = "rebalance.trigger_fires.";
  fire_counter += trigger_.last_fire_reason();
  cluster_.registry().GetCounter(fire_counter).Add();

  PIGGY_ASSIGN_OR_RETURN(Graph frozen, cluster_.GraphSnapshot());
  const MovePlan plan =
      PlanRebalance(frozen, cluster_.workload(),
                    cluster_.shard_map().assignment(),
                    cluster_.num_shards(), window, options_.plan);
  if (plan.empty()) return false;

  report_.times_fired += 1;
  report_.last_cut_before = plan.predicted_cut_before;
  report_.last_cut_after = plan.predicted_cut_after;
  report_.last_imbalance_before = plan.predicted_imbalance_before;
  report_.last_imbalance_after = plan.predicted_imbalance_after;

  // Execute in bounded batches so each exclusive cutover stays short.
  const size_t batch = std::max<size_t>(1, options_.batch_size);
  for (size_t begin = 0; begin < plan.moves.size(); begin += batch) {
    const size_t end = std::min(plan.moves.size(), begin + batch);
    std::vector<UserMove> moves;
    moves.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      moves.push_back(UserMove{plan.moves[i].user, plan.moves[i].to});
    }
    PIGGY_RETURN_NOT_OK(cluster_.MigrateUsers(moves));
    report_.migrations += 1;
    report_.users_moved += moves.size();
  }
  return true;
}

}  // namespace piggy
