// Delta-assignment planner: decides WHO moves when the cluster rebalances.
//
// A full repartition would fix imbalance too — and invalidate nearly every
// user's placement, forcing a cluster-wide migration. The rebalance planner
// instead reuses the idea behind the rate-weighted greedy edge-cut
// partitioner (store/partitioner.h) incrementally: starting from the live
// assignment, it drains the hottest shards by moving their heaviest users
// ("hubs first" — a celebrity or a spiking region dominates the skew, so a
// handful of moves buys most of the balance) to the shard where their
// rate-weighted affinity is highest, under a hard move budget. Every accepted
// move strictly shrinks the donor/destination load gap, so the plan cannot
// oscillate.
//
// The planner is pure: graph + rates + assignment + observed per-user load
// in, a bounded move list plus predicted cut/imbalance before vs after out.
// The MigrationCoordinator turns the plan into live MigrateUsers batches.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "workload/workload.h"

namespace piggy {

/// \brief Bounds on one rebalance plan.
struct RebalancePlanOptions {
  /// Hard cap on users moved per plan (a migration is never a repartition).
  size_t move_budget = 64;
  /// A shard is a donor while its load exceeds (1 + slack) x mean — the same
  /// slack semantics as the edge-cut partitioner's capacity.
  double balance_slack = 0.05;
  /// After the drain phase, spend any remaining budget moving users whose
  /// observed traffic concentrates on another shard (destination stays under
  /// capacity, so balance is preserved while the measured cut shrinks).
  /// Disable for drain-only plans that never touch a balanced cluster.
  bool heal_cut = true;
  /// A heal move must save strictly more than this many batched messages per
  /// load window to be worth its one-time migration cost (replica teardown +
  /// backfill on cutover). Same units as the observed load.
  double heal_min_gain = 1.0;
  /// A drain move is rejected when its predicted message cost exceeds this
  /// fraction of the load it sheds: balance is bought with cheap movers (a
  /// hub whose audience spans every shard moves nearly free), never by
  /// tearing a co-located hot community apart.
  double drain_cost_ratio = 0.05;
};

/// \brief One planned relocation.
struct RebalanceMove {
  NodeId user = 0;
  uint32_t from = 0;
  uint32_t to = 0;
};

/// \brief A bounded delta assignment plus its predicted effect.
struct MovePlan {
  std::vector<RebalanceMove> moves;
  /// Predicted batched cross-shard traffic (one message per producer x
  /// replica shard and consumer x pulled shard, weighted by observed load;
  /// by base rates when no load has been observed) under the input
  /// assignment and with the moves applied.
  double predicted_cut_before = 0;
  double predicted_cut_after = 0;
  /// Max/mean of per-shard observed load (1 = perfectly even), same
  /// before/after pair.
  double predicted_imbalance_before = 0;
  double predicted_imbalance_after = 0;

  bool empty() const { return moves.empty(); }
};

/// Plans a bounded set of moves draining every shard whose observed load
/// (`user_load`, e.g. ClusterService::PerUserRequests deltas) exceeds
/// (1 + balance_slack) x mean. Candidates leave hottest-shard-first and
/// heaviest-user-first; each lands on the shard maximizing rate-weighted
/// neighbor affinity x remaining headroom, and is only accepted if the move
/// strictly shrinks the donor/destination gap. Deterministic; returns an
/// empty plan when the cluster is already balanced or nothing helps.
MovePlan PlanRebalance(const Graph& graph, const Workload& workload,
                       const std::vector<uint32_t>& assignment,
                       size_t num_shards,
                       const std::vector<uint64_t>& user_load,
                       const RebalancePlanOptions& options);

}  // namespace piggy
