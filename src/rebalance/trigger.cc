#include "rebalance/trigger.h"

#include <algorithm>

namespace piggy {

bool RebalanceTrigger::ObserveHot(bool hot) {
  if (cooldown_ > 0) {
    --cooldown_;
    // Cooldown observations do not count toward the next streak either way:
    // the EMA still carries the pre-migration hotspot.
    return false;
  }
  if (!hot) {
    hot_streak_ = 0;
    return false;
  }
  ++hot_streak_;
  if (hot_streak_ < options_.consecutive_windows) return false;
  hot_streak_ = 0;
  cooldown_ = options_.cooldown_windows;
  // Firing resets the rise watches' low-water marks: the migration this
  // verdict starts makes whatever rates follow the new normal (a celebrity's
  // ramp is permanent — without the reset the old floor would re-fire the
  // trigger every window forever).
  rate_floor_ = 0;
  std::fill(send_floor_.begin(), send_floor_.end(), 0.0);
  return true;
}

}  // namespace piggy
