#include "rebalance/planner.h"

#include <algorithm>

#include "util/logging.h"

namespace piggy {

namespace {

double MaxOverMean(const std::vector<uint64_t>& loads) {
  if (loads.empty()) return 0;
  uint64_t total = 0, max = 0;
  for (uint64_t x : loads) {
    total += x;
    max = std::max(max, x);
  }
  if (total == 0) return 0;
  return static_cast<double>(max) /
         (static_cast<double>(total) / static_cast<double>(loads.size()));
}

// What-if model of the router's *batched* cross-shard traffic. The serving
// plane batches at shard granularity: a producer pays one update message per
// shard holding at least one push-mode follower, and a consumer pays one pull
// message per shard holding at least one pull-mode producer. A per-edge cut
// model misses exactly the failure mode that matters for live migration —
// moving one follower toward its producer saves nothing while other
// followers keep a replica alive on the old shard, yet immediately buys a
// brand-new replica fan-out on the new one. This model prices both, so move
// deltas track the cross-message counters the bench measures.
//
// Edge modes follow the hybrid rule on base rates (rp <= rc pushes), the
// same test the router's DecideMode applies on migration repair. Traffic
// weights split each user's observed load into share/query halves by its
// base-rate mix; with no load observed yet the rates themselves are the
// weights.
class BatchedCutModel {
 public:
  BatchedCutModel(const Graph& graph, const Workload& workload,
                  const std::vector<uint32_t>& home, size_t num_shards,
                  const std::vector<uint64_t>& user_load, bool observed)
      : graph_(graph),
        workload_(workload),
        home_(home),
        num_shards_(num_shards) {
    const size_t n = graph.num_nodes();
    share_w_.resize(n);
    query_w_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      const double rp = workload.rp(u), rc = workload.rc(u);
      if (observed) {
        const double split = rp + rc > 0 ? rp / (rp + rc) : 0.5;
        share_w_[u] = static_cast<double>(user_load[u]) * split;
        query_w_[u] = static_cast<double>(user_load[u]) * (1.0 - split);
      } else {
        share_w_[u] = rp;
        query_w_[u] = rc;
      }
    }
    push_count_.assign(n * num_shards, 0);
    pull_count_.assign(n * num_shards, 0);
    graph.ForEachEdge([&](const Edge& e) {
      if (Pushes(e.src, e.dst)) {
        ++push_count_[e.src * num_shards_ + home_[e.dst]];
      } else {
        ++pull_count_[e.dst * num_shards_ + home_[e.src]];
      }
    });
  }

  // Current model cost: every producer's replica fan-out plus every
  // consumer's pull fan-out, weighted by the user's observed traffic.
  double Cost() const {
    double cost = 0;
    for (NodeId u = 0; u < share_w_.size(); ++u) {
      cost += share_w_[u] * static_cast<double>(FanoutShards(push_count_, u));
      cost += query_w_[u] * static_cast<double>(FanoutShards(pull_count_, u));
    }
    return cost;
  }

  // Exact model-cost change of moving `u` from home_[u] to `to`. O(deg(u)).
  double MoveDelta(NodeId u, uint32_t to) const {
    const uint32_t from = home_[u];
    if (to == from) return 0;
    // u's own fan-outs: the counted shard sets are unchanged, but which
    // member is "local" (free) flips from `from` to `to`.
    double delta =
        share_w_[u] * (Fan(push_count_, u, to) - Fan(push_count_, u, from)) +
        query_w_[u] * (Fan(pull_count_, u, to) - Fan(pull_count_, u, from));
    // Neighbors whose fan-out sets gain `to` or lose `from` because of u.
    for (NodeId p : graph_.InNeighbors(u)) {
      if (Pushes(p, u)) {
        delta += share_w_[p] * NeighborDelta(push_count_, p, from, to);
      }
    }
    for (NodeId f : graph_.OutNeighbors(u)) {
      if (!Pushes(u, f)) {
        delta += query_w_[f] * NeighborDelta(pull_count_, f, from, to);
      }
    }
    return delta;
  }

  // Applies the move to the counts. home_ is the caller's working
  // assignment; the caller updates it (after this call).
  void ApplyMove(NodeId u, uint32_t to) {
    const uint32_t from = home_[u];
    for (NodeId p : graph_.InNeighbors(u)) {
      if (Pushes(p, u)) {
        --push_count_[p * num_shards_ + from];
        ++push_count_[p * num_shards_ + to];
      }
    }
    for (NodeId f : graph_.OutNeighbors(u)) {
      if (!Pushes(u, f)) {
        --pull_count_[f * num_shards_ + from];
        ++pull_count_[f * num_shards_ + to];
      }
    }
  }

  // Weight of u's edges into each shard (the LDG-style affinity score),
  // traffic-weighted. Used for ranking only; acceptance uses MoveDelta.
  void FillAffinity(NodeId u, std::vector<double>* affinity) const {
    std::fill(affinity->begin(), affinity->end(), 0.0);
    for (NodeId f : graph_.OutNeighbors(u)) {
      (*affinity)[home_[f]] += EdgeWeight(u, f);
    }
    for (NodeId p : graph_.InNeighbors(u)) {
      (*affinity)[home_[p]] += EdgeWeight(p, u);
    }
  }

  double EdgeWeight(NodeId src, NodeId dst) const {
    return Pushes(src, dst) ? share_w_[src] : query_w_[dst];
  }

 private:
  bool Pushes(NodeId src, NodeId dst) const {
    return workload_.rp(src) <= workload_.rc(dst);
  }

  // Number of shards in u's fan-out set, excluding its own (local is free).
  size_t FanoutShards(const std::vector<uint32_t>& counts, NodeId u) const {
    size_t shards = 0;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (s != home_[u] && counts[u * num_shards_ + s] > 0) ++shards;
    }
    return shards;
  }

  // Fan-out size of u if it lived on `at` (counts unchanged, locality moves).
  double Fan(const std::vector<uint32_t>& counts, NodeId u,
             uint32_t at) const {
    double shards = 0;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (s != at && counts[u * num_shards_ + s] > 0) shards += 1;
    }
    return shards;
  }

  // Change in |fan-out set of v| when one of its counted peers moves
  // from -> to: v loses `from` if that peer was the last one there, gains
  // `to` if it is the first — locality (v's own shard) priced as free.
  double NeighborDelta(const std::vector<uint32_t>& counts, NodeId v,
                       uint32_t from, uint32_t to) const {
    double d = 0;
    if (from != home_[v] && counts[v * num_shards_ + from] == 1) d -= 1;
    if (to != home_[v] && counts[v * num_shards_ + to] == 0) d += 1;
    return d;
  }

  const Graph& graph_;
  const Workload& workload_;
  const std::vector<uint32_t>& home_;
  size_t num_shards_;
  std::vector<double> share_w_;  // observed share-side traffic weight
  std::vector<double> query_w_;  // observed query-side traffic weight
  // counts[u * num_shards + s]: push followers of u on shard s / pull
  // producers of u on shard s (own-shard entries included; fan-out sets
  // exclude the home shard at read time, so locality needs no rebuild when
  // a user moves).
  std::vector<uint32_t> push_count_;
  std::vector<uint32_t> pull_count_;
};

}  // namespace

MovePlan PlanRebalance(const Graph& graph, const Workload& workload,
                       const std::vector<uint32_t>& assignment,
                       size_t num_shards,
                       const std::vector<uint64_t>& user_load,
                       const RebalancePlanOptions& options) {
  const size_t n = graph.num_nodes();
  PIGGY_CHECK_EQ(assignment.size(), n);
  PIGGY_CHECK_EQ(user_load.size(), n);
  PIGGY_CHECK_GT(num_shards, 0u);

  MovePlan plan;
  std::vector<uint64_t> shard_load(num_shards, 0);
  uint64_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    PIGGY_CHECK_LT(assignment[u], num_shards);
    shard_load[assignment[u]] += user_load[u];
    total += user_load[u];
  }

  std::vector<uint32_t> work = assignment;
  BatchedCutModel model(graph, workload, work, num_shards, user_load,
                        /*observed=*/total > 0);
  plan.predicted_cut_before = model.Cost();
  plan.predicted_imbalance_before = MaxOverMean(shard_load);
  plan.predicted_cut_after = plan.predicted_cut_before;
  plan.predicted_imbalance_after = plan.predicted_imbalance_before;
  if (total == 0 || num_shards < 2 || options.move_budget == 0) return plan;

  // Traffic-weighted degree, the "hub" tie-break.
  std::vector<double> weighted_degree(n, 0);
  graph.ForEachEdge([&](const Edge& e) {
    const double w = model.EdgeWeight(e.src, e.dst);
    weighted_degree[e.src] += w;
    weighted_degree[e.dst] += w;
  });

  const double mean =
      static_cast<double>(total) / static_cast<double>(num_shards);
  const double cap = mean * (1.0 + options.balance_slack);

  std::vector<uint8_t> moved(n, 0);
  std::vector<uint8_t> stuck(num_shards, 0);  // donors with no accepted move
  size_t budget = options.move_budget;
  double cut_delta = 0;

  const auto apply = [&](NodeId u, uint32_t from, uint32_t to) {
    cut_delta += model.MoveDelta(u, to);
    model.ApplyMove(u, to);
    plan.moves.push_back(RebalanceMove{u, from, to});
    shard_load[from] -= user_load[u];
    shard_load[to] += user_load[u];
    work[u] = to;
    moved[u] = 1;
    --budget;
  };

  // Phase 1 — drain: walk the hottest shards over capacity, moving their
  // heaviest users to the balance-eligible shard with the cheapest message
  // delta. Balance is the objective here; the delta choice just makes each
  // forced move as inexpensive as the placement allows.
  while (budget > 0) {
    // Hottest shard still over capacity (and not already proven stuck).
    int64_t donor = -1;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (stuck[s] || static_cast<double>(shard_load[s]) <= cap) continue;
      if (donor < 0 || shard_load[s] > shard_load[donor]) donor = s;
    }
    if (donor < 0) break;
    const uint32_t from = static_cast<uint32_t>(donor);

    // Hubs first: heaviest observed load, then traffic-weighted degree,
    // then id (fully deterministic).
    std::vector<NodeId> candidates;
    for (NodeId u = 0; u < n; ++u) {
      if (work[u] == from && !moved[u] && user_load[u] > 0) {
        candidates.push_back(u);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId a, NodeId b) {
                if (user_load[a] != user_load[b]) {
                  return user_load[a] > user_load[b];
                }
                if (weighted_degree[a] != weighted_degree[b]) {
                  return weighted_degree[a] > weighted_degree[b];
                }
                return a < b;
              });

    size_t moves_from_donor = 0;
    // Drain past the cap down to the mean: the freed headroom is what lets
    // the heal phase move a hot community's most-pulled producers INTO this
    // shard afterwards (dest stays under cap) instead of only away from it.
    for (NodeId u : candidates) {
      if (budget == 0 || static_cast<double>(shard_load[from]) <= mean) break;
      int64_t best = -1;
      double best_delta = 0;
      for (uint32_t s = 0; s < num_shards; ++s) {
        if (s == from) continue;
        // Accept guard: the destination must stay strictly lighter than the
        // donor was — the pair's max strictly shrinks, so plans never
        // oscillate (no A->B->A inside one plan; `moved` forbids it across
        // donors too).
        if (shard_load[s] + user_load[u] >= shard_load[from]) continue;
        const double delta = model.MoveDelta(u, s);
        if (best >= 0 &&
            (delta > best_delta ||
             (delta == best_delta && shard_load[s] >= shard_load[best]))) {
          continue;
        }
        best = s;
        best_delta = delta;
      }
      if (best < 0) continue;  // nowhere improves balance; try the next hub
      // Cost guard: a drain move may cost messages, but only in proportion
      // to the load it sheds. A celebrity whose fans span every shard
      // drains free; a member of a co-located hot community would drag its
      // whole neighborhood's traffic across the cut — skip it and shed the
      // load through cheaper candidates further down the hub order.
      if (best_delta > options.drain_cost_ratio *
                           static_cast<double>(user_load[u])) {
        continue;
      }
      apply(u, from, static_cast<uint32_t>(best));
      ++moves_from_donor;
    }
    if (moves_from_donor == 0) stuck[from] = 1;
  }

  // Phase 2 — heal: spend the remaining budget on the measured cut. Users
  // whose observed traffic concentrates on another shard (fans that piled
  // onto a celebrity after placement, a region fragment split at a shard
  // boundary) move there when the batched message delta is strictly
  // negative and the destination stays under capacity — balance is
  // preserved while the chatter drops. Candidates are ranked by their
  // statically-estimated affinity gain, then priced exactly against the
  // working assignment at accept time (earlier moves shift the batches).
  // Two rounds: batched savings compound (emptying a shard of one
  // consumer's producers only pays once the *last* of them leaves), so a
  // move that priced at zero in round one can turn profitable after its
  // neighbors settle.
  for (int round = 0; round < 2 && options.heal_cut && budget > 0; ++round) {
    const size_t moves_before_round = plan.moves.size();
    struct Gain {
      NodeId user;
      double gain;
    };
    std::vector<Gain> gains;
    std::vector<double> affinity(num_shards, 0);
    for (NodeId u = 0; u < n; ++u) {
      if (moved[u] || user_load[u] == 0) continue;
      model.FillAffinity(u, &affinity);
      const uint32_t home = work[u];
      double best = 0;
      for (uint32_t s = 0; s < num_shards; ++s) {
        if (s != home) best = std::max(best, affinity[s]);
      }
      if (best > affinity[home]) {
        gains.push_back(Gain{u, best - affinity[home]});
      }
    }
    std::sort(gains.begin(), gains.end(), [](const Gain& a, const Gain& b) {
      if (a.gain != b.gain) return a.gain > b.gain;
      return a.user < b.user;
    });
    for (const Gain& g : gains) {
      if (budget == 0) break;
      const NodeId u = g.user;
      const uint32_t home = work[u];
      int64_t best = -1;
      double best_delta = -options.heal_min_gain;
      for (uint32_t s = 0; s < num_shards; ++s) {
        if (s == home) continue;
        // Balance guard: the destination stays under the donor cap, or at
        // least strictly lighter than the user's current home (a
        // chatter-saving move off a heavier shard can never raise the max).
        const double dest_after =
            static_cast<double>(shard_load[s] + user_load[u]);
        if (dest_after > cap &&
            dest_after >= static_cast<double>(shard_load[home])) {
          continue;
        }
        const double delta = model.MoveDelta(u, s);
        if (delta < best_delta ||
            (best >= 0 && delta == best_delta &&
             shard_load[s] < shard_load[best])) {
          best = s;
          best_delta = delta;
        }
      }
      if (best < 0) continue;
      apply(u, home, static_cast<uint32_t>(best));
    }
    if (plan.moves.size() == moves_before_round) break;  // round converged
  }

  plan.predicted_cut_after = plan.predicted_cut_before + cut_delta;
  plan.predicted_imbalance_after = MaxOverMean(shard_load);
  return plan;
}

}  // namespace piggy
