// RebalanceTrigger: decides WHEN the elastic cluster should move users.
//
// The trigger watches the cluster's windowed imbalance (see
// ClusterMetrics::per_shard_window — an EMA over per-shard work deltas, so a
// shard that went hot recently stands out even when lifetime counters look
// even) and, optionally, the windowed cross-shard message rate climbing
// above its own low-water mark, and fires when either signal holds hot for
// a configurable number of consecutive observations. A cooldown then
// suppresses
// re-firing so one hotspot triggers one migration, not one per poll while the
// just-moved load drains out of the EMA.
//
// The trigger is a pure observer: it never talks to the cluster. The
// MigrationCoordinator (coordinator.h) feeds it metrics and acts on the
// verdict.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cluster_service.h"

namespace piggy {

/// \brief When the rebalancer should wake up.
struct RebalanceTriggerOptions {
  /// Fire when windowed max/mean imbalance is at least this (1 = perfectly
  /// even; 1.5 = the hottest shard carries 50% more than the mean).
  double imbalance_threshold = 1.5;
  /// Also fire when the windowed cross-shard message rate (batched cross
  /// messages per routed request) has risen this far above its low-water
  /// mark (0.15 = 15% above the quietest window seen). The absolute rate
  /// depends on graph and workload, so the watch self-calibrates: it tracks
  /// the minimum windowed rate observed so far and fires on a sustained
  /// climb — the signature of a celebrity whose audience is piling in even
  /// while per-shard load stays flat. 0 disables the watch. Either signal
  /// going hot feeds the same streak.
  double cross_rate_rise = 0;
  /// Also fire when any single shard's windowed fan-out send rate
  /// (ClusterMetrics::per_shard_send_window) has risen this far above its
  /// own low-water mark AND that shard now sends more than the cluster
  /// mean. This is the celebrity watch: a ramping account barely moves the
  /// work imbalance (its home shard may have been light, and every other
  /// shard receives the fan-out evenly), but the sends *from* its home
  /// shard multiply. Comparing each shard against its own history makes
  /// the watch immune to structural send skew (the shard hosting the most
  /// hubs always sends the most); the above-mean guard keeps a cold
  /// shard's noisy doubling from firing. 0 disables the watch.
  double send_rise = 0;
  /// Observations discarded before any verdict: the metric EMAs start cold
  /// (warm-up replans and replica backfill inflate the first windows), so
  /// the trigger waits for them to settle instead of firing on the descent.
  size_t warmup_windows = 3;
  /// The threshold must hold for this many consecutive observations before
  /// the trigger fires (debounces one-window blips).
  size_t consecutive_windows = 2;
  /// Observations to stay silent after firing, while the moved load drains
  /// out of the EMA window.
  size_t cooldown_windows = 2;
};

/// \brief Threshold-with-hysteresis detector over cluster imbalance.
class RebalanceTrigger {
 public:
  explicit RebalanceTrigger(const RebalanceTriggerOptions& options)
      : options_(options) {}

  /// Observes one metrics poll; returns true when a rebalance should run
  /// now. The poll counts as hot when the windowed imbalance is over its
  /// threshold or the windowed cross-message rate has climbed
  /// `cross_rate_rise` above the lowest rate seen since warm-up.
  bool Observe(const ClusterMetrics& m) {
    if (warmup_seen_ < options_.warmup_windows) {
      ++warmup_seen_;
      return false;
    }
    // Remember which watch tripped: when several are hot at once the report
    // lists the imbalance watch first (it is the primary signal; the rate
    // watches exist to catch what it misses).
    const char* reason = nullptr;
    bool hot = m.windowed_imbalance >= options_.imbalance_threshold;
    if (hot) reason = "imbalance";
    if (options_.send_rise > 0 && !m.per_shard_send_window.empty()) {
      const size_t shards = m.per_shard_send_window.size();
      send_floor_.resize(shards, 0);
      double mean = 0;
      for (double v : m.per_shard_send_window) mean += v;
      mean /= static_cast<double>(shards);
      for (size_t s = 0; s < shards; ++s) {
        const double v = m.per_shard_send_window[s];
        if (v <= 0) continue;
        if (send_floor_[s] == 0 || v < send_floor_[s]) send_floor_[s] = v;
        if (v >= mean && v >= send_floor_[s] * (1.0 + options_.send_rise)) {
          hot = true;
          if (reason == nullptr) reason = "send_rise";
        }
      }
    }
    if (options_.cross_rate_rise > 0 && m.windowed_cross_rate > 0) {
      if (rate_floor_ == 0 || m.windowed_cross_rate < rate_floor_) {
        rate_floor_ = m.windowed_cross_rate;
      }
      if (m.windowed_cross_rate >=
          rate_floor_ * (1.0 + options_.cross_rate_rise)) {
        hot = true;
        if (reason == nullptr) reason = "cross_rate";
      }
    }
    const bool fired = ObserveHot(hot);
    if (fired) last_fire_reason_ = reason != nullptr ? reason : "unknown";
    return fired;
  }

  /// Same, on a raw imbalance value (unit-testable without a cluster).
  /// Skips the warm-up gate and the rate watch: this is the bare streak
  /// machine.
  bool ObserveValue(double imbalance) {
    const bool fired = ObserveHot(imbalance >= options_.imbalance_threshold);
    if (fired) last_fire_reason_ = "imbalance";
    return fired;
  }

  const RebalanceTriggerOptions& options() const { return options_; }

  /// Which watch tripped the most recent fire: "imbalance", "send_rise" or
  /// "cross_rate" (ObserveValue fires report "imbalance"). Empty before the
  /// first fire.
  const std::string& last_fire_reason() const { return last_fire_reason_; }

 private:
  // The streak machine behind both entry points: consecutive hot
  // observations fire once, then a cooldown suppresses re-firing.
  bool ObserveHot(bool hot);

  RebalanceTriggerOptions options_;
  size_t hot_streak_ = 0;   // consecutive observations above threshold
  size_t cooldown_ = 0;     // observations left to suppress
  size_t warmup_seen_ = 0;  // metric observations discarded so far
  double rate_floor_ = 0;   // low-water mark of the windowed cross rate
  std::vector<double> send_floor_;  // per-shard send-rate low-water marks
  std::string last_fire_reason_;    // watch behind the most recent fire
};

}  // namespace piggy
