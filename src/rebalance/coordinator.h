// MigrationCoordinator: closes the detect -> plan -> migrate loop on a live
// ClusterService.
//
// Each Step() reads the cluster's windowed load metrics, asks the
// RebalanceTrigger whether the imbalance has held long enough to act, plans a
// bounded delta assignment over the observed per-user load since the last
// step, and executes it as a sequence of batched ClusterService::MigrateUsers
// calls — each batch a complete snapshot/catch-up/cutover cycle, so serving
// (and durability) stay correct between batches too.
//
// The coordinator is a control loop, not a serving component: call Step()
// from one thread at natural pause points (the replay driver's epoch closes,
// piggy_tool's serve chunks). Serving traffic keeps flowing on other threads
// throughout — MigrateUsers only excludes them for the freeze and cutover
// slices of each batch.

#pragma once

#include <cstddef>
#include <vector>

#include "cluster/cluster_service.h"
#include "rebalance/planner.h"
#include "rebalance/trigger.h"
#include "util/status.h"

namespace piggy {

/// \brief Control-loop configuration for the elastic rebalancer.
struct RebalanceOptions {
  RebalanceTriggerOptions trigger;
  /// Planner bounds (move budget, donor slack, drain/heal guards), passed
  /// through to PlanRebalance verbatim.
  RebalancePlanOptions plan;
  /// Users per MigrateUsers call; a plan is cut into batches this size so
  /// each exclusive cutover stays short.
  size_t batch_size = 16;
};

/// \brief What the coordinator has done so far.
struct RebalanceReport {
  size_t times_fired = 0;     ///< trigger verdicts acted on
  size_t users_moved = 0;     ///< users actually migrated
  size_t migrations = 0;      ///< MigrateUsers batches executed
  /// Predictions of the most recent executed plan.
  double last_cut_before = 0;
  double last_cut_after = 0;
  double last_imbalance_before = 0;
  double last_imbalance_after = 0;
};

/// \brief Detect -> plan -> migrate driver over one ClusterService.
class MigrationCoordinator {
 public:
  MigrationCoordinator(ClusterService& cluster,
                       const RebalanceOptions& options)
      : cluster_(cluster),
        options_(options),
        trigger_(options.trigger),
        last_user_load_(cluster.PerUserLoad()) {}

  /// One control-loop tick: observe, maybe plan, maybe migrate. Returns true
  /// iff users were moved. Single-threaded contract: call from one thread;
  /// serving threads may run concurrently.
  Result<bool> Step();

  const RebalanceReport& report() const { return report_; }

 private:
  ClusterService& cluster_;
  RebalanceOptions options_;
  RebalanceTrigger trigger_;
  // Per-user load counters (requests + pull batches served for the user's
  // events) at the last step; the delta is the observed load the planner
  // weighs moves by (one step = one load window).
  std::vector<uint64_t> last_user_load_;
  RebalanceReport report_;
};

}  // namespace piggy
