// Append-only write-ahead log for the serving plane.
//
// Every state-changing operation acked by a FeedService/ClusterService is
// framed into the shard's WAL before the ack:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// The payload is a fixed 33-byte little-endian record:
//
//   u8  type      1=share 2=follow 3=unfollow 4=rate_shift 5=replan_commit
//                 6=migration_commit
//   u32 user      producer (share), follower (churn), user (rate shift)
//   u32 producer  followee for churn records; 0 otherwise
//   u64 seq       event id for shares; 0 otherwise
//   f64 rp        production rate for rate-shift records
//   f64 rc        consumption rate for rate-shift records
//
// The reader walks frames until the file ends or a frame fails validation
// (short header, short payload, impossible length, CRC mismatch, unknown
// type) and reports where the valid prefix ends — a torn tail from a crash
// mid-append is data loss *after* the last ack only, never corruption of
// what came before it. Appends consult the FailPoint registry ("wal.append",
// "wal.sync") so tests can kill the process at any frame boundary.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace piggy {

enum class WalRecordType : uint8_t {
  kShare = 1,
  kFollow = 2,
  kUnfollow = 3,
  kRateShift = 4,
  kReplanCommit = 5,
  // A live user migration finished moving this shard's state: every record
  // after this marker belongs to the shard's post-migration membership. The
  // marker is written to both the source and destination WALs right before
  // the cluster's assignment file is atomically re-pointed, so recovery can
  // tell a committed migration from one the crash rolled back.
  kMigrationCommit = 6,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kShare;
  uint32_t user = 0;
  uint32_t producer = 0;
  uint64_t seq = 0;
  double rp = 0.0;
  double rc = 0.0;

  bool operator==(const WalRecord&) const = default;
};

/// How eagerly WalWriter pushes appended frames toward the disk.
enum class WalFlushPolicy : uint8_t {
  kEveryRecord = 0,  // flush (and optionally fsync) after every append
  kGroup,            // flush after every `group_records` appends (group commit)
  kNone,             // flush only on explicit Flush()/close
};

/// Appends framed records to a log file. Not thread-safe: the owning
/// ShardDurability serializes appends under its own mutex (that mutex is the
/// group-commit point).
class WalWriter {
 public:
  /// Opens `path` for appending, creating it if absent. With `truncate` the
  /// file starts empty — used when a rotation opens a fresh WAL generation,
  /// so a stale file left by an interrupted run cannot leak old frames under
  /// the new snapshot id.
  static Result<WalWriter> Open(std::string path, WalFlushPolicy policy,
                                uint32_t group_records, bool use_fsync,
                                bool truncate = false);

  WalWriter() = default;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  ~WalWriter();

  /// Frames and appends one record, then applies the flush policy.
  /// FailPoint "wal.append" can fail or tear this write; "wal.sync" the
  /// flush. After a simulated crash every call returns IOError (fail-stop).
  Status Append(const WalRecord& record);

  /// Flushes buffered frames; with `sync` also fsyncs.
  Status Flush(bool sync);

  /// Flushes and closes the file. Safe to call twice.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  uint64_t records_appended() const { return records_appended_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  WalFlushPolicy policy_ = WalFlushPolicy::kGroup;
  uint32_t group_records_ = 64;
  bool use_fsync_ = false;
  uint32_t unflushed_ = 0;
  uint64_t records_appended_ = 0;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  // end of the last intact frame
  uint64_t total_bytes = 0;  // physical file size
  bool torn_tail = false;    // valid_bytes < total_bytes
};

/// Reads every intact frame of `path`. A malformed tail is reported via
/// `torn_tail`, not an error; only open/IO failures return non-OK.
Result<WalReadResult> ReadWal(const std::string& path);

/// Truncates `path` to `size` bytes (used to drop a torn tail before
/// resuming appends).
Status TruncateFile(const std::string& path, uint64_t size);

}  // namespace piggy
