#include "durability/durable_state.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "graph/graph_io.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace piggy {

namespace fs = std::filesystem;

namespace {

constexpr char kMetaName[] = "meta.txt";
constexpr char kMetaLine[] = "piggy-durability v1";
constexpr char kBaseGraphName[] = "base.graph";

// Parses "snapshot-NNNNNN" / "wal-NNNNNN.log" file names; returns false for
// anything else (including .tmp leftovers).
bool ParseDurableName(const std::string& name, const std::string& prefix,
                      const std::string& suffix, uint64_t* id) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = v;
  return true;
}

std::vector<uint64_t> ListIds(const std::string& dir, const std::string& prefix,
                              const std::string& suffix) {
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t id;
    if (ParseDurableName(entry.path().filename().string(), prefix, suffix,
                         &id)) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

void RecoveryStats::Accumulate(const RecoveryStats& other) {
  snapshot_id = std::max(snapshot_id, other.snapshot_id);
  snapshot_events += other.snapshot_events;
  wal_records += other.wal_records;
  replayed_shares += other.replayed_shares;
  replayed_follows += other.replayed_follows;
  replayed_unfollows += other.replayed_unfollows;
  replayed_rate_shifts += other.replayed_rate_shifts;
  replayed_replans += other.replayed_replans;
  replayed_migration_commits += other.replayed_migration_commits;
  torn_tail = torn_tail || other.torn_tail;
  fallback = fallback || other.fallback;
  wal_valid_bytes += other.wal_valid_bytes;
  wal_total_bytes += other.wal_total_bytes;
}

std::string RecoveryStats::ToString() const {
  return StrFormat(
      "snapshot id=%llu events=%llu%s | wal records=%llu (%llu/%llu bytes%s) "
      "| replayed shares=%llu follows=%llu unfollows=%llu rate_shifts=%llu "
      "replans=%llu migrations=%llu | %.3f s",
      static_cast<unsigned long long>(snapshot_id),
      static_cast<unsigned long long>(snapshot_events),
      fallback ? " (fallback)" : "",
      static_cast<unsigned long long>(wal_records),
      static_cast<unsigned long long>(wal_valid_bytes),
      static_cast<unsigned long long>(wal_total_bytes),
      torn_tail ? ", torn tail" : "",
      static_cast<unsigned long long>(replayed_shares),
      static_cast<unsigned long long>(replayed_follows),
      static_cast<unsigned long long>(replayed_unfollows),
      static_cast<unsigned long long>(replayed_rate_shifts),
      static_cast<unsigned long long>(replayed_replans),
      static_cast<unsigned long long>(replayed_migration_commits),
      wall_seconds);
}

std::string RecoveryStats::ToJson() const {
  return StrFormat(
      "{\"snapshot_id\":%llu,\"snapshot_events\":%llu,\"wal_records\":%llu,"
      "\"replayed_shares\":%llu,\"replayed_follows\":%llu,"
      "\"replayed_unfollows\":%llu,\"replayed_rate_shifts\":%llu,"
      "\"replayed_replans\":%llu,\"replayed_migration_commits\":%llu,"
      "\"torn_tail\":%s,\"fallback\":%s,\"wal_valid_bytes\":%llu,"
      "\"wal_total_bytes\":%llu,\"wall_seconds\":%.6f}",
      static_cast<unsigned long long>(snapshot_id),
      static_cast<unsigned long long>(snapshot_events),
      static_cast<unsigned long long>(wal_records),
      static_cast<unsigned long long>(replayed_shares),
      static_cast<unsigned long long>(replayed_follows),
      static_cast<unsigned long long>(replayed_unfollows),
      static_cast<unsigned long long>(replayed_rate_shifts),
      static_cast<unsigned long long>(replayed_replans),
      static_cast<unsigned long long>(replayed_migration_commits),
      torn_tail ? "true" : "false", fallback ? "true" : "false",
      static_cast<unsigned long long>(wal_valid_bytes),
      static_cast<unsigned long long>(wal_total_bytes), wall_seconds);
}

void ShardDurability::BindObservability(obs::MetricsRegistry* metrics,
                                        obs::TraceLog* trace,
                                        int32_t trace_shard) {
  options_.metrics = metrics;
  options_.trace = trace;
  options_.trace_shard = trace_shard;
  if (metrics != nullptr) {
    append_us_ = &metrics->GetHistogram("wal.append_us");
    flush_us_ = &metrics->GetHistogram("wal.flush_us");
    snapshot_us_ = &metrics->GetHistogram("snapshot.write_us", 0.5, 1e8, 96);
    rotations_ = &metrics->GetCounter("wal.rotations");
  } else {
    append_us_ = nullptr;
    flush_us_ = nullptr;
    snapshot_us_ = nullptr;
    rotations_ = nullptr;
  }
}

Result<std::unique_ptr<ShardDurability>> ShardDurability::Create(
    const DurabilityOptions& options, const Graph& base_graph) {
  if (!options.enabled()) {
    return Status::InvalidArgument("durability requires a non-empty data_dir");
  }
  std::error_code ec;
  fs::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::IOError("cannot create data dir " + options.data_dir +
                           ": " + ec.message());
  }
  // A dir that already holds durable state belongs to a previous run. Fresh
  // creation must not append to its WALs or leave its higher-id snapshots
  // shadowing the new generation — a later Recover would silently mix the
  // two histories.
  if (!ListIds(options.data_dir, "snapshot-", "").empty() ||
      !ListIds(options.data_dir, "wal-", ".log").empty()) {
    return Status::FailedPrecondition(
        "data dir already holds durable state: " + options.data_dir +
        " (recover it, or point at an empty directory)");
  }
  {
    std::ofstream meta(fs::path(options.data_dir) / kMetaName);
    meta << kMetaLine << "\n";
    if (!meta) {
      return Status::IOError("cannot write meta file in " + options.data_dir);
    }
  }
  const std::string graph_path =
      (fs::path(options.data_dir) / kBaseGraphName).string();
  PIGGY_RETURN_NOT_OK(WriteGraphBinary(base_graph, graph_path));

  std::unique_ptr<ShardDurability> d(new ShardDurability(options));
  PIGGY_ASSIGN_OR_RETURN(d->base_graph_, ReadGraphBinary(graph_path));
  return d;
}

Result<std::unique_ptr<ShardDurability>> ShardDurability::Open(
    const DurabilityOptions& options) {
  if (!options.enabled()) {
    return Status::InvalidArgument("durability requires a non-empty data_dir");
  }
  const fs::path dir(options.data_dir);
  {
    std::ifstream meta(dir / kMetaName);
    std::string line;
    if (!meta || !std::getline(meta, line) || StrTrim(line) != kMetaLine) {
      return Status::IOError("not a durability dir (bad or missing meta): " +
                             options.data_dir);
    }
  }
  std::unique_ptr<ShardDurability> d(new ShardDurability(options));
  PIGGY_ASSIGN_OR_RETURN(d->base_graph_,
                         ReadGraphBinary((dir / kBaseGraphName).string()));
  return d;
}

std::string ShardDurability::SnapshotPath(uint64_t id) const {
  return (fs::path(options_.data_dir) /
          StrFormat("snapshot-%06llu", static_cast<unsigned long long>(id)))
      .string();
}

std::string ShardDurability::WalPath(uint64_t id) const {
  return (fs::path(options_.data_dir) /
          StrFormat("wal-%06llu.log", static_cast<unsigned long long>(id)))
      .string();
}

Status ShardDurability::AppendLocked(const WalRecord& record) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition(
        "no open WAL (WriteSnapshot/ResumeAppending not called): " +
        options_.data_dir);
  }
  if (append_us_ != nullptr) {
    WallTimer t;
    PIGGY_RETURN_NOT_OK(wal_.Append(record));
    append_us_->Record(t.Seconds() * 1e6);
  } else {
    PIGGY_RETURN_NOT_OK(wal_.Append(record));
  }
  ++records_since_snapshot_;
  return Status::OK();
}

Status ShardDurability::LogShare(NodeId producer, uint64_t seq) {
  WalRecord r;
  r.type = WalRecordType::kShare;
  r.user = producer;
  r.seq = seq;
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(r);
}

Status ShardDurability::LogChurn(bool added, NodeId src, NodeId dst) {
  WalRecord r;
  r.type = added ? WalRecordType::kFollow : WalRecordType::kUnfollow;
  r.user = dst;      // the follower (graph edges run producer -> consumer)
  r.producer = src;  // the followee
  std::lock_guard<std::mutex> lock(mu_);
  PIGGY_RETURN_NOT_OK(AppendLocked(r));
  churn_delta_[EdgeKey(src, dst)] = added;
  return Status::OK();
}

Status ShardDurability::LogRateShift(NodeId user, double rp, double rc) {
  WalRecord r;
  r.type = WalRecordType::kRateShift;
  r.user = user;
  r.rp = rp;
  r.rc = rc;
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(r);
}

Status ShardDurability::LogReplanCommit() {
  WalRecord r;
  r.type = WalRecordType::kReplanCommit;
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(r);
}

Status ShardDurability::LogMigrationCommit() {
  WalRecord r;
  r.type = WalRecordType::kMigrationCommit;
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(r);
}

uint64_t ShardDurability::records_since_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_since_snapshot_;
}

Status ShardDurability::WriteSnapshot(SnapshotData data) {
  std::lock_guard<std::mutex> lock(mu_);
  const double rotate_start =
      options_.trace != nullptr ? options_.trace->NowUs() : 0.0;
  const uint64_t rotated_records = records_since_snapshot_;
  // Make wal-K durable but keep it open: if any rotation step below fails,
  // appends keep flowing to wal-K and the rotation can simply be retried —
  // a transient snapshot error must not become a permanent write outage.
  // mu_ is held throughout, so no record can slip in mid-rotation.
  if (wal_.is_open()) {
    WallTimer flush_timer;
    PIGGY_RETURN_NOT_OK(wal_.Flush(options_.use_fsync));
    if (flush_us_ != nullptr) flush_us_->Record(flush_timer.Seconds() * 1e6);
  }
  const uint64_t next_id = has_snapshot_ ? current_id_ + 1 : 0;
  data.id = next_id;
  data.churn.clear();
  data.churn.reserve(churn_delta_.size());
  for (const auto& [key, added] : churn_delta_) {
    data.churn.emplace_back(added, EdgeFromKey(key));
  }
  std::sort(data.churn.begin(), data.churn.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  WallTimer snapshot_timer;
  PIGGY_RETURN_NOT_OK(WriteSnapshotFile(data, SnapshotPath(next_id)));
  if (snapshot_us_ != nullptr) {
    snapshot_us_->Record(snapshot_timer.Seconds() * 1e6);
  }
  auto next_wal =
      WalWriter::Open(WalPath(next_id), options_.flush, options_.group_records,
                      options_.use_fsync, /*truncate=*/true);
  if (!next_wal.ok()) {
    // Unpublish the snapshot: once snapshot-(K+1) exists, recovery skips
    // wal-K, so appends continuing there would be silently lost. If the
    // snapshot cannot be removed either, fail-stop the pair instead.
    if (std::remove(SnapshotPath(next_id).c_str()) != 0) {
      (void)wal_.Close();
    }
    return next_wal.status();
  }
  WalWriter old_wal = std::move(wal_);
  wal_ = std::move(next_wal).MoveValueOrDie();
  current_id_ = next_id;
  has_snapshot_ = true;
  records_since_snapshot_ = 0;
  PIGGY_RETURN_NOT_OK(old_wal.Close());

  // Prune pairs older than the previous one; ignore errors (stray files are
  // harmless, recovery skips invalid names and prefers newer snapshots).
  if (next_id >= 2) {
    for (uint64_t id : ListIds(options_.data_dir, "snapshot-", "")) {
      if (id <= next_id - 2) std::remove(SnapshotPath(id).c_str());
    }
    for (uint64_t id : ListIds(options_.data_dir, "wal-", ".log")) {
      if (id <= next_id - 2) std::remove(WalPath(id).c_str());
    }
  }
  if (rotations_ != nullptr) rotations_->Add();
  if (options_.trace != nullptr) {
    options_.trace->Instant(
        obs::TraceEventKind::kSnapshotPublish, options_.trace_shard,
        {{"snapshot", std::to_string(next_id)},
         {"rotated_records", std::to_string(rotated_records)}});
    options_.trace->Span(obs::TraceEventKind::kWalRotate, rotate_start,
                         options_.trace_shard,
                         {{"wal", std::to_string(next_id)}});
  }
  return Status::OK();
}

Result<ShardDurability::RecoveredState> ShardDurability::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_.is_open()) {
    return Status::FailedPrecondition(
        "Recover on an actively logging instance: " + options_.data_dir);
  }

  std::vector<uint64_t> snapshot_ids =
      ListIds(options_.data_dir, "snapshot-", "");
  if (snapshot_ids.empty()) {
    return Status::NotFound("no snapshots in " + options_.data_dir);
  }

  RecoveredState state;
  state.base_graph = base_graph_;
  bool found = false;
  std::string last_error;
  for (auto it = snapshot_ids.rbegin(); it != snapshot_ids.rend(); ++it) {
    auto snap = ReadSnapshotFile(SnapshotPath(*it));
    if (snap.ok()) {
      state.snapshot = std::move(snap).MoveValueOrDie();
      state.fallback = it != snapshot_ids.rbegin();
      found = true;
      break;
    }
    last_error = snap.status().ToString();
  }
  if (!found) {
    return Status::IOError("no valid snapshot in " + options_.data_dir +
                           " (last error: " + last_error + ")");
  }

  churn_delta_.clear();
  for (const auto& [added, edge] : state.snapshot.churn) {
    churn_delta_[EdgeKey(edge)] = added;
  }

  // Replay WALs at or after the recovered snapshot, in id order. A torn tail
  // is only tolerable on the newest WAL; a gap mid-history means later
  // records are not safe to apply.
  std::vector<uint64_t> wal_ids = ListIds(options_.data_dir, "wal-", ".log");
  wal_ids.erase(std::remove_if(wal_ids.begin(), wal_ids.end(),
                               [&](uint64_t id) {
                                 return id < state.snapshot.id;
                               }),
                wal_ids.end());
  uint64_t resume_id = state.snapshot.id;
  uint64_t resume_valid_bytes = 0;
  bool resume_truncate = false;
  for (size_t i = 0; i < wal_ids.size(); ++i) {
    PIGGY_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(WalPath(wal_ids[i])));
    for (const WalRecord& r : wal.records) {
      if (r.type == WalRecordType::kFollow) {
        churn_delta_[EdgeKey(r.producer, r.user)] = true;
      } else if (r.type == WalRecordType::kUnfollow) {
        churn_delta_[EdgeKey(r.producer, r.user)] = false;
      }
      state.wal_records.push_back(r);
    }
    state.wal_valid_bytes += wal.valid_bytes;
    state.wal_total_bytes += wal.total_bytes;
    resume_id = wal_ids[i];
    resume_valid_bytes = wal.valid_bytes;
    resume_truncate = wal.torn_tail;
    if (wal.torn_tail) {
      state.torn_tail = true;
      break;  // later WALs (if any) are beyond a gap — do not apply them
    }
  }

  current_id_ = resume_id;
  has_snapshot_ = true;
  records_since_snapshot_ = 0;
  resume_wal_id_ = resume_id;
  resume_valid_bytes_ = resume_valid_bytes;
  resume_truncate_ = resume_truncate;
  recovered_ = true;
  return state;
}

Status ShardDurability::ResumeAppending() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) {
    return Status::FailedPrecondition("ResumeAppending before Recover: " +
                                      options_.data_dir);
  }
  // Drop any WAL newer than the resume point (only possible after a
  // mid-history gap) so future recoveries never see its stale records.
  for (uint64_t id : ListIds(options_.data_dir, "wal-", ".log")) {
    if (id > resume_wal_id_) std::remove(WalPath(id).c_str());
  }
  if (resume_truncate_) {
    PIGGY_RETURN_NOT_OK(
        TruncateFile(WalPath(resume_wal_id_), resume_valid_bytes_));
  }
  PIGGY_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(WalPath(resume_wal_id_), options_.flush,
                            options_.group_records, options_.use_fsync));
  current_id_ = resume_wal_id_;
  return Status::OK();
}

}  // namespace piggy
