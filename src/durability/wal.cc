#include "durability/wal.h"

#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace piggy {

namespace {

constexpr size_t kPayloadSize = 33;  // u8 + 2*u32 + u64 + 2*f64
constexpr size_t kFrameHeaderSize = 8;  // u32 len + u32 crc

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutF64(uint8_t* p, double v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
double GetF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void EncodePayload(const WalRecord& r, uint8_t out[kPayloadSize]) {
  out[0] = static_cast<uint8_t>(r.type);
  PutU32(out + 1, r.user);
  PutU32(out + 5, r.producer);
  PutU64(out + 9, r.seq);
  PutF64(out + 17, r.rp);
  PutF64(out + 25, r.rc);
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(WalRecordType::kShare) &&
         t <= static_cast<uint8_t>(WalRecordType::kMigrationCommit);
}

}  // namespace

Result<WalWriter> WalWriter::Open(std::string path, WalFlushPolicy policy,
                                  uint32_t group_records, bool use_fsync,
                                  bool truncate) {
  std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open WAL for append: " + path);
  }
  WalWriter w;
  w.path_ = std::move(path);
  w.file_ = f;
  w.policy_ = policy;
  w.group_records_ = group_records == 0 ? 1 : group_records;
  w.use_fsync_ = use_fsync;
  return w;
}

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = std::exchange(other.file_, nullptr);
    policy_ = other.policy_;
    group_records_ = other.group_records_;
    use_fsync_ = other.use_fsync_;
    unflushed_ = other.unflushed_;
    records_appended_ = other.records_appended_;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL writer is closed: " + path_);
  }
  uint8_t frame[kFrameHeaderSize + kPayloadSize];
  EncodePayload(record, frame + kFrameHeaderSize);
  PutU32(frame, static_cast<uint32_t>(kPayloadSize));
  PutU32(frame + 4, Crc32(frame + kFrameHeaderSize, kPayloadSize));

  switch (FailPointRegistry::Instance().Hit("wal.append")) {
    case FailPointAction::kOff:
      break;
    case FailPointAction::kError:
      return Status::IOError("injected WAL append failure: " + path_);
    case FailPointAction::kCrashHard:
      return Status::IOError("simulated crash before WAL append: " + path_);
    case FailPointAction::kCrashTornWrite: {
      // Persist a strict prefix of the frame (half the payload) so the tail
      // is torn, then report the crash. The flush makes the torn bytes real.
      size_t partial = kFrameHeaderSize + kPayloadSize / 2;
      std::fwrite(frame, 1, partial, file_);
      std::fflush(file_);
      return Status::IOError("simulated crash mid WAL append: " + path_);
    }
  }

  if (std::fwrite(frame, 1, sizeof(frame), file_) != sizeof(frame)) {
    return Status::IOError("WAL append failed: " + path_);
  }
  ++records_appended_;
  ++unflushed_;
  switch (policy_) {
    case WalFlushPolicy::kEveryRecord:
      return Flush(use_fsync_);
    case WalFlushPolicy::kGroup:
      if (unflushed_ >= group_records_) return Flush(use_fsync_);
      return Status::OK();
    case WalFlushPolicy::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Flush(bool sync) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL writer is closed: " + path_);
  }
  switch (FailPointRegistry::Instance().Hit("wal.sync")) {
    case FailPointAction::kOff:
      break;
    case FailPointAction::kError:
      return Status::IOError("injected WAL flush failure: " + path_);
    case FailPointAction::kCrashHard:
    case FailPointAction::kCrashTornWrite:
      return Status::IOError("simulated crash before WAL flush: " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL flush failed: " + path_);
  }
  if (sync && fsync(fileno(file_)) != 0) {
    return Status::IOError("WAL fsync failed: " + path_);
  }
  unflushed_ = 0;
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status flush = Flush(use_fsync_);
  int rc = std::fclose(file_);
  file_ = nullptr;
  PIGGY_RETURN_NOT_OK(flush);
  if (rc != 0) return Status::IOError("WAL close failed: " + path_);
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open WAL for read: " + path);
  }
  WalReadResult result;
  uint8_t header[kFrameHeaderSize];
  uint8_t payload[kPayloadSize];
  for (;;) {
    size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;           // clean EOF at a frame boundary
    if (got < sizeof(header)) break;  // torn header
    uint32_t len = GetU32(header);
    uint32_t crc = GetU32(header + 4);
    if (len != kPayloadSize) break;  // impossible length: corrupt frame
    got = std::fread(payload, 1, kPayloadSize, f);
    if (got < kPayloadSize) break;  // torn payload
    if (Crc32(payload, kPayloadSize) != crc) break;
    if (!ValidType(payload[0])) break;
    WalRecord r;
    r.type = static_cast<WalRecordType>(payload[0]);
    r.user = GetU32(payload + 1);
    r.producer = GetU32(payload + 5);
    r.seq = GetU64(payload + 9);
    r.rp = GetF64(payload + 17);
    r.rc = GetF64(payload + 25);
    result.records.push_back(r);
    result.valid_bytes += kFrameHeaderSize + kPayloadSize;
  }
  // A short read caused by an I/O error is NOT a torn tail: reporting it as
  // one would let ResumeAppending truncate away acked records that are intact
  // on disk. Surface it as a retryable error instead.
  if (std::ferror(f)) {
    std::fclose(f);
    return Status::IOError("WAL read failed: " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("WAL seek failed: " + path);
  }
  long end = std::ftell(f);
  std::fclose(f);
  if (end < 0) return Status::IOError("WAL size query failed: " + path);
  result.total_bytes = static_cast<uint64_t>(end);
  result.torn_tail = result.valid_bytes < result.total_bytes;
  return result;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IOError(
        StrFormat("truncate to %llu bytes failed: %s",
                  static_cast<unsigned long long>(size), path.c_str()));
  }
  return Status::OK();
}

}  // namespace piggy
