// Per-shard durable state: one WAL + snapshot pair manager.
//
// A ShardDurability owns the on-disk directory for one shard (or for the
// cluster-level router state):
//
//   <data_dir>/meta.txt          "piggy-durability v1"
//   <data_dir>/base.graph        the pre-churn graph (binary graph_io format)
//   <data_dir>/snapshot-NNNNNN   snapshots, monotone ids (snapshot.h format)
//   <data_dir>/wal-NNNNNN.log    ops since snapshot NNNNNN (wal.h framing)
//
// Invariant: wal-K holds exactly the operations acked after snapshot-K was
// written and before snapshot-(K+1). WriteSnapshot rotates in that order —
// flush wal-K, atomically publish snapshot-(K+1), swap in a fresh (truncated)
// wal-(K+1), close wal-K — under the append mutex, so at any crash point the
// newest *valid* snapshot plus the WALs at or after its id reconstruct every
// acked operation, and a rotation that fails partway leaves wal-K open and
// appendable (the snapshot is unpublished again if the new WAL cannot open).
// The last two pairs are retained; older ones are pruned.
//
// Recovery picks the newest snapshot that passes its CRC, folds its churn
// delta, then replays the surviving WALs in id order. A torn tail on the
// final WAL is expected (crash mid-append) and merely marks where acked
// history ends; a torn tail on a *non*-final WAL would leave a gap, so replay
// stops there rather than apply later records out of order.
//
// Logging methods are thread-safe: one internal mutex serializes appends,
// which doubles as the group-commit point for WalFlushPolicy::kGroup.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "durability/snapshot.h"
#include "durability/wal.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace piggy {

struct DurabilityOptions {
  /// Root directory for this shard's durable state; empty disables
  /// durability entirely (the default — serving stays memory-only).
  std::string data_dir;
  WalFlushPolicy flush = WalFlushPolicy::kGroup;
  uint32_t group_records = 64;
  bool use_fsync = false;
  /// Write a snapshot after this many WAL records (0 = never by count).
  uint64_t snapshot_every = 0;
  /// Write a snapshot after every replan commit, bounding replay cost to one
  /// plan epoch.
  bool snapshot_on_replan = true;
  /// Observability sinks (not owned; both may be null). `metrics` receives
  /// the wal.append_us / wal.flush_us / snapshot.write_us histograms and
  /// rotation counters; `trace` receives wal_rotate / snapshot_publish
  /// events stamped with `trace_shard`. FeedService wires its own registry
  /// and the configured TraceLog in before constructing the ShardDurability.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceLog* trace = nullptr;
  int32_t trace_shard = -1;

  bool enabled() const { return !data_dir.empty(); }
};

/// What recovery did, for operators (piggy_tool recover) and the fig12 bench.
struct RecoveryStats {
  uint64_t snapshot_id = 0;
  uint64_t snapshot_events = 0;
  uint64_t wal_records = 0;
  uint64_t replayed_shares = 0;
  uint64_t replayed_follows = 0;
  uint64_t replayed_unfollows = 0;
  uint64_t replayed_rate_shifts = 0;
  uint64_t replayed_replans = 0;
  uint64_t replayed_migration_commits = 0;
  bool torn_tail = false;
  /// Recovery had to fall back past a corrupt newest snapshot to an older
  /// valid one (CRC or parse failure on the newest id).
  bool fallback = false;
  uint64_t wal_valid_bytes = 0;
  uint64_t wal_total_bytes = 0;
  double wall_seconds = 0.0;

  void Accumulate(const RecoveryStats& other);
  std::string ToString() const;
  /// One flat JSON object (piggy_tool recover --json).
  std::string ToJson() const;
};

class ShardDurability {
 public:
  /// Initializes a fresh data dir (meta + base graph). Refuses a directory
  /// that already holds snapshot/WAL files from a previous run — recover
  /// those with Open(), or point at an empty directory. The caller must
  /// write the initial snapshot (WriteSnapshot) before logging anything,
  /// which creates snapshot-000000 and opens wal-000000.log.
  static Result<std::unique_ptr<ShardDurability>> Create(
      const DurabilityOptions& options, const Graph& base_graph);

  /// Attaches to an existing data dir for recovery. Call Recover(), replay,
  /// then ResumeAppending() before logging.
  static Result<std::unique_ptr<ShardDurability>> Open(
      const DurabilityOptions& options);

  /// Thread-safe WAL appends. Once a simulated crash (FailPoint) has fired,
  /// all of these fail-stop with IOError.
  Status LogShare(NodeId producer, uint64_t seq);
  Status LogChurn(bool added, NodeId src, NodeId dst);
  Status LogRateShift(NodeId user, double rp, double rc);
  Status LogReplanCommit();
  Status LogMigrationCommit();

  /// WAL records appended since the last snapshot rotation.
  uint64_t records_since_snapshot() const;

  /// Rotates: closes the current WAL, publishes the next snapshot (id and
  /// cumulative churn delta are filled in internally; the caller provides
  /// rates, schedule text, events and next_seq), opens the next WAL, prunes
  /// pairs older than the previous one.
  Status WriteSnapshot(SnapshotData data);

  struct RecoveredState {
    Graph base_graph;
    SnapshotData snapshot;
    std::vector<WalRecord> wal_records;
    bool torn_tail = false;
    bool fallback = false;  // newest snapshot invalid, used an older one
    uint64_t wal_valid_bytes = 0;
    uint64_t wal_total_bytes = 0;
  };

  /// Loads the newest valid snapshot and the WAL tail (see file comment).
  /// Only valid on an Open()'d instance before any logging.
  Result<RecoveredState> Recover();

  /// After Recover(): drops the torn tail of the newest WAL (if any) and
  /// reopens it for appending.
  Status ResumeAppending();

  const DurabilityOptions& options() const { return options_; }
  const Graph& base_graph() const { return base_graph_; }

  /// (Re)wires the metric/trace sinks after construction. FeedService::
  /// Recover uses this to adopt a pair that was Open()'d before the service
  /// — and therefore its registry — existed. Call before serving traffic;
  /// not synchronized against concurrent logging.
  void BindObservability(obs::MetricsRegistry* metrics, obs::TraceLog* trace,
                         int32_t trace_shard);

 private:
  explicit ShardDurability(DurabilityOptions options)
      : options_(std::move(options)) {
    BindObservability(options_.metrics, options_.trace, options_.trace_shard);
  }

  std::string SnapshotPath(uint64_t id) const;
  std::string WalPath(uint64_t id) const;
  Status AppendLocked(const WalRecord& record);

  DurabilityOptions options_;
  Graph base_graph_;

  // Cached observability handles (null when options_.metrics is null; the
  // registry outlives this object).
  obs::Histogram* append_us_ = nullptr;
  obs::Histogram* flush_us_ = nullptr;
  obs::Histogram* snapshot_us_ = nullptr;
  obs::Counter* rotations_ = nullptr;

  mutable std::mutex mu_;
  WalWriter wal_;
  uint64_t current_id_ = 0;       // id of the open WAL / newest snapshot
  bool has_snapshot_ = false;     // false until the first WriteSnapshot
  uint64_t records_since_snapshot_ = 0;
  // Resume point established by Recover(), consumed by ResumeAppending().
  bool recovered_ = false;
  uint64_t resume_wal_id_ = 0;
  uint64_t resume_valid_bytes_ = 0;
  bool resume_truncate_ = false;
  // Latest state of every edge churned since the base graph (EdgeKey ->
  // present). Applied idempotently at recovery, so entries that happen to
  // match the base graph are harmless.
  std::unordered_map<uint64_t, bool> churn_delta_;
};

}  // namespace piggy
