// Point-in-time snapshots of a shard's serving state.
//
// A snapshot captures everything recovery needs to rebuild a FeedService
// without replanning from scratch: the graph churn delta since the base
// graph, the per-user workload rates, the active schedule (serialized via
// schedule_io, so the same footer-checked format guards against torn
// embeds), and the prototype's event log. Binary layout, little-endian:
//
//   u64 magic "PIGGYSNP"            (identifies the file)
//   u64 id                          (monotone snapshot number)
//   u64 next_seq                    (cluster share sequence; 0 for shards)
//   u64 churn_count, then churn_count x (u8 added, u32 src, u32 dst)
//   u64 rate_count,  then rate_count  x (f64 production, f64 consumption)
//   u64 schedule_len, then schedule_len bytes of SerializeSchedule text
//   u64 event_count, then event_count x (u32 producer, u64 id, u64 ts)
//   u32 crc32 of every byte after the magic
//
// Snapshots are written to a temp file and renamed into place, so a crash
// mid-write leaves the previous snapshot intact; the trailing CRC rejects a
// snapshot whose rename survived but whose data did not. FailPoints
// "snapshot.write" and "snapshot.rename" cover both windows.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "store/view_store.h"
#include "util/status.h"

namespace piggy {

struct SnapshotData {
  uint64_t id = 0;
  uint64_t next_seq = 0;
  // Cumulative churn since the base graph, one entry per edge whose latest
  // state differs from base: true = added, false = removed.
  std::vector<std::pair<bool, Edge>> churn;
  std::vector<double> production;
  std::vector<double> consumption;
  std::string schedule_text;  // SerializeSchedule output; may be empty
  std::vector<EventTuple> events;
};

/// Writes `data` to `path` atomically (temp file + rename).
Status WriteSnapshotFile(const SnapshotData& data, const std::string& path);

/// Reads and validates a snapshot. CRC/format violations return IOError.
Result<SnapshotData> ReadSnapshotFile(const std::string& path);

}  // namespace piggy
