#include "durability/snapshot.h"

#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace piggy {

namespace {

constexpr uint64_t kMagic = 0x504E535947474950ULL;  // "PIGGYSNP" LE

void AppendBytes(std::string& buf, const void* data, size_t len) {
  buf.append(static_cast<const char*>(data), len);
}
void AppendU8(std::string& buf, uint8_t v) { AppendBytes(buf, &v, sizeof(v)); }
void AppendU32(std::string& buf, uint32_t v) { AppendBytes(buf, &v, sizeof(v)); }
void AppendU64(std::string& buf, uint64_t v) { AppendBytes(buf, &v, sizeof(v)); }
void AppendF64(std::string& buf, double v) { AppendBytes(buf, &v, sizeof(v)); }

// Sequential reader over a byte buffer; every Get checks bounds.
class Cursor {
 public:
  Cursor(const std::string& buf, const std::string& path)
      : buf_(buf), path_(path) {}

  Status Get(void* out, size_t len) {
    if (pos_ + len > buf_.size()) {
      return Status::IOError(
          StrFormat("%s: truncated snapshot at byte %zu (need %zu more bytes)",
                    path_.c_str(), pos_, len));
    }
    std::memcpy(out, buf_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Status GetU8(uint8_t* v) { return Get(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return Get(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return Get(v, sizeof(*v)); }
  Status GetF64(double* v) { return Get(v, sizeof(*v)); }

  size_t pos() const { return pos_; }

 private:
  const std::string& buf_;
  const std::string& path_;
  size_t pos_ = 0;
};

}  // namespace

Status WriteSnapshotFile(const SnapshotData& data, const std::string& path) {
  std::string body;  // everything after the magic, CRC'd
  AppendU64(body, data.id);
  AppendU64(body, data.next_seq);
  AppendU64(body, data.churn.size());
  for (const auto& [added, edge] : data.churn) {
    AppendU8(body, added ? 1 : 0);
    AppendU32(body, edge.src);
    AppendU32(body, edge.dst);
  }
  if (data.production.size() != data.consumption.size()) {
    return Status::InvalidArgument(
        "snapshot rate vectors differ in length: " + path);
  }
  AppendU64(body, data.production.size());
  for (size_t i = 0; i < data.production.size(); ++i) {
    AppendF64(body, data.production[i]);
    AppendF64(body, data.consumption[i]);
  }
  AppendU64(body, data.schedule_text.size());
  body += data.schedule_text;
  AppendU64(body, data.events.size());
  for (const EventTuple& e : data.events) {
    AppendU32(body, e.producer);
    AppendU64(body, e.event_id);
    AppendU64(body, e.timestamp);
  }
  AppendU32(body, Crc32(body.data(), body.size()));

  const std::string tmp = path + ".tmp";
  switch (FailPointRegistry::Instance().Hit("snapshot.write")) {
    case FailPointAction::kOff:
      break;
    case FailPointAction::kError:
      return Status::IOError("injected snapshot write failure: " + path);
    case FailPointAction::kCrashHard:
      return Status::IOError("simulated crash before snapshot write: " + path);
    case FailPointAction::kCrashTornWrite: {
      // Leave a half-written temp file behind; recovery must ignore it.
      std::FILE* f = std::fopen(tmp.c_str(), "wb");
      if (f != nullptr) {
        std::fwrite(&kMagic, 1, sizeof(kMagic), f);
        std::fwrite(body.data(), 1, body.size() / 2, f);
        std::fclose(f);
      }
      return Status::IOError("simulated crash mid snapshot write: " + path);
    }
  }

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open snapshot temp file: " + tmp);
  }
  bool ok = std::fwrite(&kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic) &&
            std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
            std::fflush(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("snapshot write failed: " + tmp);
  }

  switch (FailPointRegistry::Instance().Hit("snapshot.rename")) {
    case FailPointAction::kOff:
      break;
    case FailPointAction::kError:
      std::remove(tmp.c_str());
      return Status::IOError("injected snapshot rename failure: " + path);
    case FailPointAction::kCrashHard:
    case FailPointAction::kCrashTornWrite:
      // Crash between write and rename: the temp file stays, the target is
      // untouched — recovery falls back to the previous snapshot.
      return Status::IOError("simulated crash before snapshot rename: " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("snapshot rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<SnapshotData> ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open snapshot: " + path);
  }
  std::string buf;
  char chunk[1 << 16];
  for (;;) {
    size_t got = std::fread(chunk, 1, sizeof(chunk), f);
    if (got == 0) break;
    buf.append(chunk, got);
  }
  bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return Status::IOError("snapshot read failed: " + path);

  if (buf.size() < sizeof(uint64_t) + sizeof(uint32_t)) {
    return Status::IOError(
        StrFormat("%s: snapshot too short (%zu bytes)", path.c_str(),
                  buf.size()));
  }
  uint64_t magic;
  std::memcpy(&magic, buf.data(), sizeof(magic));
  if (magic != kMagic) {
    return Status::IOError("bad snapshot magic: " + path);
  }
  // CRC covers [magic end, crc start).
  const size_t body_end = buf.size() - sizeof(uint32_t);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, buf.data() + body_end, sizeof(stored_crc));
  uint32_t actual_crc =
      Crc32(buf.data() + sizeof(magic), body_end - sizeof(magic));
  if (stored_crc != actual_crc) {
    return Status::IOError(
        StrFormat("%s: snapshot CRC mismatch (stored %08x, computed %08x)",
                  path.c_str(), stored_crc, actual_crc));
  }

  std::string body = buf.substr(sizeof(magic), body_end - sizeof(magic));
  Cursor cur(body, path);
  SnapshotData data;
  PIGGY_RETURN_NOT_OK(cur.GetU64(&data.id));
  PIGGY_RETURN_NOT_OK(cur.GetU64(&data.next_seq));

  uint64_t churn_count = 0;
  PIGGY_RETURN_NOT_OK(cur.GetU64(&churn_count));
  if (churn_count > body.size()) {  // cheap sanity bound before reserving
    return Status::IOError(
        StrFormat("%s: implausible churn count %llu", path.c_str(),
                  static_cast<unsigned long long>(churn_count)));
  }
  data.churn.reserve(churn_count);
  for (uint64_t i = 0; i < churn_count; ++i) {
    uint8_t added = 0;
    uint32_t src = 0, dst = 0;
    PIGGY_RETURN_NOT_OK(cur.GetU8(&added));
    PIGGY_RETURN_NOT_OK(cur.GetU32(&src));
    PIGGY_RETURN_NOT_OK(cur.GetU32(&dst));
    data.churn.emplace_back(added != 0, Edge{src, dst});
  }

  uint64_t rate_count = 0;
  PIGGY_RETURN_NOT_OK(cur.GetU64(&rate_count));
  if (rate_count > body.size()) {
    return Status::IOError(
        StrFormat("%s: implausible rate count %llu", path.c_str(),
                  static_cast<unsigned long long>(rate_count)));
  }
  data.production.reserve(rate_count);
  data.consumption.reserve(rate_count);
  for (uint64_t i = 0; i < rate_count; ++i) {
    double rp = 0, rc = 0;
    PIGGY_RETURN_NOT_OK(cur.GetF64(&rp));
    PIGGY_RETURN_NOT_OK(cur.GetF64(&rc));
    data.production.push_back(rp);
    data.consumption.push_back(rc);
  }

  uint64_t schedule_len = 0;
  PIGGY_RETURN_NOT_OK(cur.GetU64(&schedule_len));
  if (cur.pos() + schedule_len > body.size()) {
    return Status::IOError(
        StrFormat("%s: truncated schedule blob at byte %zu", path.c_str(),
                  cur.pos()));
  }
  data.schedule_text.assign(body, cur.pos(), schedule_len);
  {
    std::string skip(schedule_len, '\0');
    PIGGY_RETURN_NOT_OK(cur.Get(skip.data(), schedule_len));
  }

  uint64_t event_count = 0;
  PIGGY_RETURN_NOT_OK(cur.GetU64(&event_count));
  if (event_count > body.size()) {
    return Status::IOError(
        StrFormat("%s: implausible event count %llu", path.c_str(),
                  static_cast<unsigned long long>(event_count)));
  }
  data.events.reserve(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    EventTuple e;
    PIGGY_RETURN_NOT_OK(cur.GetU32(&e.producer));
    PIGGY_RETURN_NOT_OK(cur.GetU64(&e.event_id));
    PIGGY_RETURN_NOT_OK(cur.GetU64(&e.timestamp));
    data.events.push_back(e);
  }
  if (cur.pos() != body.size()) {
    return Status::IOError(
        StrFormat("%s: %zu trailing bytes after snapshot body", path.c_str(),
                  body.size() - cur.pos()));
  }
  return data;
}

}  // namespace piggy
