#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/parallel_nosy.h"
#include "gen/presets.h"
#include "store/prototype.h"
#include "store/workload_driver.h"
#include "workload/workload.h"

namespace piggy {
namespace {

struct SmallSystem {
  explicit SmallSystem(size_t servers, size_t view_capacity = 0) {
    graph = MakeFlickrLike(400, 31).ValueOrDie();
    workload = GenerateWorkload(graph, {.min_rate = 0.05}).ValueOrDie();
    schedule = HybridSchedule(graph, workload);
    PrototypeOptions opt;
    opt.num_servers = servers;
    opt.view_capacity = view_capacity;
    prototype = Prototype::Create(graph, schedule, opt).MoveValueOrDie();
  }
  Graph graph;
  Workload workload;
  Schedule schedule;
  std::unique_ptr<Prototype> prototype;
};

TEST(PrototypeTest, CreateValidatesOptions) {
  SmallSystem sys(4);
  PrototypeOptions bad;
  bad.num_servers = 0;
  EXPECT_FALSE(Prototype::Create(sys.graph, sys.schedule, bad).ok());
  PrototypeOptions bad2;
  bad2.feed_size = 0;
  EXPECT_FALSE(Prototype::Create(sys.graph, sys.schedule, bad2).ok());
}

TEST(PrototypeTest, StreamsPassAuditWithUnboundedViews) {
  SmallSystem sys(8);
  Rng rng(1);
  // Mixed traffic, then audit several users.
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(sys.graph.num_nodes()));
    if (rng.Bernoulli(0.3)) {
      sys.prototype->ShareEvent(u);
    } else {
      auto stream = sys.prototype->QueryStream(u);
      ASSERT_TRUE(sys.prototype->AuditStream(u, stream).ok());
    }
  }
  EXPECT_EQ(sys.prototype->TotalTrimmedEvents(), 0u);
}

TEST(PrototypeTest, AuditCatchesForgedStream) {
  SmallSystem sys(4);
  sys.prototype->ShareEvent(0);
  // A stream containing an event from a producer the user does not follow.
  NodeId loner = 0;
  for (NodeId u = 0; u < sys.graph.num_nodes(); ++u) {
    if (sys.graph.InDegree(u) == 0) {
      loner = u;
      break;
    }
  }
  std::vector<EventTuple> forged{{static_cast<NodeId>(loner + 1), 1, 1}};
  if (!sys.graph.HasEdge(loner + 1, loner) && loner + 1 < sys.graph.num_nodes()) {
    EXPECT_FALSE(sys.prototype->AuditStream(loner, forged).ok());
  }
}

TEST(PrototypeTest, ActualThroughputTracksMessages) {
  SmallSystem one(1);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(one.graph.num_nodes()));
    if (i % 3 == 0) {
      one.prototype->ShareEvent(u);
    } else {
      one.prototype->QueryStream(u);
    }
  }
  // One server: exactly one message per request.
  EXPECT_DOUBLE_EQ(one.prototype->client().metrics().MessagesPerRequest(), 1.0);
  EXPECT_DOUBLE_EQ(one.prototype->ActualThroughput(),
                   one.prototype->options().client_messages_per_second);
}

TEST(PrototypeTest, MoreServersLowerPerClientThroughput) {
  double prev = 1e18;
  for (size_t servers : {1, 8, 64}) {
    SmallSystem sys(servers);
    DriverOptions d;
    d.num_requests = 4000;
    d.seed = 5;
    auto report = RunWorkloadDriver(*sys.prototype, sys.workload, d).ValueOrDie();
    EXPECT_LE(report.actual_throughput, prev + 1e-6);
    prev = report.actual_throughput;
  }
}

TEST(PrototypeTest, PerServerLoadsSumToMessages) {
  SmallSystem sys(16);
  DriverOptions d;
  d.num_requests = 3000;
  auto report = RunWorkloadDriver(*sys.prototype, sys.workload, d).ValueOrDie();
  uint64_t total_queries = 0, total_updates = 0;
  for (uint64_t q : report.per_server_queries) total_queries += q;
  for (uint64_t u : report.per_server_updates) total_updates += u;
  EXPECT_EQ(total_queries, report.client.query_messages);
  EXPECT_EQ(total_updates, report.client.update_messages);
}

TEST(PrototypeTest, DriverIsDeterministic) {
  SmallSystem a(8), b(8);
  DriverOptions d;
  d.num_requests = 2000;
  d.seed = 9;
  auto ra = RunWorkloadDriver(*a.prototype, a.workload, d).ValueOrDie();
  auto rb = RunWorkloadDriver(*b.prototype, b.workload, d).ValueOrDie();
  EXPECT_EQ(ra.client.share_requests, rb.client.share_requests);
  EXPECT_EQ(ra.client.update_messages, rb.client.update_messages);
  EXPECT_EQ(ra.per_server_queries, rb.per_server_queries);
}

TEST(PrototypeTest, DriverAuditsPass) {
  SmallSystem sys(8);
  DriverOptions d;
  d.num_requests = 3000;
  d.audit_every = 50;
  auto report = RunWorkloadDriver(*sys.prototype, sys.workload, d).ValueOrDie();
  EXPECT_GT(report.audited_queries, 0u);
}

TEST(PrototypeTest, DriverAuditsPassWithPiggybackSchedule) {
  Graph graph = MakeFlickrLike(400, 37).ValueOrDie();
  Workload workload = GenerateWorkload(graph, {.min_rate = 0.05}).ValueOrDie();
  auto pn = RunParallelNosy(graph, workload).ValueOrDie();
  PrototypeOptions opt;
  opt.num_servers = 16;
  opt.view_capacity = 0;
  auto proto = Prototype::Create(graph, pn.schedule, opt).MoveValueOrDie();
  DriverOptions d;
  d.num_requests = 4000;
  d.audit_every = 25;
  auto report = RunWorkloadDriver(*proto, workload, d).ValueOrDie();
  EXPECT_GT(report.audited_queries, 0u);
}

TEST(PrototypeTest, RequestMixTracksRates) {
  SmallSystem sys(4);
  DriverOptions d;
  d.num_requests = 20000;
  auto report = RunWorkloadDriver(*sys.prototype, sys.workload, d).ValueOrDie();
  double share_fraction = static_cast<double>(report.client.share_requests) /
                          static_cast<double>(report.client.requests());
  double expected = sys.workload.TotalProduction() /
                    (sys.workload.TotalProduction() + sys.workload.TotalConsumption());
  EXPECT_NEAR(share_fraction, expected, 0.02);
}

TEST(PrototypeTest, NormalizedLoadStatistics) {
  SmallSystem sys(10);
  DriverOptions d;
  d.num_requests = 5000;
  auto report = RunWorkloadDriver(*sys.prototype, sys.workload, d).ValueOrDie();
  EXPECT_NEAR(report.NormalizedQueryLoadMean(), 0.1, 1e-9);
  EXPECT_GE(report.NormalizedQueryLoadVariance(), 0.0);
  EXPECT_LT(report.NormalizedQueryLoadVariance(), 0.01);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(PrototypeTest, ResetMetricsClearsCounters) {
  SmallSystem sys(4);
  sys.prototype->ShareEvent(0);
  sys.prototype->QueryStream(1);
  sys.prototype->ResetMetrics();
  EXPECT_EQ(sys.prototype->client().metrics().requests(), 0u);
  for (uint64_t q : sys.prototype->PerServerQueryLoad()) EXPECT_EQ(q, 0u);
}

TEST(PrototypeTest, TrimmingKeepsSoundness) {
  SmallSystem sys(4, /*view_capacity=*/5);
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(sys.graph.num_nodes()));
    if (rng.Bernoulli(0.5)) {
      sys.prototype->ShareEvent(u);
    } else {
      auto stream = sys.prototype->QueryStream(u);
      // With trimming the audit degrades to soundness checks; must still pass.
      ASSERT_TRUE(sys.prototype->AuditStream(u, stream).ok());
    }
  }
  EXPECT_GT(sys.prototype->TotalTrimmedEvents(), 0u);
}

}  // namespace
}  // namespace piggy
