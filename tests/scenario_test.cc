// Scenario engine: registry surface, stream determinism, epoch accounting,
// stationary parity with the workload driver's sampling, and churn-op
// coherence for every registered scenario family.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "gen/presets.h"
#include "graph/dynamic_graph.h"
#include "scenario/scenario.h"
#include "util/alias_table.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace piggy {
namespace {

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (const ScenarioInfo& info : RegisteredScenarios()) names.push_back(info.name);
  return names;
}

ScenarioOptions SmallRun() {
  ScenarioOptions options;
  options.num_requests = 4000;
  options.epochs = 8;
  options.seed = 11;
  return options;
}

std::vector<ScenarioOp> Drain(Scenario& scenario) {
  std::vector<ScenarioOp> ops;
  ScenarioOp op;
  while (scenario.Next(&op)) ops.push_back(op);
  return ops;
}

bool SameOp(const ScenarioOp& a, const ScenarioOp& b) {
  return a.time == b.time && a.kind == b.kind && a.user == b.user &&
         a.producer == b.producer && a.epoch == b.epoch;
}

TEST(ScenarioTest, RegistryListsTheSixFamilies) {
  const std::vector<std::string> names = AllNames();
  for (const char* expected :
       {"stationary", "diurnal", "flash-crowd", "celebrity-join",
        "follow-storm", "regional-event"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const ScenarioInfo& info : RegisteredScenarios()) {
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
}

TEST(ScenarioTest, UnknownNamesListValidOptions) {
  Graph g = MakeFlickrLike(100, 1).ValueOrDie();
  auto scenario = MakeScenario("no-such-scenario", g, SmallRun());
  ASSERT_FALSE(scenario.ok());
  EXPECT_TRUE(scenario.status().IsInvalidArgument());
  EXPECT_NE(scenario.status().message().find("flash-crowd"), std::string::npos);
}

TEST(ScenarioTest, RejectsBadInputs) {
  Graph g = MakeFlickrLike(100, 1).ValueOrDie();
  ScenarioOptions no_epochs = SmallRun();
  no_epochs.epochs = 0;
  EXPECT_FALSE(MakeScenario("stationary", g, no_epochs).ok());
  ScenarioOptions no_duration = SmallRun();
  no_duration.duration = 0;
  EXPECT_FALSE(MakeScenario("stationary", g, no_duration).ok());
  Workload wrong = UniformWorkload(7, 1.0, 5.0);
  EXPECT_FALSE(MakeScenario("stationary", g, std::move(wrong), SmallRun()).ok());
}

// The satellite requirement: a fixed seed reproduces the stream exactly,
// both across fresh instances and across Reset().
TEST(ScenarioTest, StreamsAreDeterministicAcrossRerunsAndReset) {
  Graph g = MakeFlickrLike(300, 5).ValueOrDie();
  for (const std::string& name : AllNames()) {
    SCOPED_TRACE(name);
    auto a = MakeScenario(name, g, SmallRun()).MoveValueOrDie();
    auto b = MakeScenario(name, g, SmallRun()).MoveValueOrDie();
    const std::vector<ScenarioOp> ops_a = Drain(*a);
    const std::vector<ScenarioOp> ops_b = Drain(*b);
    ASSERT_EQ(ops_a.size(), ops_b.size());
    for (size_t i = 0; i < ops_a.size(); ++i) {
      ASSERT_TRUE(SameOp(ops_a[i], ops_b[i])) << "op " << i;
    }
    a->Reset();
    const std::vector<ScenarioOp> ops_again = Drain(*a);
    ASSERT_EQ(ops_a.size(), ops_again.size());
    for (size_t i = 0; i < ops_a.size(); ++i) {
      ASSERT_TRUE(SameOp(ops_a[i], ops_again[i])) << "op " << i;
    }
  }
}

TEST(ScenarioTest, StreamsAreTimeOrderedWithExactRequestCounts) {
  Graph g = MakeFlickrLike(300, 5).ValueOrDie();
  for (const std::string& name : AllNames()) {
    SCOPED_TRACE(name);
    auto scenario = MakeScenario(name, g, SmallRun()).MoveValueOrDie();
    EXPECT_EQ(scenario->num_epochs(), SmallRun().epochs);
    size_t requests = 0;
    double last_time = 0;
    uint32_t last_epoch = 0;
    ScenarioOp op;
    while (scenario->Next(&op)) {
      EXPECT_GE(op.time, last_time);
      EXPECT_GE(op.epoch, last_epoch);
      EXPECT_LT(op.epoch, scenario->num_epochs());
      EXPECT_GE(op.time, scenario->EpochStart(op.epoch));
      EXPECT_LE(op.time, scenario->duration());
      last_time = op.time;
      last_epoch = op.epoch;
      if (op.kind == ScenarioOpKind::kShare || op.kind == ScenarioOpKind::kQuery) {
        EXPECT_LT(op.user, g.num_nodes());
        ++requests;
      }
    }
    EXPECT_EQ(requests, SmallRun().num_requests);
  }
}

// The stationary scenario must sample requests exactly like the stationary
// workload driver: one Bernoulli on the share fraction, then one alias-table
// draw, from Rng(seed) — this is what makes replay bit-identical to
// FeedService::Drive (scenario_drive_test checks the end-to-end half).
TEST(ScenarioTest, StationarySamplingMatchesWorkloadDriverDraws) {
  Graph g = MakeFlickrLike(400, 9).ValueOrDie();
  Workload w = GenerateWorkload(g, {.min_rate = 0.01}).ValueOrDie();
  ScenarioOptions options = SmallRun();
  auto scenario = MakeScenario("stationary", g, w, options).MoveValueOrDie();

  AliasTable share_sampler(w.production);
  AliasTable query_sampler(w.consumption);
  const double p_share =
      w.TotalProduction() / (w.TotalProduction() + w.TotalConsumption());
  Rng rng(options.seed);

  ScenarioOp op;
  for (size_t i = 0; i < options.num_requests; ++i) {
    ASSERT_TRUE(scenario->Next(&op)) << "stream ended early at " << i;
    if (rng.Bernoulli(p_share)) {
      EXPECT_EQ(op.kind, ScenarioOpKind::kShare) << "request " << i;
      EXPECT_EQ(op.user, share_sampler.Sample(rng)) << "request " << i;
    } else {
      EXPECT_EQ(op.kind, ScenarioOpKind::kQuery) << "request " << i;
      EXPECT_EQ(op.user, query_sampler.Sample(rng)) << "request " << i;
    }
  }
  EXPECT_FALSE(scenario->Next(&op));  // no churn, no rate shifts, no extras
}

TEST(ScenarioTest, StationaryNeverShiftsRates) {
  Graph g = MakeFlickrLike(200, 3).ValueOrDie();
  auto scenario = MakeScenario("stationary", g, SmallRun()).MoveValueOrDie();
  for (const ScenarioOp& op : Drain(*scenario)) {
    EXPECT_NE(op.kind, ScenarioOpKind::kRateShift);
    EXPECT_NE(op.kind, ScenarioOpKind::kFollow);
    EXPECT_NE(op.kind, ScenarioOpKind::kUnfollow);
  }
  for (size_t e = 0; e < scenario->num_epochs(); ++e) {
    EXPECT_EQ(&scenario->EpochWorkload(e), &scenario->EpochWorkload(0));
  }
}

// Churn ops must be coherent against the evolving topology: follows add
// edges that do not exist yet, unfollows remove edges that do.
TEST(ScenarioTest, ChurnOpsAreCoherentAgainstTheEvolvingGraph) {
  Graph g = MakeFlickrLike(300, 5).ValueOrDie();
  for (const std::string& name : AllNames()) {
    SCOPED_TRACE(name);
    auto scenario = MakeScenario(name, g, SmallRun()).MoveValueOrDie();
    DynamicGraph evolving(g);
    size_t follows = 0, unfollows = 0;
    ScenarioOp op;
    while (scenario->Next(&op)) {
      if (op.kind == ScenarioOpKind::kFollow) {
        ASSERT_NE(op.user, op.producer);
        ASSERT_TRUE(evolving.AddEdge(op.producer, op.user))
            << "duplicate follow " << op.ToString();
        ++follows;
      } else if (op.kind == ScenarioOpKind::kUnfollow) {
        ASSERT_TRUE(evolving.RemoveEdge(op.producer, op.user))
            << "spurious unfollow " << op.ToString();
        ++unfollows;
      }
    }
    if (name == "celebrity-join" || name == "follow-storm" ||
        name == "regional-event") {
      EXPECT_GT(follows, 0u) << "churn scenario emitted no follows";
    }
    if (name == "follow-storm") {
      EXPECT_GT(unfollows, 0u);
    }
  }
}

// Rate-shift markers fire exactly when the ground-truth workload changes,
// and epoch workloads evolve for every non-stationary family.
TEST(ScenarioTest, RateShiftsTrackEpochWorkloads) {
  Graph g = MakeFlickrLike(300, 5).ValueOrDie();
  for (const std::string& name :
       {std::string("diurnal"), std::string("flash-crowd"),
        std::string("regional-event")}) {
    SCOPED_TRACE(name);
    auto scenario = MakeScenario(name, g, SmallRun()).MoveValueOrDie();
    std::set<uint32_t> shifted;
    for (const ScenarioOp& op : Drain(*scenario)) {
      if (op.kind == ScenarioOpKind::kRateShift) {
        EXPECT_TRUE(shifted.insert(op.epoch).second)
            << "duplicate shift in epoch " << op.epoch;
        EXPECT_GT(op.epoch, 0u);
      }
    }
    ASSERT_FALSE(shifted.empty());
    for (uint32_t e : shifted) {
      EXPECT_NE(&scenario->EpochWorkload(e), &scenario->EpochWorkload(e - 1));
    }
  }
}

// Bursty epochs carry proportionally more requests (flash-crowd's spike
// epoch must outweigh a quiet epoch).
TEST(ScenarioTest, RequestDensityFollowsEpochRates) {
  Graph g = MakeFlickrLike(400, 9).ValueOrDie();
  ScenarioOptions options = SmallRun();
  options.num_requests = 16000;
  options.intensity = 10.0;
  auto scenario = MakeScenario("flash-crowd", g, options).MoveValueOrDie();
  std::vector<size_t> per_epoch(scenario->num_epochs(), 0);
  for (const ScenarioOp& op : Drain(*scenario)) {
    if (op.kind == ScenarioOpKind::kShare || op.kind == ScenarioOpKind::kQuery) {
      per_epoch[op.epoch] += 1;
    }
  }
  const size_t quiet = per_epoch[0];
  const size_t spike = *std::max_element(per_epoch.begin(), per_epoch.end());
  EXPECT_GT(spike, quiet);
}

// An all-zero base workload legally produces an empty stream (the "rate
// shift to zero" degenerate case at its extreme).
TEST(ScenarioTest, ZeroRatesEmitNoRequests) {
  Graph g = MakeFlickrLike(100, 2).ValueOrDie();
  Workload zero;
  zero.production.assign(g.num_nodes(), 0.0);
  zero.consumption.assign(g.num_nodes(), 0.0);
  auto scenario =
      MakeScenario("stationary", g, std::move(zero), SmallRun()).MoveValueOrDie();
  ScenarioOp op;
  EXPECT_FALSE(scenario->Next(&op));
}

}  // namespace
}  // namespace piggy
