#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "core/baselines.h"
#include "core/chitchat.h"
#include "core/cost_model.h"
#include "core/validator.h"
#include "gen/generators.h"
#include "gen/presets.h"
#include "graph/graph_builder.h"
#include "workload/workload.h"

namespace piggy {
namespace {

Graph PaperTriangle() {
  return BuildGraph(3, {{0, 2}, {2, 1}, {0, 1}}).ValueOrDie();
}

TEST(ChitChatTest, TriangleUsesHubWhenProfitable) {
  Graph g = PaperTriangle();
  // Rates chosen so the greedy's first pick is the full hub at Charlie(2):
  // FF: 0->2 min(1,10)=1; 2->1 min(2,0.5)=0.5; 0->1 min(1,0.5)=0.5 => 2.0.
  // Hub at Charlie: push 0->2 (1.0) + pull 2->1 (0.5) = 1.5 covers all three
  // edges at 0.5 per element, tying the best singleton — ties go to the hub.
  // (Charlie's own production is expensive, so the degenerate push-only
  // hub-graph at Billie does not outscore it.)
  Workload w;
  w.production = {1.0, 0.1, 2.0};
  w.consumption = {10.0, 0.5, 10.0};
  ChitChatStats stats;
  Schedule s = RunChitChat(g, w, {}, &stats).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, s).ok());
  double cost = ScheduleCost(g, w, s, ResidualPolicy::kFree);
  EXPECT_NEAR(cost, 1.5, 1e-9);
  EXPECT_TRUE(s.IsPush(0, 2));
  EXPECT_TRUE(s.IsPull(2, 1));
  EXPECT_TRUE(s.IsHubCovered(0, 1));
  EXPECT_EQ(*s.HubFor(0, 1), 2u);
  EXPECT_GE(stats.hub_selections, 1u);
  EXPECT_EQ(stats.edges_covered_by_hubs, 1u);
}

TEST(ChitChatTest, FallsBackToSingletonsWhenHubsDontPay) {
  // A simple path 0 -> 1 -> 2 has no cross edge, so no hub can cover more
  // than direct service; CHITCHAT must behave like FF.
  Graph g = BuildGraph(3, {{0, 1}, {1, 2}}).ValueOrDie();
  Workload w = UniformWorkload(3, 1.0, 5.0);
  Schedule s = RunChitChat(g, w).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, s).ok());
  EXPECT_NEAR(ScheduleCost(g, w, s, ResidualPolicy::kFree), HybridCost(g, w), 1e-9);
  EXPECT_EQ(s.hub_covered_size(), 0u);
}

TEST(ChitChatTest, EmptyAndEdgelessGraphs) {
  Graph empty = GraphBuilder().Build().ValueOrDie();
  Workload w0;
  Schedule s = RunChitChat(empty, w0).ValueOrDie();
  EXPECT_EQ(s.push_size() + s.pull_size(), 0u);

  GraphBuilder b;
  b.EnsureNodes(5);
  Graph isolated = std::move(b).Build().ValueOrDie();
  Workload w = UniformWorkload(5, 1.0, 1.0);
  Schedule s2 = RunChitChat(isolated, w).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(isolated, s2).ok());
}

TEST(ChitChatTest, MismatchedWorkloadRejected) {
  Graph g = PaperTriangle();
  Workload w = UniformWorkload(2, 1.0, 1.0);
  EXPECT_FALSE(RunChitChat(g, w).ok());
}

TEST(ChitChatTest, BipartiteWithSharedHub) {
  // Producers {0,1,2} all feed hub 3, hub feeds consumers {4,5}; every
  // producer also has cross edges to both consumers. One hub selection should
  // cover everything when consumption is expensive.
  GraphBuilder b;
  for (NodeId x : {0, 1, 2}) {
    b.AddEdge(x, 3);
    b.AddEdge(x, 4);
    b.AddEdge(x, 5);
  }
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  Graph g = std::move(b).Build().ValueOrDie();
  Workload w = UniformWorkload(6, 1.0, 100.0);
  // FF cost: 11 edges * min(1,100) = 11.
  // Hub 3: pushes 0,1,2->3 (3) + pulls 3->4, 3->5 (200)... too expensive.
  // With rc=2: FF = 11; hub = 3 + 4 = 7 covering all 11 edges.
  Workload w2 = UniformWorkload(6, 1.0, 2.0);
  ChitChatStats stats;
  Schedule s = RunChitChat(g, w2, {}, &stats).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, s).ok());
  double cost = ScheduleCost(g, w2, s, ResidualPolicy::kFree);
  EXPECT_NEAR(cost, 7.0, 1e-9);
  EXPECT_EQ(stats.edges_covered_by_hubs, 6u);
  (void)w;
}

TEST(ChitChatTest, NeverWorseThanHybridBaseline) {
  for (uint64_t seed : {1, 2, 3}) {
    Graph g = MakeFlickrLike(400, seed).ValueOrDie();
    Workload w = GenerateWorkload(g, {}).ValueOrDie();
    Schedule s = RunChitChat(g, w).ValueOrDie();
    EXPECT_TRUE(ValidateSchedule(g, s).ok());
    double cc = ScheduleCost(g, w, s, ResidualPolicy::kFree);
    EXPECT_LE(cc, HybridCost(g, w) + 1e-6);
  }
}

TEST(ChitChatTest, BeatsHybridOnClusteredGraph) {
  Graph g = GenerateSocialNetwork(
                {.num_nodes = 600, .edges_per_node = 8, .triadic_closure = 0.6},
                11)
                .ValueOrDie();
  Workload w = GenerateWorkload(g, {.read_write_ratio = 5.0}).ValueOrDie();
  ChitChatStats stats;
  Schedule s = RunChitChat(g, w, {}, &stats).ValueOrDie();
  double cc = ScheduleCost(g, w, s, ResidualPolicy::kFree);
  double ff = HybridCost(g, w);
  EXPECT_LT(cc, ff * 0.98);  // must find real savings
  EXPECT_GT(stats.edges_covered_by_hubs, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(ChitChatTest, CapsAreRespected) {
  Graph g = MakeTwitterLike(300, 5).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  ChitChatOptions tight;
  tight.max_producers = 4;
  tight.max_consumers = 4;
  tight.max_cross_edges = 8;
  Schedule s = RunChitChat(g, w, tight).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, s).ok());
  // Tighter caps mean fewer piggybacking opportunities, never invalidity.
  double cost_tight = ScheduleCost(g, w, s, ResidualPolicy::kFree);
  Schedule loose = RunChitChat(g, w, {}).ValueOrDie();
  double cost_loose = ScheduleCost(g, w, loose, ResidualPolicy::kFree);
  EXPECT_LE(cost_loose, cost_tight + 1e-6);
}

TEST(ChitChatTest, InvalidCapsRejected) {
  Graph g = PaperTriangle();
  Workload w = UniformWorkload(3, 1, 1);
  ChitChatOptions bad;
  bad.max_producers = 0;
  EXPECT_FALSE(RunChitChat(g, w, bad).ok());
}

TEST(ChitChatTest, ExhaustiveOracleAgreesOnSmallGraphs) {
  // With hub-graphs small enough for the exact oracle, both oracles satisfy
  // validity and the exhaustive one can only do better or equal.
  Graph g = GenerateSocialNetwork({.num_nodes = 60, .edges_per_node = 4}, 9)
                .ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  Schedule greedy = RunChitChat(g, w, {}).ValueOrDie();
  ChitChatOptions exact_opt;
  exact_opt.exhaustive_oracle_small = true;
  Schedule exact = RunChitChat(g, w, exact_opt).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, greedy).ok());
  EXPECT_TRUE(ValidateSchedule(g, exact).ok());
  double cost_greedy = ScheduleCost(g, w, greedy, ResidualPolicy::kFree);
  double cost_exact = ScheduleCost(g, w, exact, ResidualPolicy::kFree);
  // No strict guarantee (greedy set cover on different oracles), but both
  // must be at least as good as FF.
  double ff = HybridCost(g, w);
  EXPECT_LE(cost_greedy, ff + 1e-9);
  EXPECT_LE(cost_exact, ff + 1e-9);
}

// ---------------------------------------------------------------------------
// Schedule parity: threaded oracle sweeps must produce bit-identical
// schedules to the sequential reference (num_threads = 1) — same H, same L,
// same hub assignment for every covered edge — across graph families, seeds
// and thread counts.

struct ScheduleDump {
  std::vector<uint64_t> pushes;
  std::vector<uint64_t> pulls;
  std::vector<std::pair<uint64_t, NodeId>> covers;

  bool operator==(const ScheduleDump&) const = default;
};

ScheduleDump Dump(const Schedule& s) {
  ScheduleDump d;
  s.ForEachPush([&d](const Edge& e) { d.pushes.push_back(EdgeKey(e)); });
  s.ForEachPull([&d](const Edge& e) { d.pulls.push_back(EdgeKey(e)); });
  s.ForEachHubCover(
      [&d](const Edge& e, NodeId hub) { d.covers.emplace_back(EdgeKey(e), hub); });
  std::sort(d.pushes.begin(), d.pushes.end());
  std::sort(d.pulls.begin(), d.pulls.end());
  std::sort(d.covers.begin(), d.covers.end());
  return d;
}

// Parameters: (graph family, seed).
class ChitChatParityTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 public:
  static Graph MakeGraph(int family, uint64_t seed) {
    switch (family) {
      case 0:
        return MakeFlickrLike(300, seed).ValueOrDie();
      case 1:
        return MakeTwitterLike(300, seed).ValueOrDie();
      default:
        return GenerateSocialNetwork(
                   {.num_nodes = 300, .edges_per_node = 6, .triadic_closure = 0.5},
                   seed)
            .ValueOrDie();
    }
  }
};

TEST_P(ChitChatParityTest, ThreadedSchedulesAreBitIdentical) {
  auto [family, seed] = GetParam();
  Graph g = MakeGraph(family, seed);
  Workload w = GenerateWorkload(g, {.read_write_ratio = 5.0}).ValueOrDie();

  ChitChatOptions sequential;
  sequential.num_threads = 1;
  ChitChatStats seq_stats;
  Schedule reference = RunChitChat(g, w, sequential, &seq_stats).ValueOrDie();
  ASSERT_TRUE(ValidateSchedule(g, reference).ok());
  const ScheduleDump ref = Dump(reference);

  for (size_t threads : {2, 4, 8}) {
    ChitChatOptions threaded;
    threaded.num_threads = threads;
    ChitChatStats stats;
    Schedule s = RunChitChat(g, w, threaded, &stats).ValueOrDie();
    EXPECT_EQ(Dump(s), ref) << "diverged at num_threads=" << threads;
    // Greedy decisions — and therefore every stat — must match exactly.
    EXPECT_EQ(stats.hub_selections, seq_stats.hub_selections);
    EXPECT_EQ(stats.singleton_selections, seq_stats.singleton_selections);
    EXPECT_EQ(stats.oracle_calls, seq_stats.oracle_calls);
    EXPECT_EQ(stats.edges_covered_by_hubs, seq_stats.edges_covered_by_hubs);
    EXPECT_EQ(stats.final_cost, seq_stats.final_cost);  // bitwise, not NEAR
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, ChitChatParityTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<uint64_t>(1, 2, 3)));

// Property sweep: validity and FF-dominance across families / ratios / seeds.
class ChitChatPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(ChitChatPropertyTest, ValidAndNoWorseThanFF) {
  auto [ratio, seed] = GetParam();
  Graph g = GenerateSocialNetwork({.num_nodes = 250, .edges_per_node = 6}, seed)
                .ValueOrDie();
  Workload w = GenerateWorkload(g, {.read_write_ratio = ratio}).ValueOrDie();
  Schedule s = RunChitChat(g, w).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, s).ok());
  EXPECT_LE(ScheduleCost(g, w, s, ResidualPolicy::kFree), HybridCost(g, w) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndSeeds, ChitChatPropertyTest,
    ::testing::Combine(::testing::Values(1.0, 5.0, 25.0, 100.0),
                       ::testing::Values<uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace piggy
