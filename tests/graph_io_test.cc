#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace piggy {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("piggy_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, TextRoundTrip) {
  Graph g = GenerateErdosRenyi(100, 500, 3).ValueOrDie();
  std::string path = Path("g.txt");
  ASSERT_TRUE(WriteEdgeListText(g, path).ok());
  Graph back = ReadEdgeListText(path).ValueOrDie();
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.Edges(), g.Edges());
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  Graph g = GenerateErdosRenyi(200, 2000, 5).ValueOrDie();
  std::string path = Path("g.bin");
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());
  Graph back = ReadGraphBinary(path).ValueOrDie();
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.Edges(), g.Edges());
}

TEST_F(GraphIoTest, TextPreservesIsolatedNodes) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNodes(50);
  Graph g = std::move(b).Build().ValueOrDie();
  std::string path = Path("iso.txt");
  ASSERT_TRUE(WriteEdgeListText(g, path).ok());
  Graph back = ReadEdgeListText(path).ValueOrDie();
  EXPECT_EQ(back.num_nodes(), 50u);
}

TEST_F(GraphIoTest, TextSkipsCommentsAndBlanks) {
  std::string path = Path("comments.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n\n  \n0 1\n# more\n1 2\n";
  }
  Graph g = ReadEdgeListText(path).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST_F(GraphIoTest, TextMalformedLineFails) {
  std::string path = Path("bad.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot-an-edge\n";
  }
  auto result = ReadEdgeListText(path);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(GraphIoTest, MissingFileFails) {
  EXPECT_TRUE(ReadEdgeListText(Path("nope.txt")).status().IsIOError());
  EXPECT_TRUE(ReadGraphBinary(Path("nope.bin")).status().IsIOError());
}

TEST_F(GraphIoTest, BinaryBadMagicFails) {
  std::string path = Path("junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph file at all, not even close";
  }
  auto result = ReadGraphBinary(path);
  EXPECT_FALSE(result.ok());
}

TEST_F(GraphIoTest, BinaryTruncatedFails) {
  Graph g = GenerateErdosRenyi(10, 30, 1).ValueOrDie();
  std::string path = Path("trunc.bin");
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 4);
  EXPECT_FALSE(ReadGraphBinary(path).ok());
}

TEST_F(GraphIoTest, EmptyGraphRoundTrips) {
  Graph g = GraphBuilder().Build().ValueOrDie();
  std::string t = Path("empty.txt"), b = Path("empty.bin");
  ASSERT_TRUE(WriteEdgeListText(g, t).ok());
  ASSERT_TRUE(WriteGraphBinary(g, b).ok());
  EXPECT_EQ(ReadEdgeListText(t).ValueOrDie().num_edges(), 0u);
  EXPECT_EQ(ReadGraphBinary(b).ValueOrDie().num_edges(), 0u);
}

}  // namespace
}  // namespace piggy
