#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "core/densest_subgraph.h"
#include "core/oracle_scratch.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-steady-state-allocation regression
// test. Kept out of the way under sanitizers, whose own allocator interposers
// must stay in place.
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define PIGGY_COUNT_ALLOCATIONS 1
#endif
#else
#define PIGGY_COUNT_ALLOCATIONS 1
#endif
#endif

#ifdef PIGGY_COUNT_ALLOCATIONS

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

// GCC's -Wmismatched-new-delete heuristic flags the malloc/free pairing
// below, but a replacing operator new is free to use malloc as long as the
// replacing operator delete frees the same way — which these do.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // PIGGY_COUNT_ALLOCATIONS

namespace piggy {
namespace {

// One-off solve with a fresh arena; unit-test convenience for the
// scratch-based API (the library's only oracle entry point).
DensestSubgraphSolution Solve(const HubGraphInstance& inst) {
  OracleScratch scratch;
  DensestSubgraphSolution sol;
  SolveWeightedDensestSubgraph(inst, scratch, &sol);
  return sol;
}

// Builds an instance with uniform weights and all links uncovered.
HubGraphInstance MakeInstance(size_t np, size_t nc, double pw, double cw,
                              std::vector<std::pair<uint32_t, uint32_t>> cross) {
  HubGraphInstance inst;
  inst.hub = 1000;
  for (size_t p = 0; p < np; ++p) {
    inst.producers.push_back(static_cast<NodeId>(p));
    inst.producer_weight.push_back(pw);
    inst.producer_link_in_z.push_back(1);
  }
  for (size_t c = 0; c < nc; ++c) {
    inst.consumers.push_back(static_cast<NodeId>(100 + c));
    inst.consumer_weight.push_back(cw);
    inst.consumer_link_in_z.push_back(1);
  }
  inst.cross_edges = std::move(cross);
  return inst;
}

TEST(EvaluateSelectionTest, CountsLinksAndCrossEdges) {
  HubGraphInstance inst = MakeInstance(2, 1, 1.0, 5.0, {{0, 0}, {1, 0}});
  auto sol = EvaluateSelection(inst, {0, 1}, {0});
  // 2 push links + 1 pull link + 2 cross edges = 5 covered; cost 1+1+5 = 7.
  EXPECT_EQ(sol.covered, 5u);
  EXPECT_DOUBLE_EQ(sol.cost, 7.0);
  EXPECT_DOUBLE_EQ(sol.density, 5.0 / 7.0);
}

TEST(EvaluateSelectionTest, CrossEdgeNeedsBothEndpoints) {
  HubGraphInstance inst = MakeInstance(1, 1, 1.0, 1.0, {{0, 0}});
  auto only_p = EvaluateSelection(inst, {0}, {});
  EXPECT_EQ(only_p.covered, 1u);  // just the push link
  auto both = EvaluateSelection(inst, {0}, {0});
  EXPECT_EQ(both.covered, 3u);
}

TEST(EvaluateSelectionTest, EmptySelection) {
  HubGraphInstance inst = MakeInstance(2, 2, 1.0, 1.0, {});
  auto sol = EvaluateSelection(inst, {}, {});
  EXPECT_EQ(sol.covered, 0u);
  EXPECT_DOUBLE_EQ(sol.density, 0.0);
  EXPECT_TRUE(std::isinf(sol.CostPerElement()));
}

TEST(EvaluateSelectionTest, ZeroCostPositiveCoverageIsInfiniteDensity) {
  HubGraphInstance inst = MakeInstance(1, 0, 0.0, 0.0, {});
  auto sol = EvaluateSelection(inst, {0}, {});
  EXPECT_EQ(sol.covered, 1u);
  EXPECT_TRUE(std::isinf(sol.density));
  EXPECT_DOUBLE_EQ(sol.CostPerElement(), 0.0);
}

TEST(PeelingTest, EmptyInstance) {
  HubGraphInstance inst;
  auto sol = Solve(inst);
  EXPECT_EQ(sol.covered, 0u);
}

TEST(PeelingTest, KeepsDenseCoreDropsPendant) {
  // Dense core: 3 producers x 2 consumers fully crossed; pendant producer 3
  // with no cross edges and a heavy weight.
  HubGraphInstance inst = MakeInstance(4, 2, 1.0, 1.0,
                                       {{0, 0}, {0, 1}, {1, 0}, {1, 1},
                                        {2, 0}, {2, 1}});
  inst.producer_weight[3] = 50.0;  // expensive, covers only its own link
  auto sol = Solve(inst);
  // The expensive pendant must be peeled away.
  for (uint32_t p : sol.producer_idx) EXPECT_NE(p, 3u);
  EXPECT_EQ(sol.producer_idx.size(), 3u);
  EXPECT_EQ(sol.consumer_idx.size(), 2u);
  // covered = 3 push + 2 pull + 6 cross = 11, cost = 5.
  EXPECT_EQ(sol.covered, 11u);
  EXPECT_DOUBLE_EQ(sol.cost, 5.0);
}

TEST(PeelingTest, FreeNodesAlwaysKept) {
  HubGraphInstance inst = MakeInstance(2, 1, 1.0, 1.0, {{0, 0}});
  inst.producer_weight[1] = 0.0;  // already in H: free coverage
  auto sol = Solve(inst);
  bool has_free = false;
  for (uint32_t p : sol.producer_idx) has_free |= (p == 1);
  EXPECT_TRUE(has_free);
}

TEST(PeelingTest, MatchesHandComputedDensity) {
  // One producer (weight 1), one consumer (weight 3), one cross edge.
  // Candidates: {p} -> 1/1 = 1.0; {c} -> 1/3; {p,c} -> 3/4. Optimum is the
  // producer alone, and peeling must find it (it removes c first).
  HubGraphInstance inst = MakeInstance(1, 1, 1.0, 3.0, {{0, 0}});
  auto sol = Solve(inst);
  EXPECT_EQ(sol.covered, 1u);
  EXPECT_DOUBLE_EQ(sol.cost, 1.0);
  EXPECT_DOUBLE_EQ(sol.density, 1.0);
  // With a cheap consumer (weight 0.5), keeping both is optimal:
  // {p,c} -> 3/1.5 = 2.0 beats {p} -> 1.0 and {c} -> 2.0 ties... covered wins.
  HubGraphInstance inst2 = MakeInstance(1, 1, 1.0, 0.5, {{0, 0}});
  auto sol2 = Solve(inst2);
  EXPECT_EQ(sol2.covered, 3u);
  EXPECT_DOUBLE_EQ(sol2.cost, 1.5);
}

TEST(PeelingTest, CoveredLinksReduceValue) {
  HubGraphInstance inst = MakeInstance(1, 1, 1.0, 1.0, {{0, 0}});
  inst.producer_link_in_z[0] = 0;  // x->hub already covered
  auto sol = Solve(inst);
  EXPECT_EQ(sol.covered, 2u);  // pull link + cross edge only
}

// The exhaustive solver is the ground truth; Lemma 1 guarantees peeling is a
// factor-2 approximation of the optimal weighted density.
TEST(PeelingTest, WithinFactorTwoOfExhaustive) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    size_t np = 1 + rng.Uniform(5);
    size_t nc = 1 + rng.Uniform(5);
    HubGraphInstance inst;
    inst.hub = 0;
    for (size_t p = 0; p < np; ++p) {
      inst.producers.push_back(static_cast<NodeId>(p));
      inst.producer_weight.push_back(rng.Bernoulli(0.15) ? 0.0
                                                         : 0.5 + rng.UniformDouble());
      inst.producer_link_in_z.push_back(rng.Bernoulli(0.8) ? 1 : 0);
    }
    for (size_t c = 0; c < nc; ++c) {
      inst.consumers.push_back(static_cast<NodeId>(100 + c));
      inst.consumer_weight.push_back(rng.Bernoulli(0.15) ? 0.0
                                                         : 0.5 + rng.UniformDouble());
      inst.consumer_link_in_z.push_back(rng.Bernoulli(0.8) ? 1 : 0);
    }
    for (uint32_t p = 0; p < np; ++p) {
      for (uint32_t c = 0; c < nc; ++c) {
        if (rng.Bernoulli(0.45)) inst.cross_edges.emplace_back(p, c);
      }
    }
    auto greedy = Solve(inst);
    auto exact = SolveDensestSubgraphExhaustive(inst);
    if (exact.covered == 0) {
      EXPECT_EQ(greedy.covered, 0u);
      continue;
    }
    if (std::isinf(exact.density)) {
      // Optimal density infinite (free coverage); greedy must find free
      // coverage too.
      EXPECT_TRUE(std::isinf(greedy.density));
      continue;
    }
    EXPECT_GE(greedy.density * 2.0 + 1e-9, exact.density)
        << "trial " << trial << ": greedy " << greedy.density << " vs exact "
        << exact.density;
    // And greedy never reports a better density than the true optimum.
    EXPECT_LE(greedy.density, exact.density + 1e-9);
  }
}

TEST(PeelingTest, SolutionSelfConsistent) {
  // The (covered, cost) reported must match re-evaluating the selection.
  Rng rng(88);
  for (int trial = 0; trial < 100; ++trial) {
    size_t np = 1 + rng.Uniform(8);
    size_t nc = 1 + rng.Uniform(8);
    std::vector<std::pair<uint32_t, uint32_t>> cross;
    for (uint32_t p = 0; p < np; ++p) {
      for (uint32_t c = 0; c < nc; ++c) {
        if (rng.Bernoulli(0.3)) cross.emplace_back(p, c);
      }
    }
    HubGraphInstance inst =
        MakeInstance(np, nc, 0.5 + rng.UniformDouble(), 0.5 + rng.UniformDouble(),
                     std::move(cross));
    auto sol = Solve(inst);
    auto check = EvaluateSelection(inst, sol.producer_idx, sol.consumer_idx);
    EXPECT_EQ(sol.covered, check.covered);
    EXPECT_NEAR(sol.cost, check.cost, 1e-9);
  }
}

TEST(PeelingTest, ScratchReuseMatchesFreshArena) {
  // One arena + one output object across instances of varying shapes must
  // reproduce a fresh arena per call exactly (indices, covered, cost,
  // density) — no state may leak between solves.
  Rng rng(123);
  OracleScratch scratch;
  DensestSubgraphSolution sol;
  for (int trial = 0; trial < 200; ++trial) {
    size_t np = rng.Uniform(12);
    size_t nc = rng.Uniform(12);
    std::vector<std::pair<uint32_t, uint32_t>> cross;
    for (uint32_t p = 0; p < np; ++p) {
      for (uint32_t c = 0; c < nc; ++c) {
        if (rng.Bernoulli(0.4)) cross.emplace_back(p, c);
      }
    }
    HubGraphInstance inst =
        MakeInstance(np, nc, 0.5 + rng.UniformDouble(), 0.5 + rng.UniformDouble(),
                     std::move(cross));
    // Zero a few weights / coverage flags to hit the free-node paths.
    if (np > 0 && rng.Bernoulli(0.5)) inst.producer_weight[0] = 0.0;
    if (nc > 0 && rng.Bernoulli(0.5)) inst.consumer_link_in_z[nc - 1] = 0;

    SolveWeightedDensestSubgraph(inst, scratch, &sol);
    DensestSubgraphSolution fresh = Solve(inst);
    EXPECT_EQ(sol.producer_idx, fresh.producer_idx);
    EXPECT_EQ(sol.consumer_idx, fresh.consumer_idx);
    EXPECT_EQ(sol.covered, fresh.covered);
    EXPECT_EQ(sol.cost, fresh.cost);
    EXPECT_EQ(sol.density, fresh.density);
  }
}

#ifdef PIGGY_COUNT_ALLOCATIONS
TEST(PeelingTest, SteadyStateSolvesAreAllocationFree) {
  // After one warm-up solve sized the arena, repeated solves must not touch
  // the heap at all — this is what keeps CHITCHAT's oracle sweeps cheap.
  HubGraphInstance inst = MakeInstance(64, 64, 1.0, 2.0, {});
  Rng rng(9);
  for (uint32_t p = 0; p < 64; ++p) {
    for (uint32_t c = 0; c < 64; ++c) {
      if (rng.Bernoulli(0.3)) inst.cross_edges.emplace_back(p, c);
    }
  }
  OracleScratch scratch;
  DensestSubgraphSolution sol;
  SolveWeightedDensestSubgraph(inst, scratch, &sol);  // warm-up

  const size_t before = g_alloc_count.load();
  for (int i = 0; i < 100; ++i) {
    SolveWeightedDensestSubgraph(inst, scratch, &sol);
  }
  EXPECT_EQ(g_alloc_count.load(), before)
      << "steady-state oracle solves must be allocation-free";
}
#endif  // PIGGY_COUNT_ALLOCATIONS

}  // namespace
}  // namespace piggy
