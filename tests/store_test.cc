#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "core/baselines.h"
#include "gen/generators.h"
#include "store/app_client.h"
#include "store/partitioner.h"
#include "store/view_store.h"
#include "workload/workload.h"

namespace piggy {
namespace {

// ------------------------------------------------------------- Partitioner

TEST(HashPartitionerTest, StaysInRangeAndDeterministic) {
  HashPartitioner p(7);
  for (NodeId u = 0; u < 1000; ++u) {
    uint32_t s = p.ServerOf(u);
    EXPECT_LT(s, 7u);
    EXPECT_EQ(s, p.ServerOf(u));
  }
}

TEST(HashPartitionerTest, SaltChangesPlacement) {
  HashPartitioner a(16, 1), b(16, 2);
  size_t diff = 0;
  for (NodeId u = 0; u < 1000; ++u) diff += a.ServerOf(u) != b.ServerOf(u);
  EXPECT_GT(diff, 500u);
}

TEST(HashPartitionerTest, RoughlyBalanced) {
  HashPartitioner p(10);
  std::vector<int> counts(10, 0);
  for (NodeId u = 0; u < 10000; ++u) ++counts[p.ServerOf(u)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(PlacementCostTest, OneServerIsSumOfRates) {
  Graph g = GenerateErdosRenyi(40, 200, 1).ValueOrDie();
  Workload w = UniformWorkload(40, 2.0, 3.0);
  Schedule s = HybridSchedule(g, w);
  HashPartitioner one(1);
  // Every request touches exactly one server: cost = sum rp + sum rc.
  EXPECT_NEAR(PlacementAwareCost(g, w, s, one), 40 * (2.0 + 3.0), 1e-9);
}

TEST(PlacementCostTest, MoreServersNeverCheaper) {
  Graph g = GenerateErdosRenyi(60, 400, 2).ValueOrDie();
  Workload w = UniformWorkload(60, 1.0, 5.0);
  Schedule s = HybridSchedule(g, w);
  double prev = PlacementAwareCost(g, w, s, HashPartitioner(1));
  for (size_t servers : {2, 8, 64, 1024}) {
    double cost = PlacementAwareCost(g, w, s, HashPartitioner(servers));
    EXPECT_GE(cost, prev - 1e-9);
    prev = cost;
  }
}

TEST(PlacementCostTest, ConvergesToPlacementFreeCost) {
  // With far more servers than users, no two views share a server, so the
  // placement cost equals rate-weighted (1 + set size) sums.
  Graph g = GenerateErdosRenyi(30, 150, 3).ValueOrDie();
  Workload w = UniformWorkload(30, 1.0, 1.0);
  Schedule s = PushAllSchedule(g);
  double cost = PlacementAwareCost(g, w, s, HashPartitioner(1u << 20));
  double expected = 0;
  for (NodeId u = 0; u < 30; ++u) {
    expected += 1.0 * (1.0 + static_cast<double>(g.OutDegree(u)));  // updates
    expected += 1.0;                                                // own-view query
  }
  EXPECT_NEAR(cost, expected, expected * 0.01);
}

// ------------------------------------------------------------- ViewStore

TEST(ViewStoreTest, UpdateAndReadBack) {
  ViewStore store(0, 10);
  EventTuple e{1, 100, 5};
  std::vector<NodeId> views{7, 8};
  store.UpdateBatch(views, e);
  EXPECT_EQ(store.num_views(), 2u);
  EXPECT_EQ(store.ReadView(7).size(), 1u);
  EXPECT_EQ(store.ReadView(8)[0].event_id, 100u);
  EXPECT_TRUE(store.ReadView(9).empty());
  EXPECT_EQ(store.metrics().update_messages, 1u);
  EXPECT_EQ(store.metrics().view_writes, 2u);
}

TEST(ViewStoreTest, CapacityTrimsOldest) {
  ViewStore store(0, 3);
  std::vector<NodeId> views{1};
  for (uint64_t i = 1; i <= 5; ++i) {
    store.UpdateBatch(views, EventTuple{0, i, i});
  }
  auto view = store.ReadView(1);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0].event_id, 3u);  // 1 and 2 trimmed
  EXPECT_EQ(store.metrics().trimmed_events, 2u);
}

TEST(ViewStoreTest, UnboundedCapacityNeverTrims) {
  ViewStore store(0, 0);
  std::vector<NodeId> views{1};
  for (uint64_t i = 1; i <= 500; ++i) {
    store.UpdateBatch(views, EventTuple{0, i, i});
  }
  EXPECT_EQ(store.ReadView(1).size(), 500u);
  EXPECT_EQ(store.metrics().trimmed_events, 0u);
}

TEST(ViewStoreTest, QueryFiltersByInterest) {
  ViewStore store(0, 0);
  std::vector<NodeId> views{9};
  store.UpdateBatch(views, EventTuple{3, 1, 1});
  store.UpdateBatch(views, EventTuple{4, 2, 2});
  store.UpdateBatch(views, EventTuple{5, 3, 3});
  std::vector<NodeId> interest{3, 5};  // not following 4
  auto result = store.QueryBatch(views, interest, 10);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].producer, 5u);  // newest first
  EXPECT_EQ(result[1].producer, 3u);
}

TEST(ViewStoreTest, QueryReturnsTopKAcrossViews) {
  ViewStore store(0, 0);
  store.UpdateBatch(std::vector<NodeId>{1}, EventTuple{0, 1, 10});
  store.UpdateBatch(std::vector<NodeId>{2}, EventTuple{0, 2, 20});
  store.UpdateBatch(std::vector<NodeId>{1}, EventTuple{0, 3, 30});
  std::vector<NodeId> views{1, 2};
  std::vector<NodeId> interest{0};
  auto result = store.QueryBatch(views, interest, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].event_id, 3u);
  EXPECT_EQ(result[1].event_id, 2u);
  EXPECT_EQ(store.metrics().query_messages, 1u);
  EXPECT_EQ(store.metrics().view_reads, 2u);
}

TEST(ViewStoreTest, UnfilteredQueryMatchesFilteredWithSupersetInterest) {
  // The unfiltered overload must be bit-identical to the filtered one
  // whenever the interest span covers every producer in the views — the
  // contract AppClient's schedule-implied membership fast path relies on.
  ViewStore store(0, 0);
  for (uint64_t i = 1; i <= 30; ++i) {
    store.UpdateBatch(std::vector<NodeId>{NodeId(i % 3)},
                      EventTuple{NodeId(i % 5), i, i});
  }
  std::vector<NodeId> views{0, 1, 2};
  std::vector<NodeId> all{0, 1, 2, 3, 4};
  auto filtered = store.QueryBatch(views, all, 7);
  auto unfiltered = store.QueryBatch(views, 7);
  EXPECT_EQ(filtered, unfiltered);
  EXPECT_EQ(store.metrics().query_messages, 2u);
  EXPECT_EQ(store.metrics().view_reads, 6u);
}

TEST(TopKNewestTest, SortsAndTruncates) {
  std::vector<EventTuple> events{{0, 1, 5}, {0, 2, 9}, {0, 3, 1}, {0, 4, 9}};
  auto top = TopKNewest(events, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].event_id, 4u);  // ts 9, higher id wins tie
  EXPECT_EQ(top[1].event_id, 2u);
  EXPECT_EQ(top[2].event_id, 1u);
}

// ------------------------------------------------------------- AppClient

TEST(AppClientTest, OneServerMeansOneMessagePerRequest) {
  Graph g = GenerateErdosRenyi(20, 80, 4).ValueOrDie();
  Workload w = UniformWorkload(20, 1.0, 5.0);
  Schedule s = HybridSchedule(g, w);
  HashPartitioner part(1);
  std::vector<ViewStore> servers;
  servers.emplace_back(0, size_t{0});
  AppClient client(g, s, &part, &servers, 10);
  client.ShareEvent(3, 1, 1);
  client.QueryStream(5);
  client.ShareEvent(7, 2, 2);
  EXPECT_EQ(client.metrics().requests(), 3u);
  EXPECT_EQ(client.metrics().update_messages, 2u);
  EXPECT_EQ(client.metrics().query_messages, 1u);
  EXPECT_DOUBLE_EQ(client.metrics().MessagesPerRequest(), 1.0);
}

TEST(AppClientTest, PushDeliversToFollowerView) {
  // 0 -> 1 pushed: sharing by 0 must land in 1's view; 1's query sees it.
  Graph g = BuildGraph(2, {{0, 1}}).ValueOrDie();
  Schedule s;
  s.AddPush(0, 1);
  HashPartitioner part(4);
  std::vector<ViewStore> servers;
  for (uint32_t i = 0; i < 4; ++i) servers.emplace_back(i, size_t{0});
  AppClient client(g, s, &part, &servers, 10);
  client.ShareEvent(0, 42, 7);
  auto stream = client.QueryStream(1);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].event_id, 42u);
  EXPECT_EQ(stream[0].producer, 0u);
}

TEST(AppClientTest, PullReadsProducerView) {
  Graph g = BuildGraph(2, {{0, 1}}).ValueOrDie();
  Schedule s;
  s.AddPull(0, 1);  // 1 pulls from 0's view
  HashPartitioner part(4);
  std::vector<ViewStore> servers;
  for (uint32_t i = 0; i < 4; ++i) servers.emplace_back(i, size_t{0});
  AppClient client(g, s, &part, &servers, 10);
  client.ShareEvent(0, 43, 8);  // goes only to 0's own view
  auto stream = client.QueryStream(1);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].event_id, 43u);
}

TEST(AppClientTest, HubDeliversViaPiggyback) {
  // Figure 2 wiring: Art(0) pushes to Charlie(2); Billie(1) pulls from
  // Charlie. Billie must see Art's events without any direct 0->1 service.
  Graph g = BuildGraph(3, {{0, 2}, {2, 1}, {0, 1}}).ValueOrDie();
  Schedule s;
  s.AddPush(0, 2);
  s.AddPull(2, 1);
  s.SetHubCover(0, 1, 2);
  HashPartitioner part(8);
  std::vector<ViewStore> servers;
  for (uint32_t i = 0; i < 8; ++i) servers.emplace_back(i, size_t{0});
  AppClient client(g, s, &part, &servers, 10);
  client.ShareEvent(0, 99, 9);
  auto stream = client.QueryStream(1);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].producer, 0u);
  EXPECT_EQ(stream[0].event_id, 99u);
}

TEST(AppClientTest, HubDoesNotLeakUnfollowedProducers) {
  // 3 -> 2 (hub) pushed, 2 -> 1 pulled, but 1 does NOT follow 3.
  Graph g = BuildGraph(4, {{0, 2}, {2, 1}, {0, 1}, {3, 2}}).ValueOrDie();
  Schedule s;
  s.AddPush(0, 2);
  s.AddPush(3, 2);
  s.AddPull(2, 1);
  s.SetHubCover(0, 1, 2);
  HashPartitioner part(4);
  std::vector<ViewStore> servers;
  for (uint32_t i = 0; i < 4; ++i) servers.emplace_back(i, size_t{0});
  AppClient client(g, s, &part, &servers, 10);
  client.ShareEvent(3, 7, 1);  // producer 1 does not follow
  client.ShareEvent(0, 8, 2);
  auto stream = client.QueryStream(1);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].producer, 0u);
}

TEST(AppClientTest, FilterFreePrecomputeMatchesScheduleShape) {
  // Pull-only wiring: every pulled view is its owner's own view and the
  // owner is followed, so queries are provably filter-free. Adding a hub
  // with an unfollowed pusher makes the hub's pullers filtered again.
  Graph g = BuildGraph(4, {{0, 2}, {2, 1}, {0, 1}, {3, 2}}).ValueOrDie();
  Schedule pull_only;
  pull_only.AddPull(0, 1);  // 1 pulls followee 0's own view
  pull_only.AddPull(2, 1);  // 1 pulls followee 2's own view
  HashPartitioner part(4);
  std::vector<ViewStore> servers;
  for (uint32_t i = 0; i < 4; ++i) servers.emplace_back(i, size_t{0});
  AppClient pull_client(g, pull_only, &part, &servers, 10);
  EXPECT_TRUE(pull_client.QueryFilterFree(1));

  Schedule hub;
  hub.AddPush(0, 2);
  hub.AddPush(3, 2);  // 3 is not followed by 1: hub view 2 can leak
  hub.AddPull(2, 1);
  std::vector<ViewStore> servers2;
  for (uint32_t i = 0; i < 4; ++i) servers2.emplace_back(i, size_t{0});
  AppClient hub_client(g, hub, &part, &servers2, 10);
  EXPECT_FALSE(hub_client.QueryFilterFree(1));
}

TEST(AppClientTest, LayoutsAgreeOnStreamsWithHubsAndFastPaths) {
  // Every (layout, schedule shape) combination must assemble identical
  // streams: flat vs compressed, filter-free vs hub-filtered.
  Graph g = GenerateErdosRenyi(40, 300, 11).ValueOrDie();
  Workload w = UniformWorkload(40, 1.0, 4.0);
  for (const Schedule& s : {PullAllSchedule(g), HybridSchedule(g, w)}) {
    HashPartitioner part(4);
    std::vector<ViewStore> flat_servers, comp_servers;
    for (uint32_t i = 0; i < 4; ++i) {
      flat_servers.emplace_back(i, size_t{0});
      comp_servers.emplace_back(i, size_t{0});
    }
    AppClient flat(g, s, &part, &flat_servers, 10, GraphLayout::kFlatCsr);
    AppClient comp(g, s, &part, &comp_servers, 10, GraphLayout::kCompressed);
    for (NodeId u = 0; u < 40; ++u) {
      flat.ShareEvent(u, u + 1, u + 1);
      comp.ShareEvent(u, u + 1, u + 1);
    }
    for (NodeId u = 0; u < 40; ++u) {
      EXPECT_EQ(flat.QueryFilterFree(u), comp.QueryFilterFree(u));
      EXPECT_EQ(flat.QueryStream(u), comp.QueryStream(u)) << "user " << u;
    }
  }
}

TEST(AppClientTest, ViewListsIncludeOwnView) {
  Graph g = BuildGraph(2, {{0, 1}}).ValueOrDie();
  Schedule s;
  s.AddPush(0, 1);
  HashPartitioner part(2);
  std::vector<ViewStore> servers;
  servers.emplace_back(0, size_t{0});
  servers.emplace_back(1, size_t{0});
  AppClient client(g, s, &part, &servers, 10);
  ASSERT_EQ(client.PushViews(0).size(), 2u);
  EXPECT_EQ(client.PushViews(0)[0], 0u);
  EXPECT_EQ(client.PushViews(0)[1], 1u);
  ASSERT_EQ(client.PullViews(1).size(), 1u);
  EXPECT_EQ(client.PullViews(1)[0], 1u);
}

}  // namespace
}  // namespace piggy
