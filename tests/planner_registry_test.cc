// The unified planner surface: registry behavior, the uniform Plan contract
// on 3 graph families x 2 seeds for every registered planner, and golden
// parity tests proving the registry planners reproduce the legacy free
// functions' schedules bit-identically.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/chitchat.h"
#include "core/cost_model.h"
#include "core/parallel_nosy.h"
#include "core/planner.h"
#include "core/validator.h"
#include "gen/generators.h"
#include "gen/presets.h"
#include "workload/workload.h"

namespace piggy {
namespace {

constexpr size_t kNodes = 400;

struct Family {
  const char* name;
  Graph graph;
};

std::vector<Family> GraphFamilies(uint64_t seed) {
  std::vector<Family> families;
  families.push_back({"flickr", MakeFlickrLike(kNodes, seed).ValueOrDie()});
  families.push_back({"twitter", MakeTwitterLike(kNodes, seed).ValueOrDie()});
  families.push_back(
      {"er", GenerateErdosRenyi(kNodes, kNodes * 8, seed).ValueOrDie()});
  return families;
}

Workload WorkloadFor(const Graph& g) {
  return GenerateWorkload(g, {.read_write_ratio = 5.0, .min_rate = 0.01})
      .ValueOrDie();
}

// Bit-identity: same H, same L, same C (including the covering hub ids).
void ExpectSchedulesIdentical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.push_size(), b.push_size());
  ASSERT_EQ(a.pull_size(), b.pull_size());
  ASSERT_EQ(a.hub_covered_size(), b.hub_covered_size());
  a.ForEachPush([&b](const Edge& e) { EXPECT_TRUE(b.IsPush(e.src, e.dst)); });
  a.ForEachPull([&b](const Edge& e) { EXPECT_TRUE(b.IsPull(e.src, e.dst)); });
  a.ForEachHubCover([&b](const Edge& e, NodeId hub) {
    auto other = b.HubFor(e.src, e.dst);
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(*other, hub);
  });
}

TEST(PlannerRegistryTest, RegistryListsTheExpectedPlanners) {
  std::set<std::string> names;
  for (const PlannerInfo& info : RegisteredPlanners()) {
    EXPECT_FALSE(info.description.empty()) << info.name;
    names.insert(info.name);
  }
  EXPECT_EQ(names, (std::set<std::string>{"chitchat", "hybrid", "nosy",
                                          "pull-all", "push-all"}));
}

TEST(PlannerRegistryTest, UnknownNameIsAnErrorNamingValidOptions) {
  auto planner = MakePlanner("no-such-planner");
  ASSERT_FALSE(planner.ok());
  EXPECT_TRUE(planner.status().IsInvalidArgument());
  const std::string& msg = planner.status().message();
  for (const char* name : {"chitchat", "hybrid", "nosy", "pull-all", "push-all"}) {
    EXPECT_NE(msg.find(name), std::string::npos) << msg;
  }
}

TEST(PlannerRegistryTest, AliasesResolveToCanonicalPlanners) {
  EXPECT_EQ(MakePlanner("ff").ValueOrDie()->name(), "hybrid");
  EXPECT_EQ(MakePlanner("parallelnosy").ValueOrDie()->name(), "nosy");
}

TEST(PlannerRegistryTest, DuplicateRegistrationIsRejected) {
  Status st = RegisterPlanner({"hybrid", "dup"}, nullptr);
  EXPECT_TRUE(st.IsAlreadyExists());
  st = RegisterPlanner({"fresh-name", "dup"}, nullptr, {"ff"});
  EXPECT_TRUE(st.IsAlreadyExists()) << "alias collision must be rejected";
}

TEST(PlannerRegistryTest, MismatchedWorkloadIsAnError) {
  Graph g = MakeFlickrLike(kNodes, 1).ValueOrDie();
  Workload w;  // empty: covers no users
  for (const PlannerInfo& info : RegisteredPlanners()) {
    auto planner = MakePlanner(info.name).MoveValueOrDie();
    auto plan = planner->Plan(g, w, {});
    EXPECT_FALSE(plan.ok()) << info.name;
    EXPECT_TRUE(plan.status().IsInvalidArgument()) << info.name;
  }
}

// Every registered planner, on every family and seed, must return a valid
// schedule with self-consistent metadata.
TEST(PlannerRegistryTest, EveryPlannerValidatesOnEveryFamilyAndSeed) {
  for (uint64_t seed : {7u, 21u}) {
    for (Family& family : GraphFamilies(seed)) {
      Workload w = WorkloadFor(family.graph);
      const double ff = HybridCost(family.graph, w);
      for (const PlannerInfo& info : RegisteredPlanners()) {
        SCOPED_TRACE(std::string(family.name) + "/" + info.name +
                     "/seed=" + std::to_string(seed));
        auto planner = MakePlanner(info.name).MoveValueOrDie();
        PlanResult plan =
            planner->Plan(family.graph, w, {}).MoveValueOrDie();
        EXPECT_TRUE(ValidateSchedule(family.graph, plan.schedule).ok());
        EXPECT_EQ(plan.planner, info.name);
        EXPECT_EQ(plan.hybrid_cost, ff);
        EXPECT_EQ(plan.final_cost, ScheduleCost(family.graph, w, plan.schedule,
                                                ResidualPolicy::kFree));
        EXPECT_GT(plan.final_cost, 0.0);
        EXPECT_GE(plan.wall_seconds, 0.0);
        // The optimizers never lose to the FF baseline; FF never loses to
        // the naive baselines (so every planner is within the bracket).
        if (info.name == "chitchat" || info.name == "nosy") {
          EXPECT_LE(plan.final_cost, ff + 1e-6);
          EXPECT_TRUE(plan.converged);
        }
        if (info.name == "hybrid") {
          EXPECT_EQ(plan.final_cost, ff);
        }
      }
    }
  }
}

// Golden parity: registry-built planners emit bit-identical schedules to the
// legacy free-function entry points they wrap.
TEST(PlannerRegistryTest, RegistryPlannersMatchLegacyEntryPointsBitwise) {
  for (uint64_t seed : {7u, 21u}) {
    for (Family& family : GraphFamilies(seed)) {
      Workload w = WorkloadFor(family.graph);
      SCOPED_TRACE(std::string(family.name) + "/seed=" + std::to_string(seed));

      auto plan = [&family, &w](const char* name) {
        return MakePlanner(name)
            .ValueOrDie()
            ->Plan(family.graph, w, {})
            .MoveValueOrDie();
      };

      ChitChatStats cc_stats;
      Schedule cc =
          RunChitChat(family.graph, w, {}, &cc_stats).MoveValueOrDie();
      PlanResult cc_plan = plan("chitchat");
      ExpectSchedulesIdentical(cc_plan.schedule, cc);
      EXPECT_EQ(cc_plan.final_cost, cc_stats.final_cost);

      ParallelNosyResult pn = RunParallelNosy(family.graph, w).MoveValueOrDie();
      PlanResult pn_plan = plan("nosy");
      ExpectSchedulesIdentical(pn_plan.schedule, pn.schedule);
      EXPECT_EQ(pn_plan.final_cost, pn.final_cost);
      EXPECT_EQ(pn_plan.hybrid_cost, pn.hybrid_cost);
      ASSERT_EQ(pn_plan.iterations.size(), pn.iterations.size());
      for (size_t i = 0; i < pn.iterations.size(); ++i) {
        EXPECT_EQ(pn_plan.iterations[i].cost_after, pn.iterations[i].cost_after);
        EXPECT_EQ(pn_plan.iterations[i].applied, pn.iterations[i].applied);
      }

      ExpectSchedulesIdentical(plan("hybrid").schedule,
                               HybridSchedule(family.graph, w));
      ExpectSchedulesIdentical(plan("push-all").schedule,
                               PushAllSchedule(family.graph));
      ExpectSchedulesIdentical(plan("pull-all").schedule,
                               PullAllSchedule(family.graph));
    }
  }
}

// Typed factories honor custom algorithm options through the same contract.
TEST(PlannerRegistryTest, TypedFactoriesForwardOptions) {
  Graph g = MakeFlickrLike(kNodes, 5).ValueOrDie();
  Workload w = WorkloadFor(g);

  ParallelNosyOptions nosy_options;
  nosy_options.max_iterations = 2;
  auto nosy = MakeParallelNosyPlanner(nosy_options);
  PlanResult plan = nosy->Plan(g, w, {}).MoveValueOrDie();
  EXPECT_LE(plan.iterations.size(), 2u);
  ExpectSchedulesIdentical(
      plan.schedule, RunParallelNosy(g, w, nosy_options).ValueOrDie().schedule);

  ChitChatOptions cc_options;
  cc_options.num_threads = 1;  // sequential reference
  PlanResult cc = MakeChitChatPlanner(cc_options)->Plan(g, w, {}).MoveValueOrDie();
  ExpectSchedulesIdentical(cc.schedule,
                           RunChitChat(g, w, cc_options).ValueOrDie());
}

// PlanContext.num_threads overrides the options' thread count without
// changing the result (the thread-count parity guarantee of PR 2).
TEST(PlannerRegistryTest, ContextThreadsPreserveParity) {
  Graph g = MakeFlickrLike(kNodes, 9).ValueOrDie();
  Workload w = WorkloadFor(g);
  PlanContext sequential;
  sequential.num_threads = 1;
  PlanContext threaded;
  threaded.num_threads = 4;
  for (const char* name : {"chitchat", "nosy"}) {
    SCOPED_TRACE(name);
    auto planner = MakePlanner(name).MoveValueOrDie();
    PlanResult a = planner->Plan(g, w, sequential).MoveValueOrDie();
    PlanResult b = planner->Plan(g, w, threaded).MoveValueOrDie();
    ExpectSchedulesIdentical(a.schedule, b.schedule);
    EXPECT_EQ(a.final_cost, b.final_cost);
  }
}

// Cancellation is anytime-safe: a pre-cancelled context still yields a
// schedule serving every edge (the optimizers complete it at hybrid).
TEST(PlannerRegistryTest, CancelledPlanIsStillValid) {
  Graph g = MakeFlickrLike(kNodes, 3).ValueOrDie();
  Workload w = WorkloadFor(g);
  std::atomic<bool> cancel{true};
  PlanContext ctx;
  ctx.cancel = &cancel;
  for (const PlannerInfo& info : RegisteredPlanners()) {
    SCOPED_TRACE(info.name);
    auto planner = MakePlanner(info.name).MoveValueOrDie();
    PlanResult plan = planner->Plan(g, w, ctx).MoveValueOrDie();
    EXPECT_TRUE(ValidateSchedule(g, plan.schedule).ok());
    if (info.name == "chitchat" || info.name == "nosy") {
      EXPECT_FALSE(plan.converged);
    }
  }
}

// The progress callback observes the optimizers' steps.
TEST(PlannerRegistryTest, ProgressCallbackFires) {
  Graph g = MakeFlickrLike(kNodes, 11).ValueOrDie();
  Workload w = WorkloadFor(g);
  size_t calls = 0;
  PlanContext ctx;
  ctx.progress = [&calls](const PlanProgress& p) {
    EXPECT_NE(p.phase, nullptr);
    ++calls;
  };
  MakePlanner("nosy").ValueOrDie()->Plan(g, w, ctx).MoveValueOrDie();
  EXPECT_GT(calls, 0u);
  calls = 0;
  MakePlanner("chitchat").ValueOrDie()->Plan(g, w, ctx).MoveValueOrDie();
  EXPECT_GT(calls, 0u);
}

}  // namespace
}  // namespace piggy
