// Kernel parity suite: every dispatch tier must produce output bit-identical
// to the scalar reference for every kernel, across the input classes the hot
// loops actually see — empty, disjoint, fully overlapping, skewed enough to
// gallop, and lengths that leave vector-width tails. Plus round-trip and
// point-lookup coverage for the compressed adjacency layout.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/compressed_adjacency.h"
#include "graph/graph.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/rng.h"

namespace piggy {
namespace {

// Every tier the host can run; SetTierForTest clamps, so requesting all three
// is safe everywhere (on a non-AVX2 host avx2 silently degrades and the sweep
// still covers what the hardware has).
std::vector<simd::Tier> TestableTiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (simd::MaxSupportedTier() >= simd::Tier::kSse42) {
    tiers.push_back(simd::Tier::kSse42);
  }
  if (simd::MaxSupportedTier() >= simd::Tier::kAvx2) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

// Restores the detected tier when a test scope ends.
class TierGuard {
 public:
  explicit TierGuard(simd::Tier t) { simd::SetTierForTest(t); }
  ~TierGuard() { simd::SetTierForTest(simd::MaxSupportedTier()); }
};

std::vector<NodeId> SortedRandomSet(Rng& rng, size_t n, NodeId universe) {
  std::set<NodeId> s;
  while (s.size() < n) s.insert(static_cast<NodeId>(rng.Uniform(universe)));
  return {s.begin(), s.end()};
}

// The input classes every intersection kernel must agree on. Unaligned
// lengths (odd sizes, sub-block sizes) force tail handling; the skewed pair
// crosses kGallopIntersectRatio so the gallop path runs too.
struct SetPairCase {
  std::string name;
  std::vector<NodeId> a;
  std::vector<NodeId> b;
};

std::vector<SetPairCase> IntersectionCases() {
  std::vector<SetPairCase> cases;
  cases.push_back({"both_empty", {}, {}});
  cases.push_back({"one_empty", {1, 2, 3}, {}});
  cases.push_back({"disjoint", {0, 2, 4, 6, 8, 10, 12}, {1, 3, 5, 7, 9, 11}});
  {
    std::vector<NodeId> same;
    for (NodeId v = 0; v < 100; ++v) same.push_back(v * 3);
    cases.push_back({"fully_overlapping", same, same});
  }
  cases.push_back({"singletons", {42}, {42}});
  cases.push_back({"unaligned_tails", {1, 5, 9, 13, 17}, {0, 1, 2, 5, 9, 10, 17}});
  Rng rng(20260808);
  {
    std::vector<NodeId> small = SortedRandomSet(rng, 13, 1 << 20);
    std::vector<NodeId> large = SortedRandomSet(rng, 10000, 1 << 20);
    // Guarantee some hits on the gallop path.
    for (size_t i = 0; i < small.size(); i += 3) large.push_back(small[i]);
    std::sort(large.begin(), large.end());
    large.erase(std::unique(large.begin(), large.end()), large.end());
    cases.push_back({"skewed_1_vs_10k", small, large});
  }
  for (int round = 0; round < 6; ++round) {
    const size_t na = 1 + rng.Uniform(700);
    const size_t nb = 1 + rng.Uniform(700);
    cases.push_back({"random_" + std::to_string(round),
                     SortedRandomSet(rng, na, 4096), SortedRandomSet(rng, nb, 4096)});
  }
  return cases;
}

TEST(SimdDispatchTest, ParseAndNames) {
  simd::Tier t = simd::Tier::kAvx2;
  EXPECT_TRUE(simd::ParseTier("scalar", &t));
  EXPECT_EQ(t, simd::Tier::kScalar);
  EXPECT_TRUE(simd::ParseTier("sse42", &t));
  EXPECT_EQ(t, simd::Tier::kSse42);
  EXPECT_TRUE(simd::ParseTier("avx2", &t));
  EXPECT_EQ(t, simd::Tier::kAvx2);
  EXPECT_FALSE(simd::ParseTier("quantum", &t));
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(simd::Tier::kSse42), "sse42");
  EXPECT_STREQ(simd::TierName(simd::Tier::kAvx2), "avx2");
}

TEST(SimdDispatchTest, SetTierClampsToHardware) {
  const simd::Tier installed = simd::SetTierForTest(simd::Tier::kAvx2);
  EXPECT_LE(static_cast<int>(installed), static_cast<int>(simd::MaxSupportedTier()));
  EXPECT_EQ(simd::ActiveTier(), installed);
  simd::SetTierForTest(simd::MaxSupportedTier());
}

TEST(SimdIntersectTest, ValuesMatchScalarOnEveryTier) {
  for (const SetPairCase& c : IntersectionCases()) {
    std::vector<NodeId> expect;
    {
      TierGuard guard(simd::Tier::kScalar);
      simd::IntersectSortedInto(c.a, c.b, &expect);
    }
    for (simd::Tier tier : TestableTiers()) {
      TierGuard guard(tier);
      std::vector<NodeId> got;
      simd::IntersectSortedInto(c.a, c.b, &got);
      EXPECT_EQ(got, expect) << c.name << " @ " << simd::TierName(tier);
    }
  }
}

TEST(SimdIntersectTest, ValuesMatchForEachSortedIntersection) {
  // The kernel contract is literally "ForEachSortedIntersection collecting v".
  for (const SetPairCase& c : IntersectionCases()) {
    std::vector<NodeId> reference;
    ForEachSortedIntersection(std::span<const NodeId>(c.a),
                              std::span<const NodeId>(c.b),
                              [&](NodeId v, size_t, size_t) { reference.push_back(v); });
    for (simd::Tier tier : TestableTiers()) {
      TierGuard guard(tier);
      std::vector<NodeId> got;
      simd::IntersectSortedInto(c.a, c.b, &got);
      EXPECT_EQ(got, reference) << c.name << " @ " << simd::TierName(tier);
    }
  }
}

TEST(SimdIntersectTest, PairsMatchScalarOnEveryTier) {
  for (const SetPairCase& c : IntersectionCases()) {
    std::vector<simd::IndexPair> expect;
    {
      TierGuard guard(simd::Tier::kScalar);
      simd::IntersectSortedPairsInto(c.a, c.b, &expect);
    }
    // Positions must actually index the common values.
    for (const simd::IndexPair& pr : expect) {
      ASSERT_EQ(c.a[pr.ia], c.b[pr.ib]) << c.name;
    }
    for (simd::Tier tier : TestableTiers()) {
      TierGuard guard(tier);
      std::vector<simd::IndexPair> got;
      simd::IntersectSortedPairsInto(c.a, c.b, &got);
      ASSERT_EQ(got.size(), expect.size()) << c.name << " @ " << simd::TierName(tier);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].ia, expect[i].ia) << c.name << " @ " << simd::TierName(tier);
        EXPECT_EQ(got[i].ib, expect[i].ib) << c.name << " @ " << simd::TierName(tier);
      }
    }
  }
}

TEST(SimdCoverageTest, NotCoveredFlagsMatchScalarOnEveryTier) {
  Rng rng(99);
  const size_t edges = 1000;
  std::vector<uint8_t> covered(edges + simd::kCoveredPadding, 0);
  for (size_t e = 0; e < edges; ++e) covered[e] = rng.Uniform(2);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{63},
                   size_t{100}, size_t{999}}) {
    std::vector<uint64_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = rng.Uniform(edges);
    std::vector<uint8_t> expect(n, 0xee), got(n, 0xee);
    {
      TierGuard guard(simd::Tier::kScalar);
      simd::NotCoveredFlags(covered.data(), idx.data(), n, expect.data());
    }
    for (simd::Tier tier : TestableTiers()) {
      TierGuard guard(tier);
      std::fill(got.begin(), got.end(), 0xee);
      simd::NotCoveredFlags(covered.data(), idx.data(), n, got.data());
      EXPECT_EQ(got, expect) << "n=" << n << " @ " << simd::TierName(tier);
      std::fill(got.begin(), got.end(), 0xee);
      simd::NotCoveredFlagsContiguous(covered.data(), n, got.data());
      std::vector<uint8_t> contiguous_expect(n);
      for (size_t i = 0; i < n; ++i) contiguous_expect[i] = covered[i] ? 0 : 1;
      EXPECT_EQ(got, contiguous_expect) << "n=" << n << " @ " << simd::TierName(tier);
    }
  }
}

TEST(SimdCoverageTest, FilterUncoveredPairsMatchScalarOnEveryTier) {
  Rng rng(7);
  const size_t edges = 5000;
  std::vector<uint8_t> covered(edges + simd::kCoveredPadding, 0);
  for (size_t e = 0; e < edges; ++e) covered[e] = rng.Uniform(2);
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{8}, size_t{250}}) {
    std::vector<uint32_t> p(n), c(n), edge(n);
    for (size_t i = 0; i < n; ++i) {
      p[i] = static_cast<uint32_t>(rng.Uniform(100));
      c[i] = static_cast<uint32_t>(rng.Uniform(100));
      edge[i] = static_cast<uint32_t>(rng.Uniform(edges));
    }
    std::vector<std::pair<uint32_t, uint32_t>> expect;
    {
      TierGuard guard(simd::Tier::kScalar);
      simd::FilterUncoveredPairsInto(covered.data(), p.data(), c.data(), edge.data(),
                                     n, &expect);
    }
    for (simd::Tier tier : TestableTiers()) {
      TierGuard guard(tier);
      std::vector<std::pair<uint32_t, uint32_t>> got;
      simd::FilterUncoveredPairsInto(covered.data(), p.data(), c.data(), edge.data(),
                                     n, &got);
      EXPECT_EQ(got, expect) << "n=" << n << " @ " << simd::TierName(tier);
    }
  }
}

TEST(SimdSelectTest, NewestFirstSelectionMatchesScalarOnEveryTier) {
  Rng rng(424242);
  constexpr size_t kStride = 6;  // sizeof(EventTuple) / sizeof(uint32_t)
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                   size_t{128}, size_t{301}}) {
    std::vector<uint32_t> records(n * kStride, 0);
    for (size_t i = 0; i < n; ++i) {
      records[i * kStride] = static_cast<uint32_t>(rng.Uniform(64));
    }
    std::vector<NodeId> interest = SortedRandomSet(rng, 16, 64);
    for (size_t k : {size_t{0}, size_t{1}, size_t{10}, n + 5}) {
      std::vector<uint32_t> expect;
      {
        TierGuard guard(simd::Tier::kScalar);
        simd::SelectKeyedNewestInto(records.data(), kStride, n, interest, k, &expect);
      }
      // The scalar reference itself must equal the plain reverse scan.
      std::vector<uint32_t> naive;
      for (size_t i = n; i-- > 0 && naive.size() < k;) {
        if (std::binary_search(interest.begin(), interest.end(),
                               records[i * kStride])) {
          naive.push_back(static_cast<uint32_t>(i));
        }
      }
      ASSERT_EQ(expect, naive) << "n=" << n << " k=" << k;
      for (simd::Tier tier : TestableTiers()) {
        TierGuard guard(tier);
        std::vector<uint32_t> got;
        simd::SelectKeyedNewestInto(records.data(), kStride, n, interest, k, &got);
        EXPECT_EQ(got, expect)
            << "n=" << n << " k=" << k << " @ " << simd::TierName(tier);
      }
    }
  }
}

TEST(CompressedAdjacencyTest, LayoutNamesRoundTrip) {
  GraphLayout layout = GraphLayout::kCompressed;
  EXPECT_TRUE(ParseGraphLayout("flat", &layout));
  EXPECT_EQ(layout, GraphLayout::kFlatCsr);
  EXPECT_TRUE(ParseGraphLayout("compressed", &layout));
  EXPECT_EQ(layout, GraphLayout::kCompressed);
  EXPECT_FALSE(ParseGraphLayout("zstd", &layout));
  EXPECT_STREQ(GraphLayoutName(GraphLayout::kFlatCsr), "flat");
  EXPECT_STREQ(GraphLayoutName(GraphLayout::kCompressed), "compressed");
}

TEST(CompressedAdjacencyTest, RoundTripsEveryList) {
  Rng rng(5150);
  std::vector<std::vector<NodeId>> lists;
  lists.push_back({});
  lists.push_back({0});
  lists.push_back({0xfffffffeu});
  // Exactly one block, one entry over a block boundary, several blocks.
  lists.push_back(SortedRandomSet(rng, CompressedLists::kBlockEntries, 1 << 24));
  lists.push_back(SortedRandomSet(rng, CompressedLists::kBlockEntries + 1, 1 << 24));
  lists.push_back(SortedRandomSet(rng, 1000, 1 << 30));
  // Dense run: deltas of exactly 1 encode as zero-bytes.
  {
    std::vector<NodeId> dense;
    for (NodeId v = 500; v < 900; ++v) dense.push_back(v);
    lists.push_back(dense);
  }
  const CompressedLists enc = CompressedLists::FromLists(lists);
  ASSERT_EQ(enc.num_lists(), lists.size());
  std::vector<NodeId> decoded;
  size_t total = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    EXPECT_EQ(enc.ListSize(i), lists[i].size());
    enc.DecodeInto(i, &decoded);
    EXPECT_EQ(decoded, lists[i]) << "list " << i;
    total += lists[i].size();
  }
  EXPECT_EQ(enc.TotalEntries(), total);
  EXPECT_GT(enc.TotalBytes(), 0u);
}

TEST(CompressedAdjacencyTest, ContainsGallopsAcrossVarintBlocks) {
  Rng rng(31337);
  // Several blocks so Contains exercises skip-table selection, including
  // probes below the first value, above the last, and between blocks.
  std::vector<NodeId> list = SortedRandomSet(rng, 10 * CompressedLists::kBlockEntries,
                                             1 << 22);
  const CompressedLists enc = CompressedLists::FromLists({list});
  for (NodeId v : list) {
    EXPECT_TRUE(enc.Contains(0, v)) << v;
  }
  std::set<NodeId> present(list.begin(), list.end());
  for (int probe = 0; probe < 2000; ++probe) {
    const NodeId v = static_cast<NodeId>(rng.Uniform(1 << 22));
    EXPECT_EQ(enc.Contains(0, v), present.count(v) > 0) << v;
  }
  EXPECT_FALSE(enc.Contains(0, 0xffffffffu));
}

TEST(CompressedAdjacencyTest, CompressesPowerLawAdjacencyBelowFlat) {
  // The selling point: small deltas encode to ~1 byte, so bytes/entry lands
  // well under the flat layout's 4 (plus per-list vector overhead).
  Rng rng(8);
  std::vector<std::vector<NodeId>> lists;
  for (int i = 0; i < 200; ++i) {
    lists.push_back(SortedRandomSet(rng, 50 + rng.Uniform(100), 1 << 16));
  }
  const CompressedLists enc = CompressedLists::FromLists(lists);
  EXPECT_LT(enc.BytesPerEntry(), 4.0);
}

}  // namespace
}  // namespace piggy
