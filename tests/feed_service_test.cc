// FeedService end-to-end: the facade must keep serving correct feeds (audited
// against the event-log oracle) through shares, queries, follow/unfollow
// churn, serving-plane rebuilds, and full replans.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/validator.h"
#include "gen/presets.h"
#include "store/feed_service.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace piggy {
namespace {

FeedServiceOptions SmallDeployment(const std::string& planner) {
  FeedServiceOptions options;
  options.planner = planner;
  options.prototype.num_servers = 16;
  options.prototype.view_capacity = 0;  // unbounded views: exact audits
  options.workload = {.read_write_ratio = 5.0, .min_rate = 0.05};
  options.audit_every = 1;  // audit every query
  return options;
}

TEST(FeedServiceTest, CreateRejectsUnknownPlanner) {
  Graph g = MakeFlickrLike(200, 1).ValueOrDie();
  auto service = FeedService::Create(g, SmallDeployment("no-such-planner"));
  ASSERT_FALSE(service.ok());
  EXPECT_TRUE(service.status().IsInvalidArgument());
}

TEST(FeedServiceTest, CreateRejectsMismatchedWorkload) {
  Graph g = MakeFlickrLike(200, 1).ValueOrDie();
  Workload w = UniformWorkload(10, 1.0, 5.0);  // wrong size
  auto service = FeedService::Create(g, std::move(w), SmallDeployment("nosy"));
  ASSERT_FALSE(service.ok());
  EXPECT_TRUE(service.status().IsInvalidArgument());
}

TEST(FeedServiceTest, UnknownUsersAreRejected) {
  Graph g = MakeFlickrLike(100, 2).ValueOrDie();
  auto service = FeedService::Create(g, SmallDeployment("hybrid")).MoveValueOrDie();
  EXPECT_TRUE(service->Share(1000).IsInvalidArgument());
  EXPECT_FALSE(service->QueryStream(1000).ok());
  EXPECT_TRUE(service->Follow(1000, 1).IsInvalidArgument());
  EXPECT_TRUE(service->Follow(1, 1).IsInvalidArgument());
  EXPECT_TRUE(service->Unfollow(1000, 1).IsInvalidArgument());
}

TEST(FeedServiceTest, SharesAppearInFollowerFeeds) {
  Graph g = MakeFlickrLike(300, 3).ValueOrDie();
  auto service = FeedService::Create(g, SmallDeployment("chitchat")).MoveValueOrDie();

  // Find a followed producer and one of their followers.
  NodeId producer = 0;
  while (service->graph().OutDegree(producer) == 0) ++producer;
  NodeId follower = service->graph().OutNeighbors(producer)[0];

  ASSERT_TRUE(service->Share(producer).ok());
  ASSERT_TRUE(service->Share(producer).ok());
  std::vector<EventTuple> feed = service->QueryStream(follower).MoveValueOrDie();
  ASSERT_EQ(feed.size(), 2u);  // audited (audit_every = 1) and newest-first
  EXPECT_EQ(feed[0].producer, producer);
  EXPECT_EQ(feed[1].producer, producer);
}

TEST(FeedServiceTest, FollowDeliversAndUnfollowStops) {
  Graph g = MakeFlickrLike(300, 4).ValueOrDie();
  auto service = FeedService::Create(g, SmallDeployment("nosy")).MoveValueOrDie();

  // A producer and a user who does not follow them yet.
  NodeId producer = 0;
  while (service->graph().OutDegree(producer) == 0) ++producer;
  NodeId follower = 0;
  while (follower == producer || service->graph().HasEdge(producer, follower)) {
    ++follower;
  }
  ASSERT_LT(follower, service->graph().num_nodes());

  ASSERT_TRUE(service->Share(producer).ok());  // before the follow
  ASSERT_TRUE(service->Follow(follower, producer).ok());
  ASSERT_TRUE(service->Validate().ok());
  ASSERT_TRUE(service->Share(producer).ok());  // after the follow

  std::vector<EventTuple> feed = service->QueryStream(follower).MoveValueOrDie();
  // The pre-follow event survives the serving-plane rebuild (bounded
  // staleness with Theta = 0: the feed is exactly the oracle's answer).
  size_t from_producer = 0;
  for (const EventTuple& e : feed) from_producer += (e.producer == producer);
  EXPECT_EQ(from_producer, 2u);

  ASSERT_TRUE(service->Unfollow(follower, producer).ok());
  ASSERT_TRUE(service->Validate().ok());
  feed = service->QueryStream(follower).MoveValueOrDie();
  for (const EventTuple& e : feed) EXPECT_NE(e.producer, producer);
}

// The acceptance scenario: a long interleaved share / query / follow /
// unfollow run with every query audited, across planners, ending with a
// manual replan that must also preserve stored events.
TEST(FeedServiceTest, ChurnLifecycleStaysAuditClean) {
  for (const char* planner : {"nosy", "chitchat"}) {
    SCOPED_TRACE(planner);
    const size_t kNodes = 250;
    Graph g = MakeFlickrLike(kNodes, 7).ValueOrDie();
    auto service = FeedService::Create(g, SmallDeployment(planner)).MoveValueOrDie();
    ASSERT_TRUE(service->Validate().ok());

    Rng rng(99);
    for (int op = 0; op < 2000; ++op) {
      const double dice = rng.UniformDouble();
      NodeId u = static_cast<NodeId>(rng.Uniform(kNodes));
      NodeId v = static_cast<NodeId>(rng.Uniform(kNodes));
      if (dice < 0.35) {
        ASSERT_TRUE(service->Share(u).ok());
      } else if (dice < 0.85) {
        ASSERT_TRUE(service->QueryStream(u).ok()) << "audit failed at op " << op;
      } else if (u != v && dice < 0.95) {
        ASSERT_TRUE(service->Follow(u, v).ok());
      } else if (u != v) {
        ASSERT_TRUE(service->Unfollow(u, v).ok());
      }
    }
    ASSERT_TRUE(service->Validate().ok());

    FeedService::Metrics before = service->GetMetrics();
    EXPECT_GT(before.shares, 0u);
    EXPECT_GT(before.queries, 0u);
    EXPECT_GT(before.audited_queries, 0u);
    EXPECT_GT(before.churn_ops, 0u);
    EXPECT_GT(before.serving_rebuilds, 0u);
    EXPECT_GT(before.messages_per_request, 0.0);
    EXPECT_EQ(before.replans, 1u);  // the initial plan only

    // Full replan on the churned graph: validity and events must survive.
    ASSERT_TRUE(service->Replan().ok());
    ASSERT_TRUE(service->Validate().ok());
    FeedService::Metrics after = service->GetMetrics();
    EXPECT_EQ(after.replans, 2u);
    NodeId probe = 0;
    while (service->graph().OutDegree(probe) == 0) ++probe;
    ASSERT_TRUE(service->Share(probe).ok());
    ASSERT_TRUE(service->QueryStream(service->graph().OutNeighbors(probe)[0]).ok());
  }
}

TEST(FeedServiceTest, RebuildPreservesTrimCountersForAuditSoundness) {
  // With bounded views, AuditStream can only check soundness once trimming
  // has happened (completeness is no longer provable). The serving-plane
  // rebuild must carry the trim evidence across — a rebuild that zeroed the
  // fleet's trim counters would re-arm the strict completeness check against
  // the full event log and fail correct queries.
  Graph g = MakeFlickrLike(200, 21).ValueOrDie();
  FeedServiceOptions options = SmallDeployment("hybrid");
  options.prototype.view_capacity = 2;  // trim aggressively
  auto service = FeedService::Create(g, options).MoveValueOrDie();

  NodeId producer = 0;
  while (service->graph().OutDegree(producer) == 0) ++producer;
  NodeId follower = service->graph().OutNeighbors(producer)[0];
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(service->Share(producer).ok());

  // Churn forces a rebuild (replaying 20 events re-trims the views); the
  // audited query afterwards must still pass.
  NodeId other = 0;
  while (other == producer || other == follower ||
         service->graph().HasEdge(other, follower)) {
    ++other;
  }
  ASSERT_TRUE(service->Follow(follower, other).ok());
  ASSERT_TRUE(service->QueryStream(follower).ok())
      << "rebuild must not erase trim evidence the audit oracle depends on";
}

TEST(FeedServiceTest, AutoReplanTriggersAfterConfiguredChurn) {
  Graph g = MakeFlickrLike(200, 9).ValueOrDie();
  FeedServiceOptions options = SmallDeployment("hybrid");
  options.replan_after_churn = 5;
  auto service = FeedService::Create(g, options).MoveValueOrDie();

  Rng rng(5);
  size_t applied = 0;
  while (applied < 11) {
    NodeId u = static_cast<NodeId>(rng.Uniform(200));
    NodeId v = static_cast<NodeId>(rng.Uniform(200));
    if (u == v || service->graph().HasEdge(v, u)) continue;
    ASSERT_TRUE(service->Follow(u, v).ok());
    ++applied;
  }
  // 11 churn ops with a threshold of 5: initial plan + 2 auto replans.
  FeedService::Metrics m = service->GetMetrics();
  EXPECT_EQ(m.replans, 3u);
  EXPECT_EQ(m.churn_ops, 11u);
  EXPECT_TRUE(service->Validate().ok());
}

TEST(FeedServiceTest, DriveReplaysTheWorkloadWithAudits) {
  Graph g = MakeFlickrLike(300, 12).ValueOrDie();
  auto service = FeedService::Create(g, SmallDeployment("nosy")).MoveValueOrDie();
  DriverOptions traffic;
  traffic.num_requests = 2000;
  traffic.audit_every = 25;
  traffic.seed = 4;
  DriverReport report = service->Drive(traffic).MoveValueOrDie();
  EXPECT_GT(report.audited_queries, 10u);
  EXPECT_GT(report.actual_throughput, 0.0);
  FeedService::Metrics m = service->GetMetrics();
  EXPECT_GE(m.shares + m.queries, 2000u);
  EXPECT_GE(m.audited_queries, report.audited_queries);
}

// The facade reports costs consistent with the core cost model, so capacity
// planning can be done from Metrics alone.
TEST(FeedServiceTest, MetricsReportCoreModelCosts) {
  Graph g = MakeFlickrLike(300, 15).ValueOrDie();
  auto service = FeedService::Create(g, SmallDeployment("nosy")).MoveValueOrDie();
  FeedService::Metrics m = service->GetMetrics();
  EXPECT_EQ(m.planner, "nosy");
  EXPECT_EQ(m.hybrid_cost, HybridCost(service->graph(), service->workload()));
  EXPECT_EQ(m.schedule_cost,
            ScheduleCost(service->graph(), service->workload(),
                         service->schedule(), ResidualPolicy::kFree));
  EXPECT_LE(m.schedule_cost, m.hybrid_cost + 1e-6);
  EXPECT_FALSE(m.ToString().empty());
}

}  // namespace
}  // namespace piggy
