#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "core/baselines.h"
#include "core/cost_model.h"
#include "core/validator.h"
#include "gen/generators.h"
#include "gen/presets.h"
#include "workload/workload.h"

namespace piggy {
namespace {

TEST(BaselinesTest, PushAllPutsEveryEdgeInH) {
  Graph g = GenerateErdosRenyi(30, 100, 1).ValueOrDie();
  Schedule s = PushAllSchedule(g);
  EXPECT_EQ(s.push_size(), g.num_edges());
  EXPECT_EQ(s.pull_size(), 0u);
  g.ForEachEdge([&](const Edge& e) { EXPECT_TRUE(s.IsPush(e.src, e.dst)); });
}

TEST(BaselinesTest, PullAllPutsEveryEdgeInL) {
  Graph g = GenerateErdosRenyi(30, 100, 2).ValueOrDie();
  Schedule s = PullAllSchedule(g);
  EXPECT_EQ(s.pull_size(), g.num_edges());
  EXPECT_EQ(s.push_size(), 0u);
}

TEST(BaselinesTest, HybridPicksCheaperSide) {
  Graph g = BuildGraph(4, {{0, 1}, {2, 3}}).ValueOrDie();
  Workload w = UniformWorkload(4, 1.0, 1.0);
  w.production[0] = 0.5;  // push cheaper on 0->1
  w.consumption[1] = 2.0;
  w.production[2] = 9.0;  // pull cheaper on 2->3
  w.consumption[3] = 1.0;
  Schedule s = HybridSchedule(g, w);
  EXPECT_TRUE(s.IsPush(0, 1));
  EXPECT_FALSE(s.IsPull(0, 1));
  EXPECT_TRUE(s.IsPull(2, 3));
  EXPECT_FALSE(s.IsPush(2, 3));
}

TEST(BaselinesTest, HybridTieGoesToPush) {
  Graph g = BuildGraph(2, {{0, 1}}).ValueOrDie();
  Workload w = UniformWorkload(2, 3.0, 3.0);
  Schedule s = HybridSchedule(g, w);
  EXPECT_TRUE(s.IsPush(0, 1));
}

TEST(BaselinesTest, HybridCostMatchesScheduleCost) {
  Graph g = MakeFlickrLike(800, 3).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  Schedule s = HybridSchedule(g, w);
  EXPECT_NEAR(ScheduleCost(g, w, s, ResidualPolicy::kFree), HybridCost(g, w), 1e-6);
}

TEST(BaselinesTest, HybridNeverWorseThanPushAllOrPullAll) {
  for (double ratio : {0.5, 1.0, 5.0, 50.0}) {
    Graph g = MakeTwitterLike(600, 7).ValueOrDie();
    Workload w = GenerateWorkload(g, {.read_write_ratio = ratio}).ValueOrDie();
    double hybrid = ScheduleCost(g, w, HybridSchedule(g, w));
    double push_all = ScheduleCost(g, w, PushAllSchedule(g));
    double pull_all = ScheduleCost(g, w, PullAllSchedule(g));
    EXPECT_LE(hybrid, push_all + 1e-9);
    EXPECT_LE(hybrid, pull_all + 1e-9);
  }
}

// FF is provably optimal among schedules that serve every edge directly:
// brute-force all 2^m push/pull assignments on a small graph.
TEST(BaselinesTest, HybridOptimalAmongDirectSchedules) {
  Graph g = GenerateErdosRenyi(6, 10, 5).ValueOrDie();
  Workload w;
  w.production = {1.0, 3.0, 0.5, 2.0, 4.0, 1.5};
  w.consumption = {2.0, 0.7, 5.0, 1.0, 0.2, 3.0};
  std::vector<Edge> edges = g.Edges();
  double best = 1e18;
  for (uint32_t mask = 0; mask < (1u << edges.size()); ++mask) {
    Schedule s;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (mask >> i & 1) {
        s.AddPush(edges[i].src, edges[i].dst);
      } else {
        s.AddPull(edges[i].src, edges[i].dst);
      }
    }
    best = std::min(best, ScheduleCost(g, w, s, ResidualPolicy::kFree));
  }
  EXPECT_NEAR(HybridCost(g, w), best, 1e-9);
}

TEST(BaselinesTest, FinalizeWithHybridCompletesSchedule) {
  Graph g = GenerateErdosRenyi(20, 60, 9).ValueOrDie();
  Workload w = GenerateWorkload(g, {.min_rate = 0.1}).ValueOrDie();
  Schedule s;
  // Assign a few edges manually, leave the rest.
  std::vector<Edge> edges = g.Edges();
  s.AddPush(edges[0].src, edges[0].dst);
  s.AddPull(edges[1].src, edges[1].dst);
  EXPECT_FALSE(ValidateSchedule(g, s).ok());
  FinalizeWithHybrid(g, w, &s);
  EXPECT_TRUE(ValidateSchedule(g, s).ok());
  // Pre-assigned edges keep their assignment.
  EXPECT_TRUE(s.IsPush(edges[0].src, edges[0].dst));
  EXPECT_TRUE(s.IsPull(edges[1].src, edges[1].dst));
}

TEST(BaselinesTest, FinalizeLeavesCoveredEdgesAlone) {
  Graph g = BuildGraph(3, {{0, 2}, {2, 1}, {0, 1}}).ValueOrDie();
  Workload w = UniformWorkload(3, 1.0, 5.0);
  Schedule s;
  s.AddPush(0, 2);
  s.AddPull(2, 1);
  s.SetHubCover(0, 1, 2);
  FinalizeWithHybrid(g, w, &s);
  EXPECT_FALSE(s.IsPush(0, 1));
  EXPECT_FALSE(s.IsPull(0, 1));
  EXPECT_TRUE(s.IsHubCovered(0, 1));
}

}  // namespace
}  // namespace piggy
