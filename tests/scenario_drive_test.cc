// Scenario replay end-to-end: parity of the stationary replay with the
// legacy FeedService::Drive path, workload-driver edge cases under churn
// (empty epochs, rate shift to zero, producers losing every consumer),
// replay determinism, drift-triggered adaptive replanning beating
// never-replan under a flash crowd, and the sharded cluster under a
// regional event with per-shard drift replans.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_service.h"
#include "gen/presets.h"
#include "scenario/drift.h"
#include "scenario/replay.h"
#include "scenario/scenario.h"
#include "store/feed_service.h"
#include "workload/workload.h"

namespace piggy {
namespace {

FeedServiceOptions SmallDeployment(const std::string& planner) {
  FeedServiceOptions options;
  options.planner = planner;
  options.prototype.num_servers = 16;
  options.prototype.view_capacity = 0;  // unbounded views: exact audits
  options.workload = {.read_write_ratio = 5.0, .min_rate = 0.05};
  return options;
}

// The acceptance criterion: a 1-service stationary replay is bit-identical
// to FeedService::Drive with the same seed — same request sequence, same
// serving messages, same feeds.
TEST(ScenarioDriveTest, StationaryReplayMatchesDriveBitForBit) {
  Graph g = MakeFlickrLike(300, 12).ValueOrDie();
  Workload w = GenerateWorkload(g, {.min_rate = 0.05}).ValueOrDie();

  FeedServiceOptions options = SmallDeployment("nosy");
  auto drive_service = FeedService::Create(g, w, options).MoveValueOrDie();
  auto replay_service = FeedService::Create(g, w, options).MoveValueOrDie();

  DriverOptions traffic;
  traffic.num_requests = 5000;
  traffic.seed = 21;
  DriverReport drive_report = drive_service->Drive(traffic).MoveValueOrDie();

  ScenarioOptions scenario_options;
  scenario_options.num_requests = traffic.num_requests;
  scenario_options.seed = traffic.seed;
  auto scenario =
      MakeScenario("stationary", g, w, scenario_options).MoveValueOrDie();
  ReplayReport replay_report =
      ReplayScenario(*scenario, *replay_service).MoveValueOrDie();

  const FeedService::Metrics drive_metrics = drive_service->GetMetrics();
  const FeedService::Metrics replay_metrics = replay_service->GetMetrics();
  EXPECT_EQ(drive_metrics.shares, replay_metrics.shares);
  EXPECT_EQ(drive_metrics.queries, replay_metrics.queries);
  EXPECT_EQ(drive_metrics.messages_per_request,
            replay_metrics.messages_per_request);  // bitwise
  EXPECT_EQ(drive_metrics.replans, replay_metrics.replans);
  EXPECT_EQ(replay_report.shares, drive_metrics.shares);
  EXPECT_EQ(replay_report.queries, drive_metrics.queries);
  EXPECT_GT(drive_report.client.requests(), 0u);

  // The serving planes hold identical feeds afterwards.
  for (NodeId u = 0; u < 25; ++u) {
    std::vector<EventTuple> a = drive_service->QueryStream(u).MoveValueOrDie();
    std::vector<EventTuple> b = replay_service->QueryStream(u).MoveValueOrDie();
    ASSERT_EQ(a.size(), b.size()) << "user " << u;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].producer, b[i].producer);
      EXPECT_EQ(a[i].event_id, b[i].event_id);
    }
  }
}

TEST(ScenarioDriveTest, ReplayIsDeterministicAcrossReruns) {
  Graph g = MakeFlickrLike(250, 5).ValueOrDie();
  ScenarioOptions scenario_options;
  scenario_options.num_requests = 4000;
  scenario_options.epochs = 6;
  scenario_options.seed = 33;
  FeedServiceOptions options = SmallDeployment("nosy");
  options.audit_every = 100;

  ReplayReport reports[2];
  for (ReplayReport& report : reports) {
    auto scenario =
        MakeScenario("celebrity-join", g, scenario_options).MoveValueOrDie();
    auto service = FeedService::Create(g, options).MoveValueOrDie();
    report = ReplayScenario(*scenario, *service).MoveValueOrDie();
  }
  EXPECT_EQ(reports[0].shares, reports[1].shares);
  EXPECT_EQ(reports[0].queries, reports[1].queries);
  EXPECT_EQ(reports[0].follows, reports[1].follows);
  EXPECT_EQ(reports[0].unfollows, reports[1].unfollows);
  EXPECT_EQ(reports[0].messages, reports[1].messages);  // bitwise
  EXPECT_EQ(reports[0].replans, reports[1].replans);
  ASSERT_EQ(reports[0].epochs.size(), reports[1].epochs.size());
  for (size_t e = 0; e < reports[0].epochs.size(); ++e) {
    EXPECT_EQ(reports[0].epochs[e].messages, reports[1].epochs[e].messages);
    EXPECT_EQ(reports[0].epochs[e].true_cost, reports[1].epochs[e].true_cost);
  }
}

// Empty epochs — zero rates, zero churn in the middle of a run — must
// produce zero-request rows, not confuse epoch accounting, and the
// rate-shift back up must be served correctly.
TEST(ScenarioDriveTest, EmptyEpochsAndRateShiftToZero) {
  Graph g = MakeFlickrLike(200, 7).ValueOrDie();
  Workload base = GenerateWorkload(g, {.min_rate = 0.05}).ValueOrDie();
  auto active = std::make_shared<const Workload>(base);
  Workload zero;
  zero.production.assign(g.num_nodes(), 0.0);
  zero.consumption.assign(g.num_nodes(), 0.0);
  auto blackout = std::make_shared<const Workload>(std::move(zero));

  // active | blackout | blackout | active: a rate shift to zero, two empty
  // epochs (the second without a rate shift of its own), and recovery.
  std::vector<CustomEpoch> epochs(4);
  epochs[0].workload = active;
  epochs[1].workload = blackout;
  epochs[2].workload = blackout;
  epochs[3].workload = active;

  ScenarioOptions scenario_options;
  scenario_options.num_requests = 3000;
  scenario_options.seed = 17;
  auto scenario =
      MakeCustomScenario({"test-blackout", "shift to zero mid-run"}, g, base,
                         scenario_options, std::move(epochs))
          .MoveValueOrDie();
  EXPECT_EQ(scenario->num_epochs(), 4u);

  FeedServiceOptions options = SmallDeployment("nosy");
  options.audit_every = 50;
  auto service = FeedService::Create(g, base, options).MoveValueOrDie();
  ReplayReport report = ReplayScenario(*scenario, *service).MoveValueOrDie();

  ASSERT_EQ(report.epochs.size(), 4u);
  EXPECT_GT(report.epochs[0].shares + report.epochs[0].queries, 0u);
  EXPECT_EQ(report.epochs[1].shares + report.epochs[1].queries, 0u);
  EXPECT_EQ(report.epochs[2].shares + report.epochs[2].queries, 0u);
  EXPECT_GT(report.epochs[3].shares + report.epochs[3].queries, 0u);
  EXPECT_EQ(report.epochs[1].messages_per_request, 0.0);
  EXPECT_EQ(report.epochs[1].true_cost, 0.0);  // zero rates cost nothing
  EXPECT_EQ(report.shares + report.queries, 3000u);
  EXPECT_TRUE(service->Validate().ok());
}

// Producers that lose every consumer mid-run: the repaired schedule keeps
// serving (audited) queries, ex-followers get feeds without the producer,
// and the producer's shares keep flowing to nobody without error.
TEST(ScenarioDriveTest, AllConsumersUnfollowProducerMidRun) {
  Graph g = MakeFlickrLike(150, 9).ValueOrDie();
  // Find the best-followed producer.
  NodeId producer = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > g.OutDegree(producer)) producer = u;
  }
  const std::vector<NodeId> followers(g.OutNeighbors(producer).begin(),
                                      g.OutNeighbors(producer).end());
  ASSERT_GT(followers.size(), 2u);

  // Only `producer` shares; only its followers query. Every sampled request
  // then exercises exactly the producer/consumer pair under test.
  Workload focused;
  focused.production.assign(g.num_nodes(), 0.0);
  focused.consumption.assign(g.num_nodes(), 0.0);
  focused.production[producer] = 1.0;
  for (NodeId f : followers) focused.consumption[f] = 2.0;
  auto rates = std::make_shared<const Workload>(focused);

  // Epoch 0: normal traffic. Epoch 1: every follower unfollows, traffic
  // continues around the churn. Epoch 2: queries against the emptied fan-out.
  ScenarioOptions scenario_options;
  scenario_options.num_requests = 900;
  scenario_options.seed = 3;
  scenario_options.duration = 3.0;
  std::vector<CustomEpoch> epochs(3);
  for (CustomEpoch& e : epochs) e.workload = rates;
  for (size_t i = 0; i < followers.size(); ++i) {
    ScenarioOp op;
    op.kind = ScenarioOpKind::kUnfollow;
    op.user = followers[i];
    op.producer = producer;
    op.epoch = 1;
    op.time = 1.0 + (static_cast<double>(i) + 0.5) /
                        static_cast<double>(followers.size());
    epochs[1].churn.push_back(op);
  }
  auto scenario =
      MakeCustomScenario({"test-abandoned", "producer loses every consumer"},
                         g, focused, scenario_options, std::move(epochs))
          .MoveValueOrDie();

  FeedServiceOptions options = SmallDeployment("nosy");
  options.audit_every = 1;  // audit every query
  auto service = FeedService::Create(g, focused, options).MoveValueOrDie();
  ReplayReport report = ReplayScenario(*scenario, *service).MoveValueOrDie();

  EXPECT_EQ(report.unfollows, followers.size());
  EXPECT_EQ(report.shares + report.queries, 900u);
  EXPECT_TRUE(service->Validate().ok());
  // Ex-followers no longer see the producer.
  for (size_t i = 0; i < 3 && i < followers.size(); ++i) {
    std::vector<EventTuple> feed =
        service->QueryStream(followers[i]).MoveValueOrDie();
    for (const EventTuple& e : feed) EXPECT_NE(e.producer, producer);
  }
}

// The tentpole payoff at test scale: under a flash crowd, the drift policy
// notices the rate excursion from traffic alone, replans with re-estimated
// rates, and serves the run with fewer messages than never replanning.
TEST(ScenarioDriveTest, DriftPolicyBeatsNeverReplanOnFlashCrowd) {
  Graph g = MakeFlickrLike(400, 19).ValueOrDie();
  ScenarioOptions scenario_options;
  scenario_options.num_requests = 24000;
  scenario_options.epochs = 8;
  scenario_options.seed = 5;
  scenario_options.intensity = 12.0;

  auto run = [&](const ReplanPolicy& policy) {
    FeedServiceOptions options = SmallDeployment("nosy");
    options.replan = policy;
    auto scenario =
        MakeScenario("flash-crowd", g, scenario_options).MoveValueOrDie();
    auto service = FeedService::Create(g, options).MoveValueOrDie();
    ReplayReport report = ReplayScenario(*scenario, *service).MoveValueOrDie();
    const FeedService::Metrics metrics = service->GetMetrics();
    return std::make_pair(report, metrics);
  };

  DriftOptions drift;
  drift.check_interval = 1024;
  drift.min_requests_between_replans = 2048;
  auto [never_report, never_metrics] = run(ReplanPolicy::Never());
  auto [drift_report, drift_metrics] = run(ReplanPolicy::Drift(drift));

  EXPECT_EQ(never_metrics.replans, 1u);  // the initial plan only
  EXPECT_GE(drift_metrics.drift_replans, 1u)
      << "the flash crowd must register as drift";
  EXPECT_LT(drift_report.messages, never_report.messages)
      << "adaptive replanning must reduce serving traffic under the spike";
}

// Per-shard adaptivity in the sharded cluster: a regional event spikes some
// shards harder than others; shard-local drift estimators replan where it
// matters, merged feeds stay audit-exact throughout.
TEST(ScenarioDriveTest, ClusterReplayUnderRegionalEventStaysAuditClean) {
  Graph g = MakeFlickrLike(300, 23).ValueOrDie();
  ScenarioOptions scenario_options;
  scenario_options.num_requests = 12000;
  scenario_options.epochs = 8;
  scenario_options.seed = 7;
  scenario_options.intensity = 10.0;
  auto scenario =
      MakeScenario("regional-event", g, scenario_options).MoveValueOrDie();

  ClusterOptions options;
  options.num_shards = 4;
  options.partitioner = "hash";
  options.shard = SmallDeployment("nosy");
  options.shard.replan =
      ReplanPolicy::Drift({.check_interval = 512,
                           .min_requests_between_replans = 1024});
  options.audit_every = 100;  // audit merged streams against the oracle
  auto cluster = ClusterService::Create(g, options).MoveValueOrDie();

  ReplayReport report = ReplayScenario(*scenario, *cluster).MoveValueOrDie();
  EXPECT_EQ(report.shares + report.queries, 12000u);
  EXPECT_GT(report.follows, 0u);  // outsiders followed into the region
  EXPECT_TRUE(cluster->Validate().ok());

  const ClusterMetrics metrics = cluster->GetMetrics();
  EXPECT_GT(metrics.audited_queries, 0u);
  EXPECT_GE(metrics.replans, options.num_shards);  // initial plans at least
  EXPECT_EQ(metrics.churn_ops, report.follows + report.unfollows);
}

}  // namespace
}  // namespace piggy
