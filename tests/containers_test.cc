#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "util/alias_table.h"
#include "util/rng.h"
#include "util/u64_containers.h"

namespace piggy {
namespace {

// ---------------------------------------------------------------- U64Set

TEST(U64SetTest, InsertContainsErase) {
  U64Set s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Insert(42));
  EXPECT_FALSE(s.Insert(42));
  EXPECT_TRUE(s.Contains(42));
  EXPECT_FALSE(s.Contains(43));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Erase(42));
  EXPECT_FALSE(s.Erase(42));
  EXPECT_FALSE(s.Contains(42));
  EXPECT_TRUE(s.empty());
}

TEST(U64SetTest, ZeroKeyAllowed) {
  U64Set s;
  EXPECT_TRUE(s.Insert(0));
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Erase(0));
}

TEST(U64SetTest, GrowsThroughRehash) {
  U64Set s;
  for (uint64_t i = 0; i < 10000; ++i) EXPECT_TRUE(s.Insert(i * 7919));
  EXPECT_EQ(s.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) EXPECT_TRUE(s.Contains(i * 7919));
  EXPECT_FALSE(s.Contains(3));
}

TEST(U64SetTest, ForEachVisitsAll) {
  U64Set s;
  for (uint64_t i = 1; i <= 100; ++i) s.Insert(i);
  std::set<uint64_t> seen;
  s.ForEach([&seen](uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 1u);
  EXPECT_EQ(*seen.rbegin(), 100u);
  EXPECT_EQ(s.ToVector().size(), 100u);
}

// Regression: Insert used to decide growth before checking presence, so a
// duplicate insert near the load threshold doubled the table for nothing.
TEST(U64SetTest, DuplicateInsertNearThresholdDoesNotGrow) {
  U64Set s;
  const size_t cap = s.capacity();
  // Fill to the last size whose insert stays below the 0.7 growth threshold,
  // i.e. the next *new* insert would rehash.
  uint64_t key = 0;
  while ((s.size() + 1) * 10 < cap * 7) EXPECT_TRUE(s.Insert(++key));
  ASSERT_EQ(s.capacity(), cap) << "fill should stay below the threshold";
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.Insert(1));  // duplicate: must not rehash
  }
  EXPECT_EQ(s.capacity(), cap);
  // The next genuinely new key is the one that grows the table.
  EXPECT_TRUE(s.Insert(++key));
  EXPECT_GT(s.capacity(), cap);
  for (uint64_t k = 1; k <= key; ++k) EXPECT_TRUE(s.Contains(k));
}

TEST(U64SetTest, ClearEmpties) {
  U64Set s;
  for (uint64_t i = 0; i < 50; ++i) s.Insert(i);
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(7));
  EXPECT_TRUE(s.Insert(7));
}

// Randomized differential test against std::unordered_set, exercising
// backward-shift deletion under mixed insert/erase/lookups.
TEST(U64SetTest, DifferentialAgainstStd) {
  U64Set mine;
  std::unordered_set<uint64_t> ref;
  Rng rng(99);
  for (int op = 0; op < 50000; ++op) {
    uint64_t key = rng.Uniform(500);  // small key space forces collisions
    switch (rng.Uniform(3)) {
      case 0:
        EXPECT_EQ(mine.Insert(key), ref.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(mine.Erase(key), ref.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(mine.Contains(key), ref.count(key) > 0);
    }
    EXPECT_EQ(mine.size(), ref.size());
  }
}

// ---------------------------------------------------------------- U64Map

TEST(U64MapTest, PutFindErase) {
  U64Map<int> m;
  EXPECT_TRUE(m.Put(5, 50));
  EXPECT_FALSE(m.Put(5, 51));  // overwrite is not fresh
  ASSERT_NE(m.Find(5), nullptr);
  EXPECT_EQ(*m.Find(5), 51);
  EXPECT_EQ(m.Find(6), nullptr);
  EXPECT_TRUE(m.Erase(5));
  EXPECT_EQ(m.Find(5), nullptr);
}

TEST(U64MapTest, MutableFind) {
  U64Map<std::vector<int>> m;
  m.Put(1, {1});
  m.Find(1)->push_back(2);
  EXPECT_EQ(m.Find(1)->size(), 2u);
}

TEST(U64MapTest, DifferentialAgainstStd) {
  U64Map<uint64_t> mine;
  std::map<uint64_t, uint64_t> ref;
  Rng rng(101);
  for (int op = 0; op < 30000; ++op) {
    uint64_t key = rng.Uniform(300);
    uint64_t val = rng();
    switch (rng.Uniform(3)) {
      case 0: {
        bool fresh = ref.find(key) == ref.end();
        EXPECT_EQ(mine.Put(key, val), fresh);
        ref[key] = val;
        break;
      }
      case 1:
        EXPECT_EQ(mine.Erase(key), ref.erase(key) > 0);
        break;
      default: {
        auto it = ref.find(key);
        const uint64_t* found = mine.Find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    EXPECT_EQ(mine.size(), ref.size());
  }
}

// Regression: Put used to rehash before probing, so overwriting an existing
// key near the load threshold grew the table without adding an entry.
TEST(U64MapTest, OverwriteNearThresholdDoesNotGrow) {
  U64Map<int> m;
  const size_t cap = m.capacity();
  uint64_t key = 0;
  while ((m.size() + 1) * 10 < cap * 7) EXPECT_TRUE(m.Put(++key, 1));
  ASSERT_EQ(m.capacity(), cap) << "fill should stay below the threshold";
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(m.Put(1, i));  // overwrite: must not rehash
  }
  EXPECT_EQ(m.capacity(), cap);
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 99);  // overwrites still landed
  EXPECT_TRUE(m.Put(++key, 7));
  EXPECT_GT(m.capacity(), cap);
  for (uint64_t k = 1; k <= key; ++k) EXPECT_NE(m.Find(k), nullptr);
}

TEST(U64MapTest, ForEachVisitsAll) {
  U64Map<int> m;
  for (int i = 0; i < 64; ++i) m.Put(static_cast<uint64_t>(i), i * i);
  int count = 0;
  int64_t sum = 0;
  m.ForEach([&](uint64_t k, int v) {
    ++count;
    EXPECT_EQ(static_cast<int>(k * k), v);
    sum += v;
  });
  EXPECT_EQ(count, 64);
  EXPECT_GT(sum, 0);
}

// ---------------------------------------------------------------- Alias

TEST(AliasTableTest, SingleCategory) {
  AliasTable t({3.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable t({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(t.Sample(rng), 1u);
}

TEST(AliasTableTest, MatchesDistribution) {
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable t(weights);
  EXPECT_DOUBLE_EQ(t.total_weight(), 10.0);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[t.Sample(rng)];
  for (int i = 0; i < 4; ++i) {
    double expected = weights[i] / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(kSamples), expected, 0.01);
  }
}

TEST(AliasTableTest, DeterministicPerSeed) {
  AliasTable t({1.0, 5.0, 2.0});
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(t.Sample(a), t.Sample(b));
}

}  // namespace
}  // namespace piggy
