#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "mapreduce/mapreduce.h"

namespace piggy {
namespace {

// The canonical word-count job.
TEST(MapReduceTest, WordCount) {
  ThreadPool pool(4);
  std::vector<std::string> docs = {"a b a", "b c", "a", "c c c"};
  using Out = std::pair<std::string, int>;
  auto out = mr::RunMapReduce<std::string, std::string, int, Out>(
      pool, docs,
      [](const std::string& doc, mr::Emitter<std::string, int>& em) {
        size_t pos = 0;
        while (pos < doc.size()) {
          size_t end = doc.find(' ', pos);
          if (end == std::string::npos) end = doc.size();
          if (end > pos) em.Emit(doc.substr(pos, end - pos), 1);
          pos = end + 1;
        }
      },
      [](const std::string& word, std::vector<int>& counts, std::vector<Out>& sink) {
        int total = 0;
        for (int c : counts) total += c;
        sink.emplace_back(word, total);
      });
  std::map<std::string, int> result(out.begin(), out.end());
  EXPECT_EQ(result.size(), 3u);
  EXPECT_EQ(result["a"], 3);
  EXPECT_EQ(result["b"], 2);
  EXPECT_EQ(result["c"], 4);
}

TEST(MapReduceTest, EmptyInputProducesNoOutput) {
  ThreadPool pool(2);
  std::vector<int> inputs;
  auto out = mr::RunMapReduce<int, int, int, int>(
      pool, inputs, [](const int&, mr::Emitter<int, int>&) {},
      [](const int&, std::vector<int>&, std::vector<int>&) {});
  EXPECT_TRUE(out.empty());
}

TEST(MapReduceTest, MapperMayEmitNothing) {
  ThreadPool pool(2);
  std::vector<int> inputs{1, 2, 3, 4, 5, 6};
  auto out = mr::RunMapReduce<int, int, int, int>(
      pool, inputs,
      [](const int& x, mr::Emitter<int, int>& em) {
        if (x % 2 == 0) em.Emit(0, x);
      },
      [](const int&, std::vector<int>& vs, std::vector<int>& sink) {
        int sum = 0;
        for (int v : vs) sum += v;
        sink.push_back(sum);
      });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 12);
}

TEST(MapReduceTest, DeterministicAcrossThreadCounts) {
  std::vector<int> inputs;
  for (int i = 0; i < 5000; ++i) inputs.push_back(i);
  auto run = [&inputs](size_t threads) {
    ThreadPool pool(threads);
    return mr::RunMapReduce<int, int, int, std::pair<int, int>>(
        pool, inputs,
        [](const int& x, mr::Emitter<int, int>& em) { em.Emit(x % 97, x); },
        [](const int& key, std::vector<int>& vs, std::vector<std::pair<int, int>>& sink) {
          int sum = 0;
          for (int v : vs) sum += v;
          sink.emplace_back(key, sum);
        });
  };
  auto a = run(1);
  auto b = run(4);
  auto c = run(13);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(MapReduceTest, ValuesArriveInShardOrder) {
  // With a single-threaded pool and one shard, values for a key must appear
  // in emission order.
  ThreadPool pool(1);
  std::vector<int> inputs{10, 20, 30};
  mr::JobOptions options;
  options.num_map_shards = 1;
  options.num_reduce_partitions = 1;
  auto out = mr::RunMapReduce<int, int, int, std::vector<int>>(
      pool, inputs,
      [](const int& x, mr::Emitter<int, int>& em) { em.Emit(7, x); },
      [](const int&, std::vector<int>& vs, std::vector<std::vector<int>>& sink) {
        sink.push_back(vs);
      },
      options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::vector<int>{10, 20, 30}));
}

TEST(MapReduceTest, StatsAreReported) {
  ThreadPool pool(2);
  std::vector<int> inputs{1, 2, 3, 4};
  mr::JobStats stats;
  auto out = mr::RunMapReduce<int, int, int, int>(
      pool, inputs,
      [](const int& x, mr::Emitter<int, int>& em) { em.Emit(x % 2, x); },
      [](const int& k, std::vector<int>&, std::vector<int>& sink) {
        sink.push_back(k);
      },
      {}, &stats);
  EXPECT_EQ(stats.map_inputs, 4u);
  EXPECT_EQ(stats.distinct_keys, 2u);
  EXPECT_EQ(stats.outputs, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(MapReduceTest, ManyKeysAllReduced) {
  ThreadPool pool(8);
  std::vector<int> inputs;
  for (int i = 0; i < 10000; ++i) inputs.push_back(i);
  auto out = mr::RunMapReduce<int, int, int, int>(
      pool, inputs,
      [](const int& x, mr::Emitter<int, int>& em) { em.Emit(x, 1); },
      [](const int& k, std::vector<int>& vs, std::vector<int>& sink) {
        ASSERT_EQ(vs.size(), 1u);
        sink.push_back(k);
      });
  EXPECT_EQ(out.size(), 10000u);
}

}  // namespace
}  // namespace piggy
