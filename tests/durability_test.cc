// Unit tests for the durability primitives: CRC32, WAL framing and torn-tail
// detection, snapshot round-trips and corruption rejection, FailPoint crash
// simulation, and the ShardDurability rotation/recovery cycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "durability/durable_state.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "graph/graph_builder.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace piggy {
namespace {

constexpr size_t kFrameSize = 8 + 33;  // header + fixed payload

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Instance().ClearAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("piggy_dur_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPointRegistry::Instance().ClearAll();
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> recs;
  recs.push_back({WalRecordType::kShare, 7, 0, 101, 0, 0});
  recs.push_back({WalRecordType::kFollow, 3, 9, 0, 0, 0});
  recs.push_back({WalRecordType::kUnfollow, 3, 9, 0, 0, 0});
  recs.push_back({WalRecordType::kRateShift, 5, 0, 0, 2.5, 0.25});
  recs.push_back({WalRecordType::kReplanCommit, 0, 0, 0, 0, 0});
  recs.push_back({WalRecordType::kShare, 1, 0, 102, 0, 0});
  return recs;
}

Status WriteRecords(const std::string& path,
                    const std::vector<WalRecord>& recs,
                    WalFlushPolicy policy = WalFlushPolicy::kEveryRecord) {
  PIGGY_ASSIGN_OR_RETURN(WalWriter w, WalWriter::Open(path, policy, 4, false));
  for (const auto& r : recs) PIGGY_RETURN_NOT_OK(w.Append(r));
  return w.Close();
}

TEST(Crc32Test, KnownAnswer) {
  // The IEEE CRC-32 check value for the ASCII digits "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, Incremental) {
  uint32_t partial = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, partial), 0xCBF43926u);
}

TEST_F(DurabilityTest, WalRoundTrip) {
  auto recs = SampleRecords();
  ASSERT_TRUE(WriteRecords(Path("w.log"), recs).ok());
  auto read = ReadWal(Path("w.log")).ValueOrDie();
  EXPECT_EQ(read.records, recs);
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes, recs.size() * kFrameSize);
  EXPECT_EQ(read.total_bytes, read.valid_bytes);
}

TEST_F(DurabilityTest, WalGroupFlushPersistsOnClose) {
  auto recs = SampleRecords();
  ASSERT_TRUE(WriteRecords(Path("g.log"), recs, WalFlushPolicy::kNone).ok());
  auto read = ReadWal(Path("g.log")).ValueOrDie();
  EXPECT_EQ(read.records, recs);
}

TEST_F(DurabilityTest, WalTornTailEveryBoundary) {
  auto recs = SampleRecords();
  ASSERT_TRUE(WriteRecords(Path("full.log"), recs).ok());
  std::ifstream in(Path("full.log"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), recs.size() * kFrameSize);

  // Truncate at every frame boundary and at every partial offset inside the
  // following frame: the intact prefix must survive byte-for-byte, the tail
  // must be flagged, and nothing past the cut may surface.
  for (size_t boundary = 0; boundary < recs.size(); ++boundary) {
    for (size_t extra : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{20}, kFrameSize - 1}) {
      size_t cut = boundary * kFrameSize + extra;
      if (cut >= bytes.size()) continue;
      std::string name = "cut_" + std::to_string(cut) + ".log";
      std::ofstream out(Path(name), std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
      out.close();
      auto read = ReadWal(Path(name)).ValueOrDie();
      ASSERT_EQ(read.records.size(), boundary) << "cut at " << cut;
      for (size_t i = 0; i < boundary; ++i) EXPECT_EQ(read.records[i], recs[i]);
      EXPECT_EQ(read.valid_bytes, boundary * kFrameSize);
      EXPECT_EQ(read.total_bytes, cut);
      EXPECT_EQ(read.torn_tail, extra != 0);
    }
  }
}

TEST_F(DurabilityTest, WalBitFlipStopsAtCorruptRecord) {
  auto recs = SampleRecords();
  ASSERT_TRUE(WriteRecords(Path("full.log"), recs).ok());
  std::ifstream in(Path("full.log"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Flip one payload byte in each record in turn: the reader must keep every
  // record before it and reject everything from the flipped record on (frame
  // sync is gone once one CRC fails).
  for (size_t victim = 0; victim < recs.size(); ++victim) {
    std::string corrupt = bytes;
    corrupt[victim * kFrameSize + 8 + 3] ^= 0x40;  // payload byte, not header
    std::string name = "flip_" + std::to_string(victim) + ".log";
    std::ofstream out(Path(name), std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    auto read = ReadWal(Path(name)).ValueOrDie();
    ASSERT_EQ(read.records.size(), victim);
    for (size_t i = 0; i < victim; ++i) EXPECT_EQ(read.records[i], recs[i]);
    EXPECT_TRUE(read.torn_tail);
    EXPECT_EQ(read.valid_bytes, victim * kFrameSize);
  }
}

TEST_F(DurabilityTest, WalFailPointError) {
  auto w = WalWriter::Open(Path("e.log"), WalFlushPolicy::kEveryRecord, 1,
                           false).MoveValueOrDie();
  ASSERT_TRUE(w.Append({WalRecordType::kShare, 1, 0, 1, 0, 0}).ok());
  FailPointRegistry::Instance().Arm("wal.append", FailPointAction::kError);
  Status s = w.Append({WalRecordType::kShare, 2, 0, 2, 0, 0});
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_FALSE(FailPointRegistry::Instance().crashed());
  FailPointRegistry::Instance().Disarm("wal.append");
  // A plain error is transient: the next append goes through.
  ASSERT_TRUE(w.Append({WalRecordType::kShare, 3, 0, 3, 0, 0}).ok());
  ASSERT_TRUE(w.Close().ok());
  auto read = ReadWal(Path("e.log")).ValueOrDie();
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[1].user, 3u);
}

TEST_F(DurabilityTest, WalFailPointCrashHardIsFailStop) {
  auto w = WalWriter::Open(Path("c.log"), WalFlushPolicy::kEveryRecord, 1,
                           false).MoveValueOrDie();
  ASSERT_TRUE(w.Append({WalRecordType::kShare, 1, 0, 1, 0, 0}).ok());
  FailPointRegistry::Instance().Arm("wal.append", FailPointAction::kCrashHard);
  EXPECT_TRUE(w.Append({WalRecordType::kShare, 2, 0, 2, 0, 0}).IsIOError());
  EXPECT_TRUE(FailPointRegistry::Instance().crashed());
  // Fail-stop: every later append dies too, even with the point disarmed.
  EXPECT_TRUE(w.Append({WalRecordType::kShare, 3, 0, 3, 0, 0}).IsIOError());
  (void)w.Close();
  auto read = ReadWal(Path("c.log")).ValueOrDie();
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_FALSE(read.torn_tail);
}

TEST_F(DurabilityTest, WalFailPointTornWrite) {
  auto w = WalWriter::Open(Path("t.log"), WalFlushPolicy::kEveryRecord, 1,
                           false).MoveValueOrDie();
  ASSERT_TRUE(w.Append({WalRecordType::kShare, 1, 0, 1, 0, 0}).ok());
  FailPointRegistry::Instance().Arm("wal.append",
                                    FailPointAction::kCrashTornWrite);
  EXPECT_TRUE(w.Append({WalRecordType::kShare, 2, 0, 2, 0, 0}).IsIOError());
  (void)w.Close();
  auto read = ReadWal(Path("t.log")).ValueOrDie();
  ASSERT_EQ(read.records.size(), 1u);  // the torn frame must not decode
  EXPECT_TRUE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes, kFrameSize);
  EXPECT_GT(read.total_bytes, read.valid_bytes);
  EXPECT_LT(read.total_bytes, 2 * kFrameSize);
}

SnapshotData SampleSnapshot() {
  SnapshotData d;
  d.id = 3;
  d.next_seq = 42;
  d.churn = {{true, {0, 4}}, {false, {2, 1}}};
  d.production = {0.5, 1.5, 2.5};
  d.consumption = {10.0, 20.0, 30.0};
  d.schedule_text = "fake schedule text\n";
  d.events = {{1, 7, 7}, {2, 9, 9}};
  return d;
}

TEST_F(DurabilityTest, SnapshotRoundTrip) {
  SnapshotData d = SampleSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(d, Path("snap")).ok());
  SnapshotData back = ReadSnapshotFile(Path("snap")).ValueOrDie();
  EXPECT_EQ(back.id, d.id);
  EXPECT_EQ(back.next_seq, d.next_seq);
  EXPECT_EQ(back.churn, d.churn);
  EXPECT_EQ(back.production, d.production);
  EXPECT_EQ(back.consumption, d.consumption);
  EXPECT_EQ(back.schedule_text, d.schedule_text);
  EXPECT_EQ(back.events, d.events);
}

TEST_F(DurabilityTest, SnapshotCorruptionRejected) {
  ASSERT_TRUE(WriteSnapshotFile(SampleSnapshot(), Path("snap")).ok());
  std::ifstream in(Path("snap"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Flip one byte anywhere after the magic: the CRC must catch it.
  for (size_t pos : {size_t{8}, size_t{16}, bytes.size() / 2,
                     bytes.size() - 5}) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x01;
    std::ofstream out(Path("bad"), std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    auto r = ReadSnapshotFile(Path("bad"));
    EXPECT_TRUE(r.status().IsIOError()) << "flip at " << pos;
  }
  // Truncation at any point is rejected too.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{12}, bytes.size() - 1}) {
    std::ofstream out(Path("short"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(ReadSnapshotFile(Path("short")).ok()) << "cut at " << cut;
  }
}

TEST_F(DurabilityTest, SnapshotWriteCrashLeavesPredecessorIntact) {
  SnapshotData first = SampleSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(first, Path("snap")).ok());
  SnapshotData second = SampleSnapshot();
  second.id = 4;
  second.next_seq = 99;
  auto& fp = FailPointRegistry::Instance();
  for (const char* point : {"snapshot.write", "snapshot.rename"}) {
    fp.ClearAll();
    fp.Arm(point, FailPointAction::kCrashHard);
    EXPECT_TRUE(WriteSnapshotFile(second, Path("snap")).IsIOError()) << point;
    fp.ClearAll();
    SnapshotData back = ReadSnapshotFile(Path("snap")).ValueOrDie();
    EXPECT_EQ(back.id, first.id) << point;
  }
  // Torn write mid-snapshot: the temp file is garbage, the target untouched.
  fp.Arm("snapshot.write", FailPointAction::kCrashTornWrite);
  EXPECT_TRUE(WriteSnapshotFile(second, Path("snap")).IsIOError());
  fp.ClearAll();
  EXPECT_EQ(ReadSnapshotFile(Path("snap")).ValueOrDie().id, first.id);
}

Graph TinyGraph() {
  // 0 -> {1, 2}, 3 -> {0}; node 4 isolated.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(3, 0);
  return std::move(b).Build().ValueOrDie();
}

DurabilityOptions Opts(const std::string& dir) {
  DurabilityOptions o;
  o.data_dir = dir;
  o.flush = WalFlushPolicy::kEveryRecord;
  return o;
}

SnapshotData EmptySnapshot() {
  SnapshotData d;
  d.production = {1, 1, 1, 1, 1};
  d.consumption = {1, 1, 1, 1, 1};
  return d;
}

TEST_F(DurabilityTest, ShardDurabilityCycle) {
  Graph g = TinyGraph();
  {
    auto d = ShardDurability::Create(Opts(Path("shard")), g).MoveValueOrDie();
    ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());  // snapshot 0
    ASSERT_TRUE(d->LogShare(0, 1).ok());
    ASSERT_TRUE(d->LogChurn(true, 1, 2).ok());  // 2 follows 1
    ASSERT_TRUE(d->LogRateShift(3, 5.0, 0.5).ok());
    EXPECT_EQ(d->records_since_snapshot(), 3u);
    SnapshotData s1 = EmptySnapshot();
    s1.events = {{0, 1, 1}};
    ASSERT_TRUE(d->WriteSnapshot(std::move(s1)).ok());  // rotate to pair 1
    EXPECT_EQ(d->records_since_snapshot(), 0u);
    ASSERT_TRUE(d->LogShare(3, 2).ok());
    ASSERT_TRUE(d->LogReplanCommit().ok());
  }

  auto d = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  auto rec = d->Recover().MoveValueOrDie();
  EXPECT_EQ(rec.base_graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(rec.base_graph.num_edges(), g.num_edges());
  EXPECT_EQ(rec.snapshot.id, 1u);
  // The snapshot folds the pre-rotation churn into its delta...
  ASSERT_EQ(rec.snapshot.churn.size(), 1u);
  EXPECT_TRUE(rec.snapshot.churn[0].first);
  EXPECT_EQ(rec.snapshot.churn[0].second, (Edge{1, 2}));
  ASSERT_EQ(rec.snapshot.events.size(), 1u);
  // ...and the WAL tail holds exactly the post-rotation records.
  ASSERT_EQ(rec.wal_records.size(), 2u);
  EXPECT_EQ(rec.wal_records[0].type, WalRecordType::kShare);
  EXPECT_EQ(rec.wal_records[0].user, 3u);
  EXPECT_EQ(rec.wal_records[1].type, WalRecordType::kReplanCommit);
  EXPECT_FALSE(rec.torn_tail);

  // After ResumeAppending the pair accepts new records...
  ASSERT_TRUE(d->ResumeAppending().ok());
  ASSERT_TRUE(d->LogShare(1, 3).ok());
  // ...and a second recovery sees old + new tail records.
  auto d2 = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  d.reset();  // close the writer before re-reading
  auto rec2 = d2->Recover().MoveValueOrDie();
  ASSERT_EQ(rec2.wal_records.size(), 3u);
  EXPECT_EQ(rec2.wal_records[2].user, 1u);
}

TEST_F(DurabilityTest, ShardDurabilityDropsTornTailOnResume) {
  Graph g = TinyGraph();
  {
    auto d = ShardDurability::Create(Opts(Path("shard")), g).MoveValueOrDie();
    ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());
    ASSERT_TRUE(d->LogShare(0, 1).ok());
    FailPointRegistry::Instance().Arm("wal.append",
                                      FailPointAction::kCrashTornWrite);
    EXPECT_TRUE(d->LogShare(0, 2).IsIOError());
  }
  FailPointRegistry::Instance().ClearAll();

  auto d = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  auto rec = d->Recover().MoveValueOrDie();
  ASSERT_EQ(rec.wal_records.size(), 1u);
  EXPECT_TRUE(rec.torn_tail);
  ASSERT_TRUE(d->ResumeAppending().ok());
  ASSERT_TRUE(d->LogShare(0, 2).ok());
  d.reset();

  // The resumed log is clean: the torn frame was truncated away before the
  // new append, so a fresh read sees two intact records and no tear.
  auto d2 = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  auto rec2 = d2->Recover().MoveValueOrDie();
  ASSERT_EQ(rec2.wal_records.size(), 2u);
  EXPECT_FALSE(rec2.torn_tail);
  EXPECT_EQ(rec2.wal_records[1].seq, 2u);
}

TEST_F(DurabilityTest, ReadWalReportsReadErrors) {
  // A directory opens fine but every fread fails (EISDIR): that is an I/O
  // error, not an empty log — reporting it as a (zero-record) torn tail
  // would let ResumeAppending truncate acked records that are intact.
  std::filesystem::create_directories(Path("not_a_file"));
  auto r = ReadWal(Path("not_a_file"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
}

TEST_F(DurabilityTest, CreateRefusesExistingDurableState) {
  Graph g = TinyGraph();
  {
    auto d = ShardDurability::Create(Opts(Path("shard")), g).MoveValueOrDie();
    ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());
    ASSERT_TRUE(d->LogShare(0, 1).ok());
  }
  // A second Create on the same dir must refuse rather than append to the
  // old WAL / leave stale higher-id snapshots for recovery to prefer.
  auto again = ShardDurability::Create(Opts(Path("shard")), g);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsFailedPrecondition())
      << again.status().ToString();
  // The refused dir is untouched: recovery still sees the first run intact.
  auto d = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  auto rec = d->Recover().MoveValueOrDie();
  EXPECT_EQ(rec.snapshot.id, 0u);
  ASSERT_EQ(rec.wal_records.size(), 1u);
  EXPECT_EQ(rec.wal_records[0].seq, 1u);
}

TEST_F(DurabilityTest, FailedRotationKeepsWalAppendable) {
  Graph g = TinyGraph();
  auto& fp = FailPointRegistry::Instance();
  {
    auto d = ShardDurability::Create(Opts(Path("shard")), g).MoveValueOrDie();
    ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());  // snapshot 0
    ASSERT_TRUE(d->LogShare(0, 1).ok());
    // A transient snapshot failure must not close the WAL: appends continue
    // and the rotation can be retried.
    for (const char* point : {"snapshot.write", "snapshot.rename"}) {
      fp.Arm(point, FailPointAction::kError);
      EXPECT_TRUE(d->WriteSnapshot(EmptySnapshot()).IsIOError()) << point;
      fp.Disarm(point);
      ASSERT_TRUE(d->LogShare(0, 2).ok()) << point;
      EXPECT_TRUE(d->LogChurn(false, 0, 1).ok()) << point;
    }
    EXPECT_EQ(d->records_since_snapshot(), 5u);
  }
  fp.ClearAll();
  // Nothing acked between the failed rotations was lost: recovery falls
  // back on snapshot 0 and replays every record from wal-0.
  auto d = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  auto rec = d->Recover().MoveValueOrDie();
  EXPECT_EQ(rec.snapshot.id, 0u);
  ASSERT_EQ(rec.wal_records.size(), 5u);
  EXPECT_EQ(rec.wal_records[0].seq, 1u);
  EXPECT_FALSE(rec.torn_tail);
  // And the retried rotation goes through once the fault clears.
  ASSERT_TRUE(d->ResumeAppending().ok());
  ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());
  ASSERT_TRUE(d->LogShare(0, 3).ok());
  EXPECT_EQ(d->records_since_snapshot(), 1u);
}

TEST_F(DurabilityTest, RotationTruncatesStaleWalFile) {
  Graph g = TinyGraph();
  auto d = ShardDurability::Create(Opts(Path("shard")), g).MoveValueOrDie();
  ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());  // snapshot 0, wal-0
  // Plant a stale wal-1 (as an interrupted earlier rotation could): the next
  // rotation must start wal-1 empty, not append after the stale frames.
  ASSERT_TRUE(WriteRecords(Path("shard") + "/wal-000001.log",
                           {{WalRecordType::kShare, 9, 0, 999, 0, 0}})
                  .ok());
  ASSERT_TRUE(d->LogShare(0, 1).ok());
  ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());  // rotates to pair 1
  ASSERT_TRUE(d->LogShare(0, 2).ok());
  d.reset();

  auto d2 = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  auto rec = d2->Recover().MoveValueOrDie();
  EXPECT_EQ(rec.snapshot.id, 1u);
  ASSERT_EQ(rec.wal_records.size(), 1u);
  EXPECT_EQ(rec.wal_records[0].seq, 2u);  // the stale seq-999 frame is gone
}

TEST_F(DurabilityTest, ShardDurabilityFallsBackToOlderSnapshot) {
  Graph g = TinyGraph();
  {
    auto d = ShardDurability::Create(Opts(Path("shard")), g).MoveValueOrDie();
    ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());  // snapshot 0
    ASSERT_TRUE(d->LogShare(0, 1).ok());
    ASSERT_TRUE(d->WriteSnapshot(EmptySnapshot()).ok());  // snapshot 1
    ASSERT_TRUE(d->LogShare(0, 2).ok());
  }
  // Corrupt the newest snapshot: recovery must fall back to snapshot 0 and
  // replay both WALs (wal-0 then wal-1) to cover the gap.
  {
    std::fstream f(Path("shard") + "/snapshot-000001",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }
  auto d = ShardDurability::Open(Opts(Path("shard"))).MoveValueOrDie();
  auto rec = d->Recover().MoveValueOrDie();
  EXPECT_EQ(rec.snapshot.id, 0u);
  ASSERT_EQ(rec.wal_records.size(), 2u);
  EXPECT_EQ(rec.wal_records[0].seq, 1u);
  EXPECT_EQ(rec.wal_records[1].seq, 2u);
}

}  // namespace
}  // namespace piggy
