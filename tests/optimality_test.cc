// Cross-checks the scheduling algorithms against the true DISSEMINATION
// optimum, computed by brute force on small graphs.
//
// Every edge can be served as push, pull, or left to piggybacking; a
// configuration is feasible iff each unserved edge has a hub w with
// u -> w in H and w -> v in L (Theorem 1). Enumerating the 3^m
// configurations and keeping the cheapest feasible one yields the optimum.
// CHITCHAT carries an O(log n) guarantee; on these tiny instances both it
// and PARALLELNOSY should land within a modest constant of the optimum and
// never below it (no algorithm may beat the exhaustive bound — that would
// mean a cost-accounting or validity bug).

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/chitchat.h"
#include "core/cost_model.h"
#include "core/parallel_nosy.h"
#include "core/validator.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace piggy {
namespace {

// Brute-force optimum over all push/pull/piggyback assignments.
// Requires m <= 12 (3^12 = 531k configurations).
double OptimalDisseminationCost(const Graph& g, const Workload& w) {
  std::vector<Edge> edges = g.Edges();
  const size_t m = edges.size();
  PIGGY_CHECK_LE(m, 12u);
  size_t configs = 1;
  for (size_t i = 0; i < m; ++i) configs *= 3;

  double best = std::numeric_limits<double>::infinity();
  ValidatorOptions options;
  options.allow_implicit_hubs = true;  // piggybacked edges carry no C entry
  for (size_t mask = 0; mask < configs; ++mask) {
    Schedule s;
    size_t rest = mask;
    double cost = 0;
    for (size_t i = 0; i < m; ++i) {
      switch (rest % 3) {
        case 0:
          s.AddPush(edges[i].src, edges[i].dst);
          cost += w.rp(edges[i].src);
          break;
        case 1:
          s.AddPull(edges[i].src, edges[i].dst);
          cost += w.rc(edges[i].dst);
          break;
        default:
          break;  // hope for a hub; checked below
      }
      rest /= 3;
    }
    if (cost >= best) continue;  // cannot improve even if feasible
    if (ValidateSchedule(g, s, options).ok()) best = cost;
  }
  return best;
}

struct Instance {
  std::string name;
  Graph graph;
  Workload workload;
};

std::vector<Instance> SmallInstances() {
  std::vector<Instance> out;

  {
    // The paper's Figure 2 triangle with hub-friendly rates.
    Graph g = BuildGraph(3, {{0, 2}, {2, 1}, {0, 1}}).ValueOrDie();
    Workload w;
    w.production = {1.0, 0.1, 2.0};
    w.consumption = {10.0, 0.5, 10.0};
    out.push_back({"fig2-triangle", std::move(g), std::move(w)});
  }
  {
    // Shared hub: three producers, one hub, one consumer, all cross edges.
    Graph g = BuildGraph(5, {{0, 3}, {1, 3}, {2, 3}, {3, 4},
                             {0, 4}, {1, 4}, {2, 4}})
                  .ValueOrDie();
    Workload w = UniformWorkload(5, 1.0, 2.5);
    out.push_back({"shared-hub", std::move(g), std::move(w)});
  }
  {
    // Two competing hubs for the same cross edges.
    Graph g = BuildGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 3}})
                  .ValueOrDie();
    Workload w = UniformWorkload(4, 1.0, 3.0);
    out.push_back({"two-hubs", std::move(g), std::move(w)});
  }
  // Random small graphs with random rates.
  Rng rng(2024);
  for (int i = 0; i < 6; ++i) {
    Graph g = GenerateErdosRenyi(5, 10, 100 + i).ValueOrDie();
    Workload w;
    for (int u = 0; u < 5; ++u) {
      w.production.push_back(0.2 + 3.0 * rng.UniformDouble());
      w.consumption.push_back(0.2 + 6.0 * rng.UniformDouble());
    }
    out.push_back({"random-" + std::to_string(i), std::move(g), std::move(w)});
  }
  return out;
}

class OptimalityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OptimalityTest, AlgorithmsBracketTheOptimum) {
  Instance inst = std::move(SmallInstances()[GetParam()]);
  SCOPED_TRACE(inst.name);
  const double opt = OptimalDisseminationCost(inst.graph, inst.workload);
  const double ff = HybridCost(inst.graph, inst.workload);

  Schedule cc = RunChitChat(inst.graph, inst.workload).ValueOrDie();
  double cc_cost = ScheduleCost(inst.graph, inst.workload, cc, ResidualPolicy::kFree);
  auto pn = RunParallelNosy(inst.graph, inst.workload).ValueOrDie();

  // Sanity: the optimum is feasible and no worse than FF (FF is feasible).
  EXPECT_LE(opt, ff + 1e-9);

  // No algorithm may beat the exhaustive optimum...
  EXPECT_GE(cc_cost, opt - 1e-9);
  EXPECT_GE(pn.final_cost, opt - 1e-9);
  // ...and none may exceed the FF baseline.
  EXPECT_LE(cc_cost, ff + 1e-9);
  EXPECT_LE(pn.final_cost, ff + 1e-9);

  // Quality: on these tiny instances the greedy should be near-optimal.
  // (The formal guarantee is O(log n); 2x is a generous practical bound.)
  EXPECT_LE(cc_cost, 2.0 * opt + 1e-9) << "CHITCHAT far from optimum";
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, OptimalityTest,
                         ::testing::Range<size_t>(0, 9));

TEST(OptimalityFixtureTest, Fig2OptimumIsTheHub) {
  // On the Figure 2 triangle with the quickstart's rates, the optimum is
  // push Art->Charlie (1.0) + pull Charlie->Billie (0.5) = 1.5, and CHITCHAT
  // attains it exactly.
  Graph g = BuildGraph(3, {{0, 2}, {2, 1}, {0, 1}}).ValueOrDie();
  Workload w;
  w.production = {1.0, 0.1, 2.0};
  w.consumption = {10.0, 0.5, 10.0};
  EXPECT_NEAR(OptimalDisseminationCost(g, w), 1.5, 1e-9);
  Schedule cc = RunChitChat(g, w).ValueOrDie();
  EXPECT_NEAR(ScheduleCost(g, w, cc, ResidualPolicy::kFree), 1.5, 1e-9);
}

TEST(OptimalityFixtureTest, NoTriangleMeansOptimumIsFF) {
  // Without 2-paths closed by cross edges, piggybacking cannot help, so the
  // DISSEMINATION optimum equals the hybrid baseline.
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}).ValueOrDie();
  Workload w = UniformWorkload(4, 1.3, 2.7);
  EXPECT_NEAR(OptimalDisseminationCost(g, w), HybridCost(g, w), 1e-9);
}

}  // namespace
}  // namespace piggy
