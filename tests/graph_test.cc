#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace piggy {
namespace {

Graph Triangle() {
  // The paper's Figure 2: Art(0) -> Charlie(2), Charlie -> Billie(1),
  // Art -> Billie.
  GraphBuilder b;
  b.AddEdge(0, 2);
  b.AddEdge(2, 1);
  b.AddEdge(0, 1);
  return std::move(b).Build().ValueOrDie();
}

TEST(EdgeKeyTest, RoundTrip) {
  Edge e{123456, 654321};
  EXPECT_EQ(EdgeFromKey(EdgeKey(e)), e);
  EXPECT_EQ(EdgeKey(0, 0), 0u);
  EXPECT_NE(EdgeKey(1, 2), EdgeKey(2, 1));
}

TEST(GraphBuilderTest, EmptyGraph) {
  Graph g = GraphBuilder().Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, SelfLoopsIgnored) {
  GraphBuilder b;
  b.AddEdge(1, 1);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, DuplicatesDeduplicated) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, EnsureNodesAddsIsolated) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNodes(10);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.OutDegree(9), 0u);
  EXPECT_EQ(g.InDegree(9), 0u);
}

TEST(GraphBuilderTest, NodesGrowToMaxId) {
  GraphBuilder b;
  b.AddEdge(3, 7);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 8u);
}

TEST(GraphTest, AdjacencyAndDegrees) {
  Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);  // Art produces for Billie and Charlie
  EXPECT_EQ(g.InDegree(1), 2u);   // Billie follows Art and Charlie
  auto out0 = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(out0.begin(), out0.end()));
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()),
            (std::vector<NodeId>{1, 2}));
  auto in1 = g.InNeighbors(1);
  EXPECT_EQ(std::vector<NodeId>(in1.begin(), in1.end()),
            (std::vector<NodeId>{0, 2}));
}

TEST(GraphTest, HasEdge) {
  Graph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(99, 0));  // out of range is just absent
}

TEST(GraphTest, EdgeIndexRoundTrip) {
  Graph g = Triangle();
  for (size_t i = 0; i < g.num_edges(); ++i) {
    Edge e = g.EdgeAt(i);
    EXPECT_EQ(g.EdgeIndex(e.src, e.dst), i);
  }
  EXPECT_EQ(g.EdgeIndex(1, 0), g.num_edges());  // absent
}

TEST(GraphTest, EdgesCanonicalOrder) {
  Graph g = Triangle();
  std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 1}));
}

TEST(GraphTest, ForEachEdgeMatchesEdges) {
  Graph g = Triangle();
  std::vector<Edge> collected;
  g.ForEachEdge([&collected](const Edge& e) { collected.push_back(e); });
  EXPECT_EQ(collected, g.Edges());
}

TEST(GraphTest, InOutConsistency) {
  // Every out-edge must appear as an in-edge and vice versa.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(0, 2);
  b.AddEdge(3, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  size_t in_sum = 0, out_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_sum += g.OutDegree(u);
    in_sum += g.InDegree(u);
    for (NodeId v : g.OutNeighbors(u)) {
      auto in_v = g.InNeighbors(v);
      EXPECT_TRUE(std::binary_search(in_v.begin(), in_v.end(), u));
    }
  }
  EXPECT_EQ(in_sum, g.num_edges());
  EXPECT_EQ(out_sum, g.num_edges());
}

TEST(GraphTest, CanonicalEdgeIndexAccessors) {
  // Both O(1) accessors must agree with the binary-search EdgeIndex for
  // every edge, addressed from either adjacency direction.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(0, 2);
  b.AddEdge(3, 1);
  b.AddEdge(3, 2);
  Graph g = std::move(b).Build().ValueOrDie();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto out = g.OutNeighbors(u);
    for (size_t k = 0; k < out.size(); ++k) {
      EXPECT_EQ(g.OutEdgeCanonicalIndex(u, k), g.EdgeIndex(u, out[k]));
    }
    auto in = g.InNeighbors(u);
    for (size_t k = 0; k < in.size(); ++k) {
      EXPECT_EQ(g.InEdgeCanonicalIndex(u, k), g.EdgeIndex(in[k], u));
    }
  }
}

// ---------------------------------------------------------------- intersect

std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  ForEachSortedIntersection(
      std::span<const NodeId>(a), std::span<const NodeId>(b),
      [&out](NodeId v, size_t, size_t) { out.push_back(v); });
  return out;
}

TEST(SortedIntersectionTest, MatchesStdSetIntersection) {
  // Random sorted sets across a range of size skews, so both the two-pointer
  // merge and the galloping path (ratio >= kGallopIntersectRatio) run.
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t na = 1 + rng.Uniform(40);
    const size_t nb = 1 + rng.Uniform(trial % 2 == 0 ? 40 : 2000);
    std::set<NodeId> sa, sb;
    while (sa.size() < na) sa.insert(static_cast<NodeId>(rng.Uniform(4000)));
    while (sb.size() < nb) sb.insert(static_cast<NodeId>(rng.Uniform(4000)));
    std::vector<NodeId> a(sa.begin(), sa.end()), b(sb.begin(), sb.end());
    std::vector<NodeId> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(Intersect(a, b), expected) << "trial " << trial;
    EXPECT_EQ(Intersect(b, a), expected) << "trial " << trial << " (swapped)";
  }
}

TEST(SortedIntersectionTest, ReportsPositionsAndStops) {
  const std::vector<NodeId> a{1, 5, 9, 12};
  const std::vector<NodeId> b{0, 5, 7, 9, 20};
  std::vector<std::tuple<NodeId, size_t, size_t>> hits;
  ForEachSortedIntersection(std::span<const NodeId>(a), std::span<const NodeId>(b),
                            [&hits](NodeId v, size_t ia, size_t ib) {
                              hits.emplace_back(v, ia, ib);
                            });
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], std::make_tuple(NodeId{5}, size_t{1}, size_t{1}));
  EXPECT_EQ(hits[1], std::make_tuple(NodeId{9}, size_t{2}, size_t{3}));

  // A bool-returning callback stops the scan on false.
  size_t seen = 0;
  ForEachSortedIntersection(std::span<const NodeId>(a), std::span<const NodeId>(b),
                            [&seen](NodeId, size_t, size_t) {
                              ++seen;
                              return false;
                            });
  EXPECT_EQ(seen, 1u);
}

TEST(SortedIntersectionTest, GallopPathReportsPositions) {
  // Size ratio >= kGallopIntersectRatio forces the galloping branch; the
  // (ia, ib) mapping must survive the internal small/large swap in both
  // argument orders. CHITCHAT keys coverage bitmaps off these positions.
  std::vector<NodeId> small{7, 64, 130};
  std::vector<NodeId> big;
  for (NodeId v = 0; v < 100; ++v) big.push_back(2 * v);  // 0, 2, ..., 198
  ASSERT_GE(big.size(), kGallopIntersectRatio * small.size());

  std::vector<std::tuple<NodeId, size_t, size_t>> hits;
  auto record = [&hits](NodeId v, size_t ia, size_t ib) {
    hits.emplace_back(v, ia, ib);
  };
  ForEachSortedIntersection(std::span<const NodeId>(small),
                            std::span<const NodeId>(big), record);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], std::make_tuple(NodeId{64}, size_t{1}, size_t{32}));
  EXPECT_EQ(hits[1], std::make_tuple(NodeId{130}, size_t{2}, size_t{65}));

  hits.clear();
  ForEachSortedIntersection(std::span<const NodeId>(big),
                            std::span<const NodeId>(small), record);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], std::make_tuple(NodeId{64}, size_t{32}, size_t{1}));
  EXPECT_EQ(hits[1], std::make_tuple(NodeId{130}, size_t{65}, size_t{2}));
}

TEST(SortedIntersectionTest, EmptyAndDisjointSpans) {
  EXPECT_TRUE(Intersect({}, {1, 2, 3}).empty());
  EXPECT_TRUE(Intersect({1, 2, 3}, {}).empty());
  EXPECT_TRUE(Intersect({1, 3}, {2, 4}).empty());
  // Skewed disjoint pair exercises the gallop fall-through.
  std::vector<NodeId> big;
  for (NodeId v = 100; v < 600; v += 2) big.push_back(v);
  EXPECT_TRUE(Intersect({1, 3, 5}, big).empty());
  EXPECT_EQ(Intersect({104, 105, 200}, big), (std::vector<NodeId>{104, 200}));
}

TEST(BuildGraphTest, FromEdgeList) {
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {0, 1}}).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace piggy
