#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace piggy {
namespace {

Graph Triangle() {
  // The paper's Figure 2: Art(0) -> Charlie(2), Charlie -> Billie(1),
  // Art -> Billie.
  GraphBuilder b;
  b.AddEdge(0, 2);
  b.AddEdge(2, 1);
  b.AddEdge(0, 1);
  return std::move(b).Build().ValueOrDie();
}

TEST(EdgeKeyTest, RoundTrip) {
  Edge e{123456, 654321};
  EXPECT_EQ(EdgeFromKey(EdgeKey(e)), e);
  EXPECT_EQ(EdgeKey(0, 0), 0u);
  EXPECT_NE(EdgeKey(1, 2), EdgeKey(2, 1));
}

TEST(GraphBuilderTest, EmptyGraph) {
  Graph g = GraphBuilder().Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, SelfLoopsIgnored) {
  GraphBuilder b;
  b.AddEdge(1, 1);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, DuplicatesDeduplicated) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddEdge(0, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, EnsureNodesAddsIsolated) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNodes(10);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.OutDegree(9), 0u);
  EXPECT_EQ(g.InDegree(9), 0u);
}

TEST(GraphBuilderTest, NodesGrowToMaxId) {
  GraphBuilder b;
  b.AddEdge(3, 7);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 8u);
}

TEST(GraphTest, AdjacencyAndDegrees) {
  Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);  // Art produces for Billie and Charlie
  EXPECT_EQ(g.InDegree(1), 2u);   // Billie follows Art and Charlie
  auto out0 = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(out0.begin(), out0.end()));
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()),
            (std::vector<NodeId>{1, 2}));
  auto in1 = g.InNeighbors(1);
  EXPECT_EQ(std::vector<NodeId>(in1.begin(), in1.end()),
            (std::vector<NodeId>{0, 2}));
}

TEST(GraphTest, HasEdge) {
  Graph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(99, 0));  // out of range is just absent
}

TEST(GraphTest, EdgeIndexRoundTrip) {
  Graph g = Triangle();
  for (size_t i = 0; i < g.num_edges(); ++i) {
    Edge e = g.EdgeAt(i);
    EXPECT_EQ(g.EdgeIndex(e.src, e.dst), i);
  }
  EXPECT_EQ(g.EdgeIndex(1, 0), g.num_edges());  // absent
}

TEST(GraphTest, EdgesCanonicalOrder) {
  Graph g = Triangle();
  std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 1}));
}

TEST(GraphTest, ForEachEdgeMatchesEdges) {
  Graph g = Triangle();
  std::vector<Edge> collected;
  g.ForEachEdge([&collected](const Edge& e) { collected.push_back(e); });
  EXPECT_EQ(collected, g.Edges());
}

TEST(GraphTest, InOutConsistency) {
  // Every out-edge must appear as an in-edge and vice versa.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(0, 2);
  b.AddEdge(3, 1);
  Graph g = std::move(b).Build().ValueOrDie();
  size_t in_sum = 0, out_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_sum += g.OutDegree(u);
    in_sum += g.InDegree(u);
    for (NodeId v : g.OutNeighbors(u)) {
      auto in_v = g.InNeighbors(v);
      EXPECT_TRUE(std::binary_search(in_v.begin(), in_v.end(), u));
    }
  }
  EXPECT_EQ(in_sum, g.num_edges());
  EXPECT_EQ(out_sum, g.num_edges());
}

TEST(BuildGraphTest, FromEdgeList) {
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {0, 1}}).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace piggy
