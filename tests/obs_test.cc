// Tests for src/obs: histogram bucket math (incl. under/overflow),
// percentile interpolation error bounds vs the exact nearest-rank helper,
// exactness of striped counters/histograms under a concurrent storm (the CI
// TSan lane runs this suite), trace-ring wraparound semantics, and the JSON
// export schema.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/percentile.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace piggy {
namespace obs {
namespace {

TEST(PercentileTest, NearestRankMatchesSortedIndex) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(NearestRankPercentile(v, 0.0), 1);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(v, 0.5), 3);   // idx 2 of sorted
  EXPECT_DOUBLE_EQ(NearestRankPercentile(v, 0.99), 5);  // idx 4 clamped
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(NearestRankPercentile(empty, 0.5), 0);
}

TEST(HistogramTest, BucketIndexLayout) {
  // 4 buckets over [1, 16): ratio 2, boundaries 1,2,4,8,16.
  Histogram h(1.0, 16.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_ratio(), 2.0);
  EXPECT_EQ(h.BucketIndex(0.5), 0u);    // underflow
  EXPECT_EQ(h.BucketIndex(1.0), 1u);
  EXPECT_EQ(h.BucketIndex(1.9), 1u);
  EXPECT_EQ(h.BucketIndex(2.0), 2u);
  EXPECT_EQ(h.BucketIndex(7.9), 3u);
  EXPECT_EQ(h.BucketIndex(8.0), 4u);
  EXPECT_EQ(h.BucketIndex(15.9), 4u);
  EXPECT_EQ(h.BucketIndex(16.0), 5u);   // overflow
  EXPECT_EQ(h.BucketIndex(1e9), 5u);
  EXPECT_DOUBLE_EQ(h.SlotLowerBound(1), 1.0);
  EXPECT_DOUBLE_EQ(h.SlotLowerBound(4), 8.0);
  EXPECT_DOUBLE_EQ(h.SlotLowerBound(5), 16.0);
}

TEST(HistogramTest, UnderOverflowCounted) {
  Histogram h(1.0, 16.0, 4);
  h.Record(0.25);
  h.Record(0.5);
  h.Record(3.0);
  h.Record(100.0);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 103.75);
  const std::vector<uint64_t> slots = h.MergedSlots();
  EXPECT_EQ(slots[0], 2u);  // underflow
  EXPECT_EQ(slots[2], 1u);  // [2, 4)
  EXPECT_EQ(slots[5], 1u);  // overflow
  // Percentiles clamp to the histogram range on the extreme buckets.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 16.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h(1.0, 16.0, 4);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

// The interpolated percentile must land in the same bucket as the exact
// nearest-rank statistic, i.e. within one (geometric) bucket width.
TEST(HistogramTest, PercentileWithinOneBucketOfExact) {
  Histogram h(0.5, 1e6, 96);
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform latencies across four decades, like real op latencies.
    const double v = std::exp(rng.UniformDouble() * std::log(1e5)) * 0.8;
    samples.push_back(v);
    h.Record(v);
  }
  for (double q : {0.5, 0.95, 0.99}) {
    std::vector<double> copy = samples;
    const double exact = NearestRankPercentile(copy, q);
    const double est = h.Percentile(q);
    EXPECT_LE(est, exact * h.bucket_ratio() * (1 + 1e-9)) << "q=" << q;
    EXPECT_GE(est, exact / h.bucket_ratio() * (1 - 1e-9)) << "q=" << q;
  }
}

TEST(CounterTest, ConcurrentIncrementsExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, ConcurrentRecordsExact) {
  Histogram h(0.5, 1e6, 64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0 + rng.UniformDouble() * 100.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t slot_total = 0;
  for (uint64_t s : h.MergedSlots()) slot_total += s;
  EXPECT_EQ(slot_total, h.Count());
  // All samples are inside [1, 101]: nothing under/overflowed.
  const std::vector<uint64_t> slots = h.MergedSlots();
  EXPECT_EQ(slots.front(), 0u);
  EXPECT_EQ(slots.back(), 0u);
}

TEST(RegistryTest, SameNameSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("requests");
  Counter& b = reg.GetCounter("requests");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
  Histogram& h1 = reg.GetHistogram("lat", 1.0, 16.0, 4);
  Histogram& h2 = reg.GetHistogram("lat");  // sizing ignored after creation
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.num_buckets(), 4u);
  EXPECT_EQ(reg.FindCounter("requests"), &a);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
}

TEST(RegistryTest, JsonAndTextExport) {
  MetricsRegistry reg;
  reg.GetCounter("ops").Add(42);
  reg.GetGauge("imbalance").Set(1.5);
  Histogram& h = reg.GetHistogram("lat_us", 1.0, 1024.0, 10);
  h.Record(8.0);
  h.Record(8.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"ops\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"imbalance\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat_us\":{\"count\":2"), std::string::npos) << json;
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("ops"), std::string::npos);
  EXPECT_NE(text.find("lat_us"), std::string::npos);
}

TEST(TraceLogTest, RecordsInstantsAndSpans) {
  TraceLog log(16);
  log.Instant(TraceEventKind::kShardKill, /*shard=*/2, {{"reason", "test"}});
  const double start = log.NowUs();
  log.Span(TraceEventKind::kReplanCommit, start, /*shard=*/0,
           {{"planner", "chitchat"}});
  const std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kShardKill);
  EXPECT_EQ(events[0].shard, 2);
  EXPECT_EQ(events[0].dur_us, 0);
  EXPECT_EQ(events[0].name, "shard_kill");  // defaults to the kind name
  EXPECT_EQ(events[1].kind, TraceEventKind::kReplanCommit);
  EXPECT_GE(events[1].dur_us, 0);
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "planner");
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLogTest, RingWrapsDroppingOldest) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Instant(TraceEventKind::kEpoch, -1, {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(log.dropped(), 6u);
  const std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and the oldest six were dropped: 6, 7, 8, 9 remain.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].args[0].second,
              std::to_string(i + 6));
  }
}

TEST(TraceLogTest, ConcurrentEmitKeepsEveryEventAccounted) {
  TraceLog log(128);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Instant(TraceEventKind::kEpoch);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.Events().size(), 128u);
  EXPECT_EQ(log.dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread - 128u);
}

TEST(TraceLogTest, JsonHasBothViewsAndEscapes) {
  TraceLog log(8);
  log.Instant(TraceEventKind::kTriggerFire, 1, {{"watch", "imbalance\"x\""}});
  const double start = log.NowUs();
  log.Span(TraceEventKind::kRecovery, start, 0, {{"wal_records", "19000"}});
  const std::string json = log.ToJson();
  // Typed view: stable kind names, shard, args.
  EXPECT_NE(json.find("\"kind\":\"trigger_fire\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"watch\":\"imbalance\\\"x\\\"\""), std::string::npos);
  // Chrome view: instants are ph:"i", spans ph:"X".
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST(TraceLogTest, JsonRoundTripThroughEvents) {
  // TraceToJson over a copied Events() vector matches ToJson exactly: the
  // export is a pure function of (events, dropped).
  TraceLog log(8);
  log.Instant(TraceEventKind::kMigrationBegin, 3, {{"users", "12"}});
  EXPECT_EQ(log.ToJson(), TraceToJson(log.Events(), log.dropped()));
}

TEST(RunReportTest, RendersTimelineAndTotals) {
  TraceLog log(32);
  log.Instant(TraceEventKind::kEpoch, -1, {{"epoch", "0"}});
  log.Instant(TraceEventKind::kShardKill, 1);
  const double start = log.NowUs();
  log.Span(TraceEventKind::kReplanCommit, start, 0, {{"cost", "12.5"}});
  const std::string report = RenderRunReport(log);
  EXPECT_NE(report.find("epoch=0"), std::string::npos) << report;
  EXPECT_NE(report.find("shard 1"), std::string::npos);
  EXPECT_NE(report.find("replan_commit"), std::string::npos);
  EXPECT_NE(report.find("epoch=1"), std::string::npos)
      << "summary should count one epoch event: " << report;
}

}  // namespace
}  // namespace obs
}  // namespace piggy
