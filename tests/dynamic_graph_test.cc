#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "util/rng.h"

namespace piggy {
namespace {

TEST(DynamicGraphTest, AddAndRemoveEdges) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));  // duplicate
  EXPECT_FALSE(g.AddEdge(1, 1));  // self-loop
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraphTest, AdjacencyStaysSorted) {
  DynamicGraph g(5);
  g.AddEdge(0, 3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 4);
  g.AddEdge(0, 2);
  auto out = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 4u);
}

TEST(DynamicGraphTest, InNeighborsTracked) {
  DynamicGraph g(4);
  g.AddEdge(1, 0);
  g.AddEdge(2, 0);
  g.AddEdge(3, 0);
  auto in = g.InNeighbors(0);
  EXPECT_EQ(in.size(), 3u);
  g.RemoveEdge(2, 0);
  in = g.InNeighbors(0);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_FALSE(std::binary_search(in.begin(), in.end(), NodeId{2}));
}

TEST(DynamicGraphTest, AddNodeAndEnsureNodes) {
  DynamicGraph g(2);
  EXPECT_EQ(g.AddNode(), 2u);
  EXPECT_EQ(g.num_nodes(), 3u);
  g.EnsureNodes(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  g.EnsureNodes(5);  // never shrinks
  EXPECT_EQ(g.num_nodes(), 10u);
}

TEST(DynamicGraphTest, FromImmutableGraph) {
  Graph source = GenerateErdosRenyi(50, 300, 7).ValueOrDie();
  DynamicGraph dyn(source);
  EXPECT_EQ(dyn.num_nodes(), source.num_nodes());
  EXPECT_EQ(dyn.num_edges(), source.num_edges());
  source.ForEachEdge(
      [&dyn](const Edge& e) { EXPECT_TRUE(dyn.HasEdge(e.src, e.dst)); });
}

TEST(DynamicGraphTest, SnapshotRoundTrip) {
  Graph source = GenerateErdosRenyi(40, 200, 11).ValueOrDie();
  DynamicGraph dyn(source);
  Graph snap = dyn.Snapshot().ValueOrDie();
  EXPECT_EQ(snap.num_nodes(), source.num_nodes());
  EXPECT_EQ(snap.num_edges(), source.num_edges());
  EXPECT_EQ(snap.Edges(), source.Edges());
}

TEST(DynamicGraphTest, SnapshotAfterChurn) {
  DynamicGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.RemoveEdge(1, 2);
  g.AddEdge(3, 4);
  Graph snap = g.Snapshot().ValueOrDie();
  EXPECT_EQ(snap.num_edges(), 3u);
  EXPECT_TRUE(snap.HasEdge(0, 1));
  EXPECT_FALSE(snap.HasEdge(1, 2));
}

// Differential churn test against a simple reference.
TEST(DynamicGraphTest, DifferentialChurn) {
  DynamicGraph g(20);
  std::set<std::pair<NodeId, NodeId>> ref;
  Rng rng(5);
  for (int op = 0; op < 20000; ++op) {
    NodeId u = static_cast<NodeId>(rng.Uniform(20));
    NodeId v = static_cast<NodeId>(rng.Uniform(20));
    if (rng.Bernoulli(0.6)) {
      bool fresh = u != v && ref.emplace(u, v).second;
      EXPECT_EQ(g.AddEdge(u, v), fresh);
    } else {
      bool present = ref.erase({u, v}) > 0;
      EXPECT_EQ(g.RemoveEdge(u, v), present);
    }
    EXPECT_EQ(g.num_edges(), ref.size());
  }
  for (const auto& [u, v] : ref) EXPECT_TRUE(g.HasEdge(u, v));
}

TEST(DynamicGraphTest, ForEachEdgeCanonicalOrder) {
  DynamicGraph g(4);
  g.AddEdge(2, 1);
  g.AddEdge(0, 3);
  g.AddEdge(0, 1);
  std::vector<Edge> edges;
  g.ForEachEdge([&edges](const Edge& e) { edges.push_back(e); });
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_EQ(edges.size(), 3u);
}

}  // namespace
}  // namespace piggy
