#include <gtest/gtest.h>

#include <tuple>

#include "core/baselines.h"
#include "core/cost_model.h"
#include "core/parallel_nosy.h"
#include "core/validator.h"
#include "gen/generators.h"
#include "gen/presets.h"
#include "graph/graph_builder.h"
#include "workload/workload.h"

namespace piggy {
namespace {

Graph PaperTriangle() {
  return BuildGraph(3, {{0, 2}, {2, 1}, {0, 1}}).ValueOrDie();
}

// Compares two schedules entry-by-entry.
void ExpectSameSchedule(const Graph& g, const Schedule& a, const Schedule& b) {
  EXPECT_EQ(a.push_size(), b.push_size());
  EXPECT_EQ(a.pull_size(), b.pull_size());
  EXPECT_EQ(a.hub_covered_size(), b.hub_covered_size());
  g.ForEachEdge([&](const Edge& e) {
    EXPECT_EQ(a.IsPush(e.src, e.dst), b.IsPush(e.src, e.dst))
        << e.src << "->" << e.dst;
    EXPECT_EQ(a.IsPull(e.src, e.dst), b.IsPull(e.src, e.dst))
        << e.src << "->" << e.dst;
    EXPECT_EQ(a.HubFor(e.src, e.dst), b.HubFor(e.src, e.dst))
        << e.src << "->" << e.dst;
  });
}

TEST(ParallelNosyTest, TrianglePiggybacksWhenProfitable) {
  Graph g = PaperTriangle();
  Workload w;
  w.production = {1.0, 0.1, 1.0};
  w.consumption = {10.0, 0.5, 10.0};
  // Candidate for hub edge 2->1 with X = {0}: saved = c*(0->1) = 0.5;
  // cost = push(0->2): 1 - min(1,10) = 0, pull(2->1): 0.5 - 0.5 = 0 => gain 0.5.
  auto result = RunParallelNosy(g, w).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(ValidateSchedule(g, result.schedule).ok());
  EXPECT_TRUE(result.schedule.IsPush(0, 2));
  EXPECT_TRUE(result.schedule.IsPull(2, 1));
  EXPECT_TRUE(result.schedule.IsHubCovered(0, 1));
  EXPECT_NEAR(result.final_cost, 1.5, 1e-9);
  EXPECT_LT(result.final_cost, result.hybrid_cost);
}

TEST(ParallelNosyTest, NoCandidateMeansImmediateConvergence) {
  Graph g = BuildGraph(3, {{0, 1}, {1, 2}}).ValueOrDie();  // no triangles
  Workload w = UniformWorkload(3, 1.0, 5.0);
  auto result = RunParallelNosy(g, w).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations.size(), 1u);
  EXPECT_EQ(result.iterations[0].candidates, 0u);
  EXPECT_NEAR(result.final_cost, result.hybrid_cost, 1e-9);
}

TEST(ParallelNosyTest, SequentialAndMapReduceAgree) {
  for (uint64_t seed : {1, 2, 3}) {
    Graph g = MakeFlickrLike(500, seed).ValueOrDie();
    Workload w = GenerateWorkload(g, {}).ValueOrDie();
    ParallelNosyOptions seq;
    seq.use_mapreduce = false;
    ParallelNosyOptions par;
    par.use_mapreduce = true;
    par.num_threads = 7;  // odd thread count to stress determinism
    auto a = RunParallelNosy(g, w, seq).ValueOrDie();
    auto b = RunParallelNosy(g, w, par).ValueOrDie();
    EXPECT_EQ(a.iterations.size(), b.iterations.size());
    for (size_t i = 0; i < a.iterations.size(); ++i) {
      EXPECT_EQ(a.iterations[i].candidates, b.iterations[i].candidates);
      EXPECT_EQ(a.iterations[i].applied, b.iterations[i].applied);
      EXPECT_NEAR(a.iterations[i].cost_after, b.iterations[i].cost_after, 1e-6);
    }
    EXPECT_NEAR(a.final_cost, b.final_cost, 1e-6);
    ExpectSameSchedule(g, a.schedule, b.schedule);
  }
}

TEST(ParallelNosyTest, IterationCostsAreMonotone) {
  Graph g = MakeTwitterLike(800, 4).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  auto result = RunParallelNosy(g, w).ValueOrDie();
  double prev = result.hybrid_cost;
  for (const auto& it : result.iterations) {
    EXPECT_LE(it.cost_after, prev + 1e-6) << it.ToString();
    prev = it.cost_after;
  }
  EXPECT_LE(result.final_cost, result.hybrid_cost + 1e-6);
}

TEST(ParallelNosyTest, ConvergesAndStopsEarly) {
  Graph g = MakeFlickrLike(400, 6).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  ParallelNosyOptions opt;
  opt.max_iterations = 50;
  auto result = RunParallelNosy(g, w, opt).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations.size(), 50u);
  // Last iteration applied nothing.
  EXPECT_EQ(result.iterations.back().applied, 0u);
}

TEST(ParallelNosyTest, FinalizedScheduleIsValid) {
  Graph g = MakeFlickrLike(300, 8).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  auto result = RunParallelNosy(g, w).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, result.schedule).ok());
}

TEST(ParallelNosyTest, UnfinalizedLeavesResidualToHybrid) {
  Graph g = MakeFlickrLike(300, 8).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  ParallelNosyOptions opt;
  opt.finalize_hybrid = false;
  auto result = RunParallelNosy(g, w, opt).ValueOrDie();
  // Not fully assigned, but valid under allow_unassigned (hybrid at run time)
  // and costs identical to the finalized run.
  EXPECT_FALSE(ValidateSchedule(g, result.schedule).ok());
  EXPECT_TRUE(
      ValidateSchedule(g, result.schedule, {.allow_unassigned = true}).ok());
  auto finalized = RunParallelNosy(g, w).ValueOrDie();
  EXPECT_NEAR(result.final_cost, finalized.final_cost, 1e-9);
}

TEST(ParallelNosyTest, MinGainThresholdReducesCandidates) {
  Graph g = MakeFlickrLike(400, 10).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  auto base = RunParallelNosy(g, w).ValueOrDie();
  ParallelNosyOptions strict;
  strict.min_gain = 1.0;  // only strongly profitable hubs
  auto filtered = RunParallelNosy(g, w, strict).ValueOrDie();
  EXPECT_LE(filtered.iterations[0].candidates, base.iterations[0].candidates);
  EXPECT_TRUE(ValidateSchedule(g, filtered.schedule).ok());
}

TEST(ParallelNosyTest, CrossEdgeCapBoundsHubSize) {
  Graph g = MakeTwitterLike(400, 12).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  ParallelNosyOptions capped;
  capped.max_hub_producers = 2;
  auto result = RunParallelNosy(g, w, capped).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, result.schedule).ok());
  // Capping loses opportunities but never validity or FF-dominance.
  EXPECT_LE(result.final_cost, result.hybrid_cost + 1e-6);
  auto uncapped = RunParallelNosy(g, w).ValueOrDie();
  EXPECT_LE(uncapped.final_cost, result.final_cost + 1e-6);
}

TEST(ParallelNosyTest, RandomizedTieBreakStillValid) {
  Graph g = MakeFlickrLike(300, 14).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  ParallelNosyOptions opt;
  opt.randomized_tie_break = true;
  auto result = RunParallelNosy(g, w, opt).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, result.schedule).ok());
  EXPECT_LE(result.final_cost, result.hybrid_cost + 1e-6);
}

TEST(ParallelNosyTest, InvalidOptionsRejected) {
  Graph g = PaperTriangle();
  Workload w = UniformWorkload(3, 1, 1);
  ParallelNosyOptions bad;
  bad.max_hub_producers = 0;
  EXPECT_FALSE(RunParallelNosy(g, w, bad).ok());
  Workload mismatched = UniformWorkload(2, 1, 1);
  EXPECT_FALSE(RunParallelNosy(g, mismatched).ok());
}

// Hub covers must never chain: a pull edge w->y that supports covers cannot
// itself be covered through another hub (Theorem 1 allows only 2-hop paths).
TEST(ParallelNosyTest, NoChainedCovers) {
  Graph g = MakeTwitterLike(600, 16).ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  auto result = RunParallelNosy(g, w).ValueOrDie();
  result.schedule.ForEachHubCover([&](const Edge& e, NodeId hub) {
    EXPECT_TRUE(result.schedule.IsPush(e.src, hub));
    EXPECT_TRUE(result.schedule.IsPull(hub, e.dst));
    EXPECT_FALSE(result.schedule.IsHubCovered(e.src, hub));
    EXPECT_FALSE(result.schedule.IsHubCovered(hub, e.dst));
  });
}

// Property sweep across read/write ratios and seeds.
class NosyPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(NosyPropertyTest, ValidMonotoneAndFFDominant) {
  auto [ratio, seed] = GetParam();
  Graph g = GenerateSocialNetwork({.num_nodes = 300, .edges_per_node = 7}, seed)
                .ValueOrDie();
  Workload w = GenerateWorkload(g, {.read_write_ratio = ratio}).ValueOrDie();
  auto result = RunParallelNosy(g, w).ValueOrDie();
  EXPECT_TRUE(ValidateSchedule(g, result.schedule).ok());
  EXPECT_LE(result.final_cost, result.hybrid_cost + 1e-6);
  double prev = result.hybrid_cost;
  for (const auto& it : result.iterations) {
    EXPECT_LE(it.cost_after, prev + 1e-6);
    prev = it.cost_after;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndSeeds, NosyPropertyTest,
    ::testing::Combine(::testing::Values(1.0, 5.0, 25.0, 100.0),
                       ::testing::Values<uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace piggy
