#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "gen/generators.h"
#include "gen/presets.h"
#include "workload/workload.h"

namespace piggy {
namespace {

TEST(WorkloadTest, UniformWorkload) {
  Workload w = UniformWorkload(10, 2.0, 6.0);
  EXPECT_EQ(w.num_users(), 10u);
  EXPECT_DOUBLE_EQ(w.rp(3), 2.0);
  EXPECT_DOUBLE_EQ(w.rc(7), 6.0);
  EXPECT_DOUBLE_EQ(w.TotalProduction(), 20.0);
  EXPECT_DOUBLE_EQ(w.TotalConsumption(), 60.0);
  EXPECT_DOUBLE_EQ(w.ReadWriteRatio(), 3.0);
}

TEST(WorkloadTest, ReadWriteRatioIsHonored) {
  Graph g = MakeFlickrLike(2000, 1).ValueOrDie();
  for (double ratio : {1.0, 5.0, 20.0, 100.0}) {
    Workload w = GenerateWorkload(g, {.read_write_ratio = ratio}).ValueOrDie();
    EXPECT_NEAR(w.ReadWriteRatio(), ratio, 1e-9);
  }
}

TEST(WorkloadTest, MeanProductionIsHonored) {
  Graph g = MakeFlickrLike(1000, 2).ValueOrDie();
  Workload w = GenerateWorkload(g, {.read_write_ratio = 5.0,
                                    .mean_production = 3.0})
                   .ValueOrDie();
  EXPECT_NEAR(w.TotalProduction() / static_cast<double>(g.num_nodes()), 3.0, 1e-9);
}

TEST(WorkloadTest, RatesFollowDegrees) {
  // Paper Sec 4.1 (Huberman et al.): production grows with followers
  // (out-degree), consumption with followees (in-degree).
  Graph g = GenerateStar(10, 0).ValueOrDie();  // node 0 has 9 followers
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  for (NodeId u = 1; u < 10; ++u) {
    EXPECT_GT(w.rp(0), w.rp(u));
    EXPECT_GT(w.rc(u), w.rc(0));
  }
}

TEST(WorkloadTest, LogarithmicDamping) {
  // Doubling degree should much-less-than-double the rate.
  GraphBuilder b;
  for (NodeId v = 1; v <= 4; ++v) b.AddEdge(0, v);       // node 0: 4 followers
  for (NodeId v = 5; v <= 12; ++v) b.AddEdge(13, v);     // node 13: 8 followers
  Graph g = std::move(b).Build().ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  EXPECT_LT(w.rp(13) / w.rp(0), 2.0);
  EXPECT_GT(w.rp(13), w.rp(0));
}

TEST(WorkloadTest, IsolatedNodesHaveZeroRates) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNodes(3);
  Graph g = std::move(b).Build().ValueOrDie();
  Workload w = GenerateWorkload(g, {}).ValueOrDie();
  EXPECT_DOUBLE_EQ(w.rp(2), 0.0);
  EXPECT_DOUBLE_EQ(w.rc(2), 0.0);
  EXPECT_GT(w.rp(0), 0.0);  // has a follower
  EXPECT_GT(w.rc(1), 0.0);  // follows someone
}

TEST(WorkloadTest, MinRateFloorsIsolatedNodes) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNodes(3);
  Graph g = std::move(b).Build().ValueOrDie();
  Workload w = GenerateWorkload(g, {.min_rate = 0.01}).ValueOrDie();
  EXPECT_GT(w.rp(2), 0.0);
  EXPECT_GT(w.rc(2), 0.0);
}

TEST(WorkloadTest, InvalidOptionsRejected) {
  Graph g = GenerateCycle(5).ValueOrDie();
  EXPECT_FALSE(GenerateWorkload(g, {.read_write_ratio = 0}).ok());
  EXPECT_FALSE(GenerateWorkload(g, {.read_write_ratio = -1}).ok());
  EXPECT_FALSE(
      GenerateWorkload(g, {.read_write_ratio = 5, .mean_production = 0}).ok());
}

TEST(WorkloadTest, EdgelessGraphRejectedWithoutFloor) {
  GraphBuilder b;
  b.EnsureNodes(5);
  Graph g = std::move(b).Build().ValueOrDie();
  EXPECT_FALSE(GenerateWorkload(g, {}).ok());
  EXPECT_TRUE(GenerateWorkload(g, {.min_rate = 0.1}).ok());
}

TEST(WorkloadTest, DeterministicNoRng) {
  Graph g = MakeTwitterLike(500, 3).ValueOrDie();
  Workload a = GenerateWorkload(g, {}).ValueOrDie();
  Workload b = GenerateWorkload(g, {}).ValueOrDie();
  EXPECT_EQ(a.production, b.production);
  EXPECT_EQ(a.consumption, b.consumption);
}

}  // namespace
}  // namespace piggy
