// End-to-end pipeline tests: generate -> workload -> optimize -> validate ->
// serve -> audit, mirroring the paper's full evaluation loop at small scale.

#include <gtest/gtest.h>

#include "core/piggy.h"

namespace piggy {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = MakeFlickrLike(600, 101).ValueOrDie();
    workload_ = GenerateWorkload(graph_, {.read_write_ratio = 5.0,
                                          .min_rate = 0.05})
                    .ValueOrDie();
  }
  Graph graph_;
  Workload workload_;
};

TEST_F(PipelineTest, CostOrderingAcrossPlanners) {
  auto plan = [this](const char* name) {
    return MakePlanner(name)
        .ValueOrDie()
        ->Plan(graph_, workload_)
        .MoveValueOrDie();
  };
  double ff = HybridCost(graph_, workload_);
  PlanResult push_all = plan("push-all");
  PlanResult pull_all = plan("pull-all");
  PlanResult pn = plan("nosy");
  PlanResult cc = plan("chitchat");

  // FF dominates the naive baselines; piggybacking dominates FF.
  EXPECT_LE(ff, push_all.final_cost + 1e-9);
  EXPECT_LE(ff, pull_all.final_cost + 1e-9);
  EXPECT_LE(pn.final_cost, ff + 1e-6);
  EXPECT_LE(cc.final_cost, ff + 1e-6);
  // On a clustered graph at the reference ratio both must find real savings.
  EXPECT_LT(pn.final_cost, ff * 0.995);
  EXPECT_LT(cc.final_cost, ff * 0.995);
  // CHITCHAT searches a richer hub-graph space than single-consumer
  // PARALLELNOSY (paper Sec. 4.4: "the difference is large").
  EXPECT_LE(cc.final_cost, pn.final_cost * 1.02);
}

TEST_F(PipelineTest, EveryRegisteredPlannerValidatesAndServes) {
  // The full pipeline must work for whatever the registry knows about —
  // the schedule-agnostic serving layer is the paper's core design claim.
  for (const PlannerInfo& info : RegisteredPlanners()) {
    SCOPED_TRACE(info.name);
    PlanResult plan = MakePlanner(info.name)
                          .ValueOrDie()
                          ->Plan(graph_, workload_)
                          .MoveValueOrDie();
    ASSERT_TRUE(ValidateSchedule(graph_, plan.schedule).ok());
    PrototypeOptions opt;
    opt.num_servers = 32;
    opt.view_capacity = 0;  // exact audits
    auto proto = Prototype::Create(graph_, plan.schedule, opt).MoveValueOrDie();
    DriverOptions d;
    d.num_requests = 3000;
    d.audit_every = 20;
    d.seed = 13;
    auto report = RunWorkloadDriver(*proto, workload_, d).ValueOrDie();
    EXPECT_GT(report.audited_queries, 10u);
    EXPECT_GT(report.actual_throughput, 0.0);
  }
}

TEST_F(PipelineTest, PiggybackReducesMessagesOnLargeFleets) {
  // The paper's Fig. 6 claim at small scale: with many servers, PARALLELNOSY
  // should need fewer messages per request than FF on the same traffic.
  Schedule ff = HybridSchedule(graph_, workload_);
  auto pn = RunParallelNosy(graph_, workload_).ValueOrDie();

  PrototypeOptions opt;
  opt.num_servers = 256;  // large fleet: placement co-location is rare
  DriverOptions d;
  d.num_requests = 8000;
  d.seed = 17;

  auto proto_ff = Prototype::Create(graph_, ff, opt).MoveValueOrDie();
  auto report_ff = RunWorkloadDriver(*proto_ff, workload_, d).ValueOrDie();
  auto proto_pn = Prototype::Create(graph_, pn.schedule, opt).MoveValueOrDie();
  auto report_pn = RunWorkloadDriver(*proto_pn, workload_, d).ValueOrDie();

  EXPECT_LT(report_pn.messages_per_request, report_ff.messages_per_request);
  EXPECT_GT(report_pn.actual_throughput, report_ff.actual_throughput);
}

TEST_F(PipelineTest, MeasuredMessagesMatchPlacementCost) {
  // Fig. 7's "striking consistency": measured messages per request should
  // track the placement-aware predicted cost per unit workload.
  Schedule ff = HybridSchedule(graph_, workload_);
  PrototypeOptions opt;
  opt.num_servers = 64;
  HashPartitioner part(opt.num_servers, opt.partition_salt);
  double predicted_cost = PlacementAwareCost(graph_, workload_, ff, part);
  double total_rate = workload_.TotalProduction() + workload_.TotalConsumption();
  double predicted_mpr = predicted_cost / total_rate;

  auto proto = Prototype::Create(graph_, ff, opt).MoveValueOrDie();
  DriverOptions d;
  d.num_requests = 20000;
  d.seed = 23;
  auto report = RunWorkloadDriver(*proto, workload_, d).ValueOrDie();
  EXPECT_NEAR(report.messages_per_request, predicted_mpr,
              predicted_mpr * 0.05);
}

TEST_F(PipelineTest, GraphRoundTripPreservesScheduleCosts) {
  // Persist the graph, reload it, and verify optimization is reproducible.
  std::string path = ::testing::TempDir() + "/pipeline_graph.bin";
  ASSERT_TRUE(WriteGraphBinary(graph_, path).ok());
  Graph reloaded = ReadGraphBinary(path).ValueOrDie();
  Workload w2 = GenerateWorkload(reloaded, {.read_write_ratio = 5.0,
                                            .min_rate = 0.05})
                    .ValueOrDie();
  auto a = RunParallelNosy(graph_, workload_).ValueOrDie();
  auto b = RunParallelNosy(reloaded, w2).ValueOrDie();
  EXPECT_NEAR(a.final_cost, b.final_cost, 1e-9);
  std::remove(path.c_str());
}

TEST_F(PipelineTest, SamplingPreservesOptimizability) {
  // Fig. 9's setup: sample the graph, optimize the sample, gains persist.
  GraphSample sample = BreadthFirstSample(graph_, 3000, 3).ValueOrDie();
  Workload w = GenerateWorkload(sample.graph, {.min_rate = 0.05}).ValueOrDie();
  auto pn = RunParallelNosy(sample.graph, w).ValueOrDie();
  Schedule cc = RunChitChat(sample.graph, w).ValueOrDie();
  double ff = HybridCost(sample.graph, w);
  EXPECT_LE(pn.final_cost, ff + 1e-6);
  EXPECT_LE(ScheduleCost(sample.graph, w, cc, ResidualPolicy::kFree), ff + 1e-6);
}

TEST_F(PipelineTest, DynamicLifecycle) {
  // Optimize, churn, stay valid, re-optimize, improve.
  auto pn = RunParallelNosy(graph_, workload_).ValueOrDie();
  DynamicGraph dyn(graph_);
  Schedule schedule = std::move(pn.schedule);
  IncrementalMaintainer maintainer(&dyn, &schedule, &workload_);

  Rng rng(51);
  for (int i = 0; i < 1000; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(dyn.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.Uniform(dyn.num_nodes()));
    if (u == v) continue;
    if (rng.Bernoulli(0.7)) {
      ASSERT_TRUE(maintainer.AddEdge(u, v).ok());
    } else if (dyn.HasEdge(u, v)) {
      ASSERT_TRUE(maintainer.RemoveEdge(u, v).ok());
    }
  }
  ASSERT_TRUE(ValidateSchedule(dyn, schedule).ok());

  Graph churned = dyn.Snapshot().ValueOrDie();
  double incremental_cost = ScheduleCost(churned, workload_, schedule,
                                         ResidualPolicy::kFree);
  // Re-optimization is a fresh local search; it usually beats the churned
  // schedule but carries no per-instance guarantee — allow a small slack
  // (Fig. 5 makes the aggregate claim, reproduced in bench_fig5_incremental).
  auto reopt = RunParallelNosy(churned, workload_).ValueOrDie();
  EXPECT_LE(reopt.final_cost, incremental_cost * 1.02);
}

}  // namespace
}  // namespace piggy
