// ClusterService end-to-end: 1-shard parity with the single-process
// FeedService (schedules and audited query results identical), cross-shard
// push/pull mechanics with replica materialization and batched fan-out, a
// 2000-op churn lifecycle with every merged stream audited across >= 4
// shards, and the edge-cut partitioner's cross-traffic win over hash
// placement.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster_service.h"
#include "gen/generators.h"
#include "gen/presets.h"
#include "graph/graph_builder.h"
#include "store/feed_service.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace piggy {
namespace {

ClusterOptions SmallCluster(size_t shards, const std::string& planner) {
  ClusterOptions options;
  options.num_shards = shards;
  options.shard.planner = planner;
  options.shard.prototype.num_servers = 4;
  options.shard.prototype.view_capacity = 0;  // unbounded views: exact audits
  options.shard.workload = {.read_write_ratio = 5.0, .min_rate = 0.05};
  options.shard.audit_every = 1;  // shard-local audits on every local feed
  options.audit_every = 1;        // cluster audits on every merged stream
  return options;
}

void ExpectSameSchedule(const Schedule& a, const Schedule& b) {
  EXPECT_EQ(a.push_size(), b.push_size());
  EXPECT_EQ(a.pull_size(), b.pull_size());
  EXPECT_EQ(a.hub_covered_size(), b.hub_covered_size());
  a.ForEachPush([&](const Edge& e) { EXPECT_TRUE(b.IsPush(e.src, e.dst)); });
  a.ForEachPull([&](const Edge& e) { EXPECT_TRUE(b.IsPull(e.src, e.dst)); });
  a.ForEachHubCover([&](const Edge& e, NodeId hub) {
    EXPECT_EQ(b.HubFor(e.src, e.dst).value_or(hub + 1), hub);
  });
}

// The acceptance bar: a 1-shard cluster is the single-process deployment.
// Same planner, same graph, same op sequence => the shard schedule equals the
// FeedService schedule and every query returns identical tuples.
TEST(ClusterServiceTest, OneShardParityWithFeedService) {
  for (const char* planner : {"nosy", "chitchat", "hybrid"}) {
    SCOPED_TRACE(planner);
    const size_t kNodes = 220;
    Graph g = MakeFlickrLike(kNodes, 5).ValueOrDie();

    ClusterOptions copts = SmallCluster(1, planner);
    FeedServiceOptions fopts = copts.shard;
    auto single = FeedService::Create(g, fopts).MoveValueOrDie();
    auto cluster = ClusterService::Create(g, copts).MoveValueOrDie();

    ASSERT_EQ(cluster->num_shards(), 1u);
    EXPECT_EQ(cluster->cross_index().num_edges(), 0u);
    ExpectSameSchedule(single->schedule(), cluster->shard(0).schedule());

    Rng rng(17);
    for (int op = 0; op < 600; ++op) {
      const double dice = rng.UniformDouble();
      NodeId u = static_cast<NodeId>(rng.Uniform(kNodes));
      NodeId v = static_cast<NodeId>(rng.Uniform(kNodes));
      if (dice < 0.35) {
        ASSERT_TRUE(single->Share(u).ok());
        ASSERT_TRUE(cluster->Share(u).ok());
      } else if (dice < 0.85) {
        auto a = single->QueryStream(u);
        auto b = cluster->QueryStream(u);
        ASSERT_TRUE(a.ok() && b.ok()) << "op " << op;
        ASSERT_EQ(*a, *b) << "op " << op;
      } else if (u != v && dice < 0.95) {
        ASSERT_TRUE(single->Follow(u, v).ok());
        ASSERT_TRUE(cluster->Follow(u, v).ok());
      } else if (u != v) {
        ASSERT_TRUE(single->Unfollow(u, v).ok());
        ASSERT_TRUE(cluster->Unfollow(u, v).ok());
      }
    }
    ASSERT_TRUE(cluster->Validate().ok());
    ExpectSameSchedule(single->schedule(), cluster->shard(0).schedule());

    ClusterMetrics m = cluster->GetMetrics();
    FeedService::Metrics sm = single->GetMetrics();
    EXPECT_EQ(m.planner, sm.planner);
    EXPECT_DOUBLE_EQ(m.intra_cost, sm.schedule_cost);
    EXPECT_DOUBLE_EQ(m.cross_cost, 0.0);
    EXPECT_EQ(m.cross_update_messages + m.cross_query_messages, 0u);
    EXPECT_GT(m.audited_queries, 0u);
  }
}

TEST(ClusterServiceTest, RejectsBadConfigurations) {
  Graph g = MakeFlickrLike(100, 2).ValueOrDie();
  ClusterOptions options = SmallCluster(2, "nosy");
  options.partitioner = "metis";
  auto unknown = ClusterService::Create(g, options);
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsInvalidArgument());
  EXPECT_NE(unknown.status().message().find("edge-cut"), std::string::npos);

  options = SmallCluster(0, "nosy");
  EXPECT_FALSE(ClusterService::Create(g, options).ok());

  options = SmallCluster(2, "no-such-planner");
  auto planner = ClusterService::Create(g, options);
  ASSERT_FALSE(planner.ok());
  EXPECT_TRUE(planner.status().IsInvalidArgument());

  options = SmallCluster(2, "nosy");
  auto cluster = ClusterService::Create(g, options).MoveValueOrDie();
  EXPECT_TRUE(cluster->Share(1000).IsInvalidArgument());
  EXPECT_FALSE(cluster->QueryStream(1000).ok());
  EXPECT_TRUE(cluster->Follow(1000, 1).IsInvalidArgument());
  EXPECT_TRUE(cluster->Follow(1, 1).IsInvalidArgument());
  EXPECT_TRUE(cluster->Unfollow(1000, 1).IsInvalidArgument());
}

// Remote pushes materialize one replica per (producer, shard) — not per
// follower — and each share then costs one batched update message per
// replicating shard. Backfill delivers pre-follow events.
TEST(ClusterServiceTest, RemotePushMaterializesOneReplicaPerShard) {
  // 24 isolated users; rp < rc forces every cross edge to push mode.
  Graph g = BuildGraph(24, {}).ValueOrDie();
  ClusterOptions options = SmallCluster(2, "hybrid");
  auto cluster =
      ClusterService::Create(g, UniformWorkload(24, 1.0, 5.0), options)
          .MoveValueOrDie();

  const ShardMap& map = cluster->shard_map();
  NodeId producer = 0;
  NodeId c1 = 0, c2 = 0;
  // A producer and two consumers on the *other* shard.
  while (map.ShardOf(c1) == map.ShardOf(producer)) ++c1;
  c2 = c1 + 1;
  while (c2 == producer || map.ShardOf(c2) != map.ShardOf(c1)) ++c2;

  ASSERT_TRUE(cluster->Share(producer).ok());
  ASSERT_TRUE(cluster->Share(producer).ok());  // pre-follow events

  ASSERT_TRUE(cluster->Follow(c1, producer).ok());
  EXPECT_EQ(cluster->cross_index().ModeOf(producer, c1), CrossEdgeMode::kPush);
  ClusterMetrics m = cluster->GetMetrics();
  EXPECT_EQ(m.replicas, 1u);
  EXPECT_EQ(m.cross_update_messages, 1u);  // the backfill transfer

  // Backfilled events are served locally: no pull messages.
  std::vector<EventTuple> feed = cluster->QueryStream(c1).MoveValueOrDie();
  ASSERT_EQ(feed.size(), 2u);
  EXPECT_EQ(feed[0].producer, producer);
  EXPECT_EQ(cluster->GetMetrics().cross_query_messages, 0u);

  // Second follower in the same shard: the replica is shared, no backfill.
  ASSERT_TRUE(cluster->Follow(c2, producer).ok());
  m = cluster->GetMetrics();
  EXPECT_EQ(m.replicas, 1u);
  EXPECT_EQ(m.cross_update_messages, 1u);

  // A new share fans out exactly one batched message to the one shard.
  ASSERT_TRUE(cluster->Share(producer).ok());
  m = cluster->GetMetrics();
  EXPECT_EQ(m.cross_update_messages, 2u);
  feed = cluster->QueryStream(c2).MoveValueOrDie();
  ASSERT_EQ(feed.size(), 3u);

  // Unfollowing the last pushing edge into the shard drops the replica.
  ASSERT_TRUE(cluster->Unfollow(c1, producer).ok());
  EXPECT_EQ(cluster->GetMetrics().replicas, 1u);
  ASSERT_TRUE(cluster->Unfollow(c2, producer).ok());
  EXPECT_EQ(cluster->GetMetrics().replicas, 0u);
  feed = cluster->QueryStream(c2).MoveValueOrDie();
  EXPECT_TRUE(feed.empty());
  ASSERT_TRUE(cluster->Validate().ok());
}

// Remote pulls fan out one batched message per touched shard, covering every
// pulled producer hosted there (the paper's batching rule).
TEST(ClusterServiceTest, RemotePullsBatchOneMessagePerShard) {
  // rp > rc forces every cross edge to pull mode.
  Graph g = BuildGraph(24, {}).ValueOrDie();
  ClusterOptions options = SmallCluster(2, "hybrid");
  auto cluster =
      ClusterService::Create(g, UniformWorkload(24, 5.0, 1.0), options)
          .MoveValueOrDie();

  const ShardMap& map = cluster->shard_map();
  NodeId consumer = 0;
  // Two producers on the other shard.
  NodeId p1 = 0, p2 = 0;
  while (map.ShardOf(p1) == map.ShardOf(consumer)) ++p1;
  p2 = p1 + 1;
  while (p2 == consumer || map.ShardOf(p2) != map.ShardOf(p1)) ++p2;

  ASSERT_TRUE(cluster->Share(p1).ok());
  ASSERT_TRUE(cluster->Follow(consumer, p1).ok());
  ASSERT_TRUE(cluster->Follow(consumer, p2).ok());
  EXPECT_EQ(cluster->cross_index().ModeOf(p1, consumer), CrossEdgeMode::kPull);
  EXPECT_EQ(cluster->GetMetrics().replicas, 0u);
  ASSERT_TRUE(cluster->Share(p2).ok());
  EXPECT_EQ(cluster->GetMetrics().cross_update_messages, 0u);

  // Both producers live on one shard: a query costs exactly one message.
  std::vector<EventTuple> feed = cluster->QueryStream(consumer).MoveValueOrDie();
  ASSERT_EQ(feed.size(), 2u);
  EXPECT_EQ(feed[0].producer, p2);  // newest-first
  EXPECT_EQ(feed[1].producer, p1);
  EXPECT_EQ(cluster->GetMetrics().cross_query_messages, 1u);

  ASSERT_TRUE(cluster->Unfollow(consumer, p1).ok());
  ASSERT_TRUE(cluster->Unfollow(consumer, p2).ok());
  feed = cluster->QueryStream(consumer).MoveValueOrDie();
  EXPECT_TRUE(feed.empty());
  // The unfollowed query touched no remote shard.
  EXPECT_EQ(cluster->GetMetrics().cross_query_messages, 1u);
  ASSERT_TRUE(cluster->Validate().ok());
}

// The acceptance scenario: a long interleaved share / query / follow /
// unfollow run across >= 4 shards with every merged stream audited against
// the cluster-wide oracle, ending in a cluster-wide parallel replan.
TEST(ClusterServiceTest, ChurnLifecycleStaysAuditCleanAcrossShards) {
  for (const char* partitioner : {"hash", "edge-cut"}) {
    SCOPED_TRACE(partitioner);
    const size_t kNodes = 260;
    Graph g = MakeFlickrLike(kNodes, 7).ValueOrDie();
    ClusterOptions options = SmallCluster(4, "nosy");
    options.partitioner = partitioner;
    auto cluster = ClusterService::Create(g, options).MoveValueOrDie();
    ASSERT_TRUE(cluster->Validate().ok());
    EXPECT_GT(cluster->cross_index().num_edges(), 0u);

    Rng rng(99);
    for (int op = 0; op < 2000; ++op) {
      const double dice = rng.UniformDouble();
      NodeId u = static_cast<NodeId>(rng.Uniform(kNodes));
      NodeId v = static_cast<NodeId>(rng.Uniform(kNodes));
      if (dice < 0.35) {
        ASSERT_TRUE(cluster->Share(u).ok());
      } else if (dice < 0.85) {
        ASSERT_TRUE(cluster->QueryStream(u).ok()) << "audit failed at op " << op;
      } else if (u != v && dice < 0.95) {
        ASSERT_TRUE(cluster->Follow(u, v).ok());
      } else if (u != v) {
        ASSERT_TRUE(cluster->Unfollow(u, v).ok());
      }
    }
    ASSERT_TRUE(cluster->Validate().ok());

    ClusterMetrics m = cluster->GetMetrics();
    EXPECT_EQ(m.shards, 4u);
    EXPECT_EQ(m.partitioner, partitioner);
    EXPECT_GT(m.shares, 0u);
    EXPECT_GT(m.queries, 0u);
    EXPECT_GT(m.audited_queries, 0u);
    EXPECT_GT(m.churn_ops, 0u);
    EXPECT_GT(m.cross_edges, 0u);
    EXPECT_GT(m.cross_cost, 0.0);
    EXPECT_GT(m.messages_per_request, 0.0);
    EXPECT_GE(m.imbalance, 1.0);
    EXPECT_EQ(m.replans, 4u);  // the initial plan of each shard
    ASSERT_EQ(m.per_shard_requests.size(), 4u);
    for (uint64_t load : m.per_shard_requests) EXPECT_GT(load, 0u);
    EXPECT_FALSE(m.ToString().empty());

    // Full parallel replan on the churned shard subgraphs; serving state and
    // audit-exactness must survive.
    ASSERT_TRUE(cluster->Replan().ok());
    ASSERT_TRUE(cluster->Validate().ok());
    EXPECT_EQ(cluster->GetMetrics().replans, 8u);
    for (int i = 0; i < 50; ++i) {
      NodeId u = static_cast<NodeId>(rng.Uniform(kNodes));
      ASSERT_TRUE(cluster->QueryStream(u).ok());
    }
  }
}

TEST(ClusterServiceTest, EmptyShardsAreTolerated) {
  // 3 users on 6 shards: at least three shards are empty.
  Graph g = BuildGraph(3, {{0, 1}}).ValueOrDie();
  ClusterOptions options = SmallCluster(6, "nosy");
  auto cluster = ClusterService::Create(g, UniformWorkload(3, 1.0, 5.0), options)
                     .MoveValueOrDie();
  ASSERT_TRUE(cluster->Share(0).ok());
  std::vector<EventTuple> feed = cluster->QueryStream(1).MoveValueOrDie();
  ASSERT_EQ(feed.size(), 1u);
  EXPECT_EQ(feed[0].producer, 0u);
  ASSERT_TRUE(cluster->Validate().ok());
}

TEST(ClusterServiceTest, AutoReplanTriggersAfterConfiguredChurn) {
  Graph g = MakeFlickrLike(150, 9).ValueOrDie();
  ClusterOptions options = SmallCluster(2, "hybrid");
  options.replan_after_churn = 5;
  auto cluster = ClusterService::Create(g, options).MoveValueOrDie();

  Rng rng(5);
  size_t applied = 0;
  while (applied < 11) {
    NodeId u = static_cast<NodeId>(rng.Uniform(150));
    NodeId v = static_cast<NodeId>(rng.Uniform(150));
    if (u == v || cluster->graph().HasEdge(v, u)) continue;
    ASSERT_TRUE(cluster->Follow(u, v).ok());
    ++applied;
  }
  // 11 churn ops, threshold 5: initial plan + 2 cluster replans, per shard.
  ClusterMetrics m = cluster->GetMetrics();
  EXPECT_EQ(m.replans, 2u * 3u);
  EXPECT_EQ(m.churn_ops, 11u);
  ASSERT_TRUE(cluster->Validate().ok());
}

TEST(ClusterServiceTest, DriveReplaysTheWorkloadWithAudits) {
  Graph g = MakeFlickrLike(240, 12).ValueOrDie();
  ClusterOptions options = SmallCluster(4, "nosy");
  options.audit_every = 0;  // Drive's own cadence only
  auto cluster = ClusterService::Create(g, options).MoveValueOrDie();

  DriverOptions traffic;
  traffic.num_requests = 1500;
  traffic.audit_every = 25;
  traffic.seed = 4;
  ClusterDriveReport report = cluster->Drive(traffic).MoveValueOrDie();
  EXPECT_EQ(report.requests, 1500u);
  EXPECT_GT(report.shares, 0u);
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.audited_queries, 10u);
  EXPECT_GT(report.messages_per_request, 0.0);
  EXPECT_GT(report.cross_messages_per_request, 0.0);
  EXPECT_GE(report.imbalance, 1.0);
  EXPECT_FALSE(report.ToString().empty());

  ClusterMetrics m = cluster->GetMetrics();
  EXPECT_EQ(m.shares + m.queries, 1500u);
  EXPECT_EQ(m.audited_queries, report.audited_queries);
}

// The edge-cut partitioner's reason to exist: on a community-structured
// graph it must strictly reduce the predicted cross-shard cost — and the
// measured cross-shard traffic — versus hash placement.
TEST(ClusterServiceTest, EdgeCutPartitionerBeatsHashOnCommunityGraph) {
  Graph g = GeneratePlantedPartition(4, 50, 0.2, 0.01, 13).ValueOrDie();
  ClusterOptions options = SmallCluster(4, "hybrid");
  options.audit_every = 50;

  options.partitioner = "hash";
  auto hash = ClusterService::Create(g, options).MoveValueOrDie();
  options.partitioner = "edge-cut";
  auto cut = ClusterService::Create(g, options).MoveValueOrDie();

  const ClusterMetrics hm = hash->GetMetrics();
  const ClusterMetrics cm = cut->GetMetrics();
  EXPECT_LT(cm.cross_edges, hm.cross_edges);
  EXPECT_LT(cm.cross_cost, hm.cross_cost);

  DriverOptions traffic;
  traffic.num_requests = 2000;
  traffic.seed = 3;
  ClusterDriveReport hr = hash->Drive(traffic).MoveValueOrDie();
  ClusterDriveReport cr = cut->Drive(traffic).MoveValueOrDie();
  EXPECT_LT(cr.cross_messages_per_request, hr.cross_messages_per_request);
}

}  // namespace
}  // namespace piggy
