#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

namespace piggy {
namespace {

TEST(GraphStatsTest, CompleteGraphIsFullyClustered) {
  Graph g = GenerateComplete(6).ValueOrDie();
  GraphStats s = ComputeGraphStats(g, /*clustering_samples=*/0);
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_edges, 30u);
  EXPECT_DOUBLE_EQ(s.reciprocity, 1.0);
  EXPECT_DOUBLE_EQ(s.clustering, 1.0);
  // Every ordered triple (x, w, y) of distinct nodes is a hub triangle.
  EXPECT_EQ(s.hub_triangles, 6u * 5u * 4u);
}

TEST(GraphStatsTest, CycleHasNoTriangles) {
  Graph g = GenerateCycle(10).ValueOrDie();
  GraphStats s = ComputeGraphStats(g, 0);
  EXPECT_EQ(s.num_edges, 10u);
  EXPECT_DOUBLE_EQ(s.reciprocity, 0.0);
  EXPECT_DOUBLE_EQ(s.clustering, 0.0);
  EXPECT_EQ(s.hub_triangles, 0u);
}

TEST(GraphStatsTest, StarDegrees) {
  Graph g = GenerateStar(11, 0).ValueOrDie();
  GraphStats s = ComputeGraphStats(g, 0);
  EXPECT_EQ(s.max_out_degree, 10u);
  EXPECT_EQ(s.max_in_degree, 1u);
  EXPECT_EQ(s.hub_triangles, 0u);
}

TEST(GraphStatsTest, PaperTriangleHasOneHubWedge) {
  // Art -> Charlie, Charlie -> Billie, Art -> Billie: Charlie is the hub.
  Graph g = BuildGraph(3, {{0, 2}, {2, 1}, {0, 1}}).ValueOrDie();
  EXPECT_EQ(CountHubTrianglesExact(g), 1u);
}

TEST(GraphStatsTest, ReciprocityCountsBothDirections) {
  Graph g = BuildGraph(4, {{0, 1}, {1, 0}, {2, 3}}).ValueOrDie();
  GraphStats s = ComputeGraphStats(g, 0);
  EXPECT_NEAR(s.reciprocity, 2.0 / 3.0, 1e-9);
}

TEST(GraphStatsTest, SampledEstimateTracksExact) {
  Graph g = GenerateSocialNetwork({.num_nodes = 800, .edges_per_node = 6}, 42)
                .ValueOrDie();
  GraphStats exact = ComputeGraphStats(g, 0);
  GraphStats sampled = ComputeGraphStats(g, 400, 7);
  // Clustering estimates should be in the same ballpark.
  EXPECT_NEAR(sampled.clustering, exact.clustering, 0.1);
  EXPECT_EQ(sampled.num_edges, exact.num_edges);
}

TEST(GraphStatsTest, DegreeHistogramBuckets) {
  Graph g = GenerateStar(9, 0).ValueOrDie();  // center out-degree 8
  auto out_hist = DegreeHistogramLog2(g, /*out_direction=*/true);
  // Bucket 0 holds degrees 0..1 (the 8 leaves), bucket 3 holds degree 8.
  ASSERT_GE(out_hist.size(), 4u);
  EXPECT_EQ(out_hist[0], 8u);
  EXPECT_EQ(out_hist[3], 1u);
  size_t total = 0;
  for (size_t c : out_hist) total += c;
  EXPECT_EQ(total, g.num_nodes());
}

TEST(GraphStatsTest, ToStringMentionsCounts) {
  Graph g = GenerateCycle(5).ValueOrDie();
  std::string s = ComputeGraphStats(g, 0).ToString();
  EXPECT_NE(s.find("nodes=5"), std::string::npos);
  EXPECT_NE(s.find("edges=5"), std::string::npos);
}

}  // namespace
}  // namespace piggy
