#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/cost_model.h"
#include "core/parallel_nosy.h"
#include "core/schedule_io.h"
#include "core/validator.h"
#include "gen/presets.h"
#include "workload/workload.h"

namespace piggy {
namespace {

class ScheduleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("piggy_sched_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ScheduleIoTest, RoundTripSmall) {
  Schedule s;
  s.AddPush(0, 2);
  s.AddPull(2, 1);
  s.SetHubCover(0, 1, 2);
  std::string path = Path("s.txt");
  ASSERT_TRUE(WriteScheduleText(s, path).ok());
  Schedule back = ReadScheduleText(path).ValueOrDie();
  EXPECT_TRUE(back.IsPush(0, 2));
  EXPECT_TRUE(back.IsPull(2, 1));
  ASSERT_TRUE(back.HubFor(0, 1).has_value());
  EXPECT_EQ(*back.HubFor(0, 1), 2u);
  EXPECT_EQ(back.push_size(), 1u);
  EXPECT_EQ(back.pull_size(), 1u);
  EXPECT_EQ(back.hub_covered_size(), 1u);
}

TEST_F(ScheduleIoTest, RoundTripOptimizedSchedule) {
  Graph g = MakeFlickrLike(600, 3).ValueOrDie();
  Workload w = GenerateWorkload(g, {.min_rate = 0.05}).ValueOrDie();
  auto pn = RunParallelNosy(g, w).ValueOrDie();
  std::string path = Path("pn.txt");
  ASSERT_TRUE(WriteScheduleText(pn.schedule, path).ok());
  Schedule back = ReadScheduleText(path).ValueOrDie();

  EXPECT_EQ(back.push_size(), pn.schedule.push_size());
  EXPECT_EQ(back.pull_size(), pn.schedule.pull_size());
  EXPECT_EQ(back.hub_covered_size(), pn.schedule.hub_covered_size());
  EXPECT_TRUE(ValidateSchedule(g, back).ok());
  EXPECT_DOUBLE_EQ(ScheduleCost(g, w, back, ResidualPolicy::kFree),
                   ScheduleCost(g, w, pn.schedule, ResidualPolicy::kFree));
}

TEST_F(ScheduleIoTest, OutputIsDeterministic) {
  Graph g = MakeFlickrLike(300, 5).ValueOrDie();
  Workload w = GenerateWorkload(g, {.min_rate = 0.05}).ValueOrDie();
  auto pn = RunParallelNosy(g, w).ValueOrDie();
  std::string a = Path("a.txt"), b = Path("b.txt");
  ASSERT_TRUE(WriteScheduleText(pn.schedule, a).ok());
  ASSERT_TRUE(WriteScheduleText(pn.schedule, b).ok());
  std::ifstream fa(a), fb(b);
  std::string ca((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string cb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(ca, cb);
  EXPECT_FALSE(ca.empty());
}

TEST_F(ScheduleIoTest, CommentsAndBlanksIgnored) {
  std::string path = Path("c.txt");
  {
    std::ofstream out(path);
    out << "piggy-schedule v1\n# comment\n\nH 1 2\n  \nL 3 4\nE 1 1 0\n";
  }
  Schedule s = ReadScheduleText(path).ValueOrDie();
  EXPECT_TRUE(s.IsPush(1, 2));
  EXPECT_TRUE(s.IsPull(3, 4));
}

TEST_F(ScheduleIoTest, MissingHeaderFails) {
  std::string path = Path("h.txt");
  {
    std::ofstream out(path);
    out << "H 1 2\n";
  }
  EXPECT_TRUE(ReadScheduleText(path).status().IsIOError());
}

TEST_F(ScheduleIoTest, MalformedLineFails) {
  std::string path = Path("m.txt");
  {
    std::ofstream out(path);
    out << "piggy-schedule v1\nH 1\n";
  }
  EXPECT_TRUE(ReadScheduleText(path).status().IsIOError());
}

TEST_F(ScheduleIoTest, UnknownKindFails) {
  std::string path = Path("u.txt");
  {
    std::ofstream out(path);
    out << "piggy-schedule v1\nX 1 2\n";
  }
  EXPECT_TRUE(ReadScheduleText(path).status().IsIOError());
}

TEST_F(ScheduleIoTest, CoverWithoutHubFails) {
  std::string path = Path("cc.txt");
  {
    std::ofstream out(path);
    out << "piggy-schedule v1\nC 1 2\n";
  }
  EXPECT_TRUE(ReadScheduleText(path).status().IsIOError());
}

TEST_F(ScheduleIoTest, MissingFileFails) {
  EXPECT_TRUE(ReadScheduleText(Path("nope.txt")).status().IsIOError());
}

TEST_F(ScheduleIoTest, ParseRoundTripsWithoutTouchingDisk) {
  Schedule s;
  s.AddPush(4, 1);
  s.AddPull(1, 9);
  s.SetHubCover(4, 9, 1);
  Schedule back = ParseSchedule(SerializeSchedule(s), "inline").ValueOrDie();
  EXPECT_TRUE(back.IsPush(4, 1));
  EXPECT_TRUE(back.IsPull(1, 9));
  ASSERT_TRUE(back.HubFor(4, 9).has_value());
  EXPECT_EQ(*back.HubFor(4, 9), 1u);
}

TEST_F(ScheduleIoTest, MissingFooterFails) {
  // A serialized schedule with its E footer cut off is truncated data, not a
  // smaller schedule.
  Schedule s;
  s.AddPush(0, 2);
  s.AddPull(2, 1);
  std::string text = SerializeSchedule(s);
  size_t footer = text.rfind("E ");
  ASSERT_NE(footer, std::string::npos);
  auto r = ParseSchedule(text.substr(0, footer), "cut");
  ASSERT_TRUE(r.status().IsIOError());
  EXPECT_NE(r.status().message().find("cut"), std::string::npos);
}

TEST_F(ScheduleIoTest, TruncationAnywhereIsDetected) {
  Graph g = MakeFlickrLike(300, 5).ValueOrDie();
  Workload w = GenerateWorkload(g, {.min_rate = 0.05}).ValueOrDie();
  auto pn = RunParallelNosy(g, w).ValueOrDie();
  std::string text = SerializeSchedule(pn.schedule);
  // Cut at a sweep of byte offsets: every prefix must be rejected — either a
  // torn line fails to parse or the footer counts miss.
  for (size_t cut : {text.size() / 7, text.size() / 3, text.size() / 2,
                     text.size() - 2}) {
    EXPECT_FALSE(ParseSchedule(text.substr(0, cut), "torn").ok())
        << "cut at " << cut;
  }
}

TEST_F(ScheduleIoTest, FooterCountMismatchFails) {
  auto r = ParseSchedule("piggy-schedule v1\nH 1 2\nE 2 0 0\n", "bad");
  ASSERT_TRUE(r.status().IsIOError());
  EXPECT_NE(r.status().message().find("bad"), std::string::npos);
  EXPECT_FALSE(
      ParseSchedule("piggy-schedule v1\nH 1 2\nE 1 1 0\n", "bad").ok());
}

TEST_F(ScheduleIoTest, ContentAfterFooterFails) {
  EXPECT_FALSE(
      ParseSchedule("piggy-schedule v1\nH 1 2\nE 1 0 0\nH 3 4\n", "bad").ok());
}

TEST_F(ScheduleIoTest, ErrorsNameByteOffset) {
  // The offending line's byte offset appears in the message, so an operator
  // can seek straight to the corruption in a large schedule file.
  std::string text = "piggy-schedule v1\nH 1 2\nH nonsense\n";
  auto r = ParseSchedule(text, "off");
  ASSERT_TRUE(r.status().IsIOError());
  EXPECT_NE(r.status().message().find("byte"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("24"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace piggy
