#include <gtest/gtest.h>

#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace piggy {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructors) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::InvalidArgument("bad edge count");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad edge count");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad edge count");
}

TEST(StatusTest, CopyAndEquality) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "missing");
  Status c = Status::NotFound("other");
  EXPECT_FALSE(a == c);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
}

// ---------------------------------------------------------------- Result

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(7);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).MoveValueOrDie();
  EXPECT_EQ(v, "payload");
}

Status UseAssignOrReturn(int x, int* out) {
  PIGGY_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseAssignOrReturn(9, &out).IsInvalidArgument());
}

Status UseReturnNotOk(bool fail) {
  PIGGY_RETURN_NOT_OK(fail ? Status::IOError("disk") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_TRUE(UseReturnNotOk(true).IsIOError());
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StrSplitBasic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, StrSplitEmptyFields) {
  auto parts = StrSplit("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
  auto skipped = StrSplit("a,,c,", ',', /*skip_empty=*/true);
  ASSERT_EQ(skipped.size(), 2u);
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StrTrim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\n"), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("# nodes 5", "# nodes "));
  EXPECT_FALSE(StartsWith("#", "# nodes "));
}

TEST(StringUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1423194279ULL), "1,423,194,279");
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double a = t.Seconds();
  double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.Reset();
  EXPECT_GE(t.Seconds(), 0.0);
}

}  // namespace
}  // namespace piggy
