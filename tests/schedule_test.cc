#include <gtest/gtest.h>

#include "core/schedule.h"

namespace piggy {
namespace {

TEST(ScheduleTest, PushSetOperations) {
  Schedule s;
  EXPECT_FALSE(s.IsPush(0, 1));
  EXPECT_TRUE(s.AddPush(0, 1));
  EXPECT_FALSE(s.AddPush(0, 1));
  EXPECT_TRUE(s.IsPush(0, 1));
  EXPECT_FALSE(s.IsPush(1, 0));  // direction matters
  EXPECT_EQ(s.push_size(), 1u);
  EXPECT_TRUE(s.RemovePush(0, 1));
  EXPECT_FALSE(s.RemovePush(0, 1));
  EXPECT_EQ(s.push_size(), 0u);
}

TEST(ScheduleTest, PullSetOperations) {
  Schedule s;
  EXPECT_TRUE(s.AddPull(2, 3));
  EXPECT_TRUE(s.IsPull(2, 3));
  EXPECT_FALSE(s.IsPush(2, 3));  // H and L are independent
  EXPECT_EQ(s.pull_size(), 1u);
}

TEST(ScheduleTest, EdgeCanBeInBothSets) {
  Schedule s;
  s.AddPush(1, 2);
  s.AddPull(1, 2);
  EXPECT_TRUE(s.IsPush(1, 2));
  EXPECT_TRUE(s.IsPull(1, 2));
}

TEST(ScheduleTest, HubCoverBookkeeping) {
  Schedule s;
  EXPECT_FALSE(s.HubFor(0, 1).has_value());
  EXPECT_TRUE(s.SetHubCover(0, 1, 9));
  EXPECT_FALSE(s.SetHubCover(0, 1, 8));  // overwrite is not fresh
  ASSERT_TRUE(s.HubFor(0, 1).has_value());
  EXPECT_EQ(*s.HubFor(0, 1), 8u);
  EXPECT_TRUE(s.IsHubCovered(0, 1));
  EXPECT_EQ(s.hub_covered_size(), 1u);
  EXPECT_TRUE(s.ClearHubCover(0, 1));
  EXPECT_FALSE(s.ClearHubCover(0, 1));
  EXPECT_FALSE(s.IsHubCovered(0, 1));
}

TEST(ScheduleTest, IsAssignedCoversAllKinds) {
  Schedule s;
  EXPECT_FALSE(s.IsAssigned(0, 1));
  s.AddPush(0, 1);
  EXPECT_TRUE(s.IsAssigned(0, 1));
  s.AddPull(2, 3);
  EXPECT_TRUE(s.IsAssigned(2, 3));
  s.SetHubCover(4, 5, 6);
  EXPECT_TRUE(s.IsAssigned(4, 5));
  EXPECT_FALSE(s.IsAssigned(6, 7));
}

TEST(ScheduleTest, ForEachIteratesEverything) {
  Schedule s;
  s.AddPush(0, 1);
  s.AddPush(0, 2);
  s.AddPull(3, 4);
  s.SetHubCover(5, 6, 7);
  size_t pushes = 0, pulls = 0, covers = 0;
  s.ForEachPush([&](const Edge&) { ++pushes; });
  s.ForEachPull([&](const Edge&) { ++pulls; });
  s.ForEachHubCover([&](const Edge& e, NodeId hub) {
    ++covers;
    EXPECT_EQ(e, (Edge{5, 6}));
    EXPECT_EQ(hub, 7u);
  });
  EXPECT_EQ(pushes, 2u);
  EXPECT_EQ(pulls, 1u);
  EXPECT_EQ(covers, 1u);
}

TEST(ScheduleTest, BuildPushSetsGroupsBySource) {
  Schedule s;
  s.AddPush(0, 3);
  s.AddPush(0, 1);
  s.AddPush(2, 1);
  auto sets = s.BuildPushSets(4);
  ASSERT_EQ(sets.size(), 4u);
  EXPECT_EQ(sets[0], (std::vector<NodeId>{1, 3}));  // sorted
  EXPECT_EQ(sets[2], (std::vector<NodeId>{1}));
  EXPECT_TRUE(sets[1].empty());
}

TEST(ScheduleTest, BuildPullSetsGroupsByDestination) {
  Schedule s;
  s.AddPull(5, 0);  // user 0 pulls from 5
  s.AddPull(2, 0);
  s.AddPull(1, 3);
  auto sets = s.BuildPullSets(6);
  EXPECT_EQ(sets[0], (std::vector<NodeId>{2, 5}));
  EXPECT_EQ(sets[3], (std::vector<NodeId>{1}));
  EXPECT_TRUE(sets[5].empty());
}

TEST(ScheduleTest, BuildSetsIgnoreOutOfRangeUsers) {
  Schedule s;
  s.AddPush(0, 100);
  s.AddPush(0, 1);
  auto sets = s.BuildPushSets(2);
  EXPECT_EQ(sets[0], (std::vector<NodeId>{1}));
}

}  // namespace
}  // namespace piggy
