// Partitioner layer: the placement-aware cost model against hand-computed
// fixtures, the partitioner registry, and the greedy edge-cut partitioner's
// quality guarantees (balance, determinism, beating hash placement on
// community-structured graphs).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/schedule.h"
#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "store/partitioner.h"
#include "workload/workload.h"

namespace piggy {
namespace {

/// Test-only placement with an explicit assignment table: exercises the
/// Partitioner extension point and makes hand-computed fixtures possible.
class FixedPartitioner : public Partitioner {
 public:
  FixedPartitioner(std::vector<uint32_t> assignment, size_t num_servers)
      : assignment_(std::move(assignment)), num_servers_(num_servers) {}

  uint32_t ServerOf(NodeId user) const override { return assignment_[user]; }
  size_t num_servers() const override { return num_servers_; }
  const std::string& name() const override {
    static const std::string kName = "fixed";
    return kName;
  }

 private:
  std::vector<uint32_t> assignment_;
  size_t num_servers_;
};

// A fully-scheduled 4-node fixture on 2 servers, every term hand-computed.
//
// Graph: 0->1, 0->2, 2->3, 3->1. Placement: {0, 1} on server 0, {2, 3} on
// server 1. Schedule: 0->1, 0->2, 2->3 pushed; 3->1 pulled. Rates: rp = 1,
// rc = 2 for everyone.
//
//   u=0: push views {0, 1, 2} -> servers {0, 1} = 2, rp * 2 = 2
//        pull views {0}       -> 1 server,          rc * 1 = 2
//   u=1: push views {1}       -> 1,                 rp * 1 = 1
//        pull views {1, 3}    -> servers {0, 1} = 2, rc * 2 = 4
//   u=2: push views {2, 3}    -> server {1} = 1,    rp * 1 = 1
//        pull views {2}       -> 1,                 rc * 1 = 2
//   u=3: push views {3}       -> 1,                 rp * 1 = 1
//        pull views {3}       -> 1,                 rc * 1 = 2
//                                               total = 15
TEST(PlacementAwareCostTest, MatchesHandComputedTwoServerFixture) {
  Graph g = BuildGraph(4, {{0, 1}, {0, 2}, {2, 3}, {3, 1}}).ValueOrDie();
  Workload w = UniformWorkload(4, 1.0, 2.0);
  Schedule s;
  s.AddPush(0, 1);
  s.AddPush(0, 2);
  s.AddPush(2, 3);
  s.AddPull(3, 1);

  FixedPartitioner two({0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(PlacementAwareCost(g, w, s, two), 15.0);

  // With one server every request is exactly one message: cost = total rate.
  FixedPartitioner one({0, 0, 0, 0}, 1);
  EXPECT_DOUBLE_EQ(PlacementAwareCost(g, w, s, one),
                   w.TotalProduction() + w.TotalConsumption());

  // Worst case, everyone alone: cost counts every distinct view's server.
  FixedPartitioner four({0, 1, 2, 3}, 4);
  EXPECT_DOUBLE_EQ(PlacementAwareCost(g, w, s, four),
                   1.0 * (3 + 1 + 2 + 1) + 2.0 * (1 + 2 + 1 + 1));
}

TEST(PartitionerRegistryTest, InstantiatesByNameAndAlias) {
  Graph g = GenerateErdosRenyi(50, 200, 1).ValueOrDie();
  Workload w = UniformWorkload(50, 1.0, 5.0);
  auto hash = MakePartitioner("hash", g, w, 8).MoveValueOrDie();
  EXPECT_EQ(hash->name(), "hash");
  EXPECT_EQ(hash->num_servers(), 8u);
  for (NodeId u = 0; u < 50; ++u) EXPECT_LT(hash->ServerOf(u), 8u);

  auto cut = MakePartitioner("edge-cut", g, w, 4).MoveValueOrDie();
  EXPECT_EQ(cut->name(), "edge-cut");
  EXPECT_EQ(cut->num_servers(), 4u);

  auto alias = MakePartitioner("greedy", g, w, 4).MoveValueOrDie();
  EXPECT_EQ(alias->name(), "edge-cut");
}

TEST(PartitionerRegistryTest, UnknownNameListsValidOptions) {
  Graph g = GenerateCycle(4).ValueOrDie();
  Workload w = UniformWorkload(4, 1.0, 5.0);
  auto result = MakePartitioner("metis", g, w, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("edge-cut"), std::string::npos);
  EXPECT_NE(result.status().message().find("hash"), std::string::npos);

  EXPECT_FALSE(MakePartitioner("hash", g, w, 0).ok());
  EXPECT_FALSE(RegisteredPartitioners().empty());
}

TEST(GreedyEdgeCutTest, RespectsBalanceCapacityAndIsDeterministic) {
  Graph g = GeneratePlantedPartition(4, 60, 0.15, 0.005, 7).ValueOrDie();
  Workload w = GenerateWorkload(g, {.read_write_ratio = 5.0, .min_rate = 0.01})
                   .ValueOrDie();
  auto a = GreedyEdgeCutPartitioner::Build(g, w, 4).MoveValueOrDie();
  auto b = GreedyEdgeCutPartitioner::Build(g, w, 4).MoveValueOrDie();
  EXPECT_EQ(a.assignment(), b.assignment());

  std::vector<size_t> load(4, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++load[a.ServerOf(u)];
  const double capacity = (240.0 / 4.0) * 1.05 + 1;
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_LE(static_cast<double>(load[s]), capacity) << "shard " << s;
    EXPECT_GT(load[s], 0u) << "shard " << s;
  }
}

TEST(GreedyEdgeCutTest, RejectsBadArguments) {
  Graph g = GenerateCycle(6).ValueOrDie();
  Workload w = UniformWorkload(6, 1.0, 5.0);
  EXPECT_FALSE(GreedyEdgeCutPartitioner::Build(g, w, 0).ok());
  EXPECT_FALSE(
      GreedyEdgeCutPartitioner::Build(g, UniformWorkload(3, 1, 5), 2).ok());
  EXPECT_FALSE(
      GreedyEdgeCutPartitioner::Build(g, w, 2, {.balance_slack = -0.5}).ok());
}

// The acceptance bar: on a community-structured graph the graph-aware
// partitioner must strictly beat hash placement, both on raw cut edges and on
// the placement-aware predicted cost of a real schedule.
TEST(GreedyEdgeCutTest, BeatsHashPlacementOnCommunityGraph) {
  Graph g = GeneratePlantedPartition(8, 40, 0.2, 0.005, 11).ValueOrDie();
  Workload w = GenerateWorkload(g, {.read_write_ratio = 5.0, .min_rate = 0.01})
                   .ValueOrDie();
  const size_t servers = 8;
  auto cut = GreedyEdgeCutPartitioner::Build(g, w, servers).MoveValueOrDie();
  HashPartitioner hash(servers);

  size_t hash_cut = 0;
  g.ForEachEdge([&](const Edge& e) {
    hash_cut += hash.ServerOf(e.src) != hash.ServerOf(e.dst);
  });
  EXPECT_LT(cut.cut_edges(g), hash_cut);

  Schedule schedule = HybridSchedule(g, w);
  const double cut_cost = PlacementAwareCost(g, w, schedule, cut);
  const double hash_cost = PlacementAwareCost(g, w, schedule, hash);
  EXPECT_LT(cut_cost, hash_cost);
}

}  // namespace
}  // namespace piggy
